// Stock screener: the paper's motivating application (§1 and §5 use S&P
// 500 daily closes). Given one stock's price history, find every other
// stock whose *shape* tracked it — even when the series have different
// lengths or sampling, which is exactly what the time-warping distance
// absorbs and the Euclidean distance cannot.
//
//   $ ./stock_screener [--eps 4.0]

#include <cstdio>
#include <cstring>
#include <string>

#include "common/flags.h"
#include "core/engine.h"
#include "sequence/stock_generator.h"

int main(int argc, char** argv) {
  using namespace warpindex;

  double epsilon = 4.0;  // dollars
  int64_t reference = 17;
  FlagSet flags("stock_screener");
  flags.AddDouble("eps", &epsilon, "tolerance in dollars");
  flags.AddInt64("stock", &reference, "reference stock id");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }

  // The synthetic S&P-like corpus: 545 series, mean length 231 trading
  // days, variable listing periods (see DESIGN.md, Substitutions).
  Dataset dataset = GenerateStockDataset(StockDataOptions{});
  EngineOptions options;
  options.build_st_filter = true;  // for the comparison table below
  const Engine engine(std::move(dataset), options);

  const Sequence& ref =
      engine.dataset()[static_cast<size_t>(reference)];
  std::printf("reference stock #%lld: %zu trading days, $%.2f .. $%.2f\n\n",
              static_cast<long long>(reference), ref.size(), ref.Smallest(),
              ref.Greatest());

  // Screen with TW-Sim-Search.
  const SearchResult result = engine.Search(ref, epsilon);
  std::printf("stocks within $%.2f warping distance: %zu\n", epsilon,
              result.matches.size());
  for (const SequenceId id : result.matches) {
    if (id == reference) {
      continue;
    }
    const Sequence& s = engine.dataset()[static_cast<size_t>(id)];
    std::printf("  stock #%-4lld  %4zu days   $%7.2f .. $%7.2f\n",
                static_cast<long long>(id), s.size(), s.Smallest(),
                s.Greatest());
  }

  // How each strategy would have priced this screen (Figure 3 in
  // miniature).
  std::printf("\nmethod comparison for this query:\n");
  std::printf("  %-14s %12s %12s %14s\n", "method", "candidates",
              "page_reads", "elapsed_ms(sim)");
  for (const MethodKind kind :
       {MethodKind::kTwSimSearch, MethodKind::kLbScan,
        MethodKind::kNaiveScan, MethodKind::kStFilter}) {
    const SearchResult r = engine.SearchWith(kind, ref, epsilon);
    std::printf("  %-14s %12zu %12llu %14.1f\n", MethodKindName(kind),
                r.num_candidates,
                static_cast<unsigned long long>(r.cost.io.TotalPageReads()),
                engine.ElapsedMillis(r.cost));
  }
  return 0;
}
