// Subsequence pattern finder: the paper's §6 extension. Index the feature
// vectors of sliding windows and locate every place a short query pattern
// occurs inside long sequences, under time warping.
//
//   $ ./subsequence_finder

#include <cstdio>

#include "core/subsequence_index.h"
#include "sequence/query_workload.h"
#include "sequence/random_walk_generator.h"

int main() {
  using namespace warpindex;

  // 30 long random walks.
  RandomWalkOptions workload;
  workload.num_sequences = 30;
  workload.min_length = 500;
  workload.max_length = 500;
  const Dataset dataset = GenerateRandomWalkDataset(workload);

  // Index all windows of 20..30 elements.
  SubsequenceIndexOptions options;
  options.min_window = 20;
  options.max_window = 30;
  const SubsequenceIndex index(&dataset, options);
  std::printf("indexed %zu windows (lengths %zu..%zu) over %zu sequences "
              "in a %zu-page R-tree\n\n",
              index.num_windows(), options.min_window, options.max_window,
              dataset.size(), index.rtree().node_count());

  // The pattern: a real window from sequence #4, perturbed.
  const Sequence pattern =
      PerturbSequence(dataset[4].Slice(123, 25), /*seed=*/5);
  const double epsilon = 0.08;

  SearchCost cost;
  const auto matches = index.Search(pattern, epsilon, &cost);
  std::printf("pattern: 25 elements near sequence #4 offset 123\n");
  std::printf("windows with D_tw <= %.2f: %zu\n", epsilon, matches.size());
  size_t shown = 0;
  for (const SubsequenceMatch& m : matches) {
    std::printf("  seq #%-3lld offset %-4zu len %-3zu dtw=%.4f\n",
                static_cast<long long>(m.sequence_id), m.offset, m.length,
                m.distance);
    if (++shown == 15 && matches.size() > 15) {
      std::printf("  ... (%zu more overlapping hits)\n",
                  matches.size() - shown);
      break;
    }
  }
  std::printf("\nindex nodes visited: %llu; DTW cells in post-check: %llu\n",
              static_cast<unsigned long long>(cost.index_nodes),
              static_cast<unsigned long long>(cost.dtw_cells));
  std::printf("(overlapping hits cluster around the true location — each "
              "indexed window is a separate record.)\n");
  return 0;
}
