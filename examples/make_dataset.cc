// make_dataset: generate the paper's workloads as CSV (for warpindex_cli
// or external tools) or in the library's binary format.
//
//   $ ./make_dataset --kind stock --out sp500_like.csv
//   $ ./make_dataset --kind walk --n 10000 --len 1000 --out walks.csv
//   $ ./make_dataset --kind walk --format binary --out walks.wids

#include <cstdio>
#include <string>

#include "common/flags.h"
#include "sequence/dataset_io.h"
#include "sequence/random_walk_generator.h"
#include "sequence/stock_generator.h"

namespace warpindex {
namespace {

int Run(int argc, char** argv) {
  std::string kind = "stock";
  std::string format = "csv";
  std::string out = "dataset.csv";
  int64_t n = 545;
  int64_t min_len = 1000;
  int64_t max_len = 0;  // 0 = same as --len
  int64_t seed = 2001;

  FlagSet flags("make_dataset");
  flags.AddString("kind", &kind, "stock | walk");
  flags.AddString("format", &format, "csv | binary");
  flags.AddString("out", &out, "output path");
  flags.AddInt64("n", &n, "number of sequences");
  flags.AddInt64("len", &min_len, "walk length (sets both bounds)");
  flags.AddInt64("max_len", &max_len,
                 "upper length bound for walks (0 = same as --len)");
  flags.AddInt64("seed", &seed, "generator seed");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }

  Dataset dataset;
  if (kind == "stock") {
    StockDataOptions options;
    options.num_sequences = static_cast<size_t>(n);
    options.seed = static_cast<uint64_t>(seed);
    dataset = GenerateStockDataset(options);
  } else if (kind == "walk") {
    RandomWalkOptions options;
    options.num_sequences = static_cast<size_t>(n);
    options.min_length = static_cast<size_t>(min_len);
    options.max_length =
        static_cast<size_t>(max_len >= min_len ? max_len : min_len);
    options.seed = static_cast<uint64_t>(seed);
    dataset = GenerateRandomWalkDataset(options);
  } else {
    std::fprintf(stderr, "unknown --kind '%s'\n", kind.c_str());
    return 1;
  }

  Status status;
  if (format == "csv") {
    status = SaveDatasetToCsv(out, dataset);
  } else if (format == "binary") {
    status = dataset.SaveToFile(out);
  } else {
    std::fprintf(stderr, "unknown --format '%s'\n", format.c_str());
    return 1;
  }
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  const DatasetStats stats = dataset.ComputeStats();
  std::printf("wrote %zu sequences (%zu elements, lengths %zu..%zu) to %s\n",
              stats.num_sequences, stats.total_elements, stats.min_length,
              stats.max_length, out.c_str());
  return 0;
}

}  // namespace
}  // namespace warpindex

int main(int argc, char** argv) { return warpindex::Run(argc, argv); }
