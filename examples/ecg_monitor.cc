// ECG beat matching: the paper cites electrocardiogram analysis as a
// classic consumer of the time-warping distance (§1) — heart rates vary,
// so two recordings of the same beat morphology differ by stretching along
// the time axis, which DTW absorbs.
//
// This example synthesizes a library of single-beat recordings at varying
// heart rates (different lengths!), some with a morphology anomaly, and
// screens the library against a clean reference beat. It also shows
// best-first kNN on the feature index followed by exact-DTW re-ranking.
//
//   $ ./ecg_monitor

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/prng.h"
#include "core/engine.h"

namespace {

using namespace warpindex;

// A stylized PQRST beat sampled with `len` points: baseline, a sharp QRS
// spike, and a T wave. `anomalous` doubles the T wave (a crude ST-change
// stand-in).
Sequence MakeBeat(size_t len, bool anomalous, Prng* prng) {
  Sequence s;
  s.Reserve(len);
  const double noise = 0.02;
  for (size_t i = 0; i < len; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(len - 1);
    double v = 0.0;
    // P wave around t=0.2.
    v += 0.15 * std::exp(-std::pow((t - 0.2) / 0.04, 2.0));
    // QRS complex around t=0.45.
    v -= 0.2 * std::exp(-std::pow((t - 0.42) / 0.015, 2.0));
    v += 1.0 * std::exp(-std::pow((t - 0.45) / 0.02, 2.0));
    v -= 0.25 * std::exp(-std::pow((t - 0.49) / 0.015, 2.0));
    // T wave around t=0.7.
    const double t_amp = anomalous ? 0.7 : 0.3;
    v += t_amp * std::exp(-std::pow((t - 0.7) / 0.06, 2.0));
    s.Append(v + prng->UniformDouble(-noise, noise));
  }
  return s;
}

}  // namespace

int main() {
  // Library: 400 beats at heart rates 50..120 bpm (so lengths differ by
  // more than 2x), 10% with the anomalous morphology.
  Prng prng(7);
  Dataset library;
  std::vector<bool> is_anomalous;
  for (int i = 0; i < 400; ++i) {
    const size_t len = static_cast<size_t>(prng.UniformInt(90, 220));
    const bool anomalous = prng.NextDouble() < 0.1;
    is_anomalous.push_back(anomalous);
    library.Add(MakeBeat(len, anomalous, &prng));
  }
  const Engine engine(std::move(library), EngineOptions{});

  // Reference: a clean beat at a rate present nowhere in the library.
  Prng query_prng(99);
  const Sequence reference = MakeBeat(137, /*anomalous=*/false, &query_prng);
  const double epsilon = 0.15;  // millivolt-scale tolerance

  const SearchResult result = engine.Search(reference, epsilon);
  size_t normal = 0;
  size_t anomalies_matched = 0;
  for (const SequenceId id : result.matches) {
    if (is_anomalous[static_cast<size_t>(id)]) {
      ++anomalies_matched;
    } else {
      ++normal;
    }
  }
  std::printf("library: 400 beats (varying heart rate, ~10%% anomalous)\n");
  std::printf("reference beat: clean morphology, 137 samples\n\n");
  std::printf("within eps=%.2f of the reference: %zu beats "
              "(%zu normal, %zu anomalous)\n",
              epsilon, result.matches.size(), normal, anomalies_matched);
  std::printf("candidates the index had to post-check: %zu of %zu\n",
              result.num_candidates, engine.dataset().size());
  std::printf("(every beat shares First/Last ~ baseline and Greatest ~ R "
              "peak, so the paper's 4-tuple features barely discriminate "
              "normalized ECG morphologies — the exact-DTW post-check does "
              "the real work here. On raw-amplitude data like stock prices "
              "the features filter hard; see stock_screener.)\n\n");

  // kNN on the feature index + exact re-rank: the 5 most similar beats.
  const auto feature = ExtractFeature(reference);
  const auto arr = feature.AsPoint();
  const auto knn = engine.feature_index().rtree().NearestNeighbors(
      Point::FromArray(arr.data(), kFeatureDims), 25);
  const Dtw dtw(DtwOptions::Linf());
  std::vector<std::pair<double, SequenceId>> ranked;
  for (const auto& neighbor : knn) {
    const Sequence beat = engine.store().Fetch(neighbor.record_id);
    ranked.emplace_back(dtw.Distance(beat, reference).distance,
                        neighbor.record_id);
  }
  std::sort(ranked.begin(), ranked.end());
  std::printf("top-5 beats by exact DTW (re-ranked from 25 feature-space "
              "neighbours):\n");
  for (size_t i = 0; i < 5 && i < ranked.size(); ++i) {
    const SequenceId id = ranked[i].second;
    std::printf("  #%lld  dtw=%.4f  %zu samples  %s\n",
                static_cast<long long>(id), ranked[i].first,
                engine.dataset()[static_cast<size_t>(id)].size(),
                is_anomalous[static_cast<size_t>(id)] ? "ANOMALOUS"
                                                      : "normal");
  }
  std::printf("\nnote: anomalous beats score far above eps because their T "
              "wave differs in *amplitude*, which no time warping can "
              "absorb.\n");
  return 0;
}
