// Quickstart: build an engine over a small sequence database and run a
// tolerance query with the paper's TW-Sim-Search (Algorithm 1).
//
//   $ ./quickstart
//
// Walks through: dataset creation, engine construction (paged store +
// 4-d feature R-tree), query perturbation, search, and cost inspection.

#include <cstdio>

#include "core/engine.h"
#include "sequence/query_workload.h"
#include "sequence/random_walk_generator.h"

int main() {
  using namespace warpindex;

  // 1. A database of 1,000 random-walk sequences (the paper's synthetic
  //    workload: s_i = s_{i-1} + U[-0.1, 0.1], s_1 in [1, 10]).
  RandomWalkOptions workload;
  workload.num_sequences = 1000;
  workload.min_length = 100;
  workload.max_length = 150;  // different lengths: DTW territory
  Dataset dataset = GenerateRandomWalkDataset(workload);
  const DatasetStats stats = dataset.ComputeStats();
  std::printf("database: %zu sequences, lengths %zu..%zu (avg %.0f)\n",
              stats.num_sequences, stats.min_length, stats.max_length,
              stats.avg_length);

  // 2. The engine owns the paged sequence store and the feature index.
  const Engine engine(std::move(dataset), EngineOptions{});
  std::printf("index: %zu R-tree pages (%zu bytes) over %zu features\n\n",
              engine.feature_index().rtree().node_count(),
              engine.feature_index().rtree().TotalBytes(),
              engine.feature_index().size());

  // 3. A query: sequence #7, element-wise perturbed (the paper's recipe).
  const Sequence query = PerturbSequence(engine.dataset()[7], /*seed=*/42);
  const double epsilon = 0.1;

  // 4. TW-Sim-Search: range query on the feature index, then exact DTW.
  const SearchResult result = engine.Search(query, epsilon);
  std::printf("query (perturbed copy of #7), eps = %.2f:\n", epsilon);
  std::printf("  candidates after index filtering: %zu of %zu\n",
              result.num_candidates, engine.dataset().size());
  std::printf("  matches (D_tw <= eps):            %zu\n",
              result.matches.size());
  for (const SequenceId id : result.matches) {
    std::printf("    sequence #%lld  %s\n", static_cast<long long>(id),
                engine.dataset()[static_cast<size_t>(id)].ToString(5).c_str());
  }

  // 5. Cost accounting: measured CPU plus the simulated 2001-era disk.
  std::printf("\ncost: %.2f ms CPU, %llu page reads, %.1f ms simulated "
              "elapsed\n",
              result.cost.wall_ms,
              static_cast<unsigned long long>(
                  result.cost.io.TotalPageReads()),
              engine.ElapsedMillis(result.cost));

  // 6. Cross-check against the exact sequential scan: identical answers.
  const SearchResult truth =
      engine.SearchWith(MethodKind::kNaiveScan, query, epsilon);
  std::printf("\nnaive scan agrees: %s (%zu matches, %.1f ms simulated)\n",
              truth.matches == result.matches ? "yes" : "NO (bug!)",
              truth.matches.size(), engine.ElapsedMillis(truth.cost));
  return 0;
}
