// warpindex_cli: load a sequence database (CSV or a built-in synthetic
// corpus), build the index, and answer tolerance or kNN queries from the
// command line.
//
//   # range query: which synthetic stocks track stock 17 within $4?
//   $ ./warpindex_cli --dataset stock --query_id 17 --eps 4
//
//   # kNN over your own CSV (one sequence per line):
//   $ ./warpindex_cli --data my_series.csv --query_file pattern.csv --k 5
//
//   # compare all four methods on the same query:
//   $ ./warpindex_cli --dataset walk --query_id 3 --eps 0.1 --compare

#include <cstdio>
#include <string>

#include "common/flags.h"
#include "core/engine.h"
#include "sequence/dataset_io.h"
#include "sequence/query_workload.h"
#include "sequence/random_walk_generator.h"
#include "sequence/stock_generator.h"

namespace warpindex {
namespace {

int Run(int argc, char** argv) {
  std::string dataset_kind = "stock";
  std::string data_path;
  std::string query_path;
  int64_t query_id = 0;
  bool perturb = true;
  double eps = -1.0;
  int64_t k = 0;
  bool compare = false;
  int64_t seed = 1;

  FlagSet flags("warpindex_cli");
  flags.AddString("dataset", &dataset_kind,
                  "built-in corpus when --data is absent: stock | walk");
  flags.AddString("data", &data_path, "CSV file with one sequence per line");
  flags.AddString("query_file", &query_path,
                  "CSV file whose first sequence is the query");
  flags.AddInt64("query_id", &query_id,
                 "data sequence to use as the query when --query_file is "
                 "absent");
  flags.AddBool("perturb", &perturb,
                "perturb the --query_id sequence (paper's workload recipe) "
                "instead of querying the exact copy");
  flags.AddDouble("eps", &eps, "tolerance for a range query (omit for kNN)");
  flags.AddInt64("k", &k, "neighbor count for a kNN query");
  flags.AddBool("compare", &compare,
                "also run the scan and ST-Filter baselines");
  flags.AddInt64("seed", &seed, "perturbation seed");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  if (eps < 0.0 && k <= 0) {
    std::fprintf(stderr, "pass --eps <tol> for a range query or --k <n> "
                         "for kNN\n");
    return 1;
  }

  // Load or synthesize the database.
  Dataset dataset;
  if (!data_path.empty()) {
    const Status status = LoadDatasetFromCsv(data_path, &dataset);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  } else if (dataset_kind == "stock") {
    dataset = GenerateStockDataset(StockDataOptions{});
  } else if (dataset_kind == "walk") {
    RandomWalkOptions rw;
    rw.num_sequences = 1000;
    rw.min_length = 100;
    rw.max_length = 200;
    dataset = GenerateRandomWalkDataset(rw);
  } else {
    std::fprintf(stderr, "unknown --dataset '%s'\n", dataset_kind.c_str());
    return 1;
  }
  if (dataset.empty()) {
    std::fprintf(stderr, "empty dataset\n");
    return 1;
  }
  const DatasetStats stats = dataset.ComputeStats();
  std::printf("database: %zu sequences, lengths %zu..%zu (avg %.0f)\n",
              stats.num_sequences, stats.min_length, stats.max_length,
              stats.avg_length);

  EngineOptions options;
  options.build_st_filter = compare;
  const Engine engine(std::move(dataset), options);

  // Build the query.
  Sequence query;
  if (!query_path.empty()) {
    Dataset queries;
    const Status status = LoadDatasetFromCsv(query_path, &queries);
    if (!status.ok() || queries.empty()) {
      std::fprintf(stderr, "cannot load query: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    query = queries[0];
  } else {
    if (query_id < 0 ||
        static_cast<size_t>(query_id) >= engine.dataset().size()) {
      std::fprintf(stderr, "--query_id out of range\n");
      return 1;
    }
    const Sequence& base =
        engine.dataset()[static_cast<size_t>(query_id)];
    query = perturb
                ? PerturbSequence(base, static_cast<uint64_t>(seed))
                : base;
    std::printf("query: %s copy of sequence #%lld (%zu elements)\n",
                perturb ? "perturbed" : "exact",
                static_cast<long long>(query_id), query.size());
  }

  if (k > 0) {
    const KnnResult result = engine.SearchKnn(query, static_cast<size_t>(k));
    std::printf("\n%zu nearest sequences under D_tw:\n",
                result.neighbors.size());
    for (const KnnMatch& n : result.neighbors) {
      std::printf("  #%-6lld dtw=%.5f\n", static_cast<long long>(n.id),
                  n.distance);
    }
    std::printf("(refined %zu candidates; %.2f ms CPU, %.1f ms simulated "
                "elapsed)\n",
                result.num_refined, result.cost.wall_ms,
                engine.ElapsedMillis(result.cost));
  }

  if (eps >= 0.0) {
    const SearchResult result = engine.Search(query, eps);
    std::printf("\nsequences with D_tw <= %.4f: %zu (from %zu candidates)\n",
                eps, result.matches.size(), result.num_candidates);
    for (const SequenceId id : result.matches) {
      std::printf("  #%lld\n", static_cast<long long>(id));
    }
    std::printf("(%.2f ms CPU, %.1f ms simulated elapsed)\n",
                result.cost.wall_ms, engine.ElapsedMillis(result.cost));
    if (compare) {
      std::printf("\n%-14s %12s %14s\n", "method", "candidates",
                  "elapsed_ms(sim)");
      for (const MethodKind kind :
           {MethodKind::kTwSimSearch, MethodKind::kLbScan,
            MethodKind::kNaiveScan, MethodKind::kStFilter}) {
        const SearchResult r = engine.SearchWith(kind, query, eps);
        std::printf("%-14s %12zu %14.1f\n", MethodKindName(kind),
                    r.num_candidates, engine.ElapsedMillis(r.cost));
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace warpindex

int main(int argc, char** argv) { return warpindex::Run(argc, argv); }
