// warpindex_cli: load a sequence database (CSV or a built-in synthetic
// corpus), build the index, and answer tolerance or kNN queries from the
// command line.
//
//   # range query: which synthetic stocks track stock 17 within $4?
//   $ ./warpindex_cli --dataset stock --query_id 17 --eps 4
//
//   # kNN over your own CSV (one sequence per line):
//   $ ./warpindex_cli --data my_series.csv --query_file pattern.csv --k 5
//
//   # compare all four methods on the same query:
//   $ ./warpindex_cli --dataset walk --query_id 3 --eps 0.1 --compare
//
//   # trace a query (one JSON span per line) and print the span tree:
//   $ ./warpindex_cli --dataset stock --query_id 17 --eps 4 --trace_out=q.jsonl
//
//   # run a demo workload and print the metrics snapshot:
//   $ ./warpindex_cli stats
//
//   # batch-serve a query workload over a thread pool:
//   $ ./warpindex_cli serve --dataset stock --threads 4 --eps 4
//   $ ./warpindex_cli serve --data my_series.csv --queries patterns.csv \
//         --threads 8 --eps 0.5
//
//   # serve a writable ingest engine: stream inserts/deletes through the
//   # pool while the batches run, verify against a from-scratch engine:
//   $ ./warpindex_cli serve --ingest --shards 4 --ingest_writes 2000
//
//   # serve with the live introspection server and scrape it:
//   $ ./warpindex_cli serve --dataset stock --http_port 8080 --linger_s 600 &
//   $ ./warpindex_cli inspect --http_port 8080 --endpoint /statusz
//   $ curl -s localhost:8080/metrics
//
//   # multi-process serving plane (docs/NETWORKING.md): save a sharded
//   # database, serve each shard in its own process, scatter-gather
//   # through a router:
//   $ ./warpindex_cli save --out /tmp/db --dataset stock --shards 2
//   $ ./warpindex_cli shard-serve --db /tmp/db --shards 0 --port 18091 &
//   $ ./warpindex_cli shard-serve --db /tmp/db --shards 1 --port 18092 &
//   $ ./warpindex_cli route --groups '127.0.0.1:18091;127.0.0.1:18092' \
//         --port 18090 --http_port 18080 &
//   $ ./warpindex_cli net-query --port 18090 --eps 4 --query_id 17 --k 3

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cache/semantic_cache.h"
#include "common/flags.h"
#include "common/stats.h"
#include "core/engine.h"
#include "exec/introspection.h"
#include "ingest/ingest_engine.h"
#include "exec/query_executor.h"
#include "obs/profiler.h"
#include "net/fleet.h"
#include "net/router.h"
#include "net/serialize.h"
#include "net/shard_server.h"
#include "net/wire_client.h"
#include "net/wire_server.h"
#include "obs/exporters.h"
#include "obs/flight_recorder.h"
#include "obs/httpd.h"
#include "obs/slow_log.h"
#include "obs/trace_store.h"
#include "sequence/dataset_io.h"
#include "sequence/query_workload.h"
#include "sequence/random_walk_generator.h"
#include "sequence/stock_generator.h"
#include "shard/shard_io.h"
#include "shard/sharded_engine.h"

namespace warpindex {
namespace {

// Loads --data CSV when given, else synthesizes the named built-in corpus.
bool LoadDatabase(const std::string& data_path,
                  const std::string& dataset_kind, Dataset* dataset) {
  if (!data_path.empty()) {
    const Status status = LoadDatasetFromCsv(data_path, dataset);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return false;
    }
    return true;
  }
  if (dataset_kind == "stock") {
    *dataset = GenerateStockDataset(StockDataOptions{});
    return true;
  }
  if (dataset_kind == "walk") {
    RandomWalkOptions rw;
    rw.num_sequences = 1000;
    rw.min_length = 100;
    rw.max_length = 200;
    *dataset = GenerateRandomWalkDataset(rw);
    return true;
  }
  std::fprintf(stderr, "unknown --dataset '%s'\n", dataset_kind.c_str());
  return false;
}

bool ParseMethod(const std::string& name, MethodKind* kind) {
  if (name == "tw") {
    *kind = MethodKind::kTwSimSearch;
  } else if (name == "naive") {
    *kind = MethodKind::kNaiveScan;
  } else if (name == "lb") {
    *kind = MethodKind::kLbScan;
  } else if (name == "st") {
    *kind = MethodKind::kStFilter;
  } else if (name == "cascade") {
    *kind = MethodKind::kTwSimSearchCascade;
  } else {
    std::fprintf(stderr,
                 "unknown --method '%s' (tw | naive | lb | st | cascade)\n",
                 name.c_str());
    return false;
  }
  return true;
}

bool ParsePlan(const std::string& name, PlanMode* mode) {
  if (name == "paper") {
    *mode = PlanMode::kPaper;
  } else if (name == "cascade") {
    *mode = PlanMode::kCascade;
  } else if (name == "auto") {
    *mode = PlanMode::kAuto;
  } else {
    std::fprintf(stderr, "unknown --plan '%s' (paper | cascade | auto)\n",
                 name.c_str());
    return false;
  }
  return true;
}

// Per-stage pruning summary of one or many queries (--method cascade, or
// tw with the LB_Yi cascade); silent when no stage recorded counters.
void PrintPruneTable(const StageCounters& prunes) {
  if (prunes.empty()) {
    return;
  }
  std::printf("\nper-stage pruning:\n");
  std::printf("  %-22s %12s %12s %9s\n", "stage", "in", "pruned",
              "pruned%");
  for (const auto& [stage, counts] : prunes.entries()) {
    const double pct =
        counts.in > 0
            ? 100.0 * static_cast<double>(counts.pruned) /
                  static_cast<double>(counts.in)
            : 0.0;
    std::printf("  %-22s %12llu %12llu %8.1f%%\n", stage.c_str(),
                static_cast<unsigned long long>(counts.in),
                static_cast<unsigned long long>(counts.pruned), pct);
  }
}

// Any serving flavor behind one pointer: a single Engine (--shards=1),
// a ShardedEngine over K per-shard engines, or a writable IngestEngine
// (`serve --ingest`). The EngineLike interface is all the executor and
// the query paths need.
struct ServingEngine {
  std::unique_ptr<Engine> single;
  std::unique_ptr<ShardedEngine> sharded;
  std::unique_ptr<IngestEngine> ingest;

  const EngineLike* get() const {
    if (ingest != nullptr) {
      return ingest.get();
    }
    return single != nullptr ? static_cast<const EngineLike*>(single.get())
                             : sharded.get();
  }
};

// Builds the serving engine from parsed --shards/--partition flags.
// Consumes `dataset`.
bool BuildServingEngine(Dataset dataset, const EngineOptions& options,
                        int64_t shards, const std::string& partition,
                        FlightRecorder* flight_recorder,
                        ServingEngine* out) {
  if (shards < 1) {
    std::fprintf(stderr, "--shards must be >= 1\n");
    return false;
  }
  if (shards == 1) {
    out->single = std::make_unique<Engine>(std::move(dataset), options);
    return true;
  }
  ShardedEngineOptions sharded_options;
  sharded_options.num_shards = static_cast<size_t>(shards);
  if (!ParsePartitionerKind(partition, &sharded_options.partitioner)) {
    std::fprintf(stderr, "unknown --partition '%s' (hash | range)\n",
                 partition.c_str());
    return false;
  }
  sharded_options.engine = options;
  sharded_options.flight_recorder = flight_recorder;
  out->sharded = std::make_unique<ShardedEngine>(std::move(dataset),
                                                 sharded_options);
  return true;
}

// Set by SIGINT/SIGTERM so the --linger_s wait exits cleanly (CI smoke
// kills the backgrounded server with TERM and expects exit 0).
volatile std::sig_atomic_t g_stop_requested = 0;

void HandleStopSignal(int /*signum*/) { g_stop_requested = 1; }

// `serve` subcommand: batch-mode serving path. Loads a database, builds
// the index once, then runs a query workload through the concurrent
// QueryExecutor and reports throughput and latency percentiles. With
// --profile_out support: samples the whole command with the SIGPROF
// profiler (obs/profiler.h) and writes the profile on any exit path.
// The extension picks the format: .json = speedscope, anything else =
// collapsed-stack text for flamegraph.pl / inferno.
class ScopedCliProfile {
 public:
  ScopedCliProfile(std::string path, int hz) : path_(std::move(path)) {
    if (path_.empty()) {
      return;
    }
    ProfileOptions options;
    options.hz = hz;
    const Status status = CpuProfiler::Global().Start(options);
    if (!status.ok()) {
      std::fprintf(stderr, "--profile_out: %s\n", status.ToString().c_str());
      return;
    }
    armed_ = true;
  }

  ~ScopedCliProfile() {
    if (!armed_) {
      return;
    }
    Profile profile;
    const Status status = CpuProfiler::Global().Stop(&profile);
    if (!status.ok()) {
      std::fprintf(stderr, "--profile_out: %s\n", status.ToString().c_str());
      return;
    }
    const bool speedscope =
        path_.size() >= 5 &&
        path_.compare(path_.size() - 5, 5, ".json") == 0;
    const std::string body =
        speedscope ? profile.SpeedscopeJson() : profile.FoldedText();
    std::FILE* file = std::fopen(path_.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "--profile_out: cannot write %s\n",
                   path_.c_str());
      return;
    }
    std::fwrite(body.data(), 1, body.size(), file);
    std::fclose(file);
    std::printf("wrote CPU profile to %s (%llu samples at %d Hz, %s)\n",
                path_.c_str(),
                static_cast<unsigned long long>(profile.samples), profile.hz,
                speedscope ? "speedscope JSON" : "collapsed stacks");
  }

  ScopedCliProfile(const ScopedCliProfile&) = delete;
  ScopedCliProfile& operator=(const ScopedCliProfile&) = delete;

 private:
  std::string path_;
  bool armed_ = false;
};

// --http_port it also runs the live introspection server (/metrics,
// /statusz, /slowlog, /flightrecorder; see docs/OBSERVABILITY.md) and
// --linger_s keeps it scrapeable after the batches finish.
int RunServe(int argc, char** argv) {
  std::string dataset_kind = "stock";
  std::string data_path;
  std::string queries_path;
  int64_t num_queries = 100;
  double eps = -1.0;
  std::string method = "tw";
  std::string plan = "cascade";
  int64_t threads = 4;
  int64_t repeat = 1;
  int64_t seed = 1;
  bool show_metrics = false;
  int64_t http_port = -1;
  double linger_s = 0.0;
  int64_t flight_capacity = 256;
  int64_t slow_worst_k = 32;
  int64_t shards = 1;
  std::string partition = "hash";
  int64_t trace_capacity = 64;
  double trace_slow_ms = 5.0;
  double trace_sample = 0.05;
  std::string trace_events_out;
  bool ingest = false;
  int64_t ingest_writes = 2000;
  int64_t ingest_delete_every = 7;
  double ingest_rate = 0.0;
  int64_t ingest_compact_entries = 128;
  std::string profile_out;
  int64_t profile_hz = 99;
  bool use_cache = false;
  int64_t cache_mb = 64;

  FlagSet flags("warpindex_cli serve");
  flags.AddString("dataset", &dataset_kind,
                  "built-in corpus when --data is absent: stock | walk");
  flags.AddString("data", &data_path, "CSV file with one sequence per line");
  flags.AddString("queries", &queries_path,
                  "CSV file with one query per line; omitted = generate "
                  "--num_queries perturbed-copy queries");
  flags.AddInt64("num_queries", &num_queries,
                 "generated workload size when --queries is absent");
  flags.AddDouble("eps", &eps, "tolerance for every range query");
  flags.AddString("method", &method, "tw | naive | lb | st | cascade");
  flags.AddString("plan", &plan,
                  "--method cascade stage planning: paper | cascade | auto");
  flags.AddInt64("threads", &threads, "executor worker count");
  flags.AddInt64("repeat", &repeat, "times to run the whole batch");
  flags.AddInt64("seed", &seed, "generated-workload seed");
  flags.AddBool("metrics", &show_metrics,
                "print the metrics snapshot (Prometheus text) afterwards");
  flags.AddInt64("http_port", &http_port,
                 "run the introspection HTTP server on 127.0.0.1:<port> "
                 "(0 = ephemeral; negative = disabled)");
  flags.AddDouble("linger_s", &linger_s,
                  "keep the HTTP server scrapeable this many seconds after "
                  "the batches finish (SIGINT/SIGTERM ends it early)");
  flags.AddInt64("flight_capacity", &flight_capacity,
                 "flight-recorder ring size (last N completed queries)");
  flags.AddInt64("slow_worst_k", &slow_worst_k,
                 "slow-query log size (worst K queries by latency)");
  flags.AddInt64("shards", &shards,
                 "partition the database across this many per-shard "
                 "engines with scatter-gather fan-out (1 = unsharded)");
  flags.AddString("partition", &partition,
                  "--shards>1 partitioner: hash | range (range enables "
                  "feature-MBR shard pruning on clustered data)");
  flags.AddInt64("trace_capacity", &trace_capacity,
                 "tail-sampled trace store size behind /tracez "
                 "(0 = tracing disabled)");
  flags.AddDouble("trace_slow_ms", &trace_slow_ms,
                  "always keep traces at least this slow (ms)");
  flags.AddDouble("trace_sample", &trace_sample,
                  "probability of keeping an otherwise-unremarkable trace "
                  "(1 = keep all)");
  flags.AddString("trace_events_out", &trace_events_out,
                  "write the retained traces as Chrome/Perfetto "
                  "trace-event JSON to this file after the batches");
  flags.AddBool("ingest", &ingest,
                "serve from a writable IngestEngine and stream "
                "--ingest_writes inserts/deletes concurrently with the "
                "query batches (see docs/INGEST.md)");
  flags.AddInt64("ingest_writes", &ingest_writes,
                 "--ingest: inserts streamed while the batches run");
  flags.AddInt64("ingest_delete_every", &ingest_delete_every,
                 "--ingest: delete one earlier insert every N inserts "
                 "(0 = no deletes)");
  flags.AddDouble("ingest_rate", &ingest_rate,
                  "--ingest: throttle writes to this many per second "
                  "(0 = unthrottled)");
  flags.AddInt64("ingest_compact_entries", &ingest_compact_entries,
                 "--ingest: delta entries per shard that trigger a "
                 "background compaction");
  flags.AddString("profile_out", &profile_out,
                  "sample the whole run with the SIGPROF CPU profiler and "
                  "write the profile here (.json = speedscope, otherwise "
                  "collapsed stacks)");
  flags.AddInt64("profile_hz", &profile_hz,
                 "--profile_out sampling rate per CPU-second");
  flags.AddBool("cache", &use_cache,
                "semantic result cache in front of the executor "
                "(ε-subsumption reuse; see docs/CACHING.md)");
  flags.AddInt64("cache_mb", &cache_mb, "--cache byte budget (MiB)");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  ScopedCliProfile profile(profile_out, static_cast<int>(profile_hz));
  if (ingest && (ingest_writes < 0 || ingest_compact_entries <= 0)) {
    std::fprintf(stderr,
                 "--ingest_writes must be >= 0 and "
                 "--ingest_compact_entries positive\n");
    return 1;
  }
  if (flight_capacity <= 0 || slow_worst_k <= 0) {
    std::fprintf(stderr,
                 "--flight_capacity and --slow_worst_k must be positive\n");
    return 1;
  }
  if (eps < 0.0) {
    eps = dataset_kind == "stock" && data_path.empty() ? 4.0 : 0.1;
  }
  MethodKind kind;
  if (!ParseMethod(method, &kind)) {
    return 1;
  }
  PlanMode plan_mode;
  if (!ParsePlan(plan, &plan_mode)) {
    return 1;
  }

  Dataset dataset;
  if (!LoadDatabase(data_path, dataset_kind, &dataset) || dataset.empty()) {
    return 1;
  }

  // Build the workload before the dataset moves into the engine (a
  // sharded engine splits it and keeps no global copy).
  std::vector<Sequence> queries;
  if (!queries_path.empty()) {
    Dataset query_set;
    const Status status = LoadDatasetFromCsv(queries_path, &query_set);
    if (!status.ok() || query_set.empty()) {
      std::fprintf(stderr, "cannot load queries: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    for (size_t i = 0; i < query_set.size(); ++i) {
      queries.push_back(query_set[i]);
    }
  } else {
    QueryWorkloadOptions workload;
    workload.num_queries = static_cast<size_t>(num_queries);
    workload.seed = static_cast<uint64_t>(seed);
    queries = GenerateQueryWorkload(dataset, workload);
  }

  std::vector<QueryRequest> requests;
  requests.reserve(queries.size());
  for (Sequence& q : queries) {
    requests.push_back(QueryRequest{kind, std::move(q), eps});
  }

  // Always-on flight recorder and slow-query log: every completed query
  // lands in both, whether or not the HTTP server is up.
  FlightRecorderOptions recorder_options;
  recorder_options.capacity = static_cast<size_t>(flight_capacity);
  FlightRecorder flight_recorder(recorder_options);
  SlowQueryLog slow_log(static_cast<size_t>(slow_worst_k));

  // Tail-sampled trace retention behind /tracez (and the trace-event
  // export): the executor traces queries and the store keeps the slow /
  // errored / shard-skewed / sampled ones.
  std::unique_ptr<TraceStore> trace_store;
  if (trace_capacity > 0) {
    TraceStoreOptions trace_options;
    trace_options.capacity = static_cast<size_t>(trace_capacity);
    trace_options.slow_ms = trace_slow_ms;
    trace_options.sample_probability = trace_sample;
    trace_store = std::make_unique<TraceStore>(trace_options);
  }

  EngineOptions options;
  options.build_st_filter = kind == MethodKind::kStFilter;
  options.cascade_planner.mode = plan_mode;
  // --ingest verification rebuilds a from-scratch reference over the
  // final live set, so keep the base rows before the dataset moves.
  Dataset ingest_base;
  if (ingest) {
    ingest_base = dataset;
  }
  const size_t base_size = dataset.size();
  ServingEngine engine;
  if (ingest) {
    if (shards < 1) {
      std::fprintf(stderr, "--shards must be >= 1\n");
      return 1;
    }
    IngestOptions ingest_options;
    ingest_options.num_shards = static_cast<size_t>(shards);
    if (!ParsePartitionerKind(partition, &ingest_options.partitioner)) {
      std::fprintf(stderr, "unknown --partition '%s' (hash | range)\n",
                   partition.c_str());
      return 1;
    }
    ingest_options.engine = options;
    ingest_options.compact_max_delta_entries =
        static_cast<size_t>(ingest_compact_entries);
    ingest_options.compact_max_tombstones =
        static_cast<size_t>(ingest_compact_entries);
    ingest_options.trace_store = trace_store.get();
    engine.ingest = std::make_unique<IngestEngine>(std::move(dataset),
                                                   ingest_options);
  } else if (!BuildServingEngine(std::move(dataset), options, shards,
                                 partition, &flight_recorder, &engine)) {
    return 1;
  }

  // Optional executor-tier semantic cache. Registers its
  // warpindex_cache_executor_* series in the serving engine's registry
  // so /metrics and the stats epilogue show the same names. With
  // --ingest every write bumps DataVersion(), so cached entries from
  // before the write are invalid by construction.
  std::unique_ptr<SemanticCache> cache;
  if (use_cache) {
    SemanticCacheOptions cache_options;
    cache_options.max_bytes = static_cast<size_t>(cache_mb) << 20;
    cache_options.metrics = &engine.get()->metrics();
    cache = std::make_unique<SemanticCache>(cache_options);
  }

  QueryExecutorOptions executor_options;
  executor_options.num_threads = static_cast<size_t>(threads);
  executor_options.flight_recorder = &flight_recorder;
  executor_options.slow_log = &slow_log;
  executor_options.trace_store = trace_store.get();
  executor_options.cache = cache.get();
  QueryExecutor executor(engine.get(), executor_options);
  if (engine.sharded != nullptr) {
    // The sharded engine fans each query out over the executor's own
    // pool (the calling worker participates; see docs/SHARDING.md).
    engine.sharded->AttachPool(&executor.pool());
  }
  if (engine.ingest != nullptr) {
    // Same fan-out pool; the executor additionally becomes the write
    // path (SubmitInsert/SubmitDelete) and the compactor schedules its
    // merges on the pool too.
    engine.ingest->AttachPool(&executor.pool());
    executor.AttachIngest(engine.ingest.get());
  }

  if (http_port > 65535) {
    std::fprintf(stderr, "--http_port out of range\n");
    return 1;
  }
  IntrospectionServerOptions server_options;
  server_options.port = static_cast<uint16_t>(http_port > 0 ? http_port : 0);
  IntrospectionServer server(server_options);
  if (http_port >= 0) {
    RegisterIntrospectionRoutes(
        &server, IntrospectionOptions{.engine = engine.single.get(),
                                      .sharded = engine.sharded.get(),
                                      .ingest = engine.ingest.get(),
                                      .executor = &executor,
                                      .cache = cache.get(),
                                      .flight_recorder = &flight_recorder,
                                      .slow_log = &slow_log,
                                      .trace_store = trace_store.get()});
    const Status status = server.Start();
    if (!status.ok()) {
      std::fprintf(stderr, "cannot start introspection server: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("introspection server on http://127.0.0.1:%u "
                "(/healthz /metrics /statusz /slowlog /flightrecorder "
                "/tracez /cachez)\n",
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);
  }
  if (engine.sharded != nullptr) {
    std::printf("sharded engine: %zu shards, %s partitioning\n",
                engine.sharded->num_shards(),
                PartitionerKindName(engine.sharded->partitioner()));
  }
  if (engine.ingest != nullptr) {
    std::printf("ingest engine: %zu shards, %s partitioning, compaction "
                "at %lld delta entries; streaming %lld writes\n",
                engine.ingest->num_shards(),
                PartitionerKindName(engine.ingest->partitioner()),
                static_cast<long long>(ingest_compact_entries),
                static_cast<long long>(ingest_writes));
  }
  if (kind == MethodKind::kTwSimSearchCascade) {
    std::printf("serving %zu %s queries (eps=%.4f, plan=%s) over %zu "
                "threads\n",
                requests.size(), MethodKindName(kind), eps,
                PlanModeName(plan_mode), executor.num_threads());
  } else {
    std::printf("serving %zu %s queries (eps=%.4f) over %zu threads\n",
                requests.size(), MethodKindName(kind), eps,
                executor.num_threads());
  }

  // --ingest writer: streams inserts (and periodic deletes) through the
  // executor's pool while the query batches run below, so snapshot reads
  // and background compaction are exercised under real concurrency.
  std::vector<std::pair<SequenceId, Sequence>> inserted;
  std::vector<SequenceId> deleted;
  bool write_error = false;
  std::thread writer;
  if (engine.ingest != nullptr && ingest_writes > 0) {
    writer = std::thread([&] {
      std::vector<std::pair<std::future<SequenceId>, Sequence>> pending;
      pending.reserve(static_cast<size_t>(ingest_writes));
      std::vector<SequenceId> ids(static_cast<size_t>(ingest_writes), -1);
      // Futures are single-shot; resolve lazily so a victim lookup and
      // the final drain never both call get() on one.
      const auto resolve = [&](size_t j) {
        if (ids[j] < 0) {
          ids[j] = pending[j].first.get();
        }
        return ids[j];
      };
      std::vector<std::future<bool>> delete_acks;
      const auto start = std::chrono::steady_clock::now();
      SequenceId next_base_victim = 0;
      uint64_t deletes_issued = 0;
      for (int64_t i = 0; i < ingest_writes; ++i) {
        if (ingest_rate > 0.0) {
          std::this_thread::sleep_until(
              start +
              std::chrono::duration_cast<
                  std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(static_cast<double>(i) /
                                                ingest_rate)));
        }
        Sequence row = PerturbSequence(
            ingest_base[static_cast<size_t>(i) % ingest_base.size()],
            static_cast<uint64_t>(seed) * 1000003ull +
                static_cast<uint64_t>(i));
        Sequence to_insert = row;
        pending.emplace_back(executor.SubmitInsert(std::move(to_insert)),
                             std::move(row));
        if (ingest_delete_every > 0 &&
            (i + 1) % ingest_delete_every == 0) {
          // Alternate victims between a base row and an acknowledged
          // insert, so tombstones land on both sides of the base/delta
          // split.
          SequenceId victim;
          if (deletes_issued % 2 == 0 &&
              static_cast<size_t>(next_base_victim) < base_size) {
            victim = next_base_victim++;
          } else {
            victim = resolve(
                static_cast<size_t>(i + 1 - ingest_delete_every));
          }
          ++deletes_issued;
          deleted.push_back(victim);
          delete_acks.push_back(executor.SubmitDelete(victim));
        }
      }
      for (size_t j = 0; j < pending.size(); ++j) {
        inserted.emplace_back(resolve(j), std::move(pending[j].second));
      }
      for (std::future<bool>& ack : delete_acks) {
        if (!ack.get()) {
          write_error = true;
        }
      }
    });
  }

  StageCounters batch_prunes;
  uint64_t total_dtw_evals = 0;
  for (int64_t round = 0; round < repeat; ++round) {
    const BatchResult batch = executor.SubmitBatch(requests);
    std::vector<double> latencies;
    latencies.reserve(batch.results.size());
    size_t total_matches = 0;
    for (const SearchResult& r : batch.results) {
      latencies.push_back(r.cost.wall_ms);
      total_matches += r.matches.size();
      batch_prunes.Merge(r.cost.prunes);
      total_dtw_evals += r.cost.dtw_evals;
    }
    std::printf(
        "batch %lld: %.1f queries/s (%.2f ms wall), %zu matches, "
        "service p50=%.3f ms p99=%.3f ms p999=%.3f ms\n",
        static_cast<long long>(round), batch.queries_per_sec,
        batch.wall_ms, total_matches, Percentile(latencies, 0.5),
        Percentile(latencies, 0.99), Percentile(latencies, 0.999));
    std::fflush(stdout);
  }
  PrintPruneTable(batch_prunes);
  if (total_dtw_evals > 0) {
    std::printf("exact-DTW evaluations: %llu\n",
                static_cast<unsigned long long>(total_dtw_evals));
  }
  if (cache != nullptr) {
    const SemanticCacheStats cache_stats = cache->TakeStats();
    std::printf("cache: warpindex_cache_executor_hits_total=%llu "
                "warpindex_cache_executor_misses_total=%llu "
                "(hit ratio %.3f, %zu entries, %zu bytes)\n",
                static_cast<unsigned long long>(cache_stats.hits),
                static_cast<unsigned long long>(cache_stats.misses),
                cache_stats.hit_ratio, cache_stats.entries,
                cache_stats.bytes);
  }

  if (engine.ingest != nullptr) {
    if (writer.joinable()) {
      writer.join();
    }
    // Let the background compactor drain the write backlog so the
    // summary and the verification below see a quiesced engine.
    const auto drain_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    IngestEngine::Health health = engine.ingest->TakeHealthSnapshot();
    while (health.compaction_backlog > 0 &&
           std::chrono::steady_clock::now() < drain_deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      health = engine.ingest->TakeHealthSnapshot();
    }
    std::printf("ingest: %llu inserts, %llu deletes, %llu compactions "
                "(%llu cut rebalances), epoch %llu, %zu live of %zu "
                "ids, backlog %zu\n",
                static_cast<unsigned long long>(health.inserts_total),
                static_cast<unsigned long long>(health.deletes_total),
                static_cast<unsigned long long>(health.compactions_total),
                static_cast<unsigned long long>(
                    health.cut_rebalances_total),
                static_cast<unsigned long long>(health.epoch),
                health.live_sequences, health.id_space,
                health.compaction_backlog);

    // Verify the consistency contract (docs/INGEST.md): a from-scratch
    // engine over the final live set must answer bit-identically.
    std::sort(inserted.begin(), inserted.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    Dataset ref = std::move(ingest_base);
    bool ok = true;
    if (write_error) {
      std::fprintf(stderr, "ingest verify: a delete was not acknowledged\n");
      ok = false;
    }
    for (auto& [id, row] : inserted) {
      if (static_cast<size_t>(id) != ref.size()) {
        // Ids must be the contiguous dataset positions.
        std::fprintf(stderr,
                     "ingest verify: insert id %lld, expected %zu\n",
                     static_cast<long long>(id), ref.size());
        ok = false;
        break;
      }
      ref.Add(std::move(row));
    }
    if (ok) {
      Engine reference(std::move(ref), options);
      for (const SequenceId id : deleted) {
        if (!reference.Remove(id)) {
          std::fprintf(stderr,
                       "ingest verify: reference Remove(%lld) failed\n",
                       static_cast<long long>(id));
          ok = false;
        }
      }
      const size_t nq = std::min<size_t>(requests.size(), 8);
      for (size_t i = 0; i < nq && ok; ++i) {
        const Sequence& q = requests[i].query;
        const SearchResult got =
            engine.get()->SearchWith(MethodKind::kTwSimSearch, q, eps);
        const SearchResult want =
            reference.SearchWith(MethodKind::kTwSimSearch, q, eps);
        // The ingest merge emits ascending global ids; a single engine
        // answers in index traversal order. Compare as id sets.
        std::vector<SequenceId> want_sorted = want.matches;
        std::sort(want_sorted.begin(), want_sorted.end());
        if (got.matches != want_sorted) {
          std::fprintf(stderr,
                       "ingest verify: range answers differ on query %zu "
                       "(%zu vs %zu matches)\n",
                       i, got.matches.size(), want.matches.size());
          std::vector<SequenceId> extra;
          std::set_difference(got.matches.begin(), got.matches.end(),
                              want_sorted.begin(), want_sorted.end(),
                              std::back_inserter(extra));
          std::vector<SequenceId> missing;
          std::set_difference(want_sorted.begin(), want_sorted.end(),
                              got.matches.begin(), got.matches.end(),
                              std::back_inserter(missing));
          for (size_t n = 0; n < extra.size() && n < 5; ++n) {
            std::fprintf(stderr, "  extra match #%lld\n",
                         static_cast<long long>(extra[n]));
          }
          for (size_t n = 0; n < missing.size() && n < 5; ++n) {
            std::fprintf(stderr, "  missing match #%lld\n",
                         static_cast<long long>(missing[n]));
          }
          ok = false;
        }
        const KnnResult got_knn = engine.get()->SearchKnn(q, 5);
        const KnnResult want_knn = reference.SearchKnn(q, 5);
        if (got_knn.neighbors.size() != want_knn.neighbors.size()) {
          std::fprintf(stderr,
                       "ingest verify: kNN sizes differ on query %zu "
                       "(%zu vs %zu)\n",
                       i, got_knn.neighbors.size(),
                       want_knn.neighbors.size());
          ok = false;
        } else {
          for (size_t n = 0; n < got_knn.neighbors.size(); ++n) {
            if (got_knn.neighbors[n].id != want_knn.neighbors[n].id ||
                got_knn.neighbors[n].distance !=
                    want_knn.neighbors[n].distance) {
              std::fprintf(
                  stderr,
                  "ingest verify: kNN neighbor %zu differs on query %zu "
                  "(#%lld d=%.17g vs #%lld d=%.17g)\n",
                  n, i, static_cast<long long>(got_knn.neighbors[n].id),
                  got_knn.neighbors[n].distance,
                  static_cast<long long>(want_knn.neighbors[n].id),
                  want_knn.neighbors[n].distance);
              ok = false;
            }
          }
        }
      }
    }
    if (!ok) {
      std::fprintf(stderr, "ingest verify FAILED\n");
      return 1;
    }
    std::printf("ingest verify ok (%zu live sequences, answers match a "
                "from-scratch engine)\n",
                engine.ingest->live_size());
    std::fflush(stdout);
  }

  if (trace_store != nullptr) {
    std::printf("trace store: %llu offered, %llu kept (slow=%llu "
                "error=%llu skew=%llu sampled=%llu)\n",
                static_cast<unsigned long long>(trace_store->offered()),
                static_cast<unsigned long long>(trace_store->kept()),
                static_cast<unsigned long long>(trace_store->kept_slow()),
                static_cast<unsigned long long>(trace_store->kept_error()),
                static_cast<unsigned long long>(trace_store->kept_skew()),
                static_cast<unsigned long long>(
                    trace_store->kept_sampled()));
    if (!trace_events_out.empty()) {
      const std::vector<CompletedTrace> kept = trace_store->Snapshot();
      std::vector<const Trace*> traces;
      traces.reserve(kept.size());
      for (const CompletedTrace& t : kept) {
        traces.push_back(&t.trace);
      }
      const Status status = WriteTraceEventsFile(traces, trace_events_out);
      if (!status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        return 1;
      }
      std::printf("wrote %zu retained traces to %s (trace-event JSON)\n",
                  traces.size(), trace_events_out.c_str());
    }
  } else if (!trace_events_out.empty()) {
    std::fprintf(stderr,
                 "--trace_events_out needs --trace_capacity > 0\n");
    return 1;
  }

  if (show_metrics) {
    const BuildInfo build_info = GetBuildInfo();
    const ProcessSelfMetrics process = CollectProcessSelfMetrics();
    std::printf(
        "\n== metrics snapshot ==\n%s",
        MetricsToPrometheusText(engine.get()->metrics().TakeSnapshot(),
                                &build_info, &process)
            .c_str());
  }

  // Keep the introspection server scrapeable (CI smoke and operators
  // curl the endpoints while we linger here).
  if (server.running() && linger_s > 0.0) {
    std::signal(SIGINT, HandleStopSignal);
    std::signal(SIGTERM, HandleStopSignal);
    std::printf("lingering %.0f s for scrapes (SIGINT/SIGTERM to stop)\n",
                linger_s);
    std::fflush(stdout);
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(linger_s));
    while (g_stop_requested == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    server.Stop();
    std::printf("introspection server stopped (%llu requests served)\n",
                static_cast<unsigned long long>(server.requests_served()));
  }
  return 0;
}

// `inspect` subcommand: one-shot client for a running introspection
// server — fetches an endpoint and prints the body to stdout.
int RunInspect(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int64_t http_port = 0;
  std::string endpoint = "/statusz";
  int64_t timeout_ms = 5000;

  FlagSet flags("warpindex_cli inspect");
  flags.AddString("host", &host, "server address (numeric IPv4)");
  flags.AddInt64("http_port", &http_port,
                 "port of a running `serve --http_port` instance");
  flags.AddString("endpoint", &endpoint,
                  "/healthz | /metrics | /statusz | /slowlog | "
                  "/flightrecorder | /tracez | /cachez");
  flags.AddInt64("timeout_ms", &timeout_ms, "socket timeout");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  if (http_port <= 0 || http_port > 65535) {
    std::fprintf(stderr, "pass --http_port of a running server\n");
    return 1;
  }

  std::string body;
  int status_code = 0;
  const Status status =
      HttpGet(host, static_cast<uint16_t>(http_port), endpoint, &body,
              &status_code, static_cast<int>(timeout_ms));
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::fputs(body.c_str(), stdout);
  if (!body.empty() && body.back() != '\n') {
    std::fputc('\n', stdout);
  }
  if (status_code != 200) {
    std::fprintf(stderr, "HTTP %d\n", status_code);
    return 1;
  }
  return 0;
}

// "host:port" -> RouterEndpoint; false on malformed input.
bool ParseEndpoint(const std::string& spec, RouterEndpoint* endpoint) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= spec.size()) {
    return false;
  }
  endpoint->host = spec.substr(0, colon);
  const long port = std::strtol(spec.c_str() + colon + 1, nullptr, 10);
  if (port <= 0 || port > 65535) {
    return false;
  }
  endpoint->port = static_cast<uint16_t>(port);
  return true;
}

// Comma-separated shard indexes ("0,3,5").
bool ParseShardList(const std::string& spec,
                    std::vector<uint32_t>* shards) {
  shards->clear();
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string::npos) {
      end = spec.size();
    }
    const std::string item = spec.substr(pos, end - pos);
    char* parse_end = nullptr;
    const long shard = std::strtol(item.c_str(), &parse_end, 10);
    if (parse_end == item.c_str() || *parse_end != '\0' || shard < 0) {
      return false;
    }
    shards->push_back(static_cast<uint32_t>(shard));
    pos = end + 1;
  }
  return !shards->empty();
}

// The wire protocol carries method names in their canonical form
// (MethodKindName); accept both those and the CLI's short spellings.
// Quiet on failure (runs inside the router's request handler).
bool ParseWireMethod(const std::string& name, MethodKind* kind) {
  for (const MethodKind candidate :
       {MethodKind::kTwSimSearch, MethodKind::kNaiveScan,
        MethodKind::kLbScan, MethodKind::kStFilter,
        MethodKind::kTwSimSearchCascade}) {
    if (name == MethodKindName(candidate)) {
      *kind = candidate;
      return true;
    }
  }
  if (name == "tw") {
    *kind = MethodKind::kTwSimSearch;
  } else if (name == "naive") {
    *kind = MethodKind::kNaiveScan;
  } else if (name == "lb") {
    *kind = MethodKind::kLbScan;
  } else if (name == "st") {
    *kind = MethodKind::kStFilter;
  } else if (name == "cascade") {
    *kind = MethodKind::kTwSimSearchCascade;
  } else {
    return false;
  }
  return true;
}

// `save` subcommand: build a sharded database and persist it for the
// multi-process serving plane (manifest + per-shard engine dirs).
int RunSave(int argc, char** argv) {
  std::string out_dir;
  std::string dataset_kind = "stock";
  std::string data_path;
  int64_t shards = 2;
  std::string partition = "hash";

  FlagSet flags("warpindex_cli save");
  flags.AddString("out", &out_dir, "directory to write the database into");
  flags.AddString("dataset", &dataset_kind,
                  "built-in corpus when --data is absent: stock | walk");
  flags.AddString("data", &data_path, "CSV file with one sequence per line");
  flags.AddInt64("shards", &shards, "number of shards (>= 1)");
  flags.AddString("partition", &partition, "hash | range");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  if (out_dir.empty()) {
    std::fprintf(stderr, "pass --out <dir>\n");
    return 1;
  }
  if (shards < 1) {
    std::fprintf(stderr, "--shards must be >= 1\n");
    return 1;
  }
  Dataset dataset;
  if (!LoadDatabase(data_path, dataset_kind, &dataset) || dataset.empty()) {
    return 1;
  }
  const size_t num_sequences = dataset.size();

  ShardedEngineOptions options;
  options.num_shards = static_cast<size_t>(shards);
  if (!ParsePartitionerKind(partition, &options.partitioner)) {
    std::fprintf(stderr, "unknown --partition '%s' (hash | range)\n",
                 partition.c_str());
    return 1;
  }
  ShardedEngine engine(std::move(dataset), options);
  const Status status = engine.Save(out_dir);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("saved %zu sequences as %lld %s-partitioned shards to %s\n",
              num_sequences, static_cast<long long>(shards),
              PartitionerKindName(options.partitioner), out_dir.c_str());
  return 0;
}

// `shard-serve` subcommand: one shard-server process of the serving
// plane. Opens a subset of a saved sharded database and answers wire
// RPCs until SIGTERM, then drains gracefully (finish in-flight, answer
// new queries UNAVAILABLE, exit 0). The CI smoke test asserts the
// "drain complete" line.
int RunShardServe(int argc, char** argv) {
  std::string db_dir;
  std::string shards_spec;
  int64_t group = 0;
  int64_t replica = 0;
  int64_t port = 0;
  int64_t http_port = -1;
  double qps = 0.0;
  double burst = 0.0;
  int64_t max_inflight = 0;
  bool st_filter = true;

  FlagSet flags("warpindex_cli shard-serve");
  flags.AddString("db", &db_dir, "saved sharded database (`save --out`)");
  flags.AddString("shards", &shards_spec,
                  "comma-separated manifest shard indexes to serve");
  flags.AddInt64("group", &group, "shard-group id (replicas share one)");
  flags.AddInt64("replica", &replica, "replica index within the group");
  flags.AddInt64("port", &port, "wire-protocol port (0 = ephemeral)");
  flags.AddInt64("http_port", &http_port,
                 "introspection HTTP server port (negative = disabled)");
  flags.AddDouble("qps", &qps,
                  "per-client admission quota in queries/s (0 = unmetered)");
  flags.AddDouble("burst", &burst,
                  "per-client token-bucket burst (0 = max(1, qps))");
  flags.AddInt64("max_inflight", &max_inflight,
                 "shed queries beyond this many concurrent (0 = uncapped)");
  flags.AddBool("st_filter", &st_filter,
                "build the suffix-tree filter so ST-Filter queries work");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  if (db_dir.empty()) {
    std::fprintf(stderr, "pass --db <dir>\n");
    return 1;
  }
  ShardServerOptions options;
  options.db_dir = db_dir;
  if (!ParseShardList(shards_spec, &options.serve_shards)) {
    std::fprintf(stderr, "pass --shards as comma-separated indexes\n");
    return 1;
  }
  options.group = static_cast<int>(group);
  options.replica = static_cast<int>(replica);
  options.engine.build_st_filter = st_filter;
  options.server.port = static_cast<uint16_t>(port);
  options.server.admission.per_client_qps = qps;
  options.server.admission.per_client_burst = burst;
  options.server.admission.max_inflight = static_cast<int>(max_inflight);
  options.server.metrics = &MetricsRegistry::Global();

  std::unique_ptr<ShardServer> server;
  Status status = ShardServer::Create(std::move(options), &server);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  status = server->Start();
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  IntrospectionServer http(IntrospectionServerOptions{
      .port = static_cast<uint16_t>(http_port > 0 ? http_port : 0)});
  if (http_port >= 0) {
    RegisterIntrospectionRoutes(
        &http, IntrospectionOptions{.shard_server = server.get()});
    status = http.Start();
    if (!status.ok()) {
      std::fprintf(stderr, "cannot start introspection server: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("introspection server on http://127.0.0.1:%u\n",
                static_cast<unsigned>(http.port()));
  }

  std::string shard_list;
  for (const uint32_t shard : server->serve_shards()) {
    if (!shard_list.empty()) {
      shard_list.push_back(',');
    }
    shard_list += std::to_string(shard);
  }
  std::printf("shard-server listening on 127.0.0.1:%u "
              "(group %d replica %d, shards %s of %zu, %s partitioning)\n",
              static_cast<unsigned>(server->port()), server->group(),
              server->replica(), shard_list.c_str(),
              server->manifest_num_shards(),
              PartitionerKindName(server->partitioner()));
  std::fflush(stdout);

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  while (g_stop_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  // Graceful drain: no new connections, in-flight requests finish, new
  // queries are answered UNAVAILABLE so the router fails over.
  server->RequestDrain();
  server->WaitIdle();
  server->Stop();
  if (http_port >= 0) {
    http.Stop();
  }
  std::printf("drain complete\n");
  return 0;
}

// `route` subcommand: the router process. Connects to shard-server
// replicas, then serves the same RANGE/KNN wire RPCs itself — clients
// (`net-query`) cannot tell a router from a single shard server that
// happens to hold everything.
int RunRoute(int argc, char** argv) {
  std::string groups_spec;
  int64_t port = 0;
  int64_t http_port = -1;
  int64_t connect_timeout_ms = 2000;
  int64_t call_timeout_ms = 10000;
  int64_t max_attempts = 3;
  int64_t backoff_ms = 25;
  bool hedge = true;
  int64_t hedge_min_ms = 10;
  int64_t hedge_max_ms = 1000;
  int64_t knn_wave = 0;
  double qps = 0.0;
  int64_t max_inflight = 0;

  FlagSet flags("warpindex_cli route");
  flags.AddString("groups", &groups_spec,
                  "shard groups as 'host:port,host:port;host:port' — "
                  "';' separates groups, ',' separates a group's replicas");
  flags.AddInt64("port", &port, "wire-protocol port (0 = ephemeral)");
  flags.AddInt64("http_port", &http_port,
                 "introspection HTTP server port (negative = disabled)");
  flags.AddInt64("connect_timeout_ms", &connect_timeout_ms,
                 "per-replica connect/handshake deadline");
  flags.AddInt64("call_timeout_ms", &call_timeout_ms,
                 "per-attempt sub-request deadline");
  flags.AddInt64("max_attempts", &max_attempts,
                 "sequential replica attempts per sub-request leg");
  flags.AddInt64("backoff_ms", &backoff_ms,
                 "base retry backoff (doubles per attempt)");
  flags.AddBool("hedge", &hedge, "hedged backup requests to replicas");
  flags.AddInt64("hedge_min_ms", &hedge_min_ms, "hedge delay floor");
  flags.AddInt64("hedge_max_ms", &hedge_max_ms,
                 "hedge delay ceiling (also the cold-start delay)");
  flags.AddInt64("knn_wave", &knn_wave,
                 "shard groups per kNN wave (0 = all in one wave)");
  flags.AddDouble("qps", &qps,
                  "per-client admission quota in queries/s (0 = unmetered)");
  flags.AddInt64("max_inflight", &max_inflight,
                 "shed queries beyond this many concurrent (0 = uncapped)");
  int64_t fleet_poll_ms = 0;
  flags.AddInt64("fleet_poll_ms", &fleet_poll_ms,
                 "background fleet STATS poll period in ms "
                 "(0 = poll only when /metrics?fleet=1 or /fleetz is "
                 "scraped)");
  bool use_cache = false;
  int64_t cache_mb = 64;
  flags.AddBool("cache", &use_cache,
                "router-tier semantic result cache — a hit skips the "
                "shard fan-out entirely; only for immutable saved "
                "databases (see docs/CACHING.md)");
  flags.AddInt64("cache_mb", &cache_mb, "--cache byte budget (MiB)");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }

  RouterOptions options;
  size_t pos = 0;
  while (pos <= groups_spec.size() && !groups_spec.empty()) {
    size_t end = groups_spec.find(';', pos);
    if (end == std::string::npos) {
      end = groups_spec.size();
    }
    const std::string group = groups_spec.substr(pos, end - pos);
    std::vector<RouterEndpoint> replicas;
    size_t rpos = 0;
    while (rpos <= group.size() && !group.empty()) {
      size_t rend = group.find(',', rpos);
      if (rend == std::string::npos) {
        rend = group.size();
      }
      RouterEndpoint endpoint;
      if (!ParseEndpoint(group.substr(rpos, rend - rpos), &endpoint)) {
        std::fprintf(stderr, "malformed endpoint in --groups: '%s'\n",
                     group.substr(rpos, rend - rpos).c_str());
        return 1;
      }
      replicas.push_back(endpoint);
      rpos = rend + 1;
    }
    if (!replicas.empty()) {
      options.groups.push_back(std::move(replicas));
    }
    pos = end + 1;
  }
  if (options.groups.empty()) {
    std::fprintf(stderr,
                 "pass --groups 'host:port,host:port;host:port'\n");
    return 1;
  }
  options.connect_timeout_ms = static_cast<int>(connect_timeout_ms);
  options.call_timeout_ms = static_cast<int>(call_timeout_ms);
  options.max_attempts = static_cast<int>(max_attempts);
  options.backoff_ms = static_cast<int>(backoff_ms);
  options.enable_hedging = hedge;
  options.hedge_min_ms = static_cast<int>(hedge_min_ms);
  options.hedge_max_ms = static_cast<int>(hedge_max_ms);
  options.knn_wave_size = static_cast<size_t>(knn_wave);
  options.metrics = &MetricsRegistry::Global();

  FlightRecorder flight_recorder(FlightRecorderOptions{.capacity = 512});
  SlowQueryLog slow_log(32);
  options.flight_recorder = &flight_recorder;
  options.slow_log = &slow_log;

  // Router-tier cache: the saved shard databases are immutable, so the
  // fixed version-0 keying is sound (docs/CACHING.md).
  std::unique_ptr<SemanticCache> cache;
  if (use_cache) {
    SemanticCacheOptions cache_options;
    cache_options.max_bytes = static_cast<size_t>(cache_mb) << 20;
    cache_options.tier = "router";
    cache_options.metrics = &MetricsRegistry::Global();
    cache = std::make_unique<SemanticCache>(cache_options);
    options.cache = cache.get();
  }

  // Fleet federation (net/fleet.h): the poller dials the same replica
  // endpoints the router scatter-gathers over and backs
  // /metrics?fleet=1 and /fleetz on the introspection server.
  FleetPollerOptions fleet_options;
  fleet_options.groups = options.groups;
  fleet_options.call_timeout_ms = static_cast<int>(call_timeout_ms);
  fleet_options.poll_interval_ms = static_cast<int>(fleet_poll_ms);
  FleetPoller fleet_poller(std::move(fleet_options));

  std::unique_ptr<Router> router;
  Status status = Router::Create(std::move(options), &router);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  // Front door: the same wire protocol the shard servers speak, with
  // the scatter-gather hidden behind it.
  WireServerOptions front_options;
  front_options.name = "router";
  front_options.port = static_cast<uint16_t>(port);
  front_options.admission.per_client_qps = qps;
  front_options.admission.max_inflight = static_cast<int>(max_inflight);
  front_options.metrics = &MetricsRegistry::Global();
  WireServer front(front_options);
  Router* router_ptr = router.get();
  front.Handle(
      WireType::kRange,
      [router_ptr](const std::string&, const JsonValue& request,
                   JsonValue* response) {
        MethodKind kind = MethodKind::kTwSimSearch;
        const std::string method =
            request.GetString("method", MethodKindName(kind));
        if (!ParseWireMethod(method, &kind)) {
          return Status::InvalidArgument("unknown method '" + method + "'");
        }
        const double epsilon = request.GetDouble("epsilon", -1.0);
        Sequence query;
        const JsonValue* query_json = request.Find("query");
        if (query_json == nullptr) {
          return Status::InvalidArgument("request needs 'query'");
        }
        WARPINDEX_RETURN_IF_ERROR(JsonToSequence(*query_json, &query));
        const bool traced = request.GetBool("trace", false);
        Trace trace;
        SearchResult result;
        WARPINDEX_RETURN_IF_ERROR(router_ptr->RouteRange(
            kind, query, epsilon, traced ? &trace : nullptr, &result));
        JsonValue matches = JsonValue::Array();
        for (const SequenceId id : result.matches) {
          matches.Add(JsonValue::Int(id));
        }
        response->Set("matches", std::move(matches));
        response->Set("num_candidates",
                      JsonValue::Int(static_cast<int64_t>(
                          result.num_candidates)));
        response->Set("cost", CostToJson(result.cost));
        if (traced) {
          response->Set("spans", SpansToJson(trace.spans()));
        }
        return Status::Ok();
      });
  front.Handle(
      WireType::kKnn,
      [router_ptr](const std::string&, const JsonValue& request,
                   JsonValue* response) {
        const int64_t k = request.GetInt("k", 0);
        if (k < 1) {
          return Status::InvalidArgument("k must be >= 1");
        }
        Sequence query;
        const JsonValue* query_json = request.Find("query");
        if (query_json == nullptr) {
          return Status::InvalidArgument("request needs 'query'");
        }
        WARPINDEX_RETURN_IF_ERROR(JsonToSequence(*query_json, &query));
        const bool traced = request.GetBool("trace", false);
        Trace trace;
        KnnResult result;
        WARPINDEX_RETURN_IF_ERROR(
            router_ptr->RouteKnn(query, static_cast<size_t>(k),
                                 traced ? &trace : nullptr, &result));
        response->Set("neighbors", KnnMatchesToJson(result.neighbors));
        response->Set("num_refined",
                      JsonValue::Int(static_cast<int64_t>(
                          result.num_refined)));
        response->Set("cost", CostToJson(result.cost));
        if (traced) {
          response->Set("spans", SpansToJson(trace.spans()));
        }
        return Status::Ok();
      });
  status = front.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  IntrospectionServer http(IntrospectionServerOptions{
      .port = static_cast<uint16_t>(http_port > 0 ? http_port : 0)});
  if (http_port >= 0) {
    RegisterIntrospectionRoutes(
        &http, IntrospectionOptions{.router = router.get(),
                                    .fleet = &fleet_poller,
                                    .router_cache = cache.get(),
                                    .flight_recorder = &flight_recorder,
                                    .slow_log = &slow_log});
    if (fleet_poll_ms > 0) {
      (void)fleet_poller.Start();
    }
    status = http.Start();
    if (!status.ok()) {
      std::fprintf(stderr, "cannot start introspection server: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("introspection server on http://127.0.0.1:%u\n",
                static_cast<unsigned>(http.port()));
  }

  std::printf("router listening on 127.0.0.1:%u "
              "(%zu groups, %zu shards, %s partitioning)\n",
              static_cast<unsigned>(front.port()), router->num_groups(),
              router->num_shards(),
              PartitionerKindName(router->partitioner()));
  std::fflush(stdout);

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  while (g_stop_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  front.RequestDrain();
  front.WaitIdle();
  front.Stop();
  if (http_port >= 0) {
    http.Stop();
  }
  std::printf("drain complete\n");
  return 0;
}

// `net-query` subcommand: a wire-protocol client. Builds a query the
// same way the main command does, sends it to a router (or directly to
// a shard server with --shards), and prints the answer. --timeout_ms is
// the client-side deadline — a stalled peer surfaces as
// DEADLINE_EXCEEDED, never a hang.
int RunNetQuery(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int64_t port = 0;
  int64_t timeout_ms = 5000;
  std::string dataset_kind = "stock";
  std::string data_path;
  std::string query_path;
  int64_t query_id = 0;
  bool perturb = true;
  int64_t seed = 1;
  double eps = -1.0;
  int64_t k = 0;
  std::string method = "tw";
  std::string shards_spec;
  int64_t repeat = 1;

  FlagSet flags("warpindex_cli net-query");
  flags.AddString("host", &host, "router or shard-server address");
  flags.AddInt64("port", &port, "wire-protocol port");
  flags.AddInt64("timeout_ms", &timeout_ms,
                 "client deadline covering connect + send + response");
  flags.AddString("dataset", &dataset_kind,
                  "built-in corpus the query is drawn from: stock | walk");
  flags.AddString("data", &data_path, "CSV the query is drawn from");
  flags.AddString("query_file", &query_path,
                  "CSV file whose first sequence is the query");
  flags.AddInt64("query_id", &query_id, "sequence to use as the query");
  flags.AddBool("perturb", &perturb, "perturb the --query_id sequence");
  flags.AddInt64("seed", &seed, "perturbation seed");
  flags.AddDouble("eps", &eps, "tolerance for a range query");
  flags.AddInt64("k", &k, "neighbor count for a kNN query");
  flags.AddString("method", &method,
                  "range-query method: tw | naive | lb | st | cascade");
  flags.AddString("shards", &shards_spec,
                  "talk to a shard server directly: the shard indexes to "
                  "query (omit when talking to a router)");
  flags.AddInt64("repeat", &repeat, "send the query this many times");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "pass --port of a running router\n");
    return 1;
  }
  if (eps < 0.0 && k <= 0) {
    std::fprintf(stderr, "pass --eps <tol> or --k <n>\n");
    return 1;
  }
  MethodKind kind;
  if (!ParseMethod(method, &kind)) {
    return 1;
  }

  Sequence query;
  if (!query_path.empty()) {
    Dataset queries;
    const Status status = LoadDatasetFromCsv(query_path, &queries);
    if (!status.ok() || queries.empty()) {
      std::fprintf(stderr, "cannot load query: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    query = queries[0];
  } else {
    Dataset dataset;
    if (!LoadDatabase(data_path, dataset_kind, &dataset) ||
        dataset.empty()) {
      return 1;
    }
    if (query_id < 0 || static_cast<size_t>(query_id) >= dataset.size()) {
      std::fprintf(stderr, "--query_id out of range\n");
      return 1;
    }
    const Sequence& base = dataset[static_cast<size_t>(query_id)];
    query = perturb ? PerturbSequence(base, static_cast<uint64_t>(seed))
                    : base;
  }

  WireClientOptions client_options;
  client_options.host = host;
  client_options.port = static_cast<uint16_t>(port);
  client_options.timeout_ms = static_cast<int>(timeout_ms);
  client_options.client_id = "net-query";
  WireClient client(client_options);

  JsonValue shards = JsonValue::Null();
  if (!shards_spec.empty()) {
    std::vector<uint32_t> shard_list;
    if (!ParseShardList(shards_spec, &shard_list)) {
      std::fprintf(stderr, "malformed --shards\n");
      return 1;
    }
    shards = JsonValue::Array();
    for (const uint32_t shard : shard_list) {
      shards.Add(JsonValue::Int(shard));
    }
  }

  for (int64_t round = 0; round < repeat; ++round) {
    if (eps >= 0.0) {
      JsonValue request = JsonValue::Object();
      if (!shards.is_null()) {
        request.Set("shards", shards);
      }
      request.Set("method", JsonValue::Str(MethodKindName(kind)));
      request.Set("epsilon", JsonValue::Double(eps));
      request.Set("query", SequenceToJson(query));
      JsonValue response;
      const Status status =
          client.Call(WireType::kRange, request, &response);
      if (!status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        return 1;
      }
      std::printf("sequences with D_tw <= %.4f: %zu (from %lld "
                  "candidates)\n",
                  eps,
                  response.Find("matches") != nullptr
                      ? response.Find("matches")->size()
                      : 0,
                  static_cast<long long>(
                      response.GetInt("num_candidates", 0)));
      if (const JsonValue* matches = response.Find("matches");
          matches != nullptr) {
        for (const JsonValue& id : matches->items()) {
          std::printf("  #%lld\n",
                      static_cast<long long>(id.AsInt()));
        }
      }
    }
    if (k > 0) {
      JsonValue request = JsonValue::Object();
      if (!shards.is_null()) {
        request.Set("shards", shards);
      }
      request.Set("k", JsonValue::Int(k));
      request.Set("query", SequenceToJson(query));
      JsonValue response;
      const Status status = client.Call(WireType::kKnn, request, &response);
      if (!status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        return 1;
      }
      std::vector<KnnMatch> neighbors;
      if (const JsonValue* neighbors_json = response.Find("neighbors");
          neighbors_json != nullptr) {
        const Status parse = JsonToKnnMatches(*neighbors_json, &neighbors);
        if (!parse.ok()) {
          std::fprintf(stderr, "%s\n", parse.ToString().c_str());
          return 1;
        }
      }
      std::printf("%zu nearest sequences under D_tw:\n", neighbors.size());
      for (const KnnMatch& n : neighbors) {
        std::printf("  #%-6lld dtw=%.5f\n", static_cast<long long>(n.id),
                    n.distance);
      }
    }
  }
  return 0;
}

// Indented rendering of a trace's span tree with counters.
void PrintTraceTree(const Trace& trace) {
  const auto& spans = trace.spans();
  for (size_t i = 0; i < spans.size(); ++i) {
    int depth = 0;
    for (int p = spans[i].parent; p >= 0;
         p = spans[static_cast<size_t>(p)].parent) {
      ++depth;
    }
    std::printf("  %*s%-18s %8.3f ms", depth * 2, "",
                spans[i].name.c_str(), spans[i].duration_ms);
    for (const auto& [name, value] : spans[i].counters) {
      std::printf("  %s=%.0f", name.c_str(), value);
    }
    std::printf("\n");
  }
}

int Run(int argc, char** argv) {
  std::string dataset_kind = "stock";
  std::string data_path;
  std::string query_path;
  int64_t query_id = 0;
  bool perturb = true;
  double eps = -1.0;
  int64_t k = 0;
  bool compare = false;
  int64_t seed = 1;
  std::string trace_out;
  std::string trace_events_out;
  std::string method = "tw";
  std::string plan = "cascade";
  int64_t shards = 1;
  std::string partition = "hash";

  // `serve` subcommand: concurrent batch serving (own flag set).
  if (argc > 1 && std::strcmp(argv[1], "serve") == 0) {
    return RunServe(argc - 1, argv + 1);
  }

  // `inspect` subcommand: scrape a running introspection server.
  if (argc > 1 && std::strcmp(argv[1], "inspect") == 0) {
    return RunInspect(argc - 1, argv + 1);
  }

  // Multi-process serving plane (docs/NETWORKING.md).
  if (argc > 1 && std::strcmp(argv[1], "save") == 0) {
    return RunSave(argc - 1, argv + 1);
  }
  if (argc > 1 && std::strcmp(argv[1], "shard-serve") == 0) {
    return RunShardServe(argc - 1, argv + 1);
  }
  if (argc > 1 && std::strcmp(argv[1], "route") == 0) {
    return RunRoute(argc - 1, argv + 1);
  }
  if (argc > 1 && std::strcmp(argv[1], "net-query") == 0) {
    return RunNetQuery(argc - 1, argv + 1);
  }

  // `stats` subcommand: run the configured query workload, then print the
  // metrics snapshot (Prometheus text). Flags still apply.
  const bool stats_mode =
      argc > 1 && std::strcmp(argv[1], "stats") == 0;
  if (stats_mode) {
    --argc;
    ++argv;
  }

  FlagSet flags("warpindex_cli");
  flags.AddString("dataset", &dataset_kind,
                  "built-in corpus when --data is absent: stock | walk");
  flags.AddString("data", &data_path, "CSV file with one sequence per line");
  flags.AddString("query_file", &query_path,
                  "CSV file whose first sequence is the query");
  flags.AddInt64("query_id", &query_id,
                 "data sequence to use as the query when --query_file is "
                 "absent");
  flags.AddBool("perturb", &perturb,
                "perturb the --query_id sequence (paper's workload recipe) "
                "instead of querying the exact copy");
  flags.AddDouble("eps", &eps, "tolerance for a range query (omit for kNN)");
  flags.AddInt64("k", &k, "neighbor count for a kNN query");
  flags.AddBool("compare", &compare,
                "also run the scan and ST-Filter baselines");
  flags.AddInt64("seed", &seed, "perturbation seed");
  flags.AddString("trace_out", &trace_out,
                  "write the query's span tree to this file as JSON lines");
  flags.AddString("trace_events_out", &trace_events_out,
                  "write the query's span tree to this file as "
                  "Chrome/Perfetto trace-event JSON (ui.perfetto.dev)");
  flags.AddString("method", &method,
                  "range-query method: tw | naive | lb | st | cascade");
  flags.AddString("plan", &plan,
                  "--method cascade stage planning: paper | cascade | auto");
  flags.AddInt64("shards", &shards,
                 "partition the database across this many per-shard "
                 "engines with scatter-gather fan-out (1 = unsharded)");
  flags.AddString("partition", &partition,
                  "--shards>1 partitioner: hash | range");
  std::string profile_out;
  int64_t profile_hz = 99;
  flags.AddString("profile_out", &profile_out,
                  "sample the whole run with the SIGPROF CPU profiler and "
                  "write the profile here (.json = speedscope, otherwise "
                  "collapsed stacks)");
  flags.AddInt64("profile_hz", &profile_hz,
                 "--profile_out sampling rate per CPU-second");
  bool use_cache = false;
  int64_t cache_mb = 64;
  flags.AddBool("cache", &use_cache,
                "run the queries through a semantic result cache and "
                "print its hit/miss totals (see docs/CACHING.md)");
  flags.AddInt64("cache_mb", &cache_mb, "--cache byte budget (MiB)");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  ScopedCliProfile profile(profile_out, static_cast<int>(profile_hz));
  MethodKind method_kind;
  if (!ParseMethod(method, &method_kind)) {
    return 1;
  }
  PlanMode plan_mode;
  if (!ParsePlan(plan, &plan_mode)) {
    return 1;
  }
  if (eps < 0.0 && k <= 0) {
    if (stats_mode) {
      eps = dataset_kind == "stock" ? 4.0 : 0.1;  // demo workload default
    } else {
      std::fprintf(stderr, "pass --eps <tol> for a range query or --k <n> "
                           "for kNN\n");
      return 1;
    }
  }

  // Load or synthesize the database.
  Dataset dataset;
  if (!LoadDatabase(data_path, dataset_kind, &dataset)) {
    return 1;
  }
  if (dataset.empty()) {
    std::fprintf(stderr, "empty dataset\n");
    return 1;
  }
  const DatasetStats stats = dataset.ComputeStats();
  std::printf("database: %zu sequences, lengths %zu..%zu (avg %.0f)\n",
              stats.num_sequences, stats.min_length, stats.max_length,
              stats.avg_length);

  // Build the query before the dataset moves into the engine (a sharded
  // engine splits it and keeps no global copy).
  Sequence query;
  if (!query_path.empty()) {
    Dataset queries;
    const Status status = LoadDatasetFromCsv(query_path, &queries);
    if (!status.ok() || queries.empty()) {
      std::fprintf(stderr, "cannot load query: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    query = queries[0];
  } else {
    if (query_id < 0 || static_cast<size_t>(query_id) >= dataset.size()) {
      std::fprintf(stderr, "--query_id out of range\n");
      return 1;
    }
    const Sequence& base = dataset[static_cast<size_t>(query_id)];
    query = perturb
                ? PerturbSequence(base, static_cast<uint64_t>(seed))
                : base;
    std::printf("query: %s copy of sequence #%lld (%zu elements)\n",
                perturb ? "perturbed" : "exact",
                static_cast<long long>(query_id), query.size());
  }

  EngineOptions options;
  options.build_st_filter = compare || method_kind == MethodKind::kStFilter;
  options.cascade_planner.mode = plan_mode;
  ServingEngine serving;
  if (!BuildServingEngine(std::move(dataset), options, shards, partition,
                          nullptr, &serving)) {
    return 1;
  }
  const EngineLike& engine = *serving.get();
  // Trace export is a plain span-to-JSON writer; any shard's engine
  // serves for a sharded trace.
  const Engine& trace_engine = serving.single != nullptr
                                   ? *serving.single
                                   : serving.sharded->shard(0);
  if (serving.sharded != nullptr) {
    std::printf("sharded engine: %zu shards, %s partitioning\n",
                serving.sharded->num_shards(),
                PartitionerKindName(serving.sharded->partitioner()));
  }

  // --cache routes the queries through an executor fronted by the
  // semantic cache; the cache registers its warpindex_cache_executor_*
  // series in the engine's registry, so `stats` mode reports the same
  // metric names `serve --cache` exports on /metrics.
  std::unique_ptr<SemanticCache> cache;
  std::unique_ptr<QueryExecutor> cached_executor;
  if (use_cache) {
    SemanticCacheOptions cache_options;
    cache_options.max_bytes = static_cast<size_t>(cache_mb) << 20;
    cache_options.metrics = &engine.metrics();
    cache = std::make_unique<SemanticCache>(cache_options);
    QueryExecutorOptions exec_options;
    exec_options.num_threads = 1;
    exec_options.cache = cache.get();
    cached_executor =
        std::make_unique<QueryExecutor>(serving.get(), exec_options);
  }

  const bool tracing = !trace_out.empty() || !trace_events_out.empty();
  // Traces headed for the trace-event file (one timeline document, so
  // both a kNN and a range trace from this invocation share it).
  std::vector<Trace> event_traces;

  if (k > 0) {
    Trace trace;
    const KnnResult result =
        cached_executor != nullptr
            ? cached_executor->SearchKnn(query, static_cast<size_t>(k),
                                         tracing ? &trace : nullptr)
            : engine.SearchKnn(query, static_cast<size_t>(k),
                               tracing ? &trace : nullptr);
    std::printf("\n%zu nearest sequences under D_tw:\n",
                result.neighbors.size());
    for (const KnnMatch& n : result.neighbors) {
      std::printf("  #%-6lld dtw=%.5f\n", static_cast<long long>(n.id),
                  n.distance);
    }
    std::printf("(refined %zu candidates; %.2f ms CPU, %.1f ms simulated "
                "elapsed)\n",
                result.num_refined, result.cost.wall_ms,
                engine.ElapsedMillis(result.cost));
    if (tracing) {
      if (!trace_out.empty()) {
        const Status status =
            trace_engine.ExportTrace(trace, trace_out, query_id);
        if (!status.ok()) {
          std::fprintf(stderr, "%s\n", status.ToString().c_str());
          return 1;
        }
        std::printf("\ntrace (%zu spans, appended to %s):\n",
                    trace.spans().size(), trace_out.c_str());
      } else {
        std::printf("\ntrace (%zu spans):\n", trace.spans().size());
      }
      PrintTraceTree(trace);
      if (!trace_events_out.empty()) {
        event_traces.push_back(trace);
      }
    }
  }

  if (eps >= 0.0) {
    Trace trace;
    const SearchResult result =
        cached_executor != nullptr
            ? cached_executor
                  ->Submit(method_kind, query, eps,
                           tracing ? &trace : nullptr)
                  .get()
            : engine.SearchWith(method_kind, query, eps,
                                tracing ? &trace : nullptr);
    std::printf("\nsequences with D_tw <= %.4f: %zu (from %zu candidates)\n",
                eps, result.matches.size(), result.num_candidates);
    for (const SequenceId id : result.matches) {
      std::printf("  #%lld\n", static_cast<long long>(id));
    }
    std::printf("(%.2f ms CPU, %.1f ms simulated elapsed)\n",
                result.cost.wall_ms, engine.ElapsedMillis(result.cost));
    PrintPruneTable(result.cost.prunes);
    if (tracing) {
      if (!trace_out.empty()) {
        const Status status =
            trace_engine.ExportTrace(trace, trace_out, query_id);
        if (!status.ok()) {
          std::fprintf(stderr, "%s\n", status.ToString().c_str());
          return 1;
        }
        std::printf("\ntrace (%zu spans, appended to %s):\n",
                    trace.spans().size(), trace_out.c_str());
      } else {
        std::printf("\ntrace (%zu spans):\n", trace.spans().size());
      }
      PrintTraceTree(trace);
      if (!trace_events_out.empty()) {
        event_traces.push_back(trace);
      }
    }
    if (compare) {
      std::printf("\n%-22s %12s %14s\n", "method", "candidates",
                  "elapsed_ms(sim)");
      for (const MethodKind kind :
           {MethodKind::kTwSimSearch, MethodKind::kTwSimSearchCascade,
            MethodKind::kLbScan, MethodKind::kNaiveScan,
            MethodKind::kStFilter}) {
        const SearchResult r = engine.SearchWith(kind, query, eps);
        std::printf("%-22s %12zu %14.1f\n", MethodKindName(kind),
                    r.num_candidates, engine.ElapsedMillis(r.cost));
      }
    }
  }

  if (!trace_events_out.empty()) {
    std::vector<const Trace*> traces;
    traces.reserve(event_traces.size());
    for (const Trace& t : event_traces) {
      traces.push_back(&t);
    }
    const Status status =
        trace_engine.ExportTraceEvents(traces, trace_events_out);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu trace(s) to %s (trace-event JSON; open in "
                "ui.perfetto.dev)\n",
                traces.size(), trace_events_out.c_str());
  }

  if (cache != nullptr) {
    const SemanticCacheStats cache_stats = cache->TakeStats();
    std::printf("\ncache: warpindex_cache_executor_hits_total=%llu "
                "warpindex_cache_executor_misses_total=%llu "
                "(hit ratio %.3f, %zu entries, %zu bytes)\n",
                static_cast<unsigned long long>(cache_stats.hits),
                static_cast<unsigned long long>(cache_stats.misses),
                cache_stats.hit_ratio, cache_stats.entries,
                cache_stats.bytes);
  }

  if (stats_mode) {
    const BuildInfo build_info = GetBuildInfo();
    const ProcessSelfMetrics process = CollectProcessSelfMetrics();
    std::printf("\n== metrics snapshot ==\n%s",
                MetricsToPrometheusText(engine.metrics().TakeSnapshot(),
                                        &build_info, &process)
                    .c_str());
  }
  return 0;
}

}  // namespace
}  // namespace warpindex

int main(int argc, char** argv) { return warpindex::Run(argc, argv); }
