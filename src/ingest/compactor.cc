#include "ingest/compactor.h"

#include <chrono>

#include "common/timer.h"
#include "ingest/ingest_engine.h"

namespace warpindex {

Compactor::Compactor(IngestEngine* engine, double poll_ms, bool use_pool)
    : engine_(engine),
      poll_ms_(poll_ms > 0.0 ? poll_ms : 25.0),
      use_pool_(use_pool),
      pending_(engine->num_shards()),
      last_writes_(engine->num_shards(), 0) {
  thread_ = std::thread([this] { Loop(); });
}

Compactor::~Compactor() { Stop(); }

void Compactor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_ && !thread_.joinable()) {
      return;
    }
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
  // Drain: a scheduled pool job touches the engine and clears its pending
  // flag last, so waiting on the flags guarantees no compaction outlives
  // us. (The pool's drain-don't-drop shutdown runs queued jobs, so every
  // set flag eventually clears.)
  for (std::atomic<bool>& pending : pending_) {
    while (pending.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

void Compactor::Loop() {
  WallTimer since_last;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock,
                   std::chrono::duration<double, std::milli>(poll_ms_),
                   [&] { return stop_; });
      if (stop_) {
        return;
      }
    }
    const double dt_s = since_last.ElapsedSeconds();
    since_last.Reset();

    size_t backlog = 0;
    for (size_t s = 0; s < pending_.size(); ++s) {
      const DeltaShard::Stats stats = engine_->DeltaStats(s);
      if (dt_s > 0.0) {
        engine_->SetWriteRate(
            s, static_cast<double>(stats.writes_total - last_writes_[s]) /
                   dt_s);
      }
      last_writes_[s] = stats.writes_total;

      if (!engine_->ShouldCompact(s)) {
        continue;
      }
      ++backlog;
      if (pending_[s].exchange(true, std::memory_order_acq_rel)) {
        continue;  // a compaction of this shard is already in flight
      }
      auto job = [this, s] {
        engine_->CompactShard(s);
        pending_[s].store(false, std::memory_order_release);
      };
      bool scheduled = false;
      if (use_pool_ && engine_->pool() != nullptr) {
        scheduled = engine_->pool()->TrySubmitDetached(job);
      }
      if (!scheduled) {
        job();
      }
    }
    engine_->SetCompactionBacklog(backlog);
    polls_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace warpindex
