// IngestEngine: a writable, serving sequence database — the streaming
// ingest subsystem that turns the build-then-serve ShardedEngine shape
// into a live system.
//
// Architecture (LSM-style; see docs/INGEST.md):
//
//   * K partitions. Each pairs an immutable, STR-bulk-loaded base
//     Engine (published through an epoch ShardView; shard/shard_view.h)
//     with a small mutable DeltaShard absorbing concurrent
//     Insert/Delete (ingest/delta_shard.h).
//
//   * Reads take an epoch snapshot: under a brief shared lock a query
//     pins the current ShardView and copies each partition's visible
//     delta (shared_ptr aliases + tombstone ids). Everything after —
//     base scatter-gather, delta scans, DTW — runs lock-free against
//     that snapshot, so a query sees one consistent union of base +
//     delta even while writes land and the compactor swaps epochs.
//
//   * Answers carry the exact merge semantics of the sharded engine:
//     range results are the union of per-base results (feature-MBR
//     pruning included) and a delta scan (D_tw-lb pre-filter, then
//     thresholded DTW — precisely Algorithm 1's predicate), tombstones
//     filtered exactly, global ids sorted ascending. kNN fans out with
//     the SharedKnnBound — the delta scan runs first to pre-tighten the
//     bound, each base is asked for k + (its tombstone count) neighbors
//     so filtering dead ids can never starve the merge, and the final
//     (distance, id)-ordered truncation is bit-identical to a
//     from-scratch single engine over the same live set.
//
//   * A background Compactor (ingest/compactor.h) freezes a delta that
//     exceeds size/tombstone/age thresholds, merges it with the live
//     base rows into a freshly bulk-loaded Engine off-lock, then takes
//     the epoch writer lock for the atomic swap: new ShardView
//     published, frozen writes dropped from the delta. Range-partitioner
//     cut points are recomputed when a shard outgrows its neighbors
//     (routing only — placement never changes answers).
//
// Consistency contract: at any quiescent point (no writes in flight)
// every query answer is bit-identical to a from-scratch Engine over the
// live set. Under concurrent writes each query observes an atomic
// prefix-consistent snapshot per partition: every write acknowledged
// before the query began is visible, none acknowledged after it
// completed is, and in-flight writes appear atomically or not at all.
//
// Thread-safety: all query entry points are const and freely
// concurrent; Insert/Delete are freely concurrent with queries, each
// other, and compaction. Save() compacts first and requires no
// concurrent writes. AttachPool before serving, like ShardedEngine.

#ifndef WARPINDEX_INGEST_INGEST_ENGINE_H_
#define WARPINDEX_INGEST_INGEST_ENGINE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/timer.h"
#include "core/engine.h"
#include "core/engine_like.h"
#include "exec/thread_pool.h"
#include "ingest/delta_shard.h"
#include "obs/trace_store.h"
#include "shard/scatter_gather.h"
#include "shard/shard_view.h"

namespace warpindex {

class Compactor;

struct IngestOptions {
  // Number of partitions (>= 1).
  size_t num_shards = 4;
  PartitionerKind partitioner = PartitionerKind::kHash;
  // Per-base-shard engine configuration; also provides the DTW options
  // the delta scan evaluates with and the R*-style insert knobs
  // (EngineOptions::rtree_*) applied to every compacted rebuild.
  EngineOptions engine;

  // ---- Compaction triggers (evaluated per partition).
  // Buffered delta entries that force a merge.
  size_t compact_max_delta_entries = 512;
  // Tombstones that force a merge (deletes rewrite the base).
  size_t compact_max_tombstones = 256;
  // Age of the oldest buffered entry that forces a merge; 0 disables.
  double compact_max_delta_age_ms = 0.0;
  // Poll cadence of the background compactor.
  double compact_poll_ms = 25.0;
  // Start the background compactor thread. Off = compaction only via
  // explicit CompactShard/CompactAll (deterministic tests).
  bool start_compactor = true;
  // Run triggered compactions on the attached pool (scheduling them off
  // the poll thread) instead of inline on it.
  bool compact_on_pool = true;
  // A shard whose live base row count exceeds rebalance_factor * the
  // per-shard average after a compaction gets its range cut point
  // recomputed (median split) so future inserts spill to a neighbor.
  // Range partitioner only; <= 1 disables.
  double rebalance_factor = 2.0;

  // Optional (borrowed; must outlive the engine): compaction span trees
  // ("compaction" root with freeze/build/swap children) are offered
  // here for /tracez retention.
  TraceStore* trace_store = nullptr;
};

class IngestEngine : public EngineLike {
 public:
  // Builds the initial epoch from `dataset` (consumed): partitioned
  // like ShardedEngine, one bulk-loaded base Engine per shard, empty
  // deltas. Global ids 0..n-1 are the dataset positions; inserts
  // continue the id space monotonically (ids are never reused).
  IngestEngine(Dataset dataset, IngestOptions options);
  ~IngestEngine() override;

  IngestEngine(const IngestEngine&) = delete;
  IngestEngine& operator=(const IngestEngine&) = delete;

  // ---- Queries (EngineLike).

  SearchResult Search(const Sequence& query, double epsilon,
                      Trace* trace = nullptr) const {
    return SearchWith(MethodKind::kTwSimSearch, query, epsilon, trace);
  }
  SearchResult SearchWith(MethodKind kind, const Sequence& query,
                          double epsilon, Trace* trace = nullptr,
                          DtwScratch* scratch = nullptr) const override;
  KnnResult SearchKnn(const Sequence& query, size_t k,
                      Trace* trace = nullptr) const override;
  // SearchKnn with the cross-partition bound pre-tightened to a valid
  // upper bound on the k-th distance (EngineLike); identical answers.
  KnnResult SearchKnnSeeded(const Sequence& query, size_t k,
                            double seed_bound,
                            Trace* trace = nullptr) const override;

  MetricsRegistry& metrics() const override { return *metrics_; }
  DtwOptions dtw_options() const override { return options_.engine.dtw; }
  double ElapsedMillis(const SearchCost& cost) const override;
  const IngestEngine* AsIngestEngine() const override { return this; }

  // Advances on every successful Insert, Delete, and compaction swap —
  // the semantic cache's invalidation signal (see EngineLike). Reads
  // are acquire so a version observed AFTER a query covers every write
  // the query could have seen.
  uint64_t DataVersion() const override {
    return data_version_.load(std::memory_order_acquire);
  }

  // ---- Writes. Safe to call concurrently with queries, each other,
  // and compaction; each call is atomic and visible to every query that
  // starts after it returns.

  // Buffers `s` in its partition's delta; returns the new global id.
  SequenceId Insert(Sequence s);

  // Tombstones `id` (a base sequence or a buffered insert). False if
  // unknown or already deleted.
  bool Delete(SequenceId id);

  // ---- Compaction.

  // Merges shard `s`'s frozen delta + tombstones into a freshly
  // bulk-loaded base and publishes the next epoch. Returns false when
  // there was nothing to merge. Safe concurrently with queries and
  // writes; concurrent compactions serialize.
  bool CompactShard(size_t s);
  // CompactShard over every shard; returns how many merged anything.
  size_t CompactAll();

  // ---- Persistence: manifest v2 (dropped-id sentinels + range cuts;
  // shard/shard_io.h) + per-shard Engine::Save directories. Compacts
  // everything first, so the saved form has empty deltas — which is
  // exactly what makes the directory re-openable by the read-only
  // ShardedEngine::Open as well. No concurrent writes during Save.
  Status Save(const std::string& dir);
  static Status Open(const std::string& dir, IngestOptions options,
                     std::unique_ptr<IngestEngine>* out);

  // ---- Topology / wiring.

  size_t num_shards() const { return deltas_.size(); }
  PartitionerKind partitioner() const { return options_.partitioner; }
  const IngestOptions& options() const { return options_; }
  // Lends a pool for query fan-out and (with compact_on_pool) compaction
  // scheduling. Wire before serving; null detaches.
  void AttachPool(ThreadPool* pool) { pool_ = pool; }
  ThreadPool* pool() const { return pool_; }

  size_t live_size() const {
    return static_cast<size_t>(live_count_.load(std::memory_order_relaxed));
  }
  // Size of the global id space (next id to be assigned).
  size_t id_space() const;
  // The current epoch snapshot (tests and introspection).
  std::shared_ptr<const ShardView> CurrentView() const;

  // ---- Observability (feeds the /statusz "ingest" section).

  struct ShardStatus {
    size_t shard_index = 0;
    size_t base_sequences = 0;  // rows in the base engine
    size_t delta_entries = 0;   // buffered log entries (tombstoned incl.)
    size_t tombstones = 0;
    uint64_t writes_total = 0;
    double write_rate_per_s = 0.0;  // over the compactor's poll window
    uint64_t compactions = 0;
    double last_compaction_ms = 0.0;  // duration; 0 = never compacted
    Engine::Health base_health;
    ShardFeatureBounds bounds;
  };
  struct Health {
    size_t num_shards = 0;
    PartitionerKind partitioner = PartitionerKind::kHash;
    uint64_t epoch = 0;
    size_t live_sequences = 0;
    size_t id_space = 0;
    uint64_t inserts_total = 0;
    uint64_t deletes_total = 0;
    uint64_t compactions_total = 0;
    uint64_t cut_rebalances_total = 0;
    size_t compaction_backlog = 0;  // shards currently over threshold
    std::vector<ShardStatus> shards;
  };
  Health TakeHealthSnapshot() const;

  // Whether shard `s` currently exceeds a compaction trigger (the
  // compactor's poll predicate; exposed for tests and backlog gauges).
  bool ShouldCompact(size_t s) const;
  // The delta stats the compactor polls.
  DeltaShard::Stats DeltaStats(size_t s) const {
    return deltas_[s]->TakeStats();
  }
  void SetWriteRate(size_t s, double per_s) {
    deltas_[s]->set_write_rate(per_s);
  }
  // Engine-lifetime clock (ms), shared with DeltaEntry::appended_ms.
  double NowMillis() const { return clock_.ElapsedMillis(); }
  void SetCompactionBacklog(size_t backlog);

 private:
  friend class Compactor;

  // Open() path: adopts a restored view.
  IngestEngine(std::shared_ptr<const ShardView> view,
               std::vector<uint32_t> part_of, IngestOptions options);

  // What a query runs against: the pinned view + per-partition delta
  // copies, taken under one brief shared epoch lock.
  struct QuerySnapshot {
    std::shared_ptr<const ShardView> view;
    std::vector<DeltaShard::Snapshot> parts;
  };
  QuerySnapshot AcquireSnapshot() const;

  // Shared body of SearchKnn / SearchKnnSeeded; `seed_bound` pre-
  // tightens the shared bound (kInfiniteDistance = no seed).
  KnnResult SearchKnnImpl(const Sequence& query, size_t k,
                          double seed_bound, Trace* trace) const;

  void InitWiring();
  size_t RouteInsert(const ShardView& view, const FeatureVector& feature,
                     SequenceId id) const;
  // Recomputes the range cut point of an outgrown shard `s` in `next`
  // (median split; routing only). Called under the epoch writer lock.
  void MaybeRebalanceCuts(ShardView* next, size_t s);

  IngestOptions options_;
  DiskModel disk_model_;
  Dtw dtw_;  // delta-scan evaluations (same options as the base engines)
  WallTimer clock_;

  // Epoch state: view_ swaps under the writer side; queries/writes pin
  // it under the reader side. Lock order: epoch_mu_ -> ids_mu_ ->
  // DeltaShard::mu_ (compaction additionally serializes on
  // compaction_mu_, taken before any of these).
  mutable std::shared_mutex epoch_mu_;
  std::shared_ptr<const ShardView> view_;

  std::vector<std::unique_ptr<DeltaShard>> deltas_;

  // Global id allocation + id -> partition routing history (kDroppedShard
  // for ids a loaded manifest marked dropped).
  mutable std::mutex ids_mu_;
  std::vector<uint32_t> part_of_;

  std::mutex compaction_mu_;
  std::unique_ptr<Compactor> compactor_;

  ThreadPool* pool_ = nullptr;
  std::atomic<int64_t> live_count_{0};
  // Per-instance write stats for Health (the registry counters below may
  // be shared across engines; Health must describe THIS engine).
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> deletes_{0};
  std::atomic<uint64_t> cut_rebalances_{0};
  // Visible-data version; see DataVersion(). Bumped with release order
  // AFTER the write is visible to new queries.
  std::atomic<uint64_t> data_version_{0};
  mutable std::vector<std::atomic<uint64_t>> shard_compactions_;
  mutable std::vector<std::atomic<double>> shard_last_compaction_ms_;

  // Metric handles (shared registry; see docs/OBSERVABILITY.md).
  MetricsRegistry* metrics_ = nullptr;
  Counter* inserts_total_ = nullptr;
  Counter* deletes_total_ = nullptr;
  Counter* compactions_total_ = nullptr;
  Counter* cut_rebalances_total_ = nullptr;
  Gauge* delta_entries_gauge_ = nullptr;
  Gauge* backlog_gauge_ = nullptr;
  Histogram* compaction_ms_hist_ = nullptr;
  std::vector<Gauge*> shard_delta_gauges_;
};

}  // namespace warpindex

#endif  // WARPINDEX_INGEST_INGEST_ENGINE_H_
