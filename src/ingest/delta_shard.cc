#include "ingest/delta_shard.h"

#include <algorithm>

namespace warpindex {
namespace {

std::vector<SequenceId> SortedIds(
    const std::unordered_set<SequenceId>& ids) {
  std::vector<SequenceId> out(ids.begin(), ids.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

void DeltaShard::Append(DeltaEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  entry_ids_.insert(entry.id);
  entries_.push_back(std::move(entry));
  writes_total_.fetch_add(1, std::memory_order_relaxed);
}

DeltaShard::DeadMark DeltaShard::MarkDead(SequenceId id,
                                          bool known_live_in_base) {
  std::lock_guard<std::mutex> lock(mu_);
  if (dead_.count(id) != 0) {
    return DeadMark::kAlreadyDead;
  }
  if (entry_ids_.count(id) == 0 && !known_live_in_base) {
    return DeadMark::kUnknown;
  }
  dead_.insert(id);
  writes_total_.fetch_add(1, std::memory_order_relaxed);
  return DeadMark::kMarked;
}

DeltaShard::Snapshot DeltaShard::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.entries.reserve(entries_.size());
  for (const DeltaEntry& entry : entries_) {
    if (dead_.count(entry.id) == 0) {
      snap.entries.push_back(entry);
    }
  }
  snap.dead = SortedIds(dead_);
  return snap;
}

DeltaShard::Frozen DeltaShard::Freeze() const {
  std::lock_guard<std::mutex> lock(mu_);
  Frozen frozen;
  frozen.entry_count = entries_.size();
  frozen.entries.assign(entries_.begin(), entries_.end());
  frozen.dead = SortedIds(dead_);
  return frozen;
}

void DeltaShard::ApplyCompaction(const Frozen& frozen) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < frozen.entry_count; ++i) {
    entry_ids_.erase(entries_.front().id);
    entries_.pop_front();
  }
  for (const SequenceId id : frozen.dead) {
    dead_.erase(id);
  }
}

DeltaShard::Stats DeltaShard::TakeStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.entries = entries_.size();
  stats.dead = dead_.size();
  stats.oldest_ms = entries_.empty() ? 0.0 : entries_.front().appended_ms;
  stats.writes_total = writes_total_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace warpindex
