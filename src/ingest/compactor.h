// Compactor: the ingest engine's background maintenance thread.
//
// One thread polls every delta shard on a fixed cadence and, for each
// shard over a compaction trigger (entry count, tombstone count, or
// entry age — IngestEngine::ShouldCompact), schedules one CompactShard
// call — on the engine's attached pool when configured (so the poll
// loop never blocks on a merge), inline on the poll thread otherwise.
// A per-shard pending flag keeps at most one outstanding compaction per
// shard however slow merges get.
//
// The poll loop doubles as the write-rate sampler: each tick it derives
// every shard's writes/second from the delta's cumulative write counter
// and publishes it for /statusz, plus the backlog gauge (shards
// currently over threshold).
//
// Shutdown: Stop() (also the destructor) wakes and joins the poll
// thread, then waits for every in-flight scheduled compaction to finish
// — the jobs touch the engine, and the engine's destructor destroys the
// compactor first, so no compaction can outlive the engine.

#ifndef WARPINDEX_INGEST_COMPACTOR_H_
#define WARPINDEX_INGEST_COMPACTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace warpindex {

class IngestEngine;

class Compactor {
 public:
  // `engine` is borrowed and must outlive this object. `use_pool` runs
  // triggered compactions via the engine's attached pool when one is
  // wired (falling back inline when submission fails or no pool is
  // attached).
  Compactor(IngestEngine* engine, double poll_ms, bool use_pool);
  ~Compactor();

  Compactor(const Compactor&) = delete;
  Compactor& operator=(const Compactor&) = delete;

  // Stops polling, joins the thread, and drains scheduled compactions.
  // Idempotent.
  void Stop();

  uint64_t polls() const { return polls_.load(std::memory_order_relaxed); }

 private:
  void Loop();

  IngestEngine* engine_;
  const double poll_ms_;
  const bool use_pool_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;

  // One outstanding compaction per shard at most.
  std::vector<std::atomic<bool>> pending_;
  std::vector<uint64_t> last_writes_;
  std::atomic<uint64_t> polls_{0};
  std::thread thread_;
};

}  // namespace warpindex

#endif  // WARPINDEX_INGEST_COMPACTOR_H_
