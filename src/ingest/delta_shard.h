// DeltaShard: the small mutable write buffer in front of one immutable
// base shard of the streaming ingest engine (ingest/ingest_engine.h).
//
// LSM-style split of responsibilities: concurrent Insert/Delete land
// here (an append-ordered entry log plus a tombstone set, all under one
// short mutex), while the STR-bulk-loaded base Engine keeps serving
// reads untouched. Queries take a Snapshot — a copy of the currently
// visible entries (shared_ptr aliases, so copying is cheap and the
// sequences outlive any concurrent compaction) plus the tombstone ids —
// and do every expensive step (lower bounds, DTW) outside the lock.
//
// Compaction freezes a prefix of the log (Freeze), merges it into a
// freshly bulk-loaded base off-lock, then atomically applies the result
// (ApplyCompaction, called under the engine's epoch writer lock):
// exactly the frozen entries leave the log and exactly the frozen
// tombstones leave the set, so writes that raced the merge stay
// buffered. See docs/INGEST.md for the exactness argument.
//
// Thread-safety: all methods may race freely; each takes the shard
// mutex for O(delta size) or less. The stats counters are relaxed
// atomics for dashboards.

#ifndef WARPINDEX_INGEST_DELTA_SHARD_H_
#define WARPINDEX_INGEST_DELTA_SHARD_H_

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "sequence/feature.h"
#include "sequence/sequence.h"

namespace warpindex {

// One buffered insert. The feature tuple is extracted once at write
// time; queries scan it for the D_tw-lb pre-filter without touching the
// sequence data.
struct DeltaEntry {
  SequenceId id = kInvalidSequenceId;  // global id
  FeatureVector feature;
  std::shared_ptr<const Sequence> sequence;
  // Engine-clock timestamp of the append (ms); drives the age-based
  // compaction trigger.
  double appended_ms = 0.0;
};

class DeltaShard {
 public:
  // What a query sees: the visible (not tombstoned) entries and the
  // tombstone ids (sorted ascending) that filter base-shard results.
  struct Snapshot {
    std::vector<DeltaEntry> entries;
    std::vector<SequenceId> dead;
  };

  // A compaction unit: the first `entry_count` log entries verbatim
  // (tombstoned ones included — the merge drops them) and the tombstone
  // set at freeze time, sorted ascending.
  struct Frozen {
    size_t entry_count = 0;
    std::vector<DeltaEntry> entries;
    std::vector<SequenceId> dead;
  };

  struct Stats {
    size_t entries = 0;     // buffered log entries (tombstoned included)
    size_t dead = 0;        // tombstone set size
    double oldest_ms = 0.0; // appended_ms of the oldest entry (0 if none)
    uint64_t writes_total = 0;
  };

  enum class DeadMark {
    kMarked,       // id transitioned live -> dead
    kAlreadyDead,  // a tombstone for id already exists
    kUnknown,      // id is neither buffered here nor live in the base
  };

  DeltaShard() = default;
  DeltaShard(const DeltaShard&) = delete;
  DeltaShard& operator=(const DeltaShard&) = delete;

  void Append(DeltaEntry entry);

  // Tombstones `id`. `known_live_in_base` tells the shard the caller
  // resolved `id` to a live sequence of the base engine; without it the
  // id must be a buffered entry to be markable.
  DeadMark MarkDead(SequenceId id, bool known_live_in_base);

  Snapshot TakeSnapshot() const;
  Frozen Freeze() const;

  // Applies a completed merge of `frozen` into the base: drops the
  // frozen log prefix and erases the frozen tombstones. The caller must
  // hold the engine's epoch writer lock so no query can pair the new
  // base with a delta that no longer buffers those writes.
  void ApplyCompaction(const Frozen& frozen);

  Stats TakeStats() const;

  // Writes/second over the compactor's last poll interval (EWMA set by
  // the poll loop; 0 without a running compactor).
  void set_write_rate(double per_s) {
    write_rate_.store(per_s, std::memory_order_relaxed);
  }
  double write_rate() const {
    return write_rate_.load(std::memory_order_relaxed);
  }
  uint64_t writes_total() const {
    return writes_total_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mu_;
  std::deque<DeltaEntry> entries_;
  // Ids currently buffered in entries_ (tombstoned included).
  std::unordered_set<SequenceId> entry_ids_;
  // Tombstones: ids deleted since the last compaction consumed them
  // (base ids and buffered delta ids alike).
  std::unordered_set<SequenceId> dead_;

  std::atomic<uint64_t> writes_total_{0};
  std::atomic<double> write_rate_{0.0};
};

}  // namespace warpindex

#endif  // WARPINDEX_INGEST_DELTA_SHARD_H_
