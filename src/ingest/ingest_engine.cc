#include "ingest/ingest_engine.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <filesystem>
#include <limits>
#include <string>
#include <system_error>
#include <utility>

#include "ingest/compactor.h"
#include "shard/shard_io.h"

namespace warpindex {
namespace {

Point QueryFeaturePoint(const FeatureVector& f) {
  const std::array<double, kFeatureDims> p = f.AsPoint();
  return Point::FromArray(p.data(), kFeatureDims);
}

FeatureKey LowestFeatureKey() {
  FeatureKey key;
  key.fill(-std::numeric_limits<double>::infinity());
  return key;
}

// Count of `dead` ids (sorted) present in `global_of` (sorted): how many
// of a base shard's rows a query's tombstone filter can remove — the kNN
// per-shard k inflation.
size_t CountDeadInBase(const std::vector<SequenceId>& global_of,
                       const std::vector<SequenceId>& dead) {
  size_t count = 0;
  size_t cursor = 0;
  for (const SequenceId id : dead) {
    while (cursor < global_of.size() && global_of[cursor] < id) {
      ++cursor;
    }
    if (cursor < global_of.size() && global_of[cursor] == id) {
      ++count;
      ++cursor;
    }
  }
  return count;
}

bool IsDead(const std::vector<SequenceId>& dead, SequenceId id) {
  return std::binary_search(dead.begin(), dead.end(), id);
}

}  // namespace

IngestEngine::IngestEngine(Dataset dataset, IngestOptions options)
    : options_(std::move(options)),
      disk_model_(options_.engine.disk, options_.engine.page_size_bytes),
      dtw_(options_.engine.dtw) {
  assert(options_.num_shards >= 1);
  ShardAssignment assignment =
      AssignShards(dataset, options_.partitioner, options_.num_shards);

  // Split into per-shard datasets in ascending global id order, exactly
  // like ShardedEngine: shard-local ids preserve global order, which the
  // kNN tie-break and the compaction merge both rely on.
  std::vector<Dataset> parts(assignment.num_shards);
  std::vector<std::vector<SequenceId>> global_of(assignment.num_shards);
  for (size_t g = 0; g < dataset.size(); ++g) {
    const uint32_t s = assignment.shard_of[g];
    parts[s].Add(dataset[g]);
    global_of[s].push_back(static_cast<SequenceId>(g));
  }

  auto view = std::make_shared<ShardView>();
  view->shards.resize(assignment.num_shards);
  for (size_t s = 0; s < assignment.num_shards; ++s) {
    BaseShard& shard = view->shards[s];
    shard.engine =
        std::make_shared<Engine>(std::move(parts[s]), options_.engine);
    shard.global_of = std::make_shared<const std::vector<SequenceId>>(
        std::move(global_of[s]));
    for (size_t local = 0; local < shard.engine->dataset().size(); ++local) {
      shard.bounds.Cover(ExtractFeature(shard.engine->dataset()[local]));
    }
  }
  if (options_.partitioner == PartitionerKind::kRange) {
    // Initial routing cuts: each shard's maximum feature key, prefix-max
    // so the sequence is non-decreasing. An empty database leaves every
    // cut at -inf, routing all inserts to the last shard until its first
    // compaction rebalances (see MaybeRebalanceCuts).
    view->range_cuts.assign(assignment.num_shards, LowestFeatureKey());
    for (size_t s = 0; s < assignment.num_shards; ++s) {
      const Dataset& data = view->shards[s].engine->dataset();
      for (size_t local = 0; local < data.size(); ++local) {
        view->range_cuts[s] =
            std::max(view->range_cuts[s], FeatureKeyOf(ExtractFeature(data[local])));
      }
      if (s > 0) {
        view->range_cuts[s] =
            std::max(view->range_cuts[s], view->range_cuts[s - 1]);
      }
    }
  }
  view_ = std::move(view);
  part_of_ = std::move(assignment.shard_of);
  live_count_.store(static_cast<int64_t>(dataset.size()),
                    std::memory_order_relaxed);
  InitWiring();
}

IngestEngine::IngestEngine(std::shared_ptr<const ShardView> view,
                           std::vector<uint32_t> part_of,
                           IngestOptions options)
    : options_(std::move(options)),
      disk_model_(options_.engine.disk, options_.engine.page_size_bytes),
      dtw_(options_.engine.dtw),
      view_(std::move(view)),
      part_of_(std::move(part_of)) {
  int64_t live = 0;
  for (const BaseShard& shard : view_->shards) {
    live += static_cast<int64_t>(shard.engine->live_size());
  }
  live_count_.store(live, std::memory_order_relaxed);
  InitWiring();
}

IngestEngine::~IngestEngine() {
  // The compactor must drain (its jobs touch *this) before any member
  // goes away.
  compactor_.reset();
}

void IngestEngine::InitWiring() {
  const size_t k = view_->shards.size();
  deltas_.clear();
  deltas_.reserve(k);
  for (size_t s = 0; s < k; ++s) {
    deltas_.push_back(std::make_unique<DeltaShard>());
  }
  shard_compactions_ = std::vector<std::atomic<uint64_t>>(k);
  shard_last_compaction_ms_ = std::vector<std::atomic<double>>(k);

  metrics_ = options_.engine.metrics != nullptr ? options_.engine.metrics
                                                : &MetricsRegistry::Global();
  inserts_total_ = metrics_->GetCounter("warpindex_ingest_inserts_total",
                                        "Sequences inserted via ingest");
  deletes_total_ = metrics_->GetCounter("warpindex_ingest_deletes_total",
                                        "Sequences tombstoned via ingest");
  compactions_total_ =
      metrics_->GetCounter("warpindex_ingest_compactions_total",
                           "Delta-into-base merges completed");
  cut_rebalances_total_ =
      metrics_->GetCounter("warpindex_ingest_cut_rebalances_total",
                           "Range-partitioner cut recomputations");
  delta_entries_gauge_ =
      metrics_->GetGauge("warpindex_ingest_delta_entries",
                         "Buffered delta entries across all shards");
  backlog_gauge_ = metrics_->GetGauge(
      "warpindex_ingest_compaction_backlog",
      "Shards currently over a compaction trigger threshold");
  compaction_ms_hist_ = metrics_->GetHistogram(
      "warpindex_ingest_compaction_ms", ExponentialBoundaries(0.1, 2.0, 16),
      "Compaction duration (freeze + rebuild + swap), ms");
  shard_delta_gauges_.clear();
  for (size_t s = 0; s < k; ++s) {
    shard_delta_gauges_.push_back(metrics_->GetGauge(
        "warpindex_ingest_delta_entries_shard" + std::to_string(s),
        "Buffered delta entries of shard " + std::to_string(s)));
  }

  if (options_.start_compactor) {
    compactor_ = std::make_unique<Compactor>(this, options_.compact_poll_ms,
                                             options_.compact_on_pool);
  }
}

size_t IngestEngine::id_space() const {
  std::lock_guard<std::mutex> lock(ids_mu_);
  return part_of_.size();
}

std::shared_ptr<const ShardView> IngestEngine::CurrentView() const {
  std::shared_lock<std::shared_mutex> epoch(epoch_mu_);
  return view_;
}

IngestEngine::QuerySnapshot IngestEngine::AcquireSnapshot() const {
  std::shared_lock<std::shared_mutex> epoch(epoch_mu_);
  QuerySnapshot snap;
  snap.view = view_;
  snap.parts.reserve(deltas_.size());
  for (const auto& delta : deltas_) {
    snap.parts.push_back(delta->TakeSnapshot());
  }
  return snap;
}

double IngestEngine::ElapsedMillis(const SearchCost& cost) const {
  return cost.wall_ms + disk_model_.CostMillis(cost.io);
}

size_t IngestEngine::RouteInsert(const ShardView& view,
                                 const FeatureVector& feature,
                                 SequenceId id) const {
  if (options_.partitioner == PartitionerKind::kRange &&
      !view.range_cuts.empty()) {
    return RouteByRangeCuts(view.range_cuts, FeatureKeyOf(feature));
  }
  return static_cast<size_t>(MixSequenceId(static_cast<uint64_t>(id)) %
                             view.shards.size());
}

SequenceId IngestEngine::Insert(Sequence s) {
  assert(!s.empty());
  const FeatureVector feature = ExtractFeature(s);

  std::shared_lock<std::shared_mutex> epoch(epoch_mu_);
  const std::shared_ptr<const ShardView>& view = view_;
  SequenceId id;
  size_t part;
  {
    std::lock_guard<std::mutex> ids(ids_mu_);
    id = static_cast<SequenceId>(part_of_.size());
    part = RouteInsert(*view, feature, id);
    part_of_.push_back(static_cast<uint32_t>(part));
  }
  s.set_id(id);
  DeltaEntry entry;
  entry.id = id;
  entry.feature = feature;
  entry.sequence = std::make_shared<const Sequence>(std::move(s));
  entry.appended_ms = clock_.ElapsedMillis();
  deltas_[part]->Append(std::move(entry));

  live_count_.fetch_add(1, std::memory_order_relaxed);
  inserts_.fetch_add(1, std::memory_order_relaxed);
  data_version_.fetch_add(1, std::memory_order_release);
  inserts_total_->Increment();
  delta_entries_gauge_->Increment();
  shard_delta_gauges_[part]->Increment();
  return id;
}

bool IngestEngine::Delete(SequenceId id) {
  if (id < 0) {
    return false;
  }
  std::shared_lock<std::shared_mutex> epoch(epoch_mu_);
  const std::shared_ptr<const ShardView>& view = view_;
  uint32_t part;
  {
    std::lock_guard<std::mutex> ids(ids_mu_);
    if (static_cast<size_t>(id) >= part_of_.size()) {
      return false;
    }
    part = part_of_[static_cast<size_t>(id)];
  }
  if (part == kDroppedShard) {
    return false;
  }

  // Is `id` currently a live base row of its partition? (A compacted-away
  // id is absent from global_of; a buffered insert is present only in the
  // delta, which MarkDead checks itself.)
  const BaseShard& base = view->shards[part];
  bool base_live = false;
  const std::vector<SequenceId>& global_of = *base.global_of;
  const auto it =
      std::lower_bound(global_of.begin(), global_of.end(), id);
  if (it != global_of.end() && *it == id) {
    const SequenceId local =
        static_cast<SequenceId>(it - global_of.begin());
    base_live = base.engine->Contains(local);
  }

  const DeltaShard::DeadMark mark = deltas_[part]->MarkDead(id, base_live);
  if (mark != DeltaShard::DeadMark::kMarked) {
    return false;
  }
  live_count_.fetch_sub(1, std::memory_order_relaxed);
  deletes_.fetch_add(1, std::memory_order_relaxed);
  data_version_.fetch_add(1, std::memory_order_release);
  deletes_total_->Increment();
  return true;
}

SearchResult IngestEngine::SearchWith(MethodKind kind, const Sequence& query,
                                      double epsilon, Trace* trace,
                                      DtwScratch* /*scratch*/) const {
  WallTimer timer;
  // Caller-thread CPU for this layer's own prune/merge/sort work. CPU the
  // caller spends inside the fan-out (executing sub-tasks) is already in
  // the per-partition costs, so that window is subtracted out.
  ThreadCpuTimer cpu_timer;
  double fanout_caller_cpu_ms = 0.0;
  const QuerySnapshot snap = AcquireSnapshot();
  const FeatureVector qfeat = ExtractFeature(query);
  const Point feature_point = QueryFeaturePoint(qfeat);

  // A partition participates if its base survives the feature-MBR prune
  // (same exactness argument as ShardedEngine; shard/partitioner.h) or
  // its delta buffers anything visible. A pruned base contributes no
  // matches, so its tombstones are irrelevant to this query.
  struct ActivePart {
    size_t part = 0;
    bool base = false;
  };
  std::vector<ActivePart> active;
  active.reserve(snap.view->shards.size());
  for (size_t s = 0; s < snap.view->shards.size(); ++s) {
    const ShardFeatureBounds& bounds = snap.view->shards[s].bounds;
    const bool base_hit =
        bounds.valid && bounds.mbr.MinDistLinf(feature_point) <= epsilon;
    if (base_hit || !snap.parts[s].entries.empty()) {
      active.push_back({s, base_hit});
    }
  }

  struct PartResult {
    SearchResult base;
    SearchResult delta;
  };
  std::vector<PartResult> partials(active.size());
  {
    ScopedSpan span(trace, "scatter_gather");
    TraceCounter(trace, "shard_fanout", static_cast<double>(active.size()));
    TraceCounter(trace, "epoch", static_cast<double>(snap.view->epoch));

    // Same cross-thread stitching discipline as ShardedEngine: one child
    // Trace per sub-task, adopted in partition order after the barrier.
    std::vector<Trace> subs;
    if (trace != nullptr) {
      subs.assign(active.size(), Trace(trace->ContextForSpan(span.index())));
    }
    ThreadCpuTimer fanout_cpu;
    ScatterGather(pool_).Run(active.size(), [&](size_t i) {
      const size_t s = active[i].part;
      DtwScratch scratch;
      Trace* sub = trace != nullptr ? &subs[i] : nullptr;
      size_t shard_span = 0;
      if (sub != nullptr) {
        sub->SetThreadTag(
            static_cast<int32_t>(s),
            static_cast<uint32_t>(ThreadPool::current_worker_index() + 1));
        shard_span = sub->BeginSpan("shard");
        sub->AddCounter("shard_index", static_cast<double>(s));
      }
      if (active[i].base) {
        partials[i].base = snap.view->shards[s].engine->SearchWith(
            kind, query, epsilon, sub, &scratch);
      }
      {
        // Delta scan: Algorithm 1's predicate over the buffered entries —
        // D_tw-lb pre-filter on the stored feature, thresholded DTW on
        // survivors. Entry ids are already global; tombstoned entries are
        // not in the snapshot.
        ScopedSpan delta_span(sub, "delta_scan");
        ThreadCpuTimer delta_cpu;
        SearchResult& delta = partials[i].delta;
        for (const DeltaEntry& entry : snap.parts[s].entries) {
          ++delta.cost.lb_evals;
          if (DtwLowerBoundDistance(entry.feature, qfeat) > epsilon) {
            continue;
          }
          ++delta.num_candidates;
          const DtwResult r = dtw_.DistanceWithThreshold(
              *entry.sequence, query, epsilon, &scratch);
          ++delta.cost.dtw_evals;
          delta.cost.dtw_cells += r.cells;
          if (r.distance <= epsilon) {
            delta.matches.push_back(entry.id);
            delta.distances.push_back(r.distance);
          }
        }
        if (sub != nullptr) {
          sub->AddCounter("delta_entries",
                          static_cast<double>(snap.parts[s].entries.size()));
          sub->AddCounter("delta_matches",
                          static_cast<double>(partials[i].delta.matches.size()));
        }
        delta.cost.cpu_ms = delta_cpu.ElapsedMillis();
      }
      if (sub != nullptr) {
        sub->EndSpan(shard_span);
      }
    });
    fanout_caller_cpu_ms = fanout_cpu.ElapsedMillis();
    if (trace != nullptr) {
      for (const Trace& sub : subs) {
        trace->Adopt(span.index(), sub);
      }
    }
  }

  // Merge: base matches remapped to global ids with the partition's
  // tombstones filtered exactly, plus the delta matches, in ascending
  // global id order — the canonical answer order.
  SearchResult result;
  for (size_t i = 0; i < active.size(); ++i) {
    const size_t s = active[i].part;
    const PartResult& partial = partials[i];
    const std::vector<SequenceId>& global_of = *snap.view->shards[s].global_of;
    const std::vector<SequenceId>& dead = snap.parts[s].dead;
    result.num_candidates +=
        partial.base.num_candidates + partial.delta.num_candidates;
    for (size_t m = 0; m < partial.base.matches.size(); ++m) {
      const SequenceId local = partial.base.matches[m];
      const SequenceId g = global_of[static_cast<size_t>(local)];
      if (!IsDead(dead, g)) {
        result.matches.push_back(g);
        result.distances.push_back(partial.base.distances[m]);
      }
    }
    for (size_t m = 0; m < partial.delta.matches.size(); ++m) {
      result.matches.push_back(partial.delta.matches[m]);
      result.distances.push_back(partial.delta.distances[m]);
    }
    // Base and delta scans ran sequentially within the task (serial
    // merge); across tasks they overlapped (parallel merge).
    SearchCost task_cost = partial.base.cost;
    task_cost.Merge(partial.delta.cost);
    result.cost.MergeParallel(task_cost);
  }
  CanonicalizeMatchOrder(&result);
  result.cost.wall_ms = timer.ElapsedMillis();
  // This layer's own CPU on top of the per-partition CPU summed above.
  result.cost.cpu_ms +=
      std::max(0.0, cpu_timer.ElapsedMillis() - fanout_caller_cpu_ms);
  return result;
}

KnnResult IngestEngine::SearchKnn(const Sequence& query, size_t k,
                                  Trace* trace) const {
  return SearchKnnImpl(query, k, kInfiniteDistance, trace);
}

KnnResult IngestEngine::SearchKnnSeeded(const Sequence& query, size_t k,
                                        double seed_bound,
                                        Trace* trace) const {
  return SearchKnnImpl(query, k, seed_bound, trace);
}

KnnResult IngestEngine::SearchKnnImpl(const Sequence& query, size_t k,
                                      double seed_bound,
                                      Trace* trace) const {
  WallTimer timer;
  // Same caller-CPU accounting as SearchWith.
  ThreadCpuTimer cpu_timer;
  double fanout_caller_cpu_ms = 0.0;
  const QuerySnapshot snap = AcquireSnapshot();
  const FeatureVector qfeat = ExtractFeature(query);

  SharedKnnBound shared_bound;
  // A cache-provided seed upper-bounds the global k-th distance; the
  // strictly-greater pruning below keeps ties, so answers are identical.
  shared_bound.Tighten(seed_bound);

  // Delta pre-scan on the calling thread, BEFORE the base fan-out: the
  // buffered entries are few, and any k-th distance they prove
  // pre-tightens the shared bound every base searcher prunes against.
  // Standard top-k max-heap in the canonical (distance, id) order;
  // pruning is strictly-greater so ties at the bound survive.
  std::vector<KnnMatch> delta_hits;
  SearchCost delta_cost;
  size_t delta_refined = 0;
  {
    ScopedSpan delta_span(trace, "delta_scan");
    DtwScratch scratch;
    for (const DeltaShard::Snapshot& part : snap.parts) {
      for (const DeltaEntry& entry : part.entries) {
        ++delta_cost.lb_evals;
        const double bound = shared_bound.Current();
        if (DtwLowerBoundDistance(entry.feature, qfeat) > bound) {
          continue;
        }
        const DtwResult r = dtw_.DistanceWithThreshold(*entry.sequence, query,
                                                       bound, &scratch);
        ++delta_refined;
        ++delta_cost.dtw_evals;
        delta_cost.dtw_cells += r.cells;
        if (r.distance > bound) {
          continue;
        }
        const KnnMatch match{entry.id, r.distance};
        if (delta_hits.size() < k) {
          delta_hits.push_back(match);
          std::push_heap(delta_hits.begin(), delta_hits.end(), KnnMatchOrder);
          if (delta_hits.size() == k) {
            shared_bound.Tighten(delta_hits.front().distance);
          }
        } else if (KnnMatchOrder(match, delta_hits.front())) {
          std::pop_heap(delta_hits.begin(), delta_hits.end(), KnnMatchOrder);
          delta_hits.back() = match;
          std::push_heap(delta_hits.begin(), delta_hits.end(), KnnMatchOrder);
          shared_bound.Tighten(delta_hits.front().distance);
        }
      }
    }
    TraceCounter(trace, "delta_refined", static_cast<double>(delta_refined));
  }

  // Base fan-out. Each base is asked for k + (its tombstone hit count)
  // neighbors: even if every tombstoned row of the shard lands in its
  // local top list, k live survivors remain — so the shard's k_s-th
  // distance still upper-bounds the global k-th and the SharedKnnBound
  // stays valid, and the dead-filtered merge can never starve below k.
  std::vector<size_t> active;
  active.reserve(snap.view->shards.size());
  for (size_t s = 0; s < snap.view->shards.size(); ++s) {
    if (snap.view->shards[s].bounds.valid) {
      active.push_back(s);
    }
  }
  std::vector<KnnResult> partials(active.size());
  {
    ScopedSpan span(trace, "scatter_gather");
    TraceCounter(trace, "shard_fanout", static_cast<double>(active.size()));
    TraceCounter(trace, "epoch", static_cast<double>(snap.view->epoch));
    std::vector<Trace> subs;
    if (trace != nullptr) {
      subs.assign(active.size(), Trace(trace->ContextForSpan(span.index())));
    }
    ThreadCpuTimer fanout_cpu;
    ScatterGather(pool_).Run(active.size(), [&](size_t i) {
      const size_t s = active[i];
      Trace* sub = trace != nullptr ? &subs[i] : nullptr;
      size_t shard_span = 0;
      if (sub != nullptr) {
        sub->SetThreadTag(
            static_cast<int32_t>(s),
            static_cast<uint32_t>(ThreadPool::current_worker_index() + 1));
        shard_span = sub->BeginSpan("shard");
        sub->AddCounter("shard_index", static_cast<double>(s));
      }
      const size_t k_s =
          k + CountDeadInBase(*snap.view->shards[s].global_of,
                              snap.parts[s].dead);
      partials[i] = snap.view->shards[s].engine->SearchKnnBounded(
          query, k_s, sub, &shared_bound);
      if (sub != nullptr) {
        sub->AddCounter("neighbors",
                        static_cast<double>(partials[i].neighbors.size()));
        sub->AddCounter("refined",
                        static_cast<double>(partials[i].num_refined));
        sub->EndSpan(shard_span);
      }
    });
    fanout_caller_cpu_ms = fanout_cpu.ElapsedMillis();
    if (trace != nullptr) {
      for (const Trace& sub : subs) {
        trace->Adopt(span.index(), sub);
      }
    }
  }

  // Merge: base survivors remapped and tombstone-filtered, plus the delta
  // top list, in canonical (distance, id) order, truncated to k.
  KnnResult result;
  result.num_refined = delta_refined;
  result.cost = delta_cost;
  std::vector<KnnMatch> merged;
  for (size_t i = 0; i < active.size(); ++i) {
    const size_t s = active[i];
    const std::vector<SequenceId>& global_of = *snap.view->shards[s].global_of;
    const std::vector<SequenceId>& dead = snap.parts[s].dead;
    result.num_refined += partials[i].num_refined;
    result.cost.MergeParallel(partials[i].cost);
    for (KnnMatch match : partials[i].neighbors) {
      match.id = global_of[static_cast<size_t>(match.id)];
      if (!IsDead(dead, match.id)) {
        merged.push_back(match);
      }
    }
  }
  merged.insert(merged.end(), delta_hits.begin(), delta_hits.end());
  std::sort(merged.begin(), merged.end(), KnnMatchOrder);
  if (merged.size() > k) {
    merged.resize(k);
  }
  result.neighbors = std::move(merged);
  result.cost.wall_ms = timer.ElapsedMillis();
  result.cost.cpu_ms +=
      std::max(0.0, cpu_timer.ElapsedMillis() - fanout_caller_cpu_ms);
  return result;
}

bool IngestEngine::CompactShard(size_t s) {
  assert(s < deltas_.size());
  std::lock_guard<std::mutex> compaction(compaction_mu_);
  WallTimer timer;
  ThreadCpuTimer cpu_timer;

  Trace trace;
  const bool tracing = options_.trace_store != nullptr;
  size_t root_span = 0;
  if (tracing) {
    root_span = trace.BeginSpan("compaction");
    trace.AddCounter("shard_index", static_cast<double>(s));
  }

  // Freeze: the delta log prefix + tombstone set this merge will consume.
  std::shared_ptr<const ShardView> view;
  DeltaShard::Frozen frozen;
  {
    ScopedSpan freeze_span(tracing ? &trace : nullptr, "freeze");
    std::shared_lock<std::shared_mutex> epoch(epoch_mu_);
    view = view_;
    frozen = deltas_[s]->Freeze();
  }
  if (frozen.entry_count == 0 && frozen.dead.empty()) {
    if (tracing) {
      trace.EndSpan(root_span);
    }
    return false;
  }

  // Build the replacement base off-lock: the live base rows minus the
  // frozen tombstones, merged with the frozen live entries, in ascending
  // global id order (Dataset::Add re-ids to local position, so the new
  // global_of is exactly the merged id list).
  const BaseShard& base = view->shards[s];
  std::shared_ptr<const Engine> new_engine;
  std::shared_ptr<const std::vector<SequenceId>> new_global;
  ShardFeatureBounds new_bounds;
  {
    ScopedSpan build_span(tracing ? &trace : nullptr, "build");
    std::vector<std::pair<SequenceId, const Sequence*>> rows;
    const std::vector<SequenceId>& global_of = *base.global_of;
    rows.reserve(global_of.size() + frozen.entry_count);
    for (size_t local = 0; local < global_of.size(); ++local) {
      const SequenceId g = global_of[local];
      if (!base.engine->Contains(static_cast<SequenceId>(local)) ||
          IsDead(frozen.dead, g)) {
        continue;
      }
      rows.push_back({g, &base.engine->dataset()[local]});
    }
    std::vector<std::pair<SequenceId, const Sequence*>> delta_rows;
    delta_rows.reserve(frozen.entry_count);
    for (size_t i = 0; i < frozen.entry_count; ++i) {
      const DeltaEntry& entry = frozen.entries[i];
      if (!IsDead(frozen.dead, entry.id)) {
        delta_rows.push_back({entry.id, entry.sequence.get()});
      }
    }
    // Concurrent inserts may append out of id order; the base list is
    // ascending by construction.
    std::sort(delta_rows.begin(), delta_rows.end());
    rows.insert(rows.end(), delta_rows.begin(), delta_rows.end());
    std::inplace_merge(rows.begin(), rows.end() - delta_rows.size(),
                       rows.end());

    Dataset merged;
    std::vector<SequenceId> ids;
    ids.reserve(rows.size());
    for (const auto& [g, seq] : rows) {
      merged.Add(*seq);
      ids.push_back(g);
      new_bounds.Cover(ExtractFeature(*seq));
    }
    if (tracing) {
      trace.AddCounter("merged_rows", static_cast<double>(rows.size()));
      trace.AddCounter("frozen_entries",
                       static_cast<double>(frozen.entry_count));
      trace.AddCounter("frozen_tombstones",
                       static_cast<double>(frozen.dead.size()));
    }
    new_engine = std::make_shared<Engine>(std::move(merged), options_.engine);
    new_global =
        std::make_shared<const std::vector<SequenceId>>(std::move(ids));
  }

  // Swap: publish the next epoch and drop the frozen writes from the
  // delta under one writer hold, so no query can pair the new base with
  // a delta that no longer buffers those writes (or vice versa).
  {
    ScopedSpan swap_span(tracing ? &trace : nullptr, "swap");
    std::unique_lock<std::shared_mutex> epoch(epoch_mu_);
    auto next = std::make_shared<ShardView>(*view_);
    next->shards[s].engine = std::move(new_engine);
    next->shards[s].global_of = std::move(new_global);
    next->shards[s].bounds = new_bounds;
    next->epoch = view_->epoch + 1;
    MaybeRebalanceCuts(next.get(), s);
    deltas_[s]->ApplyCompaction(frozen);
    view_ = std::move(next);
    // Compaction preserves answers, but conservatively invalidating here
    // keeps the cache contract trivial: version equality implies the
    // engine state a cached entry answered under is byte-for-byte the
    // state a reuse would query.
    data_version_.fetch_add(1, std::memory_order_release);
  }

  const double duration_ms = timer.ElapsedMillis();
  compactions_total_->Increment();
  shard_compactions_[s].fetch_add(1, std::memory_order_relaxed);
  shard_last_compaction_ms_[s].store(duration_ms, std::memory_order_relaxed);
  compaction_ms_hist_->Observe(duration_ms);
  delta_entries_gauge_->Decrement(static_cast<int64_t>(frozen.entry_count));
  shard_delta_gauges_[s]->Decrement(static_cast<int64_t>(frozen.entry_count));

  if (tracing) {
    trace.EndSpan(root_span);
    CompletedTrace completed;
    completed.method = "compaction";
    completed.wall_ms = duration_ms;
    completed.cpu_ms = cpu_timer.ElapsedMillis();
    completed.matches = frozen.entry_count;
    completed.trace = std::move(trace);
    options_.trace_store->Offer(std::move(completed));
  }
  return true;
}

size_t IngestEngine::CompactAll() {
  size_t merged = 0;
  for (size_t s = 0; s < deltas_.size(); ++s) {
    if (CompactShard(s)) {
      ++merged;
    }
  }
  return merged;
}

void IngestEngine::MaybeRebalanceCuts(ShardView* next, size_t s) {
  if (options_.partitioner != PartitionerKind::kRange ||
      options_.rebalance_factor <= 1.0 || next->shards.size() < 2 ||
      next->range_cuts.empty()) {
    return;
  }
  size_t total = 0;
  for (const BaseShard& shard : next->shards) {
    total += shard.global_of->size();
  }
  const size_t size_s = next->shards[s].global_of->size();
  const double avg =
      static_cast<double>(total) / static_cast<double>(next->shards.size());
  if (size_s < 8 ||
      static_cast<double>(size_s) <= options_.rebalance_factor * avg) {
    return;
  }
  // Median split of the outgrown shard's keys: future inserts for its
  // upper half route to the right neighbor. Routing only — placement
  // never changes answers — so no data moves.
  const Dataset& data = next->shards[s].engine->dataset();
  std::vector<FeatureKey> keys;
  keys.reserve(data.size());
  for (size_t local = 0; local < data.size(); ++local) {
    keys.push_back(FeatureKeyOf(ExtractFeature(data[local])));
  }
  auto median = keys.begin() + keys.size() / 2;
  std::nth_element(keys.begin(), median, keys.end());
  if (s + 1 < next->shards.size()) {
    next->range_cuts[s] = *median;
  } else {
    // The last shard has no right neighbor; lowering the PREVIOUS cut
    // would move keys left, so only ever raise it toward the median.
    next->range_cuts[s - 1] = std::max(next->range_cuts[s - 1], *median);
  }
  cut_rebalances_.fetch_add(1, std::memory_order_relaxed);
  cut_rebalances_total_->Increment();
}

Status IngestEngine::Save(const std::string& dir) {
  CompactAll();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create directory " + dir + ": " +
                           ec.message());
  }
  const std::shared_ptr<const ShardView> view = CurrentView();
  ShardManifest manifest;
  manifest.partitioner = options_.partitioner;
  manifest.page_size_bytes = options_.engine.page_size_bytes;
  manifest.assignment.num_shards = view->shards.size();
  {
    std::lock_guard<std::mutex> ids(ids_mu_);
    manifest.assignment.shard_of.assign(part_of_.size(), kDroppedShard);
  }
  for (size_t s = 0; s < view->shards.size(); ++s) {
    for (const SequenceId g : *view->shards[s].global_of) {
      manifest.assignment.shard_of[static_cast<size_t>(g)] =
          static_cast<uint32_t>(s);
    }
  }
  manifest.range_cuts.assign(view->range_cuts.begin(),
                             view->range_cuts.end());
  WARPINDEX_RETURN_IF_ERROR(
      SaveShardManifest(dir + "/manifest.wism", manifest));
  for (size_t s = 0; s < view->shards.size(); ++s) {
    WARPINDEX_RETURN_IF_ERROR(
        view->shards[s].engine->Save(dir + "/" + ShardSubdir(s)));
  }
  return Status::Ok();
}

Status IngestEngine::Open(const std::string& dir, IngestOptions options,
                          std::unique_ptr<IngestEngine>* out) {
  ShardManifest manifest;
  WARPINDEX_RETURN_IF_ERROR(
      LoadShardManifest(dir + "/manifest.wism", &manifest));
  if (manifest.assignment.num_shards != options.num_shards) {
    return Status::InvalidArgument(
        "shard count mismatch: saved " +
        std::to_string(manifest.assignment.num_shards) + ", requested " +
        std::to_string(options.num_shards));
  }
  if (manifest.partitioner != options.partitioner) {
    return Status::InvalidArgument(
        std::string("partitioner mismatch: saved ") +
        PartitionerKindName(manifest.partitioner) + ", requested " +
        PartitionerKindName(options.partitioner));
  }
  if (manifest.page_size_bytes != options.engine.page_size_bytes) {
    return Status::InvalidArgument(
        "page size mismatch between saved shards and EngineOptions");
  }

  auto view = std::make_shared<ShardView>();
  view->shards.resize(options.num_shards);
  std::vector<std::vector<SequenceId>> global_of(options.num_shards);
  for (size_t g = 0; g < manifest.assignment.shard_of.size(); ++g) {
    const uint32_t s = manifest.assignment.shard_of[g];
    if (s == kDroppedShard) {
      continue;
    }
    global_of[s].push_back(static_cast<SequenceId>(g));
  }
  for (size_t s = 0; s < options.num_shards; ++s) {
    std::unique_ptr<Engine> shard;
    WARPINDEX_RETURN_IF_ERROR(
        Engine::Open(dir + "/" + ShardSubdir(s), options.engine, &shard));
    if (shard->dataset().size() != global_of[s].size()) {
      return Status::InvalidArgument(
          "shard " + std::to_string(s) +
          " holds a different sequence count than the manifest assigns");
    }
    BaseShard& base = view->shards[s];
    base.engine = std::shared_ptr<const Engine>(std::move(shard));
    for (size_t local = 0; local < base.engine->dataset().size(); ++local) {
      if (base.engine->Contains(static_cast<SequenceId>(local))) {
        base.bounds.Cover(ExtractFeature(base.engine->dataset()[local]));
      }
    }
    base.global_of = std::make_shared<const std::vector<SequenceId>>(
        std::move(global_of[s]));
  }
  if (options.partitioner == PartitionerKind::kRange) {
    if (!manifest.range_cuts.empty()) {
      view->range_cuts.assign(manifest.range_cuts.begin(),
                              manifest.range_cuts.end());
    } else {
      // v1 manifest (pre-ingest writer): recompute the initial cuts the
      // Dataset constructor would have produced.
      view->range_cuts.assign(options.num_shards, LowestFeatureKey());
      for (size_t s = 0; s < options.num_shards; ++s) {
        const Dataset& data = view->shards[s].engine->dataset();
        for (size_t local = 0; local < data.size(); ++local) {
          view->range_cuts[s] = std::max(
              view->range_cuts[s], FeatureKeyOf(ExtractFeature(data[local])));
        }
        if (s > 0) {
          view->range_cuts[s] =
              std::max(view->range_cuts[s], view->range_cuts[s - 1]);
        }
      }
    }
  }
  out->reset(new IngestEngine(std::move(view),
                              std::move(manifest.assignment.shard_of),
                              std::move(options)));
  return Status::Ok();
}

bool IngestEngine::ShouldCompact(size_t s) const {
  const DeltaShard::Stats stats = deltas_[s]->TakeStats();
  if (stats.entries >= options_.compact_max_delta_entries) {
    return true;
  }
  if (stats.dead >= options_.compact_max_tombstones) {
    return true;
  }
  if (options_.compact_max_delta_age_ms > 0.0 && stats.entries > 0 &&
      clock_.ElapsedMillis() - stats.oldest_ms >=
          options_.compact_max_delta_age_ms) {
    return true;
  }
  return false;
}

void IngestEngine::SetCompactionBacklog(size_t backlog) {
  backlog_gauge_->Set(static_cast<int64_t>(backlog));
}

IngestEngine::Health IngestEngine::TakeHealthSnapshot() const {
  Health health;
  const std::shared_ptr<const ShardView> view = CurrentView();
  health.num_shards = view->shards.size();
  health.partitioner = options_.partitioner;
  health.epoch = view->epoch;
  health.live_sequences = live_size();
  health.id_space = id_space();
  health.inserts_total = inserts_.load(std::memory_order_relaxed);
  health.deletes_total = deletes_.load(std::memory_order_relaxed);
  health.cut_rebalances_total =
      cut_rebalances_.load(std::memory_order_relaxed);
  health.shards.resize(view->shards.size());
  for (size_t s = 0; s < view->shards.size(); ++s) {
    ShardStatus& status = health.shards[s];
    status.shard_index = s;
    status.base_sequences = view->shards[s].global_of->size();
    const DeltaShard::Stats stats = deltas_[s]->TakeStats();
    status.delta_entries = stats.entries;
    status.tombstones = stats.dead;
    status.writes_total = stats.writes_total;
    status.write_rate_per_s = deltas_[s]->write_rate();
    status.compactions = shard_compactions_[s].load(std::memory_order_relaxed);
    status.last_compaction_ms =
        shard_last_compaction_ms_[s].load(std::memory_order_relaxed);
    status.base_health = view->shards[s].engine->TakeHealthSnapshot();
    status.bounds = view->shards[s].bounds;
    health.compactions_total += status.compactions;
    if (ShouldCompact(s)) {
      ++health.compaction_backlog;
    }
  }
  return health;
}

}  // namespace warpindex
