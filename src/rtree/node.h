// R-tree node layout.
//
// Nodes are sized to a disk page: capacity is derived from the page size
// and the entry footprint (2 * dims coordinates + one id), mirroring a
// paged on-disk R-tree so that "node accesses" equal "page accesses" for
// the disk cost model (paper §5.1 uses 1 KB pages).

#ifndef WARPINDEX_RTREE_NODE_H_
#define WARPINDEX_RTREE_NODE_H_

#include <cstdint>
#include <vector>

#include "rtree/geometry.h"

namespace warpindex {

using NodeId = int32_t;
inline constexpr NodeId kInvalidNodeId = -1;

// One slot of a node: an MBR plus either a child node (internal nodes) or a
// record id (leaves).
struct RTreeEntry {
  Rect rect;
  NodeId child = kInvalidNodeId;  // internal entries
  int64_t record_id = -1;         // leaf entries

  static RTreeEntry Leaf(const Rect& rect, int64_t record_id) {
    RTreeEntry e;
    e.rect = rect;
    e.record_id = record_id;
    return e;
  }
  static RTreeEntry Internal(const Rect& rect, NodeId child) {
    RTreeEntry e;
    e.rect = rect;
    e.child = child;
    return e;
  }
};

struct RTreeNode {
  NodeId id = kInvalidNodeId;
  NodeId parent = kInvalidNodeId;
  // 0 for leaves; the root carries the largest level.
  int level = 0;
  // X-tree-style supernode: allowed to exceed the page capacity because
  // every candidate split would produce heavily overlapping directory
  // MBRs (Berchtold et al.). Occupies multiple contiguous pages.
  bool supernode = false;
  std::vector<RTreeEntry> entries;

  bool IsLeaf() const { return level == 0; }

  // MBR of all entries. Requires a non-empty node.
  Rect ComputeMbr() const;
};

// On-page footprint of one entry in bytes: 2 * dims * sizeof(double)
// coordinates plus an 8-byte child/record id.
size_t EntryBytes(int dims);

// Maximum entries per node for a page of `page_size_bytes` with a
// `header_bytes` page header. Always at least 2 (an R-tree needs fan-out
// >= 2 even under absurdly small pages).
size_t NodeCapacityForPage(size_t page_size_bytes, int dims,
                           size_t header_bytes = 24);

}  // namespace warpindex

#endif  // WARPINDEX_RTREE_NODE_H_
