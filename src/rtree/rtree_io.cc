#include "rtree/rtree_io.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

namespace warpindex {
namespace {

constexpr char kMagic[4] = {'W', 'I', 'R', 'T'};
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) {
      std::fclose(f);
    }
  }
};
using FileHandle = std::unique_ptr<std::FILE, FileCloser>;

bool WriteBytes(std::FILE* f, const void* data, size_t n) {
  return std::fwrite(data, 1, n, f) == n;
}

bool ReadBytes(std::FILE* f, void* data, size_t n) {
  return std::fread(data, 1, n, f) == n;
}

}  // namespace

Status SaveRTreeToFile(const RTree& tree, const std::string& path) {
  FileHandle file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) {
    return Status::IoError("cannot open for writing: " + path);
  }
  std::FILE* f = file.get();

  // Dense preorder remap (skips free-list holes).
  std::vector<NodeId> order;
  std::vector<int32_t> remap(tree.nodes_.size(), -1);
  order.reserve(tree.live_nodes_);
  std::vector<NodeId> stack = {tree.root_};
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    remap[static_cast<size_t>(id)] = static_cast<int32_t>(order.size());
    order.push_back(id);
    const RTreeNode* n = tree.node(id);
    if (!n->IsLeaf()) {
      for (const RTreeEntry& e : n->entries) {
        stack.push_back(e.child);
      }
    }
  }

  const uint32_t dims = static_cast<uint32_t>(tree.dims_);
  const uint64_t page_size = tree.options_.page_size_bytes;
  const uint8_t split = static_cast<uint8_t>(tree.options_.split_policy);
  const double min_fill = tree.options_.min_fill_fraction;
  const uint8_t reinsert = tree.options_.forced_reinsert ? 1 : 0;
  const double reinsert_fraction = tree.options_.reinsert_fraction;
  const uint8_t supernodes = tree.options_.allow_supernodes ? 1 : 0;
  const double supernode_threshold =
      tree.options_.supernode_overlap_threshold;
  const uint64_t size = tree.size_;
  const uint32_t node_count = static_cast<uint32_t>(order.size());
  if (!WriteBytes(f, kMagic, sizeof(kMagic)) ||
      !WriteBytes(f, &kVersion, sizeof(kVersion)) ||
      !WriteBytes(f, &dims, sizeof(dims)) ||
      !WriteBytes(f, &page_size, sizeof(page_size)) ||
      !WriteBytes(f, &split, sizeof(split)) ||
      !WriteBytes(f, &min_fill, sizeof(min_fill)) ||
      !WriteBytes(f, &reinsert, sizeof(reinsert)) ||
      !WriteBytes(f, &reinsert_fraction, sizeof(reinsert_fraction)) ||
      !WriteBytes(f, &supernodes, sizeof(supernodes)) ||
      !WriteBytes(f, &supernode_threshold, sizeof(supernode_threshold)) ||
      !WriteBytes(f, &size, sizeof(size)) ||
      !WriteBytes(f, &node_count, sizeof(node_count))) {
    return Status::IoError("short write: " + path);
  }

  for (const NodeId id : order) {
    const RTreeNode* n = tree.node(id);
    const int32_t level = n->level;
    const uint8_t supernode = n->supernode ? 1 : 0;
    const uint32_t entry_count = static_cast<uint32_t>(n->entries.size());
    if (!WriteBytes(f, &level, sizeof(level)) ||
        !WriteBytes(f, &supernode, sizeof(supernode)) ||
        !WriteBytes(f, &entry_count, sizeof(entry_count))) {
      return Status::IoError("short write: " + path);
    }
    for (const RTreeEntry& e : n->entries) {
      for (int d = 0; d < tree.dims_; ++d) {
        const double lo = e.rect.min[static_cast<size_t>(d)];
        const double hi = e.rect.max[static_cast<size_t>(d)];
        if (!WriteBytes(f, &lo, sizeof(lo)) ||
            !WriteBytes(f, &hi, sizeof(hi))) {
          return Status::IoError("short write: " + path);
        }
      }
      const int64_t ref =
          n->IsLeaf() ? e.record_id
                      : static_cast<int64_t>(
                            remap[static_cast<size_t>(e.child)]);
      if (!WriteBytes(f, &ref, sizeof(ref))) {
        return Status::IoError("short write: " + path);
      }
    }
  }
  return Status::Ok();
}

Status LoadRTreeFromFile(const std::string& path, RTree* out) {
  FileHandle file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::FILE* f = file.get();

  char magic[4];
  uint32_t version = 0;
  uint32_t dims = 0;
  uint64_t page_size = 0;
  uint8_t split = 0;
  double min_fill = 0.0;
  uint8_t reinsert = 0;
  double reinsert_fraction = 0.0;
  uint8_t supernodes = 0;
  double supernode_threshold = 0.0;
  uint64_t size = 0;
  uint32_t node_count = 0;
  if (!ReadBytes(f, magic, sizeof(magic))) {
    return Status::IoError("short read: " + path);
  }
  if (!std::equal(magic, magic + 4, kMagic)) {
    return Status::InvalidArgument("bad magic in " + path);
  }
  if (!ReadBytes(f, &version, sizeof(version)) ||
      !ReadBytes(f, &dims, sizeof(dims)) ||
      !ReadBytes(f, &page_size, sizeof(page_size)) ||
      !ReadBytes(f, &split, sizeof(split)) ||
      !ReadBytes(f, &min_fill, sizeof(min_fill)) ||
      !ReadBytes(f, &reinsert, sizeof(reinsert)) ||
      !ReadBytes(f, &reinsert_fraction, sizeof(reinsert_fraction)) ||
      !ReadBytes(f, &supernodes, sizeof(supernodes)) ||
      !ReadBytes(f, &supernode_threshold, sizeof(supernode_threshold)) ||
      !ReadBytes(f, &size, sizeof(size)) ||
      !ReadBytes(f, &node_count, sizeof(node_count))) {
    return Status::IoError("short read: " + path);
  }
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported index version in " + path);
  }
  if (dims < 1 || dims > kMaxRTreeDims || split > 2 || node_count == 0 ||
      min_fill <= 0.0 || min_fill > 0.5) {
    return Status::InvalidArgument("corrupt index header in " + path);
  }

  RTreeOptions options;
  options.page_size_bytes = static_cast<size_t>(page_size);
  options.split_policy = static_cast<SplitPolicy>(split);
  options.min_fill_fraction = min_fill;
  options.forced_reinsert = reinsert != 0;
  options.reinsert_fraction = reinsert_fraction;
  options.allow_supernodes = supernodes != 0;
  options.supernode_overlap_threshold = supernode_threshold;

  RTree tree(static_cast<int>(dims), options);
  // The constructor made node 0 (the root); allocate the rest.
  for (uint32_t i = 1; i < node_count; ++i) {
    tree.AllocateNode(0);
  }
  for (uint32_t i = 0; i < node_count; ++i) {
    RTreeNode* n = tree.node(static_cast<NodeId>(i));
    int32_t level = 0;
    uint8_t supernode = 0;
    uint32_t entry_count = 0;
    if (!ReadBytes(f, &level, sizeof(level)) ||
        !ReadBytes(f, &supernode, sizeof(supernode)) ||
        !ReadBytes(f, &entry_count, sizeof(entry_count))) {
      return Status::IoError("short read: " + path);
    }
    if (level < 0 || supernode > 1 ||
        (supernode == 0 && entry_count > tree.capacity())) {
      return Status::InvalidArgument("corrupt node in " + path);
    }
    n->level = level;
    n->supernode = supernode != 0;
    n->entries.resize(entry_count);
    for (uint32_t ei = 0; ei < entry_count; ++ei) {
      RTreeEntry& e = n->entries[ei];
      e.rect.dims = static_cast<int>(dims);
      for (uint32_t d = 0; d < dims; ++d) {
        if (!ReadBytes(f, &e.rect.min[d], sizeof(double)) ||
            !ReadBytes(f, &e.rect.max[d], sizeof(double))) {
          return Status::IoError("short read: " + path);
        }
      }
      int64_t ref = 0;
      if (!ReadBytes(f, &ref, sizeof(ref))) {
        return Status::IoError("short read: " + path);
      }
      if (level == 0) {
        e.record_id = ref;
      } else {
        if (ref < 0 || ref >= static_cast<int64_t>(node_count)) {
          return Status::InvalidArgument("corrupt child ref in " + path);
        }
        e.child = static_cast<NodeId>(ref);
      }
    }
  }
  // Wire parent pointers.
  for (uint32_t i = 0; i < node_count; ++i) {
    RTreeNode* n = tree.node(static_cast<NodeId>(i));
    if (n->IsLeaf()) {
      continue;
    }
    for (const RTreeEntry& e : n->entries) {
      tree.node(e.child)->parent = static_cast<NodeId>(i);
    }
  }
  tree.root_ = 0;
  tree.size_ = static_cast<size_t>(size);

  WARPINDEX_RETURN_IF_ERROR(tree.CheckInvariants());
  *out = std::move(tree);
  return Status::Ok();
}

}  // namespace warpindex
