// A paged R-tree (Guttman 1984) with selectable split policies, optional
// R*-style forced reinsertion, deletion with tree condensation, range
// search, and best-first kNN search.
//
// This is the multi-dimensional index of the paper's §4.3: the 4-tuple
// feature vectors are inserted as degenerate (point) rectangles keyed by
// sequence id, and Algorithm 1's Step-2 is a square range query. The tree
// is dimension-generic so the FastMap comparator can reuse it at any k.
//
// Cost accounting: nodes are sized to one disk page; every node touched by
// a query increments RTreeQueryStats::nodes_accessed, which the benches
// convert to simulated I/O time via storage/disk_model.h.

#ifndef WARPINDEX_RTREE_RTREE_H_
#define WARPINDEX_RTREE_RTREE_H_

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "common/status.h"
#include "obs/trace.h"
#include "rtree/geometry.h"
#include "rtree/node.h"
#include "rtree/split.h"

namespace warpindex {

struct RTreeOptions {
  // Page size in bytes; node fan-out is derived from it (paper §5.1 uses
  // 1 KB pages).
  size_t page_size_bytes = 1024;
  SplitPolicy split_policy = SplitPolicy::kQuadratic;
  // Minimum node fill as a fraction of capacity (classical 40%).
  double min_fill_fraction = 0.4;
  // R*-style forced reinsertion on first overflow per level per insert.
  bool forced_reinsert = false;
  // Fraction of entries evicted by a forced reinsert.
  double reinsert_fraction = 0.3;
  // R*-style split distribution factor: the minimum group size a split
  // may produce, as a fraction of the overflowing node (Beckmann et
  // al.'s m = factor * M; 0.4 is the paper's recommendation). 0 keeps
  // the legacy behavior of deriving the candidate range from
  // min_fill_fraction alone. Only the kRStar policy consults it.
  double split_distribution_factor = 0.0;
  // STR bulk-load packing fraction: nodes are packed to
  // bulk_fill_fraction * capacity instead of 100%, leaving insert
  // headroom so a bulk-loaded tree absorbs streaming inserts without
  // immediately splitting every touched leaf (snippet-3-style fill
  // factor). 1.0 = classic fully-packed STR.
  double bulk_fill_fraction = 1.0;
  // X-tree-style supernodes (paper §4.3.1 lists the X-tree among the
  // usable indexes): when a *directory* node split would produce MBRs
  // whose overlap exceeds `supernode_overlap_threshold` of their union,
  // the node becomes a multi-page supernode instead of splitting.
  bool allow_supernodes = false;
  double supernode_overlap_threshold = 0.2;
};

// Structural health snapshot of a tree (RTree::HealthStats): the index-
// quality numbers that predict query cost — occupancy says how many
// pages the same entries need, directory overlap says how many subtrees
// a point query must descend (Exact Indexing under DTW ties both
// directly to node accesses). Served live via /statusz and tracked by
// bench/micro_rtree so regressions show up in the perf trajectory.
struct RTreeHealth {
  int height = 0;          // levels (1 for a root-only tree)
  size_t records = 0;      // stored data entries
  size_t nodes = 0;        // live nodes
  size_t leaves = 0;
  size_t supernodes = 0;
  size_t pages = 0;        // disk pages (supernodes span several)
  size_t bytes = 0;        // pages * page_size
  size_t node_capacity = 0;  // entries per single-page node

  struct LevelStats {
    int level = 0;  // 0 = leaf level
    size_t nodes = 0;
    size_t entries = 0;
    // entries / (nodes * capacity); > 1 possible on supernode levels.
    double avg_occupancy = 0.0;
    double min_occupancy = 0.0;
  };
  // One entry per level, leaf level first.
  std::vector<LevelStats> levels;

  // Leaf-level average occupancy (the headline fill factor).
  double leaf_occupancy = 0.0;
  // Directory quality, averaged over internal nodes (leaf entries are
  // degenerate point rects, so volumes only exist above them):
  //   overlap_ratio    sum of pairwise child-MBR overlap volume divided
  //                    by the node MBR volume (0 = perfectly disjoint)
  //   dead_space_ratio 1 - (sum of child volumes / node MBR volume),
  //                    clamped at 0 (space the node claims but no child
  //                    covers — range queries descend it for nothing)
  double overlap_ratio = 0.0;
  double dead_space_ratio = 0.0;
};

struct RTreeQueryStats {
  // Page accesses performed by the query (a supernode counts as several).
  uint64_t nodes_accessed = 0;
  // When non-null, every visited node's id is appended — callers that run
  // a buffer pool over the index pages need the actual ids, not just the
  // count.
  std::vector<NodeId>* accessed_nodes = nullptr;

  void Reset() { nodes_accessed = 0; }
};

class RTree {
 public:
  // `dims` in [1, kMaxRTreeDims].
  explicit RTree(int dims, RTreeOptions options = RTreeOptions());

  // Move-only: the node arena is heavy.
  RTree(RTree&&) = default;
  RTree& operator=(RTree&&) = default;
  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;

  // Inserts a record with the given MBR (a point rectangle for the feature
  // index).
  void Insert(const Rect& rect, int64_t record_id);

  // Removes the entry matching (rect, record_id) exactly. Returns false if
  // no such entry exists.
  bool Delete(const Rect& rect, int64_t record_id);

  // All record ids whose MBR intersects `query`. When a trace is
  // attached, the visited-node count is added as an `rtree_nodes`
  // counter on the innermost open span.
  std::vector<int64_t> RangeSearch(const Rect& query,
                                   RTreeQueryStats* stats = nullptr,
                                   Trace* trace = nullptr) const;

  struct Neighbor {
    int64_t record_id = -1;
    double distance = 0.0;  // L2 distance from the query point to the MBR
  };
  // The k records nearest to `p` (best-first branch-and-bound on MINDIST),
  // in non-decreasing distance order.
  std::vector<Neighbor> NearestNeighbors(const Point& p, size_t k,
                                         RTreeQueryStats* stats = nullptr)
      const;

  // Incremental nearest-record iteration under the L_inf metric
  // (Hjaltason & Samet). Records come out in non-decreasing
  // MinDistLinf(p, record MBR) order; the consumer stops whenever the
  // distance exceeds its own bound. This powers the exact D_tw kNN search
  // (core/tw_knn_search.h): the feature lower bound is L_inf on feature
  // tuples, so iterating by L_inf feature distance enumerates candidates
  // in lower-bound order.
  //
  // The iterator borrows the tree; do not mutate the tree while one is
  // live.
  class LinfNearestIterator {
   public:
    // Pops the next-nearest record. Returns false when exhausted.
    bool Next(Neighbor* out);

   private:
    friend class RTree;
    struct QueueItem {
      double dist = 0.0;
      NodeId node_id = kInvalidNodeId;  // kInvalidNodeId => record
      int64_t record_id = -1;
    };
    struct QueueOrder {
      bool operator()(const QueueItem& a, const QueueItem& b) const {
        return a.dist > b.dist;
      }
    };
    LinfNearestIterator(const RTree* tree, const Point& p,
                        RTreeQueryStats* stats);

    const RTree* tree_;
    Point point_;
    RTreeQueryStats* stats_;
    std::priority_queue<QueueItem, std::vector<QueueItem>, QueueOrder>
        queue_;
  };

  LinfNearestIterator NearestLinf(const Point& p,
                                  RTreeQueryStats* stats = nullptr) const {
    return LinfNearestIterator(this, p, stats);
  }

  int dims() const { return dims_; }
  const RTreeOptions& options() const { return options_; }
  size_t capacity() const { return capacity_; }
  size_t min_fill() const { return min_fill_; }

  // Number of stored records.
  size_t size() const { return size_; }
  // Number of live nodes. Without supernodes this equals the page count.
  size_t node_count() const { return live_nodes_; }
  // Number of index pages; supernodes occupy several contiguous pages.
  size_t TotalPages() const;
  // Pages occupied by one node (1 unless it is a supernode).
  size_t PagesOfNode(NodeId id) const;
  // Number of supernodes currently in the tree.
  size_t supernode_count() const;
  // Tree height in levels (1 for a root-only tree).
  int height() const;
  // Index footprint in bytes under the paged layout.
  size_t TotalBytes() const {
    return TotalPages() * options_.page_size_bytes;
  }

  // Structural validation for tests: fill factors, MBR containment,
  // uniform leaf level, parent back-pointers.
  Status CheckInvariants() const;

  // Point-in-time structural health (occupancy per level, directory
  // overlap/dead-space estimates). One full traversal — O(nodes *
  // fan-out^2) for the pairwise overlap term — so call it from
  // introspection endpoints and benches, not per query. Const and safe
  // to run concurrently with queries (the tree is immutable while
  // serving; see docs/CONCURRENCY.md).
  RTreeHealth HealthStats() const;

 private:
  friend RTree BulkLoadStr(int dims, const RTreeOptions& options,
                           std::vector<RTreeEntry> leaf_entries);
  friend Status SaveRTreeToFile(const RTree& tree, const std::string& path);
  friend Status LoadRTreeFromFile(const std::string& path, RTree* out);

  NodeId AllocateNode(int level);
  void FreeNode(NodeId id);
  RTreeNode* node(NodeId id) { return nodes_[static_cast<size_t>(id)].get(); }
  const RTreeNode* node(NodeId id) const {
    return nodes_[static_cast<size_t>(id)].get();
  }

  // Chooses the child of `n` best suited to absorb `rect` when descending
  // toward `target_level`.
  NodeId ChooseSubtree(const RTreeNode& n, const Rect& rect) const;

  // Inserts `entry` at tree level `level`; `reinserted_levels` tracks which
  // levels already performed a forced reinsert during the current public
  // Insert call.
  void InsertAtLevel(RTreeEntry entry, int level,
                     std::vector<bool>* reinserted_levels);

  // Handles an overfull node: forced reinsert (if enabled and allowed) or
  // split; propagates upward.
  void HandleOverflow(NodeId node_id, std::vector<bool>* reinserted_levels);

  void SplitNode(NodeId node_id, std::vector<bool>* reinserted_levels);

  // Recomputes MBRs from `node_id` to the root.
  void AdjustUpward(NodeId node_id);

  // Finds the leaf holding (rect, record_id); kInvalidNodeId if absent.
  NodeId FindLeaf(NodeId subtree, const Rect& rect, int64_t record_id) const;

  void CondenseTree(NodeId leaf_id);

  Status CheckSubtree(NodeId node_id, int expected_level, bool is_root,
                      size_t* records_seen) const;

  int dims_;
  RTreeOptions options_;
  size_t capacity_;
  size_t min_fill_;
  std::vector<std::unique_ptr<RTreeNode>> nodes_;
  std::vector<NodeId> free_list_;
  NodeId root_;
  size_t size_ = 0;
  size_t live_nodes_ = 0;
};

}  // namespace warpindex

#endif  // WARPINDEX_RTREE_RTREE_H_
