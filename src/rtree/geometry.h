// Points and hyper-rectangles for the multi-dimensional index.
//
// Dimensionality is a runtime parameter (the paper's feature index is 4-d;
// the FastMap index is k-d for user-chosen k), bounded by kMaxRTreeDims so
// geometry stays allocation-free.

#ifndef WARPINDEX_RTREE_GEOMETRY_H_
#define WARPINDEX_RTREE_GEOMETRY_H_

#include <array>
#include <cassert>
#include <cstddef>
#include <string>

namespace warpindex {

inline constexpr int kMaxRTreeDims = 16;

// A point in `dims`-dimensional space.
struct Point {
  std::array<double, kMaxRTreeDims> coords{};
  int dims = 0;

  static Point Make(std::initializer_list<double> values);
  static Point FromArray(const double* values, int dims);

  double operator[](int d) const {
    assert(d >= 0 && d < dims);
    return coords[static_cast<size_t>(d)];
  }
  double& operator[](int d) {
    assert(d >= 0 && d < dims);
    return coords[static_cast<size_t>(d)];
  }

  std::string ToString() const;
};

// An axis-aligned hyper-rectangle (MBR).
struct Rect {
  std::array<double, kMaxRTreeDims> min{};
  std::array<double, kMaxRTreeDims> max{};
  int dims = 0;

  // Degenerate rectangle covering a single point.
  static Rect FromPoint(const Point& p);
  // Square-range rectangle: [center_d - radius, center_d + radius] in every
  // dimension — the paper's range query (Algorithm 1, Step-2).
  static Rect SquareAround(const Point& center, double radius);
  static Rect Make(std::initializer_list<double> mins,
                   std::initializer_list<double> maxs);

  bool IsValid() const;

  // Volume of the rectangle (the classical R-tree "area").
  double Area() const;
  // Sum of side lengths ("margin" in the R*-tree sense).
  double Margin() const;
  double Center(int d) const {
    return (min[static_cast<size_t>(d)] + max[static_cast<size_t>(d)]) / 2.0;
  }

  bool Intersects(const Rect& other) const;
  bool Contains(const Rect& other) const;
  bool ContainsPoint(const Point& p) const;

  // Smallest rectangle enclosing this and `other`.
  Rect UnionWith(const Rect& other) const;
  // Area(UnionWith(other)) - Area(): the enlargement needed to absorb
  // `other` (Guttman's ChooseLeaf criterion).
  double Enlargement(const Rect& other) const;
  // Volume of the intersection; 0 when disjoint.
  double OverlapArea(const Rect& other) const;

  // MINDIST(p, R): squared L2 distance from a point to the rectangle; the
  // standard kNN branch-and-bound bound. Zero when p is inside.
  double MinDistSquared(const Point& p) const;

  // L_inf MINDIST: max over dimensions of the per-axis distance from p to
  // the rectangle. For any x inside R, Linf(p, x) >= MinDistLinf(p, R) —
  // the bound that drives the exact D_tw kNN search (the feature lower
  // bound is an L_inf metric).
  double MinDistLinf(const Point& p) const;

  std::string ToString() const;

  friend bool operator==(const Rect& a, const Rect& b);
};

}  // namespace warpindex

#endif  // WARPINDEX_RTREE_GEOMETRY_H_
