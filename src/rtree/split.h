// Node-splitting policies for the R-tree.
//
//   kLinear     Guttman's linear-cost split (greatest normalized
//               separation seeds, then least-enlargement assignment).
//   kQuadratic  Guttman's quadratic-cost split (max-dead-area seed pair,
//               PickNext by enlargement difference) — the classical
//               default, used by the paper's TW-Sim-Search configuration.
//   kRStar      Beckmann et al.'s topological split: choose the axis with
//               minimal margin sum, then the distribution with minimal
//               overlap (ties by area).
//
// All policies guarantee both output groups have >= min_fill entries.

#ifndef WARPINDEX_RTREE_SPLIT_H_
#define WARPINDEX_RTREE_SPLIT_H_

#include <utility>
#include <vector>

#include "rtree/node.h"

namespace warpindex {

enum class SplitPolicy {
  kLinear,
  kQuadratic,
  kRStar,
};

const char* SplitPolicyName(SplitPolicy policy);

// Partitions `entries` (size >= 2) into two non-empty groups, each with at
// least min(min_fill, entries.size() / 2) entries.
//
// `distribution_factor` (kRStar only) widens or narrows the candidate
// split positions: each group must hold at least
// max(min_fill, floor(entries.size() * distribution_factor)) entries
// (Beckmann et al.'s m = factor * M, classically 0.4). 0 derives the
// range from min_fill alone (legacy behavior).
std::pair<std::vector<RTreeEntry>, std::vector<RTreeEntry>> SplitEntries(
    std::vector<RTreeEntry> entries, size_t min_fill, SplitPolicy policy,
    double distribution_factor = 0.0);

}  // namespace warpindex

#endif  // WARPINDEX_RTREE_SPLIT_H_
