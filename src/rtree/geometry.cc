#include "rtree/geometry.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace warpindex {

Point Point::Make(std::initializer_list<double> values) {
  assert(values.size() <= kMaxRTreeDims);
  Point p;
  p.dims = static_cast<int>(values.size());
  int i = 0;
  for (double v : values) {
    p.coords[static_cast<size_t>(i++)] = v;
  }
  return p;
}

Point Point::FromArray(const double* values, int dims) {
  assert(dims >= 0 && dims <= kMaxRTreeDims);
  Point p;
  p.dims = dims;
  std::copy(values, values + dims, p.coords.begin());
  return p;
}

std::string Point::ToString() const {
  std::ostringstream os;
  os << "(";
  for (int d = 0; d < dims; ++d) {
    if (d > 0) os << ", ";
    os << coords[static_cast<size_t>(d)];
  }
  os << ")";
  return os.str();
}

Rect Rect::FromPoint(const Point& p) {
  Rect r;
  r.dims = p.dims;
  for (int d = 0; d < p.dims; ++d) {
    r.min[static_cast<size_t>(d)] = p[d];
    r.max[static_cast<size_t>(d)] = p[d];
  }
  return r;
}

Rect Rect::SquareAround(const Point& center, double radius) {
  assert(radius >= 0.0);
  Rect r;
  r.dims = center.dims;
  for (int d = 0; d < center.dims; ++d) {
    r.min[static_cast<size_t>(d)] = center[d] - radius;
    r.max[static_cast<size_t>(d)] = center[d] + radius;
  }
  return r;
}

Rect Rect::Make(std::initializer_list<double> mins,
                std::initializer_list<double> maxs) {
  assert(mins.size() == maxs.size());
  assert(mins.size() <= kMaxRTreeDims);
  Rect r;
  r.dims = static_cast<int>(mins.size());
  int i = 0;
  for (double v : mins) {
    r.min[static_cast<size_t>(i++)] = v;
  }
  i = 0;
  for (double v : maxs) {
    r.max[static_cast<size_t>(i++)] = v;
  }
  return r;
}

bool Rect::IsValid() const {
  if (dims <= 0 || dims > kMaxRTreeDims) {
    return false;
  }
  for (int d = 0; d < dims; ++d) {
    if (min[static_cast<size_t>(d)] > max[static_cast<size_t>(d)]) {
      return false;
    }
  }
  return true;
}

double Rect::Area() const {
  double area = 1.0;
  for (int d = 0; d < dims; ++d) {
    area *= max[static_cast<size_t>(d)] - min[static_cast<size_t>(d)];
  }
  return area;
}

double Rect::Margin() const {
  double margin = 0.0;
  for (int d = 0; d < dims; ++d) {
    margin += max[static_cast<size_t>(d)] - min[static_cast<size_t>(d)];
  }
  return margin;
}

bool Rect::Intersects(const Rect& other) const {
  assert(dims == other.dims);
  for (int d = 0; d < dims; ++d) {
    const size_t k = static_cast<size_t>(d);
    if (min[k] > other.max[k] || max[k] < other.min[k]) {
      return false;
    }
  }
  return true;
}

bool Rect::Contains(const Rect& other) const {
  assert(dims == other.dims);
  for (int d = 0; d < dims; ++d) {
    const size_t k = static_cast<size_t>(d);
    if (other.min[k] < min[k] || other.max[k] > max[k]) {
      return false;
    }
  }
  return true;
}

bool Rect::ContainsPoint(const Point& p) const {
  assert(dims == p.dims);
  for (int d = 0; d < dims; ++d) {
    const size_t k = static_cast<size_t>(d);
    if (p.coords[k] < min[k] || p.coords[k] > max[k]) {
      return false;
    }
  }
  return true;
}

Rect Rect::UnionWith(const Rect& other) const {
  assert(dims == other.dims);
  Rect r;
  r.dims = dims;
  for (int d = 0; d < dims; ++d) {
    const size_t k = static_cast<size_t>(d);
    r.min[k] = std::min(min[k], other.min[k]);
    r.max[k] = std::max(max[k], other.max[k]);
  }
  return r;
}

double Rect::Enlargement(const Rect& other) const {
  return UnionWith(other).Area() - Area();
}

double Rect::OverlapArea(const Rect& other) const {
  assert(dims == other.dims);
  double area = 1.0;
  for (int d = 0; d < dims; ++d) {
    const size_t k = static_cast<size_t>(d);
    const double side =
        std::min(max[k], other.max[k]) - std::max(min[k], other.min[k]);
    if (side <= 0.0) {
      return 0.0;
    }
    area *= side;
  }
  return area;
}

double Rect::MinDistSquared(const Point& p) const {
  assert(dims == p.dims);
  double total = 0.0;
  for (int d = 0; d < dims; ++d) {
    const size_t k = static_cast<size_t>(d);
    double delta = 0.0;
    if (p.coords[k] < min[k]) {
      delta = min[k] - p.coords[k];
    } else if (p.coords[k] > max[k]) {
      delta = p.coords[k] - max[k];
    }
    total += delta * delta;
  }
  return total;
}

double Rect::MinDistLinf(const Point& p) const {
  assert(dims == p.dims);
  double worst = 0.0;
  for (int d = 0; d < dims; ++d) {
    const size_t k = static_cast<size_t>(d);
    double delta = 0.0;
    if (p.coords[k] < min[k]) {
      delta = min[k] - p.coords[k];
    } else if (p.coords[k] > max[k]) {
      delta = p.coords[k] - max[k];
    }
    worst = std::max(worst, delta);
  }
  return worst;
}

std::string Rect::ToString() const {
  std::ostringstream os;
  os << "[";
  for (int d = 0; d < dims; ++d) {
    if (d > 0) os << " x ";
    os << "(" << min[static_cast<size_t>(d)] << ", "
       << max[static_cast<size_t>(d)] << ")";
  }
  os << "]";
  return os.str();
}

bool operator==(const Rect& a, const Rect& b) {
  if (a.dims != b.dims) {
    return false;
  }
  for (int d = 0; d < a.dims; ++d) {
    const size_t k = static_cast<size_t>(d);
    if (a.min[k] != b.min[k] || a.max[k] != b.max[k]) {
      return false;
    }
  }
  return true;
}

}  // namespace warpindex
