#include "rtree/node.h"

#include <algorithm>
#include <cassert>

namespace warpindex {

Rect RTreeNode::ComputeMbr() const {
  assert(!entries.empty());
  Rect mbr = entries[0].rect;
  for (size_t i = 1; i < entries.size(); ++i) {
    mbr = mbr.UnionWith(entries[i].rect);
  }
  return mbr;
}

size_t EntryBytes(int dims) {
  return static_cast<size_t>(dims) * 2 * sizeof(double) + sizeof(int64_t);
}

size_t NodeCapacityForPage(size_t page_size_bytes, int dims,
                           size_t header_bytes) {
  const size_t payload =
      page_size_bytes > header_bytes ? page_size_bytes - header_bytes : 0;
  return std::max<size_t>(2, payload / EntryBytes(dims));
}

}  // namespace warpindex
