#include "rtree/rtree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <queue>
#include <sstream>

namespace warpindex {

RTree::RTree(int dims, RTreeOptions options)
    : dims_(dims), options_(options) {
  assert(dims >= 1 && dims <= kMaxRTreeDims);
  assert(options_.min_fill_fraction > 0.0 &&
         options_.min_fill_fraction <= 0.5);
  capacity_ = NodeCapacityForPage(options_.page_size_bytes, dims_);
  min_fill_ = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(capacity_) *
                             options_.min_fill_fraction));
  root_ = AllocateNode(/*level=*/0);
}

NodeId RTree::AllocateNode(int level) {
  ++live_nodes_;
  if (!free_list_.empty()) {
    const NodeId id = free_list_.back();
    free_list_.pop_back();
    RTreeNode* n = node(id);
    n->parent = kInvalidNodeId;
    n->level = level;
    n->supernode = false;
    n->entries.clear();
    return id;
  }
  const NodeId id = static_cast<NodeId>(nodes_.size());
  auto n = std::make_unique<RTreeNode>();
  n->id = id;
  n->level = level;
  nodes_.push_back(std::move(n));
  return id;
}

void RTree::FreeNode(NodeId id) {
  assert(live_nodes_ > 0);
  --live_nodes_;
  node(id)->entries.clear();
  node(id)->parent = kInvalidNodeId;
  free_list_.push_back(id);
}

int RTree::height() const { return node(root_)->level + 1; }

size_t RTree::PagesOfNode(NodeId id) const {
  const RTreeNode* n = node(id);
  if (!n->supernode) {
    return 1;
  }
  const size_t bytes = n->entries.size() * EntryBytes(dims_) + 24;
  return std::max<size_t>(
      1, (bytes + options_.page_size_bytes - 1) / options_.page_size_bytes);
}

size_t RTree::TotalPages() const {
  size_t pages = 0;
  std::vector<NodeId> stack = {root_};
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    pages += PagesOfNode(id);
    const RTreeNode* n = node(id);
    if (!n->IsLeaf()) {
      for (const RTreeEntry& e : n->entries) {
        stack.push_back(e.child);
      }
    }
  }
  return pages;
}

size_t RTree::supernode_count() const {
  size_t count = 0;
  std::vector<NodeId> stack = {root_};
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    const RTreeNode* n = node(id);
    if (n->supernode) {
      ++count;
    }
    if (!n->IsLeaf()) {
      for (const RTreeEntry& e : n->entries) {
        stack.push_back(e.child);
      }
    }
  }
  return count;
}

NodeId RTree::ChooseSubtree(const RTreeNode& n, const Rect& rect) const {
  assert(!n.IsLeaf() && !n.entries.empty());
  // R*-style: at the level just above the leaves, minimize overlap
  // enlargement; elsewhere minimize area enlargement (ties by area).
  const bool use_overlap =
      options_.split_policy == SplitPolicy::kRStar && n.level == 1;
  size_t best = 0;
  double best_primary = std::numeric_limits<double>::infinity();
  double best_secondary = std::numeric_limits<double>::infinity();
  double best_tertiary = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n.entries.size(); ++i) {
    const Rect& r = n.entries[i].rect;
    double primary;
    double secondary;
    double tertiary;
    if (use_overlap) {
      const Rect enlarged = r.UnionWith(rect);
      double overlap_delta = 0.0;
      for (size_t j = 0; j < n.entries.size(); ++j) {
        if (j == i) continue;
        overlap_delta += enlarged.OverlapArea(n.entries[j].rect) -
                         r.OverlapArea(n.entries[j].rect);
      }
      primary = overlap_delta;
      secondary = r.Enlargement(rect);
      tertiary = r.Area();
    } else {
      primary = r.Enlargement(rect);
      secondary = r.Area();
      tertiary = 0.0;
    }
    if (primary < best_primary ||
        (primary == best_primary && secondary < best_secondary) ||
        (primary == best_primary && secondary == best_secondary &&
         tertiary < best_tertiary)) {
      best_primary = primary;
      best_secondary = secondary;
      best_tertiary = tertiary;
      best = i;
    }
  }
  return n.entries[best].child;
}

void RTree::Insert(const Rect& rect, int64_t record_id) {
  assert(rect.dims == dims_ && rect.IsValid());
  std::vector<bool> reinserted_levels(
      static_cast<size_t>(node(root_)->level) + 2, false);
  InsertAtLevel(RTreeEntry::Leaf(rect, record_id), /*level=*/0,
                &reinserted_levels);
  ++size_;
}

void RTree::InsertAtLevel(RTreeEntry entry, int level,
                          std::vector<bool>* reinserted_levels) {
  // Descend to the target level.
  NodeId current = root_;
  while (node(current)->level > level) {
    current = ChooseSubtree(*node(current), entry.rect);
  }
  RTreeNode* n = node(current);
  assert(n->level == level);
  if (entry.child != kInvalidNodeId) {
    node(entry.child)->parent = current;
  }
  n->entries.push_back(entry);
  if (n->entries.size() > capacity_) {
    HandleOverflow(current, reinserted_levels);
  } else {
    AdjustUpward(current);
  }
}

void RTree::HandleOverflow(NodeId node_id,
                           std::vector<bool>* reinserted_levels) {
  RTreeNode* n = node(node_id);
  if (n->supernode) {
    // An existing supernode simply grows.
    AdjustUpward(node_id);
    return;
  }
  const size_t level_idx = static_cast<size_t>(n->level);
  const bool can_reinsert =
      options_.forced_reinsert && node_id != root_ &&
      level_idx < reinserted_levels->size() &&
      !(*reinserted_levels)[level_idx];
  if (!can_reinsert) {
    SplitNode(node_id, reinserted_levels);
    return;
  }
  (*reinserted_levels)[level_idx] = true;

  // Evict the `reinsert_fraction` entries farthest from the node's center
  // and reinsert them (R*-tree OverflowTreatment).
  const Rect mbr = n->ComputeMbr();
  struct Scored {
    double dist = 0.0;
    size_t index = 0;
  };
  std::vector<Scored> scored(n->entries.size());
  for (size_t i = 0; i < n->entries.size(); ++i) {
    double d2 = 0.0;
    for (int d = 0; d < dims_; ++d) {
      const double delta = n->entries[i].rect.Center(d) - mbr.Center(d);
      d2 += delta * delta;
    }
    scored[i] = {d2, i};
  }
  std::sort(scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) { return a.dist > b.dist; });
  size_t evict = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(n->entries.size()) *
                             options_.reinsert_fraction));
  evict = std::min(evict, n->entries.size() - min_fill_);

  std::vector<RTreeEntry> evicted;
  std::vector<bool> remove(n->entries.size(), false);
  for (size_t i = 0; i < evict; ++i) {
    remove[scored[i].index] = true;
  }
  std::vector<RTreeEntry> kept;
  kept.reserve(n->entries.size() - evict);
  for (size_t i = 0; i < n->entries.size(); ++i) {
    if (remove[i]) {
      evicted.push_back(n->entries[i]);
    } else {
      kept.push_back(n->entries[i]);
    }
  }
  n->entries = std::move(kept);
  const int level = n->level;
  AdjustUpward(node_id);
  for (RTreeEntry& e : evicted) {
    InsertAtLevel(e, level, reinserted_levels);
  }
}

void RTree::SplitNode(NodeId node_id, std::vector<bool>* reinserted_levels) {
  RTreeNode* n = node(node_id);
  const int level = n->level;
  auto [group_a, group_b] =
      SplitEntries(n->entries, min_fill_, options_.split_policy,
                   options_.split_distribution_factor);
  if (options_.allow_supernodes && !n->IsLeaf()) {
    // X-tree overflow treatment: if the best split yields directory MBRs
    // overlapping more than the threshold fraction of their union, keep
    // the node as a multi-page supernode instead.
    Rect mbr_a = group_a[0].rect;
    for (const RTreeEntry& e : group_a) mbr_a = mbr_a.UnionWith(e.rect);
    Rect mbr_b = group_b[0].rect;
    for (const RTreeEntry& e : group_b) mbr_b = mbr_b.UnionWith(e.rect);
    const double overlap = mbr_a.OverlapArea(mbr_b);
    const double union_area = mbr_a.UnionWith(mbr_b).Area();
    if (union_area > 0.0 &&
        overlap / union_area > options_.supernode_overlap_threshold) {
      n->supernode = true;
      AdjustUpward(node_id);
      return;
    }
  }
  n->entries = std::move(group_a);

  const NodeId sibling_id = AllocateNode(level);
  // AllocateNode may grow the arena and invalidate `n`.
  n = node(node_id);
  RTreeNode* sibling = node(sibling_id);
  sibling->entries = std::move(group_b);
  if (level > 0) {
    for (const RTreeEntry& e : sibling->entries) {
      node(e.child)->parent = sibling_id;
    }
    for (const RTreeEntry& e : n->entries) {
      node(e.child)->parent = node_id;
    }
  }

  if (node_id == root_) {
    const NodeId new_root = AllocateNode(level + 1);
    n = node(node_id);
    sibling = node(sibling_id);
    RTreeNode* root_node = node(new_root);
    root_node->entries.push_back(
        RTreeEntry::Internal(n->ComputeMbr(), node_id));
    root_node->entries.push_back(
        RTreeEntry::Internal(sibling->ComputeMbr(), sibling_id));
    n->parent = new_root;
    sibling->parent = new_root;
    root_ = new_root;
    reinserted_levels->resize(static_cast<size_t>(level) + 2, false);
    return;
  }

  const NodeId parent_id = n->parent;
  sibling->parent = parent_id;
  RTreeNode* parent = node(parent_id);
  // Refresh this node's MBR in the parent and add the sibling.
  for (RTreeEntry& e : parent->entries) {
    if (e.child == node_id) {
      e.rect = n->ComputeMbr();
      break;
    }
  }
  parent->entries.push_back(
      RTreeEntry::Internal(sibling->ComputeMbr(), sibling_id));
  if (parent->entries.size() > capacity_) {
    HandleOverflow(parent_id, reinserted_levels);
  } else {
    AdjustUpward(parent_id);
  }
}

void RTree::AdjustUpward(NodeId node_id) {
  NodeId current = node_id;
  while (current != root_) {
    const RTreeNode* n = node(current);
    const NodeId parent_id = n->parent;
    RTreeNode* parent = node(parent_id);
    const Rect mbr = n->ComputeMbr();
    for (RTreeEntry& e : parent->entries) {
      if (e.child == current) {
        e.rect = mbr;
        break;
      }
    }
    current = parent_id;
  }
}

bool RTree::Delete(const Rect& rect, int64_t record_id) {
  const NodeId leaf_id = FindLeaf(root_, rect, record_id);
  if (leaf_id == kInvalidNodeId) {
    return false;
  }
  RTreeNode* leaf = node(leaf_id);
  for (size_t i = 0; i < leaf->entries.size(); ++i) {
    if (leaf->entries[i].record_id == record_id &&
        leaf->entries[i].rect == rect) {
      leaf->entries.erase(leaf->entries.begin() + static_cast<ptrdiff_t>(i));
      break;
    }
  }
  --size_;
  CondenseTree(leaf_id);
  return true;
}

NodeId RTree::FindLeaf(NodeId subtree, const Rect& rect,
                       int64_t record_id) const {
  const RTreeNode* n = node(subtree);
  if (n->IsLeaf()) {
    for (const RTreeEntry& e : n->entries) {
      if (e.record_id == record_id && e.rect == rect) {
        return subtree;
      }
    }
    return kInvalidNodeId;
  }
  for (const RTreeEntry& e : n->entries) {
    if (e.rect.Contains(rect)) {
      const NodeId found = FindLeaf(e.child, rect, record_id);
      if (found != kInvalidNodeId) {
        return found;
      }
    }
  }
  return kInvalidNodeId;
}

void RTree::CondenseTree(NodeId leaf_id) {
  // Walk up removing underfull nodes; their entries are reinserted at
  // their original level afterwards (Guttman's CondenseTree).
  struct Orphan {
    RTreeEntry entry;
    int level = 0;
  };
  std::vector<Orphan> orphans;
  NodeId current = leaf_id;
  while (current != root_) {
    RTreeNode* n = node(current);
    const NodeId parent_id = n->parent;
    RTreeNode* parent = node(parent_id);
    if (n->entries.size() < min_fill_) {
      for (const RTreeEntry& e : n->entries) {
        orphans.push_back({e, n->level});
      }
      for (size_t i = 0; i < parent->entries.size(); ++i) {
        if (parent->entries[i].child == current) {
          parent->entries.erase(parent->entries.begin() +
                                static_cast<ptrdiff_t>(i));
          break;
        }
      }
      FreeNode(current);
    } else {
      if (n->supernode && n->entries.size() <= capacity_) {
        n->supernode = false;
      }
      const Rect mbr = n->ComputeMbr();
      for (RTreeEntry& e : parent->entries) {
        if (e.child == current) {
          e.rect = mbr;
          break;
        }
      }
    }
    current = parent_id;
  }

  // Shrink the root: an internal root with one child is replaced by it.
  while (!node(root_)->IsLeaf() && node(root_)->entries.size() == 1) {
    const NodeId old_root = root_;
    root_ = node(root_)->entries[0].child;
    node(root_)->parent = kInvalidNodeId;
    FreeNode(old_root);
  }

  for (const Orphan& o : orphans) {
    std::vector<bool> reinserted_levels(
        static_cast<size_t>(node(root_)->level) + 2, true);
    InsertAtLevel(o.entry, o.level, &reinserted_levels);
  }
}

std::vector<int64_t> RTree::RangeSearch(const Rect& query,
                                        RTreeQueryStats* stats,
                                        Trace* trace) const {
  assert(query.dims == dims_);
  std::vector<int64_t> results;
  std::vector<NodeId> stack;
  stack.push_back(root_);
  uint64_t visited_pages = 0;
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    visited_pages += PagesOfNode(id);
    if (stats != nullptr) {
      stats->nodes_accessed += PagesOfNode(id);
      if (stats->accessed_nodes != nullptr) {
        stats->accessed_nodes->push_back(id);
      }
    }
    const RTreeNode* n = node(id);
    for (const RTreeEntry& e : n->entries) {
      if (!query.Intersects(e.rect)) {
        continue;
      }
      if (n->IsLeaf()) {
        results.push_back(e.record_id);
      } else {
        stack.push_back(e.child);
      }
    }
  }
  TraceCounter(trace, "rtree_nodes", static_cast<double>(visited_pages));
  return results;
}

std::vector<RTree::Neighbor> RTree::NearestNeighbors(
    const Point& p, size_t k, RTreeQueryStats* stats) const {
  assert(p.dims == dims_);
  std::vector<Neighbor> results;
  if (k == 0) {
    return results;
  }
  struct QueueItem {
    double dist2 = 0.0;
    NodeId node_id = kInvalidNodeId;  // kInvalidNodeId => record item
    int64_t record_id = -1;
  };
  const auto cmp = [](const QueueItem& a, const QueueItem& b) {
    return a.dist2 > b.dist2;
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>, decltype(cmp)> queue(
      cmp);
  queue.push({0.0, root_, -1});
  while (!queue.empty()) {
    const QueueItem item = queue.top();
    queue.pop();
    if (item.node_id == kInvalidNodeId) {
      results.push_back({item.record_id, std::sqrt(item.dist2)});
      if (results.size() == k) {
        break;
      }
      continue;
    }
    if (stats != nullptr) {
      stats->nodes_accessed += PagesOfNode(item.node_id);
    }
    const RTreeNode* n = node(item.node_id);
    for (const RTreeEntry& e : n->entries) {
      const double d2 = e.rect.MinDistSquared(p);
      if (n->IsLeaf()) {
        queue.push({d2, kInvalidNodeId, e.record_id});
      } else {
        queue.push({d2, e.child, -1});
      }
    }
  }
  return results;
}

RTree::LinfNearestIterator::LinfNearestIterator(const RTree* tree,
                                                const Point& p,
                                                RTreeQueryStats* stats)
    : tree_(tree), point_(p), stats_(stats) {
  queue_.push({0.0, tree_->root_, -1});
}

bool RTree::LinfNearestIterator::Next(Neighbor* out) {
  while (!queue_.empty()) {
    const QueueItem item = queue_.top();
    queue_.pop();
    if (item.node_id == kInvalidNodeId) {
      out->record_id = item.record_id;
      out->distance = item.dist;
      return true;
    }
    if (stats_ != nullptr) {
      stats_->nodes_accessed += tree_->PagesOfNode(item.node_id);
    }
    const RTreeNode* n = tree_->node(item.node_id);
    for (const RTreeEntry& e : n->entries) {
      const double d = e.rect.MinDistLinf(point_);
      if (n->IsLeaf()) {
        queue_.push({d, kInvalidNodeId, e.record_id});
      } else {
        queue_.push({d, e.child, -1});
      }
    }
  }
  return false;
}

Status RTree::CheckSubtree(NodeId node_id, int expected_level, bool is_root,
                           size_t* records_seen) const {
  const RTreeNode* n = node(node_id);
  std::ostringstream err;
  if (n->level != expected_level) {
    err << "node " << node_id << " at level " << n->level << ", expected "
        << expected_level;
    return Status::Internal(err.str());
  }
  if (!n->supernode && n->entries.size() > capacity_) {
    err << "node " << node_id << " overfull: " << n->entries.size();
    return Status::Internal(err.str());
  }
  if (n->supernode && (n->IsLeaf() || !options_.allow_supernodes)) {
    err << "node " << node_id << " is an unexpected supernode";
    return Status::Internal(err.str());
  }
  if (!is_root && n->entries.size() < min_fill_) {
    err << "node " << node_id << " underfull: " << n->entries.size();
    return Status::Internal(err.str());
  }
  if (is_root && !n->IsLeaf() && n->entries.size() < 2) {
    return Status::Internal("internal root with fewer than 2 children");
  }
  if (n->IsLeaf()) {
    *records_seen += n->entries.size();
    return Status::Ok();
  }
  for (const RTreeEntry& e : n->entries) {
    const RTreeNode* child = node(e.child);
    if (child->parent != node_id) {
      err << "child " << e.child << " has stale parent pointer";
      return Status::Internal(err.str());
    }
    const Rect child_mbr = child->ComputeMbr();
    if (!(e.rect == child_mbr)) {
      err << "entry MBR for child " << e.child << " is " << e.rect.ToString()
          << " but child MBR is " << child_mbr.ToString();
      return Status::Internal(err.str());
    }
    WARPINDEX_RETURN_IF_ERROR(
        CheckSubtree(e.child, expected_level - 1, false, records_seen));
  }
  return Status::Ok();
}

Status RTree::CheckInvariants() const {
  size_t records_seen = 0;
  WARPINDEX_RETURN_IF_ERROR(
      CheckSubtree(root_, node(root_)->level, true, &records_seen));
  if (records_seen != size_) {
    std::ostringstream err;
    err << "record count mismatch: tree holds " << records_seen
        << ", size() reports " << size_;
    return Status::Internal(err.str());
  }
  return Status::Ok();
}

RTreeHealth RTree::HealthStats() const {
  RTreeHealth health;
  health.height = height();
  health.records = size_;
  health.node_capacity = capacity_;
  health.pages = TotalPages();
  health.bytes = TotalBytes();
  health.levels.resize(static_cast<size_t>(health.height));
  for (size_t lvl = 0; lvl < health.levels.size(); ++lvl) {
    health.levels[lvl].level = static_cast<int>(lvl);
    health.levels[lvl].min_occupancy = 1e300;  // replaced by first node
  }

  double overlap_sum = 0.0;
  double dead_space_sum = 0.0;
  size_t directory_nodes_with_volume = 0;

  // Iterative pre-order walk from the root (free-listed nodes are
  // unreachable, so no liveness bookkeeping is needed).
  std::vector<NodeId> pending = {root_};
  while (!pending.empty()) {
    const NodeId id = pending.back();
    pending.pop_back();
    const RTreeNode* n = node(id);
    ++health.nodes;
    if (n->supernode) {
      ++health.supernodes;
    }
    if (n->IsLeaf()) {
      ++health.leaves;
    }

    RTreeHealth::LevelStats& level =
        health.levels[static_cast<size_t>(n->level)];
    ++level.nodes;
    level.entries += n->entries.size();
    const double occupancy =
        static_cast<double>(n->entries.size()) /
        static_cast<double>(capacity_ * PagesOfNode(id));
    level.min_occupancy = std::min(level.min_occupancy, occupancy);

    if (!n->IsLeaf()) {
      for (const RTreeEntry& e : n->entries) {
        pending.push_back(e.child);
      }
      // Directory quality: how much of this node's claimed volume its
      // children re-claim from each other (overlap) or never cover at
      // all (dead space). Leaf entries are point rects with zero
      // volume, so these ratios only exist above the leaf level — and a
      // directory node whose own MBR is degenerate contributes nothing.
      const double node_volume = n->entries.empty()
                                     ? 0.0
                                     : n->ComputeMbr().Area();
      if (node_volume > 0.0) {
        double pairwise_overlap = 0.0;
        double child_volume = 0.0;
        for (size_t i = 0; i < n->entries.size(); ++i) {
          child_volume += n->entries[i].rect.Area();
          for (size_t j = i + 1; j < n->entries.size(); ++j) {
            pairwise_overlap +=
                n->entries[i].rect.OverlapArea(n->entries[j].rect);
          }
        }
        overlap_sum += pairwise_overlap / node_volume;
        dead_space_sum +=
            std::max(0.0, 1.0 - child_volume / node_volume);
        ++directory_nodes_with_volume;
      }
    }
  }

  for (RTreeHealth::LevelStats& level : health.levels) {
    if (level.nodes > 0) {
      level.avg_occupancy =
          static_cast<double>(level.entries) /
          static_cast<double>(level.nodes * capacity_);
    } else {
      level.min_occupancy = 0.0;
    }
  }
  if (!health.levels.empty()) {
    health.leaf_occupancy = health.levels.front().avg_occupancy;
  }
  if (directory_nodes_with_volume > 0) {
    health.overlap_ratio =
        overlap_sum / static_cast<double>(directory_nodes_with_volume);
    health.dead_space_ratio =
        dead_space_sum / static_cast<double>(directory_nodes_with_volume);
  }
  return health;
}

}  // namespace warpindex
