// Sort-Tile-Recursive (STR) bulk loading (Leutenegger et al.), the bulk
// construction path the paper's §4.3.1 recommends for initial index builds
// over large databases ("we can achieve high performance gains in
// construction by using bulk loading methods [6, 14, 15]").
//
// STR tiles the entries into near-full pages level by level, producing a
// tree with ~100% fill factor and far better build time than one-by-one
// insertion (quantified by bench/abl4_bulk_load).

#ifndef WARPINDEX_RTREE_BULK_LOAD_H_
#define WARPINDEX_RTREE_BULK_LOAD_H_

#include <vector>

#include "rtree/rtree.h"

namespace warpindex {

// Builds an R-tree over the given leaf entries with STR packing. The
// resulting tree supports all regular operations (insert/delete/search).
RTree BulkLoadStr(int dims, const RTreeOptions& options,
                  std::vector<RTreeEntry> leaf_entries);

}  // namespace warpindex

#endif  // WARPINDEX_RTREE_BULK_LOAD_H_
