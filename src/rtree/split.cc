#include "rtree/split.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace warpindex {
namespace {

using EntryList = std::vector<RTreeEntry>;
using SplitResult = std::pair<EntryList, EntryList>;

// Guttman quadratic PickSeeds: the pair wasting the most area.
std::pair<size_t, size_t> QuadraticPickSeeds(const EntryList& entries) {
  size_t best_a = 0;
  size_t best_b = 1;
  double worst_waste = -std::numeric_limits<double>::infinity();
  for (size_t a = 0; a + 1 < entries.size(); ++a) {
    for (size_t b = a + 1; b < entries.size(); ++b) {
      const double waste = entries[a].rect.UnionWith(entries[b].rect).Area() -
                           entries[a].rect.Area() - entries[b].rect.Area();
      if (waste > worst_waste) {
        worst_waste = waste;
        best_a = a;
        best_b = b;
      }
    }
  }
  return {best_a, best_b};
}

// Guttman linear PickSeeds: per dimension, find the entry with the highest
// low side and the one with the lowest high side; normalize the separation
// by the dimension's width and take the dimension with the greatest
// normalized separation.
std::pair<size_t, size_t> LinearPickSeeds(const EntryList& entries) {
  const int dims = entries[0].rect.dims;
  size_t best_a = 0;
  size_t best_b = 1;
  double best_separation = -std::numeric_limits<double>::infinity();
  for (int d = 0; d < dims; ++d) {
    const size_t k = static_cast<size_t>(d);
    size_t highest_low = 0;
    size_t lowest_high = 0;
    double dim_min = std::numeric_limits<double>::infinity();
    double dim_max = -std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < entries.size(); ++i) {
      const Rect& r = entries[i].rect;
      if (r.min[k] > entries[highest_low].rect.min[k]) {
        highest_low = i;
      }
      if (r.max[k] < entries[lowest_high].rect.max[k]) {
        lowest_high = i;
      }
      dim_min = std::min(dim_min, r.min[k]);
      dim_max = std::max(dim_max, r.max[k]);
    }
    if (highest_low == lowest_high) {
      continue;
    }
    const double width = dim_max - dim_min;
    const double separation = entries[highest_low].rect.min[k] -
                              entries[lowest_high].rect.max[k];
    const double normalized = width > 0.0 ? separation / width : separation;
    if (normalized > best_separation) {
      best_separation = normalized;
      best_a = lowest_high;
      best_b = highest_low;
    }
  }
  if (best_a == best_b) {
    best_b = best_a == 0 ? 1 : 0;
  }
  return {best_a, best_b};
}

// Shared distribution loop for the two Guttman variants. `quadratic`
// selects PickNext by max enlargement difference; linear assigns in input
// order.
SplitResult GuttmanSplit(EntryList entries, size_t min_fill, bool quadratic) {
  const auto seeds =
      quadratic ? QuadraticPickSeeds(entries) : LinearPickSeeds(entries);
  EntryList group_a;
  EntryList group_b;
  Rect mbr_a = entries[seeds.first].rect;
  Rect mbr_b = entries[seeds.second].rect;
  group_a.push_back(entries[seeds.first]);
  group_b.push_back(entries[seeds.second]);

  EntryList remaining;
  remaining.reserve(entries.size() - 2);
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i != seeds.first && i != seeds.second) {
      remaining.push_back(std::move(entries[i]));
    }
  }

  while (!remaining.empty()) {
    // If one group must take all remaining entries to reach min_fill, do so.
    if (group_a.size() + remaining.size() == min_fill) {
      for (auto& e : remaining) {
        mbr_a = mbr_a.UnionWith(e.rect);
        group_a.push_back(std::move(e));
      }
      remaining.clear();
      break;
    }
    if (group_b.size() + remaining.size() == min_fill) {
      for (auto& e : remaining) {
        mbr_b = mbr_b.UnionWith(e.rect);
        group_b.push_back(std::move(e));
      }
      remaining.clear();
      break;
    }

    size_t pick = 0;
    if (quadratic) {
      // PickNext: entry with the greatest preference for one group.
      double best_diff = -1.0;
      for (size_t i = 0; i < remaining.size(); ++i) {
        const double da = mbr_a.Enlargement(remaining[i].rect);
        const double db = mbr_b.Enlargement(remaining[i].rect);
        const double diff = std::fabs(da - db);
        if (diff > best_diff) {
          best_diff = diff;
          pick = i;
        }
      }
    }
    RTreeEntry entry = std::move(remaining[pick]);
    remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(pick));

    const double da = mbr_a.Enlargement(entry.rect);
    const double db = mbr_b.Enlargement(entry.rect);
    bool to_a;
    if (da != db) {
      to_a = da < db;
    } else if (mbr_a.Area() != mbr_b.Area()) {
      to_a = mbr_a.Area() < mbr_b.Area();
    } else {
      to_a = group_a.size() <= group_b.size();
    }
    if (to_a) {
      mbr_a = mbr_a.UnionWith(entry.rect);
      group_a.push_back(std::move(entry));
    } else {
      mbr_b = mbr_b.UnionWith(entry.rect);
      group_b.push_back(std::move(entry));
    }
  }
  return {std::move(group_a), std::move(group_b)};
}

Rect MbrOfRange(const EntryList& entries, size_t begin, size_t end) {
  Rect mbr = entries[begin].rect;
  for (size_t i = begin + 1; i < end; ++i) {
    mbr = mbr.UnionWith(entries[i].rect);
  }
  return mbr;
}

// R*-tree split: choose axis by minimal total margin over all candidate
// distributions, then the distribution on that axis with minimal overlap
// (ties broken by combined area).
SplitResult RStarSplit(EntryList entries, size_t min_fill) {
  const int dims = entries[0].rect.dims;
  const size_t total = entries.size();
  const size_t max_k = total - min_fill;  // split position k in [min_fill, max_k]

  int best_axis = 0;
  bool best_axis_by_upper = false;
  double best_margin_sum = std::numeric_limits<double>::infinity();

  EntryList sorted = entries;
  for (int d = 0; d < dims; ++d) {
    for (const bool by_upper : {false, true}) {
      const size_t k = static_cast<size_t>(d);
      std::sort(sorted.begin(), sorted.end(),
                [k, by_upper](const RTreeEntry& a, const RTreeEntry& b) {
                  return by_upper ? a.rect.max[k] < b.rect.max[k]
                                  : a.rect.min[k] < b.rect.min[k];
                });
      double margin_sum = 0.0;
      for (size_t split = min_fill; split <= max_k; ++split) {
        margin_sum += MbrOfRange(sorted, 0, split).Margin() +
                      MbrOfRange(sorted, split, total).Margin();
      }
      if (margin_sum < best_margin_sum) {
        best_margin_sum = margin_sum;
        best_axis = d;
        best_axis_by_upper = by_upper;
      }
    }
  }

  const size_t k = static_cast<size_t>(best_axis);
  std::sort(entries.begin(), entries.end(),
            [k, best_axis_by_upper](const RTreeEntry& a, const RTreeEntry& b) {
              return best_axis_by_upper ? a.rect.max[k] < b.rect.max[k]
                                        : a.rect.min[k] < b.rect.min[k];
            });

  size_t best_split = min_fill;
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (size_t split = min_fill; split <= max_k; ++split) {
    const Rect left = MbrOfRange(entries, 0, split);
    const Rect right = MbrOfRange(entries, split, total);
    const double overlap = left.OverlapArea(right);
    const double area = left.Area() + right.Area();
    if (overlap < best_overlap ||
        (overlap == best_overlap && area < best_area)) {
      best_overlap = overlap;
      best_area = area;
      best_split = split;
    }
  }

  EntryList group_a(entries.begin(),
                    entries.begin() + static_cast<ptrdiff_t>(best_split));
  EntryList group_b(entries.begin() + static_cast<ptrdiff_t>(best_split),
                    entries.end());
  return {std::move(group_a), std::move(group_b)};
}

}  // namespace

const char* SplitPolicyName(SplitPolicy policy) {
  switch (policy) {
    case SplitPolicy::kLinear:
      return "linear";
    case SplitPolicy::kQuadratic:
      return "quadratic";
    case SplitPolicy::kRStar:
      return "rstar";
  }
  return "unknown";
}

SplitResult SplitEntries(std::vector<RTreeEntry> entries, size_t min_fill,
                         SplitPolicy policy, double distribution_factor) {
  assert(entries.size() >= 2);
  const size_t effective_min_fill =
      std::max<size_t>(1, std::min(min_fill, entries.size() / 2));
  switch (policy) {
    case SplitPolicy::kLinear:
      return GuttmanSplit(std::move(entries), effective_min_fill,
                          /*quadratic=*/false);
    case SplitPolicy::kQuadratic:
      return GuttmanSplit(std::move(entries), effective_min_fill,
                          /*quadratic=*/true);
    case SplitPolicy::kRStar: {
      // m = factor * M, never below the structural minimum fill and never
      // above half the node (so at least one candidate split remains).
      size_t dist_min = effective_min_fill;
      if (distribution_factor > 0.0) {
        dist_min = std::max(
            dist_min, static_cast<size_t>(
                          static_cast<double>(entries.size()) *
                          distribution_factor));
        dist_min = std::max<size_t>(
            1, std::min(dist_min, entries.size() / 2));
      }
      return RStarSplit(std::move(entries), dist_min);
    }
  }
  return GuttmanSplit(std::move(entries), effective_min_fill, true);
}

}  // namespace warpindex
