#include "rtree/bulk_load.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace warpindex {
namespace {

using EntryList = std::vector<RTreeEntry>;

// Cuts [0, n) into `parts` contiguous ranges whose sizes differ by at most
// one, so no tiling step ever produces a runt partition (which would turn
// into an underfull node).
std::vector<std::pair<size_t, size_t>> BalancedRanges(size_t n,
                                                      size_t parts) {
  std::vector<std::pair<size_t, size_t>> ranges;
  ranges.reserve(parts);
  const size_t base = n / parts;
  const size_t extra = n % parts;
  size_t begin = 0;
  for (size_t i = 0; i < parts; ++i) {
    const size_t len = base + (i < extra ? 1 : 0);
    ranges.emplace_back(begin, begin + len);
    begin += len;
  }
  return ranges;
}

// Recursively tiles `entries` into groups of at most `cap`, sorting by
// center coordinate one dimension at a time (STR).
void StrPack(EntryList entries, int dim, int dims, size_t cap,
             std::vector<EntryList>* groups) {
  if (entries.size() <= cap) {
    groups->push_back(std::move(entries));
    return;
  }
  const size_t k = static_cast<size_t>(dim);
  std::sort(entries.begin(), entries.end(),
            [k](const RTreeEntry& a, const RTreeEntry& b) {
              return a.rect.Center(static_cast<int>(k)) <
                     b.rect.Center(static_cast<int>(k));
            });
  if (dim == dims - 1) {
    const size_t chunks =
        (entries.size() + cap - 1) / cap;
    for (const auto& [begin, end] : BalancedRanges(entries.size(), chunks)) {
      groups->emplace_back(entries.begin() + static_cast<ptrdiff_t>(begin),
                           entries.begin() + static_cast<ptrdiff_t>(end));
    }
    return;
  }
  // Number of pages this subtree needs, then slabs along this dimension =
  // P^(1/remaining_dims) (rounded up).
  const double pages = std::ceil(static_cast<double>(entries.size()) /
                                 static_cast<double>(cap));
  const int remaining = dims - dim;
  const size_t slabs = std::max<size_t>(
      1, static_cast<size_t>(
             std::ceil(std::pow(pages, 1.0 / static_cast<double>(remaining)))));
  for (const auto& [begin, end] : BalancedRanges(entries.size(), slabs)) {
    if (begin == end) {
      continue;
    }
    StrPack(EntryList(entries.begin() + static_cast<ptrdiff_t>(begin),
                      entries.begin() + static_cast<ptrdiff_t>(end)),
            dim + 1, dims, cap, groups);
  }
}

}  // namespace

RTree BulkLoadStr(int dims, const RTreeOptions& options,
                  std::vector<RTreeEntry> leaf_entries) {
  RTree tree(dims, options);
  if (leaf_entries.empty()) {
    return tree;
  }
  const size_t record_count = leaf_entries.size();

  // Packing capacity: bulk_fill_fraction < 1 leaves insert headroom in
  // every node (see RTreeOptions); clamped so nodes keep >= 2 entries.
  const double fill =
      options.bulk_fill_fraction > 0.0 && options.bulk_fill_fraction <= 1.0
          ? options.bulk_fill_fraction
          : 1.0;
  const size_t pack_capacity = std::max<size_t>(
      2, static_cast<size_t>(static_cast<double>(tree.capacity()) * fill));

  // Pack level by level until one group remains; that group becomes the
  // root's entries.
  EntryList current = std::move(leaf_entries);
  int level = 0;
  // Release the default empty root; we rebuild from scratch.
  tree.FreeNode(tree.root_);
  while (true) {
    std::vector<EntryList> groups;
    StrPack(std::move(current), /*dim=*/0, dims, pack_capacity, &groups);
    if (groups.size() == 1) {
      const NodeId root = tree.AllocateNode(level);
      RTreeNode* root_node = tree.node(root);
      root_node->entries = std::move(groups[0]);
      if (level > 0) {
        for (const RTreeEntry& e : root_node->entries) {
          tree.node(e.child)->parent = root;
        }
      }
      tree.root_ = root;
      break;
    }
    EntryList next_level;
    next_level.reserve(groups.size());
    for (EntryList& group : groups) {
      const NodeId id = tree.AllocateNode(level);
      RTreeNode* n = tree.node(id);
      n->entries = std::move(group);
      if (level > 0) {
        for (const RTreeEntry& e : n->entries) {
          tree.node(e.child)->parent = id;
        }
      }
      next_level.push_back(RTreeEntry::Internal(n->ComputeMbr(), id));
    }
    current = std::move(next_level);
    ++level;
  }
  tree.size_ = record_count;
  return tree;
}

}  // namespace warpindex
