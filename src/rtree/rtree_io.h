// R-tree persistence: a paged index is only useful if it survives
// restarts. The format serializes the tree structure with node ids
// remapped to a dense preorder, so free-list holes never reach disk.
//
//   magic "WIRT" | u32 version | u32 dims | options | u64 size |
//   u32 node_count | root (always node 0) ... nodes in preorder:
//   i32 level, u32 entry_count, entries (2*dims doubles + i64 child-or-
//   record id).

#ifndef WARPINDEX_RTREE_RTREE_IO_H_
#define WARPINDEX_RTREE_RTREE_IO_H_

#include <string>

#include "common/status.h"
#include "rtree/rtree.h"

namespace warpindex {

// Writes `tree` to `path` (overwriting).
Status SaveRTreeToFile(const RTree& tree, const std::string& path);

// Reads a tree previously written by SaveRTreeToFile. On success `*out`
// is replaced. Structural invariants are re-validated after load.
Status LoadRTreeFromFile(const std::string& path, RTree* out);

}  // namespace warpindex

#endif  // WARPINDEX_RTREE_RTREE_IO_H_
