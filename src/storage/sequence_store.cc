#include "storage/sequence_store.h"

#include <cassert>
#include <cstring>

namespace warpindex {

SequenceStore::SequenceStore(const Dataset& dataset, size_t page_size_bytes)
    : page_size_bytes_(page_size_bytes) {
  assert(page_size_bytes_ >= sizeof(double));
  // Pre-size pages for the whole dataset, then serialize via Append's
  // write path (without charging I/O for the initial load).
  uint64_t total_bytes = 0;
  for (const Sequence& s : dataset.sequences()) {
    total_bytes += sizeof(uint64_t) + s.size() * sizeof(double);
  }
  const size_t num_pages = static_cast<size_t>(
      (total_bytes + page_size_bytes_ - 1) / page_size_bytes_);
  pages_.reserve(num_pages);
  directory_.reserve(dataset.size());
  for (const Sequence& s : dataset.sequences()) {
    Append(s);
  }
}

void SequenceStore::WriteBytesAt(uint64_t offset, const void* src,
                                 size_t n) {
  const uint8_t* bytes = static_cast<const uint8_t*>(src);
  while (n > 0) {
    const size_t page = static_cast<size_t>(offset / page_size_bytes_);
    const size_t page_offset =
        static_cast<size_t>(offset % page_size_bytes_);
    while (page >= pages_.size()) {
      pages_.emplace_back(page_size_bytes_);
    }
    const size_t chunk = std::min(n, page_size_bytes_ - page_offset);
    pages_[page].Write(page_offset, bytes, chunk);
    bytes += chunk;
    offset += chunk;
    n -= chunk;
  }
}

SequenceId SequenceStore::Append(const Sequence& s, IoStats* stats) {
  DirectoryEntry entry;
  entry.byte_offset = end_offset_;
  entry.length = s.size();
  const uint64_t len = s.size();
  WriteBytesAt(end_offset_, &len, sizeof(len));
  WriteBytesAt(end_offset_ + sizeof(len), s.data(),
               s.size() * sizeof(double));
  const uint64_t record_bytes = sizeof(len) + s.size() * sizeof(double);
  end_offset_ += record_bytes;
  directory_.push_back(entry);
  ++num_live_;
  const auto id = static_cast<SequenceId>(directory_.size() - 1);
  if (stats != nullptr) {
    stats->RecordWrite(PagesOf(id));
  }
  return id;
}

bool SequenceStore::Remove(SequenceId id) {
  if (id < 0 || static_cast<size_t>(id) >= directory_.size() ||
      !directory_[static_cast<size_t>(id)].live) {
    return false;
  }
  directory_[static_cast<size_t>(id)].live = false;
  --num_live_;
  return true;
}

bool SequenceStore::IsLive(SequenceId id) const {
  return id >= 0 && static_cast<size_t>(id) < directory_.size() &&
         directory_[static_cast<size_t>(id)].live;
}

uint64_t SequenceStore::PagesOf(SequenceId id) const {
  assert(id >= 0 && static_cast<size_t>(id) < directory_.size());
  const DirectoryEntry& entry = directory_[static_cast<size_t>(id)];
  const uint64_t bytes = sizeof(uint64_t) + entry.length * sizeof(double);
  const uint64_t first_page = entry.byte_offset / page_size_bytes_;
  const uint64_t last_page =
      (entry.byte_offset + bytes - 1) / page_size_bytes_;
  return last_page - first_page + 1;
}

Sequence SequenceStore::Deserialize(const DirectoryEntry& entry) const {
  uint64_t cursor = entry.byte_offset;
  auto read_bytes = [&](void* dst, size_t n) {
    uint8_t* bytes = static_cast<uint8_t*>(dst);
    while (n > 0) {
      const size_t page = static_cast<size_t>(cursor / page_size_bytes_);
      const size_t offset = static_cast<size_t>(cursor % page_size_bytes_);
      const size_t chunk = std::min(n, page_size_bytes_ - offset);
      pages_[page].Read(offset, bytes, chunk);
      bytes += chunk;
      cursor += chunk;
      n -= chunk;
    }
  };
  uint64_t len = 0;
  read_bytes(&len, sizeof(len));
  assert(len == entry.length);
  std::vector<double> elements(len);
  if (len > 0) {
    read_bytes(elements.data(), len * sizeof(double));
  }
  return Sequence(std::move(elements));
}

Sequence SequenceStore::Fetch(SequenceId id, IoStats* stats,
                              Trace* trace) const {
  assert(IsLive(id));
  if (stats != nullptr) {
    stats->RecordRandomRun(PagesOf(id));
  }
  TraceCounter(trace, "pages_read", static_cast<double>(PagesOf(id)));
  Sequence s = Deserialize(directory_[static_cast<size_t>(id)]);
  s.set_id(id);
  return s;
}

void SequenceStore::ScanAll(
    const std::function<bool(SequenceId, const Sequence&)>& fn,
    IoStats* stats, Trace* trace) const {
  if (stats != nullptr) {
    stats->RecordSequentialRun(pages_.size());
  }
  TraceCounter(trace, "pages_read", static_cast<double>(pages_.size()));
  for (size_t i = 0; i < directory_.size(); ++i) {
    if (!directory_[i].live) {
      continue;
    }
    Sequence s = Deserialize(directory_[i]);
    s.set_id(static_cast<SequenceId>(i));
    if (!fn(static_cast<SequenceId>(i), s)) {
      return;
    }
  }
}

}  // namespace warpindex
