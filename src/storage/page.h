// Fixed-size page abstraction for the sequence store.

#ifndef WARPINDEX_STORAGE_PAGE_H_
#define WARPINDEX_STORAGE_PAGE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace warpindex {

using PageId = int64_t;
inline constexpr PageId kInvalidPageId = -1;

// A raw page of bytes. Records may span pages (spanned layout), so the
// page carries no slot directory — the store's record directory addresses
// byte ranges directly.
class Page {
 public:
  explicit Page(size_t size_bytes) : bytes_(size_bytes, 0) {}

  size_t size() const { return bytes_.size(); }
  const uint8_t* data() const { return bytes_.data(); }
  uint8_t* data() { return bytes_.data(); }

  void Write(size_t offset, const void* src, size_t n) {
    std::memcpy(bytes_.data() + offset, src, n);
  }
  void Read(size_t offset, void* dst, size_t n) const {
    std::memcpy(dst, bytes_.data() + offset, n);
  }

 private:
  std::vector<uint8_t> bytes_;
};

}  // namespace warpindex

#endif  // WARPINDEX_STORAGE_PAGE_H_
