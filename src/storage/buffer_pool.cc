#include "storage/buffer_pool.h"

namespace warpindex {
namespace {

size_t FloorPowerOfTwo(size_t v) {
  size_t p = 1;
  while (p * 2 <= v) {
    p *= 2;
  }
  return p;
}

size_t PickShardCount(size_t capacity_pages, size_t requested) {
  if (requested == 0) {
    requested = capacity_pages >= BufferPool::kShardingThreshold
                    ? BufferPool::kMaxShards
                    : 1;
  }
  if (requested > BufferPool::kMaxShards) {
    requested = BufferPool::kMaxShards;
  }
  return FloorPowerOfTwo(requested);
}

}  // namespace

BufferPool::BufferPool(size_t capacity_pages, size_t num_shards)
    : capacity_(capacity_pages),
      shards_(PickShardCount(capacity_pages, num_shards)) {
  shard_mask_ = shards_.size() - 1;
  shard_capacity_ = capacity_ / shards_.size();
  if (capacity_ > 0 && shard_capacity_ == 0) {
    shard_capacity_ = 1;
  }
}

bool BufferPool::Access(PageId page_id, IoStats* stats,
                        Trace* trace) const {
  Shard& shard = ShardFor(page_id);
  bool hit;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(page_id);
    hit = it != shard.index.end();
    if (hit) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else if (shard_capacity_ > 0) {
      if (shard.lru.size() >= shard_capacity_) {
        shard.index.erase(shard.lru.back());
        shard.lru.pop_back();
      }
      shard.lru.push_front(page_id);
      shard.index[page_id] = shard.lru.begin();
    }
  }
  if (hit) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    TraceCounter(trace, "pool_hits", 1.0);
    return true;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  TraceCounter(trace, "pool_misses", 1.0);
  if (stats != nullptr) {
    stats->RecordRandomRead();
  }
  return false;
}

void BufferPool::Clear() const {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
  }
}

size_t BufferPool::size() const {
  size_t total = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.lru.size();
  }
  return total;
}

BufferPool::StatsSnapshot BufferPool::TakeStatsSnapshot() const {
  StatsSnapshot snapshot;
  snapshot.capacity = capacity_;
  snapshot.cached = size();
  snapshot.shards = shards_.size();
  snapshot.hits = hits();
  snapshot.misses = misses();
  const uint64_t accesses = snapshot.hits + snapshot.misses;
  snapshot.hit_ratio =
      accesses > 0
          ? static_cast<double>(snapshot.hits) /
                static_cast<double>(accesses)
          : 0.0;
  return snapshot;
}

}  // namespace warpindex
