#include "storage/buffer_pool.h"

namespace warpindex {

bool BufferPool::Access(PageId page_id, IoStats* stats, Trace* trace) {
  auto it = index_.find(page_id);
  if (it != index_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    TraceCounter(trace, "pool_hits", 1.0);
    return true;
  }
  ++misses_;
  TraceCounter(trace, "pool_misses", 1.0);
  if (stats != nullptr) {
    stats->RecordRandomRead();
  }
  if (capacity_ == 0) {
    return false;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(page_id);
  index_[page_id] = lru_.begin();
  return false;
}

void BufferPool::Clear() {
  lru_.clear();
  index_.clear();
}

}  // namespace warpindex
