// Simulated disk cost model.
//
// The paper's experiments ran on a SunSparc Ultra-5 with a 9 GB disk with
// 9.5 ms seek time and 1 KB pages (§5.1). On 2026 hardware every dataset
// fits in cache and raw wall-clock time would hide exactly the effect the
// paper measures: scan methods pay for touching every page while the index
// touches a handful. We therefore *count* page accesses everywhere
// (sequence store, R-tree, suffix tree) and convert them to simulated I/O
// milliseconds with period-appropriate parameters. Benches report measured
// CPU time and simulated I/O time separately, plus their sum ("elapsed").

#ifndef WARPINDEX_STORAGE_DISK_MODEL_H_
#define WARPINDEX_STORAGE_DISK_MODEL_H_

#include <cstddef>
#include <cstdint>

namespace warpindex {

// Counters for page-level I/O. Random reads pay one seek each; a
// sequential run pays one seek for the whole run.
struct IoStats {
  uint64_t random_page_reads = 0;
  uint64_t sequential_page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t seeks = 0;

  void Reset() { *this = IoStats(); }

  void Merge(const IoStats& other) {
    random_page_reads += other.random_page_reads;
    sequential_page_reads += other.sequential_page_reads;
    page_writes += other.page_writes;
    seeks += other.seeks;
  }

  uint64_t TotalPageReads() const {
    return random_page_reads + sequential_page_reads;
  }

  // One random page read: a seek plus a transfer.
  void RecordRandomRead(uint64_t pages = 1) {
    random_page_reads += pages;
    seeks += pages;
  }
  // A random fetch of `pages` *contiguous* pages: one seek, n transfers.
  void RecordRandomRun(uint64_t pages) {
    random_page_reads += pages;
    seeks += 1;
  }
  // A sequential scan of `pages` pages: one seek, n transfers.
  void RecordSequentialRun(uint64_t pages) {
    sequential_page_reads += pages;
    seeks += 1;
  }
  void RecordWrite(uint64_t pages = 1) { page_writes += pages; }
};

// Late-1990s disk parameters matching the paper's platform.
struct DiskParameters {
  double seek_ms = 9.5;              // paper §5.1
  double transfer_mb_per_sec = 5.0;  // typical for the period
};

class DiskModel {
 public:
  explicit DiskModel(DiskParameters params = DiskParameters(),
                     size_t page_size_bytes = 1024)
      : params_(params), page_size_bytes_(page_size_bytes) {}

  const DiskParameters& params() const { return params_; }
  size_t page_size_bytes() const { return page_size_bytes_; }

  double TransferMillisPerPage() const {
    return static_cast<double>(page_size_bytes_) /
           (params_.transfer_mb_per_sec * 1e6) * 1e3;
  }

  // Simulated milliseconds for the recorded accesses (reads and writes pay
  // the same transfer cost).
  double CostMillis(const IoStats& stats) const {
    const double transfers = static_cast<double>(
        stats.random_page_reads + stats.sequential_page_reads +
        stats.page_writes);
    return static_cast<double>(stats.seeks) * params_.seek_ms +
           transfers * TransferMillisPerPage();
  }

 private:
  DiskParameters params_;
  size_t page_size_bytes_;
};

}  // namespace warpindex

#endif  // WARPINDEX_STORAGE_DISK_MODEL_H_
