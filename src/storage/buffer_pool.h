// Thread-safe LRU buffer pool over the sequence store's pages.
//
// The pool turns repeated page touches into cache hits: only misses reach
// the disk model. The scan baselines bypass it (a full scan of a database
// larger than memory gains nothing from LRU caching and would only evict
// the working set), matching the paper-era behaviour; the index methods'
// repeated root/branch touches, by contrast, mostly hit.
//
// Thread-safety contract: Access() and Clear() may be called from any
// number of threads concurrently (the concurrent query executor shares
// one pool across all workers). Frames are split into lock-striped
// shards — a page's shard is a hash of its id, so two threads touching
// different shards never contend — and the hit/miss counters are atomics.
// Small pools (fewer than kShardingThreshold frames) keep a single shard
// and therefore exact global LRU order; larger pools approximate global
// LRU per shard, which is the standard buffer-manager trade
// (shared_buffers-style partitioned clock/LRU sweeps).
//
// Access() is const: admitting or evicting a frame changes only the
// cache's internal state, never the answer of any query — the pool is
// logically constant along the read path, like the rest of the query
// stack (see docs/CONCURRENCY.md for the module-by-module matrix).

#ifndef WARPINDEX_STORAGE_BUFFER_POOL_H_
#define WARPINDEX_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "obs/trace.h"
#include "storage/disk_model.h"
#include "storage/page.h"

namespace warpindex {

class BufferPool {
 public:
  // Pools at or above this many frames are split into shards.
  static constexpr size_t kShardingThreshold = 64;
  static constexpr size_t kMaxShards = 16;

  // `capacity_pages` frames in total; zero disables caching (every access
  // misses). `num_shards` = 0 picks automatically: one shard for small
  // pools (exact LRU), up to kMaxShards for large ones.
  explicit BufferPool(size_t capacity_pages, size_t num_shards = 0);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Returns true if `page_id` was cached (hit). On a miss, the page is
  // admitted, the shard's LRU victim evicted, and one random page read
  // charged to `stats` (when provided). A trace (optional) receives
  // `pool_hits` / `pool_misses` counters on the innermost open span.
  // Safe to call concurrently; `stats` and `trace` are the caller's own
  // (per-query) objects and are not synchronized here.
  bool Access(PageId page_id, IoStats* stats, Trace* trace = nullptr) const;

  // Drops all cached pages. Safe to call concurrently with Access().
  void Clear() const;

  size_t capacity() const { return capacity_; }
  size_t num_shards() const { return shards_.size(); }
  // Total cached frames (takes each shard lock briefly).
  size_t size() const;
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

  // Point-in-time view for live introspection (/statusz). Safe to call
  // concurrently with Access(); hits/misses are read together but
  // relaxed, so the ratio is approximate under churn — fine for a
  // dashboard, don't assert on it in a race.
  struct StatsSnapshot {
    size_t capacity = 0;
    size_t cached = 0;
    size_t shards = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    // hits / (hits + misses); 0 before any access.
    double hit_ratio = 0.0;
  };
  StatsSnapshot TakeStatsSnapshot() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    // Front = most recently used.
    std::list<PageId> lru;
    std::unordered_map<PageId, std::list<PageId>::iterator> index;
  };

  Shard& ShardFor(PageId page_id) const {
    return shards_[static_cast<size_t>(page_id) & shard_mask_];
  }

  size_t capacity_;
  size_t shard_capacity_;
  size_t shard_mask_;
  mutable std::vector<Shard> shards_;
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
};

}  // namespace warpindex

#endif  // WARPINDEX_STORAGE_BUFFER_POOL_H_
