// LRU buffer pool over the sequence store's pages.
//
// The pool turns repeated page touches into cache hits: only misses reach
// the disk model. The scan baselines bypass it (a full scan of a database
// larger than memory gains nothing from LRU caching and would only evict
// the working set), matching the paper-era behaviour; the index methods'
// repeated root/branch touches, by contrast, mostly hit.

#ifndef WARPINDEX_STORAGE_BUFFER_POOL_H_
#define WARPINDEX_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "obs/trace.h"
#include "storage/disk_model.h"
#include "storage/page.h"

namespace warpindex {

class BufferPool {
 public:
  // `capacity_pages` frames; zero disables caching (every access misses).
  explicit BufferPool(size_t capacity_pages)
      : capacity_(capacity_pages) {}

  // Returns true if `page_id` was cached (hit). On a miss, the page is
  // admitted, the LRU victim evicted, and one random page read charged to
  // `stats` (when provided). A trace (optional) receives `pool_hits` /
  // `pool_misses` counters on the innermost open span.
  bool Access(PageId page_id, IoStats* stats, Trace* trace = nullptr);

  // Drops all cached pages.
  void Clear();

  size_t capacity() const { return capacity_; }
  size_t size() const { return lru_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  size_t capacity_;
  // Front = most recently used.
  std::list<PageId> lru_;
  std::unordered_map<PageId, std::list<PageId>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace warpindex

#endif  // WARPINDEX_STORAGE_BUFFER_POOL_H_
