// SequenceStore: the paged heap file holding the data sequences.
//
// Sequences are serialized contiguously into fixed-size pages (spanned
// layout: a record may cross page boundaries). A directory maps each
// SequenceId to its byte extent. Two access paths exist, with different
// I/O cost profiles:
//
//   * Fetch(id):   random access — one seek plus the record's pages
//                  (Algorithm 1, Step-5: read candidates for
//                  post-processing);
//   * ScanAll():   sequential access — one seek plus every page (the scan
//                  baselines' filtering stage).
//
// Both charge the supplied IoStats; the disk model turns the counters into
// simulated milliseconds.

#ifndef WARPINDEX_STORAGE_SEQUENCE_STORE_H_
#define WARPINDEX_STORAGE_SEQUENCE_STORE_H_

#include <functional>
#include <vector>

#include "obs/trace.h"
#include "sequence/dataset.h"
#include "sequence/sequence.h"
#include "storage/disk_model.h"
#include "storage/page.h"

namespace warpindex {

class SequenceStore {
 public:
  // Serializes every sequence of `dataset` into pages of
  // `page_size_bytes`.
  SequenceStore(const Dataset& dataset, size_t page_size_bytes);

  SequenceStore(SequenceStore&&) = default;
  SequenceStore& operator=(SequenceStore&&) = default;
  SequenceStore(const SequenceStore&) = delete;
  SequenceStore& operator=(const SequenceStore&) = delete;

  // All directory slots ever allocated, including tombstoned ones.
  size_t num_sequences() const { return directory_.size(); }
  // Slots still live (not removed).
  size_t num_live() const { return num_live_; }
  size_t num_pages() const { return pages_.size(); }
  size_t page_size_bytes() const { return page_size_bytes_; }
  size_t TotalBytes() const { return pages_.size() * page_size_bytes_; }

  // Pages occupied by a record (for cost estimation).
  uint64_t PagesOf(SequenceId id) const;

  // Random fetch: deserializes the sequence, charging one random run of
  // PagesOf(id) pages to `stats` (when provided). A trace (optional)
  // receives the page count as a `pages_read` counter on the innermost
  // open span.
  Sequence Fetch(SequenceId id, IoStats* stats = nullptr,
                 Trace* trace = nullptr) const;

  // Sequential scan: invokes `fn` for every *live* sequence in id order,
  // charging one sequential run covering all pages. If `fn` returns false
  // the scan stops early (the full run is still charged — the paper's
  // scan methods read the whole database). A trace (optional) receives
  // the page count as a `pages_read` counter.
  void ScanAll(const std::function<bool(SequenceId, const Sequence&)>& fn,
               IoStats* stats = nullptr, Trace* trace = nullptr) const;

  // Appends a sequence at the end of the heap file (allocating pages as
  // needed) and returns its id. Charges the written pages to `stats`.
  SequenceId Append(const Sequence& s, IoStats* stats = nullptr);

  // Tombstones a record: scans skip it and Fetch of it is a programmer
  // error. Returns false if `id` is unknown or already removed. (Space is
  // not reclaimed — like the paper-era heap files, compaction is a
  // rebuild.)
  bool Remove(SequenceId id);

  // True iff `id` names a live record.
  bool IsLive(SequenceId id) const;

 private:
  struct DirectoryEntry {
    uint64_t byte_offset = 0;  // global byte offset of the record
    uint64_t length = 0;       // element count
    bool live = true;
  };

  Sequence Deserialize(const DirectoryEntry& entry) const;
  void WriteBytesAt(uint64_t offset, const void* src, size_t n);

  size_t page_size_bytes_;
  std::vector<Page> pages_;
  std::vector<DirectoryEntry> directory_;
  // First unused byte in the heap file.
  uint64_t end_offset_ = 0;
  size_t num_live_ = 0;
};

}  // namespace warpindex

#endif  // WARPINDEX_STORAGE_SEQUENCE_STORE_H_
