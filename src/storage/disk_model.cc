#include "storage/disk_model.h"

// All members are defined inline in the header; this translation unit
// exists so the module has an anchor for future out-of-line growth.

namespace warpindex {}  // namespace warpindex
