// Shard server: one process serving a SUBSET of a sharded database over
// the wire protocol (`warpindex_cli shard-serve`).
//
// A shard server opens the shared manifest (shard/shard_io.h) but only
// the Engine directories of the shards it was asked to serve; several
// servers with disjoint subsets together cover the database, and servers
// with the SAME subset are replicas of one shard group (the router fails
// over / hedges between them).
//
// Exactness contract with the router (tests/net_router_property_test.cc):
//
//   * The HELLO_OK handshake reports each served shard's live-only
//     feature MBR, computed exactly as ShardedEngine::
//     ComputeBoundsFromShards computes it. The router prunes shard
//     groups against these MBRs with the same `MinDistLinf <= epsilon`
//     predicate the in-process engine uses, so the set of shards
//     actually queried — and therefore the summed num_candidates — is
//     identical.
//   * RANGE answers are merged per the in-process semantics: local ids
//     remapped through the manifest assignment (ascending-global-order
//     locals), matches sorted ascending, num_candidates summed over the
//     REQUESTED shards, resource costs merged with MergeParallel.
//   * KNN seeds a SharedKnnBound with the router-provided wave bound
//     (strictly-greater pruning keeps ties), merges per-shard survivor
//     lists in KnnMatchOrder, truncates to k, and reports the tightened
//     bound back for the router's next wave.
//
// Drain: RequestDrain() (SIGTERM path, or a DRAIN frame in tests) stops
// accepting, finishes in-flight requests, and answers new queries with
// UNAVAILABLE "draining" — the router's signal to fail over. WaitIdle()
// then blocks until the last request completes.

#ifndef WARPINDEX_NET_SHARD_SERVER_H_
#define WARPINDEX_NET_SHARD_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "net/wire_server.h"
#include "shard/partitioner.h"
#include "shard/shard_io.h"

namespace warpindex {

struct ShardServerOptions {
  // Directory holding manifest.wism + shard-NNNN/ engine directories
  // (a ShardedEngine::Save, e.g. `warpindex_cli save`).
  std::string db_dir;
  // Manifest shard indexes this server opens and answers for.
  std::vector<uint32_t> serve_shards;
  // Replica identity, echoed in HELLO_OK: replicas of one group serve
  // the same shard subset.
  int group = 0;
  int replica = 0;
  // Engine knobs; page_size_bytes is taken from the manifest.
  EngineOptions engine;
  // Transport (bind address, port, admission quotas, metrics). The
  // server name is forced to "shard-server".
  WireServerOptions server;
};

class ShardServer {
 public:
  // Loads the manifest, opens the requested shards, and computes their
  // live-only feature MBRs. Does not start serving.
  static Status Create(ShardServerOptions options,
                       std::unique_ptr<ShardServer>* out);

  Status Start() { return server_.Start(); }
  void RequestDrain() { server_.RequestDrain(); }
  void WaitIdle() { server_.WaitIdle(); }
  void Stop() { server_.Stop(); }

  uint16_t port() const { return server_.port(); }
  bool draining() const { return server_.draining(); }
  const WireServer& server() const { return server_; }
  const std::vector<uint32_t>& serve_shards() const {
    return options_.serve_shards;
  }
  int group() const { return options_.group; }
  int replica() const { return options_.replica; }

  // One /statusz row per served shard.
  struct ServedShard {
    uint32_t shard = 0;
    size_t sequences = 0;
    size_t live = 0;
  };
  std::vector<ServedShard> served() const;
  size_t manifest_num_shards() const {
    return manifest_.assignment.num_shards;
  }
  PartitionerKind partitioner() const { return manifest_.partitioner; }

 private:
  explicit ShardServer(ShardServerOptions options);

  Status Load();
  void RegisterHandlers();

  // Slot = position in serve_shards / engines_ for a manifest shard
  // index; -1 when this server does not serve it.
  int SlotOf(uint32_t shard) const;

  Status HandleHello(const JsonValue& request, JsonValue* response);
  Status HandleRange(const JsonValue& request, JsonValue* response);
  Status HandleKnn(const JsonValue& request, JsonValue* response);
  // STATS: identity + a full metrics snapshot as JSON, the payload the
  // router's fleet poller aggregates into /metrics?fleet=1 and /fleetz.
  Status HandleStats(const JsonValue& request, JsonValue* response);

  // Parses the request's "shards" array into slots (every entry must be
  // served here).
  Status RequestedSlots(const JsonValue& request,
                        std::vector<int>* slots) const;

  ShardServerOptions options_;
  ShardManifest manifest_;
  std::vector<std::unique_ptr<Engine>> engines_;      // per slot
  std::vector<std::vector<SequenceId>> global_of_;    // per slot: local->global
  std::vector<ShardFeatureBounds> bounds_;            // per slot, live-only
  WireServer server_;
};

}  // namespace warpindex

#endif  // WARPINDEX_NET_SHARD_SERVER_H_
