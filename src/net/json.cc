#include "net/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace warpindex {
namespace {

void AppendEscaped(const std::string& text, std::string* out) {
  out->push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

// Recursive-descent parser over [p, end). Reports errors as byte offsets
// into the original text.
class Parser {
 public:
  Parser(const char* begin, const char* end) : begin_(begin), p_(begin), end_(end) {}

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > 64) {
      return Error("nesting too deep");
    }
    SkipSpace();
    if (p_ >= end_) {
      return Error("unexpected end of input");
    }
    switch (*p_) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        WARPINDEX_RETURN_IF_ERROR(ParseString(&s));
        *out = JsonValue::Str(std::move(s));
        return Status::Ok();
      }
      case 't':
        if (Literal("true")) {
          *out = JsonValue::Bool(true);
          return Status::Ok();
        }
        return Error("bad literal");
      case 'f':
        if (Literal("false")) {
          *out = JsonValue::Bool(false);
          return Status::Ok();
        }
        return Error("bad literal");
      case 'n':
        if (Literal("null")) {
          *out = JsonValue::Null();
          return Status::Ok();
        }
        return Error("bad literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ExpectEnd() {
    SkipSpace();
    if (p_ != end_) {
      return Error("trailing characters after value");
    }
    return Status::Ok();
  }

 private:
  Status Error(const std::string& what) {
    return Status::InvalidArgument(
        "json: " + what + " at byte " + std::to_string(p_ - begin_));
  }

  void SkipSpace() {
    while (p_ < end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                         *p_ == '\r')) {
      ++p_;
    }
  }

  bool Literal(const char* word) {
    const size_t len = std::strlen(word);
    if (static_cast<size_t>(end_ - p_) < len ||
        std::memcmp(p_, word, len) != 0) {
      return false;
    }
    p_ += len;
    return true;
  }

  Status ParseString(std::string* out) {
    ++p_;  // opening quote
    out->clear();
    while (p_ < end_) {
      const char c = *p_++;
      if (c == '"') {
        return Status::Ok();
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (p_ >= end_) {
        break;
      }
      const char esc = *p_++;
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'u': {
          if (end_ - p_ < 4) {
            return Error("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = *p_++;
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape");
            }
          }
          // The bodies this parser sees are ASCII plus pass-through
          // UTF-8; encode the code point as UTF-8.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("bad escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const char* start = p_;
    if (p_ < end_ && *p_ == '+') {
      // JSON numbers never begin with '+'; our renderer never emits it.
      return Error("numbers may not begin with '+'");
    }
    if (p_ < end_ && *p_ == '-') {
      ++p_;
    }
    bool integral = true;
    while (p_ < end_ &&
           (std::isdigit(static_cast<unsigned char>(*p_)) || *p_ == '.' ||
            *p_ == 'e' || *p_ == 'E' || *p_ == '-' || *p_ == '+')) {
      if (*p_ == '.' || *p_ == 'e' || *p_ == 'E') {
        integral = false;
      }
      ++p_;
    }
    if (p_ == start) {
      return Error("expected a value");
    }
    const char* digits = (*start == '-') ? start + 1 : start;
    if (p_ - digits >= 2 && digits[0] == '0' &&
        std::isdigit(static_cast<unsigned char>(digits[1]))) {
      return Error("numbers may not have leading zeros");
    }
    const std::string text(start, p_);
    errno = 0;
    if (integral) {
      char* parse_end = nullptr;
      const long long v = std::strtoll(text.c_str(), &parse_end, 10);
      if (parse_end == text.c_str() + text.size() && errno == 0) {
        *out = JsonValue::Int(static_cast<int64_t>(v));
        return Status::Ok();
      }
      // Out of int64 range: fall through to double.
      errno = 0;
    }
    char* parse_end = nullptr;
    const double d = std::strtod(text.c_str(), &parse_end);
    if (parse_end != text.c_str() + text.size()) {
      return Error("malformed number '" + text + "'");
    }
    *out = JsonValue::Double(d);
    return Status::Ok();
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++p_;  // '['
    *out = JsonValue::Array();
    SkipSpace();
    if (p_ < end_ && *p_ == ']') {
      ++p_;
      return Status::Ok();
    }
    for (;;) {
      JsonValue item;
      WARPINDEX_RETURN_IF_ERROR(ParseValue(&item, depth + 1));
      out->Add(std::move(item));
      SkipSpace();
      if (p_ >= end_) {
        return Error("unterminated array");
      }
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == ']') {
        ++p_;
        return Status::Ok();
      }
      return Error("expected ',' or ']'");
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++p_;  // '{'
    *out = JsonValue::Object();
    SkipSpace();
    if (p_ < end_ && *p_ == '}') {
      ++p_;
      return Status::Ok();
    }
    for (;;) {
      SkipSpace();
      if (p_ >= end_ || *p_ != '"') {
        return Error("expected object key");
      }
      std::string key;
      WARPINDEX_RETURN_IF_ERROR(ParseString(&key));
      SkipSpace();
      if (p_ >= end_ || *p_ != ':') {
        return Error("expected ':'");
      }
      ++p_;
      JsonValue value;
      WARPINDEX_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->Set(key, std::move(value));
      SkipSpace();
      if (p_ >= end_) {
        return Error("unterminated object");
      }
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == '}') {
        ++p_;
        return Status::Ok();
      }
      return Error("expected ',' or '}'");
    }
  }

  const char* begin_;
  const char* p_;
  const char* end_;
};

}  // namespace

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Int(int64_t i) {
  JsonValue v;
  v.kind_ = Kind::kInt;
  v.int_ = i;
  return v;
}

JsonValue JsonValue::Double(double d) {
  JsonValue v;
  v.kind_ = Kind::kDouble;
  v.double_ = d;
  return v;
}

JsonValue JsonValue::Str(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

int64_t JsonValue::AsInt() const {
  if (kind_ == Kind::kInt) {
    return int_;
  }
  if (kind_ == Kind::kDouble) {
    return static_cast<int64_t>(double_);
  }
  return 0;
}

double JsonValue::AsDouble() const {
  if (kind_ == Kind::kDouble) {
    return double_;
  }
  if (kind_ == Kind::kInt) {
    return static_cast<double>(int_);
  }
  return 0.0;
}

void JsonValue::Add(JsonValue v) {
  kind_ = Kind::kArray;
  items_.push_back(std::move(v));
}

void JsonValue::Set(const std::string& key, JsonValue v) {
  kind_ = Kind::kObject;
  for (auto& [name, value] : members_) {
    if (name == key) {
      value = std::move(v);
      return;
    }
  }
  members_.emplace_back(key, std::move(v));
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& [name, value] : members_) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

int64_t JsonValue::GetInt(const std::string& key, int64_t fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->AsInt() : fallback;
}

double JsonValue::GetDouble(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->AsDouble() : fallback;
}

std::string JsonValue::GetString(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->kind() == Kind::kString ? v->AsString()
                                                    : fallback;
}

bool JsonValue::GetBool(const std::string& key, bool fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->kind() == Kind::kBool ? v->AsBool() : fallback;
}

void JsonValue::RenderTo(std::string* out) const {
  switch (kind_) {
    case Kind::kNull:
      out->append("null");
      return;
    case Kind::kBool:
      out->append(bool_ ? "true" : "false");
      return;
    case Kind::kInt: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(int_));
      out->append(buf);
      return;
    }
    case Kind::kDouble: {
      if (!std::isfinite(double_)) {
        // JSON has no Infinity/NaN; the wire contract is "finite or
        // null" and readers treat null as "absent".
        out->append("null");
        return;
      }
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", double_);
      out->append(buf);
      return;
    }
    case Kind::kString:
      AppendEscaped(string_, out);
      return;
    case Kind::kArray: {
      out->push_back('[');
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) {
          out->push_back(',');
        }
        items_[i].RenderTo(out);
      }
      out->push_back(']');
      return;
    }
    case Kind::kObject: {
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) {
          out->push_back(',');
        }
        AppendEscaped(members_[i].first, out);
        out->push_back(':');
        members_[i].second.RenderTo(out);
      }
      out->push_back('}');
      return;
    }
  }
}

std::string JsonValue::Render() const {
  std::string out;
  RenderTo(&out);
  return out;
}

Status JsonValue::Parse(const std::string& text, JsonValue* out) {
  Parser parser(text.data(), text.data() + text.size());
  WARPINDEX_RETURN_IF_ERROR(parser.ParseValue(out, 0));
  return parser.ExpectEnd();
}

}  // namespace warpindex
