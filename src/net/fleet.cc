#include "net/fleet.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <utility>

namespace warpindex {
namespace {

double SteadySeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string PromLabelEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Pulls one uint64 counter value out of a replica's metrics document.
uint64_t CounterOf(const JsonValue& metrics, const std::string& name) {
  const JsonValue* counters = metrics.Find("counters");
  if (counters == nullptr) {
    return 0;
  }
  return static_cast<uint64_t>(counters->GetInt(name, 0));
}

double HistP99Of(const JsonValue& metrics, const std::string& name) {
  const JsonValue* hists = metrics.Find("histograms");
  if (hists == nullptr) {
    return 0.0;
  }
  const JsonValue* hist = hists->Find(name);
  if (hist == nullptr) {
    return 0.0;
  }
  return hist->GetDouble("p99", 0.0);
}

}  // namespace

FleetPoller::FleetPoller(FleetPollerOptions options)
    : options_(std::move(options)) {
  for (size_t g = 0; g < options_.groups.size(); ++g) {
    for (size_t r = 0; r < options_.groups[g].size(); ++r) {
      const RouterEndpoint& endpoint = options_.groups[g][r];
      ReplicaState state;
      state.view.group = g;
      state.view.replica = r;
      state.view.instance =
          endpoint.host + ":" + std::to_string(endpoint.port);
      WireClientOptions client_options;
      client_options.host = endpoint.host;
      client_options.port = endpoint.port;
      client_options.timeout_ms = options_.call_timeout_ms;
      client_options.client_id = options_.client_id;
      state.client = std::make_unique<WireClient>(client_options);
      replicas_.push_back(std::move(state));
    }
  }
}

FleetPoller::~FleetPoller() { Stop(); }

Status FleetPoller::Start() {
  if (running_.load(std::memory_order_acquire) ||
      options_.poll_interval_ms <= 0) {
    return Status::Ok();
  }
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { PollLoop(); });
  return Status::Ok();
}

void FleetPoller::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) {
    thread_.join();
  }
}

void FleetPoller::PollLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    PollOnce();
    // Sleep in short slices so Stop() is prompt.
    const int interval = std::max(options_.poll_interval_ms, 50);
    for (int waited = 0;
         waited < interval && !stop_.load(std::memory_order_acquire);
         waited += 50) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
}

void FleetPoller::PollOnce() {
  // One round at a time; the clients live outside mu_ so a slow or dead
  // replica's timeout never blocks a concurrent render.
  std::lock_guard<std::mutex> poll_lock(poll_mu_);
  const JsonValue request = JsonValue::Object();
  for (ReplicaState& state : replicas_) {
    JsonValue response;
    const Status status =
        state.client->Call(WireType::kStats, request, &response);
    const double now_s = SteadySeconds();
    std::lock_guard<std::mutex> lock(mu_);
    if (!status.ok()) {
      state.view.consecutive_failures += 1;
      state.view.reachable = false;
      continue;
    }
    const JsonValue* metrics = response.Find("metrics");
    state.view.consecutive_failures = 0;
    state.view.reachable = true;
    state.view.draining = response.GetBool("draining", false);
    state.view.metrics =
        metrics != nullptr ? *metrics : JsonValue::Object();
    state.view.requests_total =
        CounterOf(state.view.metrics, "warpindex_net_requests_total");
    state.view.errors_total =
        CounterOf(state.view.metrics, "warpindex_net_errors_total");
    state.view.shed_total =
        CounterOf(state.view.metrics, "warpindex_net_shed_total");
    state.view.p99_wall_ms =
        HistP99Of(state.view.metrics, "warpindex_net_query_wall_ms");
    state.view.p99_cpu_ms =
        HistP99Of(state.view.metrics, "warpindex_net_query_cpu_ms");
    const JsonValue* gauges = state.view.metrics.Find("gauges");
    state.view.ingest_backlog =
        gauges != nullptr &&
                gauges->Find("warpindex_ingest_delta_entries") != nullptr
            ? gauges->GetInt("warpindex_ingest_delta_entries", 0)
            : -1;
    if (state.last_poll_s > 0.0) {
      state.prev_poll_s = state.last_poll_s;
      state.prev_requests_total = state.last_requests_total;
      const double gap_s = now_s - state.prev_poll_s;
      const uint64_t delta =
          state.view.requests_total >= state.prev_requests_total
              ? state.view.requests_total - state.prev_requests_total
              : 0;
      state.view.qps =
          gap_s > 0.0 ? static_cast<double>(delta) / gap_s : 0.0;
    }
    state.last_poll_s = now_s;
    state.last_requests_total = state.view.requests_total;
  }
  std::lock_guard<std::mutex> lock(mu_);
  last_round_s_ = SteadySeconds();
}

void FleetPoller::EnsureFresh() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const double age_s = SteadySeconds() - last_round_s_;
    if (last_round_s_ > 0.0 &&
        age_s * 1000.0 < static_cast<double>(options_.min_poll_gap_ms)) {
      return;
    }
  }
  PollOnce();
}

std::vector<FleetPoller::Replica> FleetPoller::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Replica> out;
  out.reserve(replicas_.size());
  for (const ReplicaState& state : replicas_) {
    out.push_back(state.view);
  }
  return out;
}

std::string FleetPoller::FleetMetricsText() {
  EnsureFresh();
  std::vector<Replica> replicas = Snapshot();
  // Aggregate over replicas whose LAST poll succeeded (a drained or
  // dead replica's stale numbers must not linger in the sums).
  std::vector<const Replica*> live;
  for (const Replica& r : replicas) {
    if (r.reachable) {
      live.push_back(&r);
    }
  }

  // name -> [(instance, value)]; sums derived at render time.
  std::map<std::string, std::vector<std::pair<std::string, int64_t>>>
      counters;
  std::map<std::string, std::vector<std::pair<std::string, int64_t>>>
      gauges;
  struct MergedHist {
    std::vector<double> boundaries;
    std::vector<uint64_t> bucket_counts;
    double sum = 0.0;
    uint64_t count = 0;
    std::vector<std::pair<std::string, uint64_t>> per_instance_count;
    bool mismatch = false;
  };
  std::map<std::string, MergedHist> hists;

  for (const Replica* r : live) {
    if (const JsonValue* c = r->metrics.Find("counters"); c != nullptr) {
      for (const auto& [name, value] : c->members()) {
        counters[name].emplace_back(r->instance, value.AsInt());
      }
    }
    if (const JsonValue* g = r->metrics.Find("gauges"); g != nullptr) {
      for (const auto& [name, value] : g->members()) {
        gauges[name].emplace_back(r->instance, value.AsInt());
      }
    }
    if (const JsonValue* h = r->metrics.Find("histograms"); h != nullptr) {
      for (const auto& [name, hist] : h->members()) {
        MergedHist& merged = hists[name];
        std::vector<double> boundaries;
        std::vector<uint64_t> bucket_counts;
        if (const JsonValue* b = hist.Find("boundaries"); b != nullptr) {
          for (const JsonValue& v : b->items()) {
            boundaries.push_back(v.AsDouble());
          }
        }
        if (const JsonValue* b = hist.Find("bucket_counts");
            b != nullptr) {
          for (const JsonValue& v : b->items()) {
            bucket_counts.push_back(static_cast<uint64_t>(v.AsInt()));
          }
        }
        if (merged.bucket_counts.empty()) {
          merged.boundaries = boundaries;
          merged.bucket_counts = bucket_counts;
        } else if (merged.boundaries == boundaries &&
                   merged.bucket_counts.size() == bucket_counts.size()) {
          for (size_t i = 0; i < bucket_counts.size(); ++i) {
            merged.bucket_counts[i] += bucket_counts[i];
          }
        } else {
          // Mixed-build fleets cannot merge buckets exactly; flag the
          // family rather than publish a wrong merge.
          merged.mismatch = true;
        }
        merged.sum += hist.GetDouble("sum", 0.0);
        const uint64_t count =
            static_cast<uint64_t>(hist.GetInt("count", 0));
        merged.count += count;
        merged.per_instance_count.emplace_back(r->instance, count);
      }
    }
  }

  std::string out;
  out += "# warpindex fleet federation: " + std::to_string(live.size()) +
         "/" + std::to_string(replicas.size()) +
         " replicas reporting\n";
  char buf[32];
  for (const auto& [name, values] : counters) {
    out += "# TYPE " + name + " counter\n";
    int64_t sum = 0;
    for (const auto& [instance, value] : values) {
      std::snprintf(buf, sizeof(buf), "%" PRId64, value);
      out += name + "{instance=\"" + PromLabelEscape(instance) + "\"} " +
             buf + "\n";
      sum += value;
    }
    std::snprintf(buf, sizeof(buf), "%" PRId64, sum);
    out += name + " " + buf + "\n";
  }
  for (const auto& [name, values] : gauges) {
    out += "# TYPE " + name + " gauge\n";
    int64_t sum = 0;
    for (const auto& [instance, value] : values) {
      std::snprintf(buf, sizeof(buf), "%" PRId64, value);
      out += name + "{instance=\"" + PromLabelEscape(instance) + "\"} " +
             buf + "\n";
      sum += value;
    }
    std::snprintf(buf, sizeof(buf), "%" PRId64, sum);
    out += name + " " + buf + "\n";
  }
  for (const auto& [name, merged] : hists) {
    if (merged.mismatch) {
      out += "# " + name +
             ": bucket boundaries differ across replicas; merge "
             "skipped\n";
      continue;
    }
    out += "# TYPE " + name + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < merged.bucket_counts.size(); ++i) {
      cumulative += merged.bucket_counts[i];
      const std::string le = i < merged.boundaries.size()
                                 ? Num(merged.boundaries[i])
                                 : "+Inf";
      std::snprintf(buf, sizeof(buf), "%" PRIu64, cumulative);
      out += name + "_bucket{le=\"" + le + "\"} " + buf + "\n";
    }
    out += name + "_sum " + Num(merged.sum) + "\n";
    std::snprintf(buf, sizeof(buf), "%" PRIu64, merged.count);
    out += name + "_count " + buf + "\n";
    for (const auto& [instance, count] : merged.per_instance_count) {
      std::snprintf(buf, sizeof(buf), "%" PRIu64, count);
      out += name + "_count{instance=\"" + PromLabelEscape(instance) +
             "\"} " + buf + "\n";
    }
  }
  // Process self-metrics federate too (the "process" object of each
  // replica's document).
  double cpu_sum = 0.0;
  double rss_sum = 0.0;
  int64_t fds_sum = 0;
  std::string cpu_lines;
  std::string rss_lines;
  std::string fds_lines;
  std::string start_lines;
  for (const Replica* r : live) {
    const JsonValue* process = r->metrics.Find("process");
    if (process == nullptr) {
      continue;
    }
    const std::string label =
        "{instance=\"" + PromLabelEscape(r->instance) + "\"} ";
    const double cpu = process->GetDouble("cpu_seconds_total", 0.0);
    const double rss = process->GetDouble("resident_memory_bytes", 0.0);
    const int64_t fds = process->GetInt("open_fds", 0);
    cpu_sum += cpu;
    rss_sum += rss;
    fds_sum += fds;
    cpu_lines += "process_cpu_seconds_total" + label + Num(cpu) + "\n";
    rss_lines +=
        "process_resident_memory_bytes" + label + Num(rss) + "\n";
    fds_lines += "process_open_fds" + label + std::to_string(fds) + "\n";
    start_lines +=
        "process_start_time_seconds" + label +
        Num(process->GetDouble("start_time_seconds", 0.0)) + "\n";
  }
  if (!cpu_lines.empty()) {
    out += "# TYPE process_cpu_seconds_total counter\n" + cpu_lines +
           "process_cpu_seconds_total " + Num(cpu_sum) + "\n";
    out += "# TYPE process_resident_memory_bytes gauge\n" + rss_lines +
           "process_resident_memory_bytes " + Num(rss_sum) + "\n";
    out += "# TYPE process_open_fds gauge\n" + fds_lines +
           "process_open_fds " + std::to_string(fds_sum) + "\n";
    out += "# TYPE process_start_time_seconds gauge\n" + start_lines;
  }
  return out;
}

std::string FleetPoller::FleetzJson() {
  EnsureFresh();
  const std::vector<Replica> replicas = Snapshot();
  JsonValue rows = JsonValue::Array();
  size_t live = 0;
  for (const Replica& r : replicas) {
    // The fleet page lists who is actually serving: draining and dead
    // replicas disappear (the multi-process smoke asserts this after
    // SIGTERM).
    if (!r.reachable || r.draining ||
        r.consecutive_failures >= options_.drop_after_failures) {
      continue;
    }
    ++live;
    JsonValue row = JsonValue::Object();
    row.Set("group", JsonValue::Int(static_cast<int64_t>(r.group)));
    row.Set("replica", JsonValue::Int(static_cast<int64_t>(r.replica)));
    row.Set("instance", JsonValue::Str(r.instance));
    row.Set("qps", JsonValue::Double(r.qps));
    row.Set("p99_wall_ms", JsonValue::Double(r.p99_wall_ms));
    row.Set("p99_cpu_ms", JsonValue::Double(r.p99_cpu_ms));
    row.Set("requests_total",
            JsonValue::Int(static_cast<int64_t>(r.requests_total)));
    row.Set("errors_total",
            JsonValue::Int(static_cast<int64_t>(r.errors_total)));
    row.Set("shed_total",
            JsonValue::Int(static_cast<int64_t>(r.shed_total)));
    if (r.ingest_backlog >= 0) {
      row.Set("ingest_backlog", JsonValue::Int(r.ingest_backlog));
    } else {
      row.Set("ingest_backlog", JsonValue::Null());
    }
    rows.Add(std::move(row));
  }
  JsonValue doc = JsonValue::Object();
  doc.Set("tracked", JsonValue::Int(static_cast<int64_t>(replicas.size())));
  doc.Set("live", JsonValue::Int(static_cast<int64_t>(live)));
  doc.Set("replicas", std::move(rows));
  return doc.Render();
}

}  // namespace warpindex
