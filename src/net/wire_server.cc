#include "net/wire_server.h"

#include "common/timer.h"

#include "obs/profiler.h"

#include <sys/socket.h>

#include <chrono>
#include <utility>

namespace warpindex {
namespace {

double MonotonicMillis() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool IsQueryType(WireType type) {
  return type == WireType::kRange || type == WireType::kKnn;
}

bool IsRequestType(WireType type) {
  switch (type) {
    case WireType::kHello:
    case WireType::kRange:
    case WireType::kKnn:
    case WireType::kHealth:
    case WireType::kDrain:
    case WireType::kStats:
      return true;
    default:
      return false;
  }
}

}  // namespace

WireServer::WireServer(WireServerOptions options)
    : options_(std::move(options)), admission_(options_.admission) {}

WireServer::~WireServer() { Stop(); }

void WireServer::Handle(WireType type, Handler handler) {
  handlers_[type] = std::move(handler);
}

Status WireServer::Start() {
  if (running_.load()) {
    return Status::FailedPrecondition("wire server already running");
  }
  TcpListenerOptions listen_options;
  listen_options.bind_address = options_.bind_address;
  listen_options.port = options_.port;
  listen_options.backlog = options_.backlog;
  WARPINDEX_RETURN_IF_ERROR(listener_.Listen(listen_options));
  if (options_.metrics != nullptr) {
    requests_counter_ = options_.metrics->GetCounter(
        "warpindex_net_requests_total",
        "Wire requests received (" + options_.name + ")");
    errors_counter_ = options_.metrics->GetCounter(
        "warpindex_net_errors_total",
        "Wire error responses sent (" + options_.name + ")");
    shed_counter_ = options_.metrics->GetCounter(
        "warpindex_net_shed_total",
        "Wire requests rejected by admission control (" + options_.name +
            ")");
    connections_gauge_ = options_.metrics->GetGauge(
        "warpindex_net_connections",
        "Open wire connections (" + options_.name + ")");
    query_wall_ms_hist_ = options_.metrics->GetHistogram(
        "warpindex_net_query_wall_ms",
        ExponentialBoundaries(0.01, 2.0, 20),
        "wall time per wire query request, handler-side (ms)");
    query_cpu_ms_hist_ = options_.metrics->GetHistogram(
        "warpindex_net_query_cpu_ms",
        ExponentialBoundaries(0.01, 2.0, 20),
        "handler-thread CPU time per wire query request (ms)");
  }
  stopping_.store(false);
  draining_.store(false);
  running_.store(true);
  accept_thread_ = std::thread([this] {
    CpuProfiler::SetThreadTag("wire-accept");
    AcceptLoop();
  });
  return Status::Ok();
}

void WireServer::RequestDrain() {
  draining_.store(true);
  // Stop accepting: new clients get ECONNREFUSED and try a replica.
  listener_.Shutdown();
}

void WireServer::WaitIdle() {
  std::unique_lock<std::mutex> lock(stats_mu_);
  idle_cv_.wait(lock, [this] { return inflight_ == 0; });
}

void WireServer::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  stopping_.store(true);
  draining_.store(true);
  listener_.Shutdown();
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  std::vector<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    connections.swap(connections_);
  }
  for (auto& conn : connections) {
    if (conn->fd >= 0) {
      // Wake a blocked read; the connection thread closes its own fd.
      ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  for (auto& conn : connections) {
    if (conn->thread.joinable()) {
      conn->thread.join();
    }
  }
  listener_.Close();
}

WireServerStats WireServer::stats() const {
  WireServerStats stats;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats.requests_total = requests_total_;
    stats.errors_total = errors_total_;
    stats.inflight = inflight_;
  }
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    stats.connections_total = connections_total_;
    int active = 0;
    for (const auto& conn : connections_) {
      if (!conn->done.load()) {
        ++active;
      }
    }
    stats.active_connections = active;
  }
  stats.shed_total =
      admission_.shed_quota_total() + admission_.shed_overload_total();
  stats.draining = draining_.load();
  return stats;
}

void WireServer::AcceptLoop() {
  while (!stopping_.load()) {
    const int fd = listener_.Accept();
    if (fd < 0) {
      break;  // listener shut down (Stop or drain)
    }
    SetSocketIoTimeout(fd, options_.io_timeout_ms);
    std::lock_guard<std::mutex> lock(conn_mu_);
    ReapFinishedLocked();
    connections_.push_back(std::make_unique<Connection>());
    Connection* conn = connections_.back().get();
    conn->fd = fd;
    ++connections_total_;
    if (connections_gauge_ != nullptr) {
      connections_gauge_->Increment(1);
    }
    conn->thread = std::thread([this, conn] {
      CpuProfiler::SetThreadTag("wire-conn");
      ServeConnection(conn);
    });
  }
}

void WireServer::ReapFinishedLocked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load()) {
      if ((*it)->thread.joinable()) {
        (*it)->thread.join();
      }
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void WireServer::ServeConnection(Connection* conn) {
  std::string client_id = "anon";
  while (!stopping_.load()) {
    WireFrame frame;
    bool idle = false;
    const Status status =
        ReadFrame(conn->fd, &frame, options_.max_body_bytes, &idle);
    if (!status.ok()) {
      if (idle) {
        continue;  // poll tick: no bytes arrived; re-check stop flag
      }
      break;  // clean close, desync, or transport failure
    }
    if (!DispatchFrame(conn->fd, frame, &client_id)) {
      break;
    }
  }
  CloseSocket(conn->fd);
  conn->fd = -1;
  if (connections_gauge_ != nullptr) {
    connections_gauge_->Increment(-1);
  }
  conn->done.store(true);
}

bool WireServer::DispatchFrame(int fd, const WireFrame& frame,
                               std::string* client_id) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++requests_total_;
  }
  if (requests_counter_ != nullptr) {
    requests_counter_->Increment();
  }

  auto send_error = [&](const Status& status) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++errors_total_;
    }
    if (errors_counter_ != nullptr) {
      errors_counter_->Increment();
    }
    return WriteFrame(fd, MakeErrorFrame(frame.request_id, status)).ok();
  };

  if (!IsRequestType(frame.type)) {
    return send_error(Status::InvalidArgument(
        std::string("expected a request frame, got ") +
        WireTypeName(frame.type)));
  }

  JsonValue request;
  if (frame.body.empty()) {
    request = JsonValue::Object();
  } else {
    const Status parse_status = JsonValue::Parse(frame.body, &request);
    if (!parse_status.ok()) {
      return send_error(Status::InvalidArgument(
          std::string("malformed ") + WireTypeName(frame.type) +
          " body: " + parse_status.message()));
    }
  }

  if (frame.type == WireType::kHello) {
    const std::string hello_client = request.GetString("client", "");
    if (!hello_client.empty()) {
      *client_id = hello_client;
    }
  }

  if (IsQueryType(frame.type) && draining_.load()) {
    return send_error(Status::Unavailable(options_.name + " is draining"));
  }

  const auto handler_it = handlers_.find(frame.type);

  JsonValue response = JsonValue::Object();
  Status handler_status = Status::Ok();

  if (IsQueryType(frame.type)) {
    if (handler_it == handlers_.end()) {
      return send_error(Status::InvalidArgument(
          std::string(WireTypeName(frame.type)) +
          " is not served by this " + options_.name));
    }
    const Status admit =
        admission_.Admit(*client_id, MonotonicMillis());
    if (!admit.ok()) {
      if (shed_counter_ != nullptr) {
        shed_counter_->Increment();
      }
      return send_error(admit);
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++inflight_;
    }
    // The fleet page reads wall and CPU p99s of this pair: CPU tracks
    // the handler thread (shard servers search inline), so a wall>>CPU
    // gap on a replica means waiting, not work.
    WallTimer query_timer;
    ThreadCpuTimer query_cpu_timer;
    handler_status = handler_it->second(*client_id, request, &response);
    if (query_wall_ms_hist_ != nullptr) {
      query_wall_ms_hist_->Observe(query_timer.ElapsedMillis());
    }
    if (query_cpu_ms_hist_ != nullptr) {
      query_cpu_ms_hist_->Observe(query_cpu_timer.ElapsedMillis());
    }
    admission_.Release();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      --inflight_;
    }
    idle_cv_.notify_all();
  } else {
    if (handler_it != handlers_.end()) {
      handler_status = handler_it->second(*client_id, request, &response);
    }
    // Built-in fields every peer can rely on, whatever the handler set.
    if (frame.type == WireType::kHello) {
      response.Set("server", JsonValue::Str(options_.name));
      response.Set("protocol",
                   JsonValue::Int(static_cast<int64_t>(kWireProtocolVersion)));
      response.Set("draining", JsonValue::Bool(draining_.load()));
    } else if (frame.type == WireType::kHealth) {
      WireServerStats s = stats();
      response.Set("status",
                   JsonValue::Str(s.draining ? "draining" : "ok"));
      response.Set("inflight", JsonValue::Int(s.inflight));
      response.Set("requests", JsonValue::Int(
                                   static_cast<int64_t>(s.requests_total)));
    } else if (frame.type == WireType::kDrain) {
      RequestDrain();
      response.Set("draining", JsonValue::Bool(true));
    }
  }

  if (!handler_status.ok()) {
    return send_error(handler_status);
  }

  WireFrame reply;
  reply.type = static_cast<WireType>(static_cast<uint8_t>(frame.type) + 1);
  reply.request_id = frame.request_id;
  reply.body = response.Render();
  return WriteFrame(fd, reply).ok();
}

}  // namespace warpindex
