// JSON <-> core-struct conversions for the wire protocol. Shared by the
// shard server (encode side) and the router (decode side) so both ends
// agree field-for-field; the property tests in
// tests/net_router_property_test.cc depend on every conversion here
// round-tripping exactly.
//
// Exactness: doubles are rendered as %.17g (net/json.h) and parsed with
// strtod, which round-trips every finite IEEE double bit-identically.
// Sequences, epsilon, distances, and MBR corners therefore survive the
// wire unchanged, and the router's merge produces the same bits as the
// in-process ShardedEngine.

#ifndef WARPINDEX_NET_SERIALIZE_H_
#define WARPINDEX_NET_SERIALIZE_H_

#include <vector>

#include "common/status.h"
#include "core/search_method.h"
#include "core/tw_knn_search.h"
#include "net/json.h"
#include "obs/trace.h"
#include "rtree/geometry.h"
#include "sequence/sequence.h"

namespace warpindex {

// Sequence <-> flat JSON array of element values (the id does not cross
// the wire; queries are anonymous).
JsonValue SequenceToJson(const Sequence& sequence);
Status JsonToSequence(const JsonValue& json, Sequence* out);

// SearchCost <-> object. Everything the router needs to reproduce the
// ShardedEngine's merged cost accounting crosses: io, dtw/lb work,
// index/pool traffic, wall time, per-stage timings and prune counters.
JsonValue CostToJson(const SearchCost& cost);
Status JsonToCost(const JsonValue& json, SearchCost* out);

// Trace spans <-> array of span objects (name, parent, start_ms,
// duration_ms, shard, tid, counters). Parent indexes are local to the
// serialized array; the router rebases them when stitching.
JsonValue SpansToJson(const std::vector<TraceSpan>& spans);
Status JsonToSpans(const JsonValue& json, std::vector<TraceSpan>* out);

// Feature MBR <-> {"min":[...],"max":[...]}. dims from array length.
JsonValue RectToJson(const Rect& rect);
Status JsonToRect(const JsonValue& json, Rect* out);

// kNN matches <-> array of {"id":...,"distance":...}.
JsonValue KnnMatchesToJson(const std::vector<KnnMatch>& matches);
Status JsonToKnnMatches(const JsonValue& json, std::vector<KnnMatch>* out);

}  // namespace warpindex

#endif  // WARPINDEX_NET_SERIALIZE_H_
