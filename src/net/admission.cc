#include "net/admission.h"

#include <algorithm>

namespace warpindex {

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options),
      burst_(options.per_client_burst > 0.0
                 ? options.per_client_burst
                 : std::max(1.0, options.per_client_qps)) {}

Status AdmissionController::Admit(const std::string& client_id,
                                  double now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.max_inflight > 0 && inflight_ >= options_.max_inflight) {
    ++shed_overload_;
    return Status::ResourceExhausted(
        "server overloaded: " + std::to_string(inflight_) +
        " requests in flight (limit " +
        std::to_string(options_.max_inflight) + ")");
  }
  if (options_.per_client_qps > 0.0) {
    const auto [it, inserted] = buckets_.try_emplace(client_id);
    Bucket& bucket = it->second;
    if (inserted) {
      // A new client starts with a full bucket. (Insertion, not a
      // sentinel value, marks newness: a legitimately drained bucket
      // may hold exactly zero tokens.)
      bucket.tokens = burst_;
      bucket.last_refill_ms = now_ms;
    }
    const double elapsed_s =
        std::max(0.0, (now_ms - bucket.last_refill_ms) / 1000.0);
    bucket.tokens = std::min(
        burst_, bucket.tokens + elapsed_s * options_.per_client_qps);
    bucket.last_refill_ms = now_ms;
    if (bucket.tokens < 1.0) {
      ++shed_quota_;
      return Status::ResourceExhausted(
          "client '" + client_id + "' over quota (" +
          std::to_string(options_.per_client_qps) + " qps, burst " +
          std::to_string(burst_) + ")");
    }
    bucket.tokens -= 1.0;
  }
  ++inflight_;
  ++admitted_;
  return Status::Ok();
}

void AdmissionController::Release() {
  std::lock_guard<std::mutex> lock(mu_);
  if (inflight_ > 0) {
    --inflight_;
  }
}

int AdmissionController::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

uint64_t AdmissionController::admitted_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_;
}

uint64_t AdmissionController::shed_quota_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_quota_;
}

uint64_t AdmissionController::shed_overload_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_overload_;
}

}  // namespace warpindex
