// Shared blocking-socket primitives for every networked surface of the
// library: the introspection HTTP server (obs/httpd.h) and the query
// serving plane (net/wire_server.h, net/wire_client.h).
//
// One implementation of the fussy parts lives here so httpd and the wire
// protocol cannot drift apart:
//
//   * TcpListener — socket/bind/listen with SO_REUSEADDR, numeric-IPv4
//     bind addresses, and ephemeral-port readback (bind port 0, read the
//     real port with port(); tests and multi-process harnesses depend on
//     it to avoid collisions). Accept() retries EINTR/ECONNABORTED and
//     returns -1 only after Shutdown() — shutdown(2) on the listen fd is
//     the one portable way to wake a blocked accept(2) on Linux.
//
//   * TcpConnect — blocking connect with a real deadline (non-blocking
//     connect + poll, because SO_SNDTIMEO does not reliably bound
//     connect(2)). Distinguishes "refused" (kUnavailable — the peer is
//     down or draining; retry a replica) from "timed out"
//     (kDeadlineExceeded) from everything else (kIoError).
//
//   * SendAll / RecvFull / RecvSome — EINTR-safe full-buffer send (with
//     MSG_NOSIGNAL so a dead peer is an error return, not SIGPIPE) and
//     reads that report *why* they stopped: clean close, SO_RCVTIMEO
//     expiry, or a real error. The wire framing layer (net/wire.h) maps
//     these onto typed Statuses.
//
// Everything here is loopback-oriented plumbing for numeric IPv4
// addresses; name resolution and TLS are out of scope by design.

#ifndef WARPINDEX_NET_SOCKET_H_
#define WARPINDEX_NET_SOCKET_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace warpindex {

// Status::IoError carrying strerror(errno) for syscall `what`.
Status ErrnoStatus(const std::string& what);

// Sets SO_RCVTIMEO/SO_SNDTIMEO on `fd`. timeout_ms <= 0 clears both
// (blocking forever).
void SetSocketIoTimeout(int fd, int timeout_ms);

// close(2) tolerating fd < 0 (so callers need no guard).
void CloseSocket(int fd);

// Writes the whole buffer, tolerating partial writes and EINTR; sends
// with MSG_NOSIGNAL. False on any other error (including SO_SNDTIMEO
// expiry).
bool SendAll(int fd, const void* data, size_t len);
inline bool SendAll(int fd, const std::string& data) {
  return SendAll(fd, data.data(), data.size());
}

// Why a read stopped before filling the caller's buffer.
enum class RecvOutcome {
  kOk,       // the requested bytes arrived
  kClosed,   // peer closed the connection cleanly
  kTimeout,  // SO_RCVTIMEO expired (EAGAIN/EWOULDBLOCK)
  kError,    // anything else (errno preserved for the caller)
};

// Reads exactly `len` bytes into `data` (EINTR-safe). On kClosed,
// `*received` says how many bytes arrived first — zero means the peer
// closed between messages (a clean disconnect), nonzero means it died
// mid-message.
RecvOutcome RecvFull(int fd, void* data, size_t len, size_t* received);

// One recv(2) of up to `cap` bytes (EINTR-safe). kOk sets `*n` > 0.
RecvOutcome RecvSome(int fd, void* buf, size_t cap, size_t* n);

struct TcpListenerOptions {
  // Numeric IPv4 only. Loopback by default: both servers built on this
  // are operator/cluster-internal, not internet-facing.
  std::string bind_address = "127.0.0.1";
  // 0 = ephemeral; read the real port back with port().
  uint16_t port = 0;
  int backlog = 64;
};

// A bound, listening TCP socket plus the accept loop's lifecycle. The
// owner calls Listen() once, loops on Accept() from one thread, and
// calls Shutdown() from any other thread to break that loop; Close()
// (or the destructor) releases the fd after the loop has exited.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  // socket + SO_REUSEADDR + bind + listen. Reads the bound port back
  // with getsockname so port 0 callers learn their ephemeral port.
  Status Listen(const TcpListenerOptions& options);

  // Blocks until a connection arrives; returns its fd. EINTR and
  // ECONNABORTED are retried internally. Returns -1 once Shutdown() was
  // called or the listen socket is gone.
  int Accept();

  // Wakes a blocked Accept() (shutdown(2) on the listen fd) and makes
  // every later Accept() return -1. Idempotent; safe from any thread.
  void Shutdown();

  // Releases the fd. Call after the accept loop has exited.
  void Close();

  bool listening() const { return fd_ >= 0; }
  // The bound port (the real one when options.port was 0); 0 before
  // Listen().
  uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> shutdown_{false};
};

// Blocking connect to a numeric IPv4 host:port with a deadline
// (timeout_ms <= 0 = no deadline). On success stores the connected fd in
// `*out_fd` (blocking mode, no IO timeout set — the caller owns that via
// SetSocketIoTimeout). Error codes: kUnavailable for ECONNREFUSED (peer
// down — retryable against a replica), kDeadlineExceeded for a connect
// timeout, kInvalidArgument for a malformed address, kIoError otherwise.
Status TcpConnect(const std::string& host, uint16_t port, int timeout_ms,
                  int* out_fd);

}  // namespace warpindex

#endif  // WARPINDEX_NET_SOCKET_H_
