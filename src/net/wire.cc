#include "net/wire.h"

#include <cstring>

#include "net/socket.h"

namespace warpindex {
namespace {

void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

uint32_t GetU32(const unsigned char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

uint64_t GetU64(const unsigned char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

// Inverse of StatusCodeName (common/status.cc): code name -> StatusCode.
StatusCode ParseStatusCodeName(const std::string& name) {
  static constexpr StatusCode kCodes[] = {
      StatusCode::kOk,
      StatusCode::kInvalidArgument,
      StatusCode::kNotFound,
      StatusCode::kIoError,
      StatusCode::kFailedPrecondition,
      StatusCode::kOutOfRange,
      StatusCode::kInternal,
      StatusCode::kDeadlineExceeded,
      StatusCode::kUnavailable,
      StatusCode::kResourceExhausted,
  };
  for (const StatusCode code : kCodes) {
    if (name == StatusCodeName(code)) {
      return code;
    }
  }
  // A code this build does not know: degrade to kInternal rather than
  // dropping the error.
  return StatusCode::kInternal;
}

}  // namespace

const char* WireTypeName(WireType type) {
  switch (type) {
    case WireType::kError:
      return "ERROR";
    case WireType::kHello:
      return "HELLO";
    case WireType::kHelloOk:
      return "HELLO_OK";
    case WireType::kRange:
      return "RANGE";
    case WireType::kRangeOk:
      return "RANGE_OK";
    case WireType::kKnn:
      return "KNN";
    case WireType::kKnnOk:
      return "KNN_OK";
    case WireType::kHealth:
      return "HEALTH";
    case WireType::kHealthOk:
      return "HEALTH_OK";
    case WireType::kDrain:
      return "DRAIN";
    case WireType::kDrainOk:
      return "DRAIN_OK";
    case WireType::kStats:
      return "STATS";
    case WireType::kStatsOk:
      return "STATS_OK";
  }
  return "UNKNOWN";
}

std::string EncodeFrame(const WireFrame& frame) {
  std::string out;
  out.reserve(kWireHeaderBytes + frame.body.size());
  out.push_back('W');
  out.push_back('N');
  out.push_back('P');
  out.push_back(static_cast<char>(kWireProtocolVersion));
  out.push_back(static_cast<char>(frame.type));
  out.push_back('\0');  // flags
  PutU16(&out, 0);      // reserved
  PutU64(&out, frame.request_id);
  PutU32(&out, static_cast<uint32_t>(frame.body.size()));
  out += frame.body;
  return out;
}

Status WriteFrame(int fd, const WireFrame& frame) {
  if (!SendAll(fd, EncodeFrame(frame))) {
    return ErrnoStatus(std::string("send ") + WireTypeName(frame.type) +
                       " frame");
  }
  return Status::Ok();
}

Status ReadFrame(int fd, WireFrame* out, size_t max_body,
                 bool* idle_timeout) {
  if (idle_timeout != nullptr) {
    *idle_timeout = false;
  }
  unsigned char header[kWireHeaderBytes];
  size_t received = 0;
  switch (RecvFull(fd, header, sizeof(header), &received)) {
    case RecvOutcome::kOk:
      break;
    case RecvOutcome::kClosed:
      if (received == 0) {
        return Status::Unavailable("peer closed the connection");
      }
      return Status::IoError("peer closed mid-frame");
    case RecvOutcome::kTimeout:
      if (received == 0) {
        if (idle_timeout != nullptr) {
          *idle_timeout = true;
        }
        return Status::DeadlineExceeded("read timed out (idle)");
      }
      return Status::DeadlineExceeded("read timed out mid-frame");
    case RecvOutcome::kError:
      return ErrnoStatus("recv frame header");
  }
  if (header[0] != 'W' || header[1] != 'N' || header[2] != 'P') {
    return Status::IoError("bad frame magic (not a warpindex wire peer)");
  }
  if (header[3] != kWireProtocolVersion) {
    return Status::IoError(
        "wire protocol version mismatch: peer speaks v" +
        std::to_string(static_cast<int>(header[3])) + ", this build v" +
        std::to_string(static_cast<int>(kWireProtocolVersion)));
  }
  out->type = static_cast<WireType>(header[4]);
  out->request_id = GetU64(header + 8);
  const uint32_t body_len = GetU32(header + 16);
  if (body_len > max_body) {
    return Status::IoError("frame body of " + std::to_string(body_len) +
                           " bytes exceeds the " +
                           std::to_string(max_body) + "-byte limit");
  }
  out->body.resize(body_len);
  if (body_len > 0) {
    switch (RecvFull(fd, out->body.data(), body_len, &received)) {
      case RecvOutcome::kOk:
        break;
      case RecvOutcome::kClosed:
        return Status::IoError("peer closed mid-frame");
      case RecvOutcome::kTimeout:
        return Status::DeadlineExceeded("read timed out mid-frame");
      case RecvOutcome::kError:
        return ErrnoStatus("recv frame body");
    }
  }
  return Status::Ok();
}

std::string StatusToErrorBody(const Status& status) {
  JsonValue body = JsonValue::Object();
  body.Set("code", JsonValue::Str(StatusCodeName(status.code())));
  body.Set("message", JsonValue::Str(status.message()));
  return body.Render();
}

Status ErrorBodyToStatus(const std::string& body) {
  JsonValue parsed;
  const Status parse_status = JsonValue::Parse(body, &parsed);
  if (!parse_status.ok()) {
    return Status::Internal("unparseable error frame: " + body);
  }
  const StatusCode code = ParseStatusCodeName(parsed.GetString("code", ""));
  return Status(code, parsed.GetString("message", ""));
}

WireFrame MakeErrorFrame(uint64_t request_id, const Status& status) {
  WireFrame frame;
  frame.type = WireType::kError;
  frame.request_id = request_id;
  frame.body = StatusToErrorBody(status);
  return frame;
}

}  // namespace warpindex
