// Generic wire-protocol server: a TCP listener, a thread per
// connection, and a handler table keyed by request WireType. Both the
// shard server and the router's front door are instances of this class;
// the transport concerns live here so the RPC code stays pure
// (JsonValue in, JsonValue out).
//
// Connection loop: each connection thread reads frames with a short
// receive timeout (`io_timeout_ms`) used as an idle poll — an idle
// timeout (zero bytes read) keeps the connection and re-checks the
// stop/drain flags; a mid-frame timeout or any transport error closes
// it. Responses go back on the same connection with the request id
// echoed.
//
// Admission: RANGE and KNN pass through the AdmissionController before
// their handler runs; over-quota or overloaded requests are answered
// with a kError frame carrying RESOURCE_EXHAUSTED and never reach the
// handler. HELLO/HEALTH/DRAIN are exempt (health checks must work on an
// overloaded server).
//
// Graceful drain (SIGTERM path): RequestDrain() shuts the listener down
// (no new connections), lets in-flight requests finish, and answers any
// NEW query request with UNAVAILABLE "draining" — which is also how the
// router learns a replica is going away (it fails over immediately on
// UNAVAILABLE). WaitIdle() blocks until the last in-flight request
// completes; then Stop() tears the threads down.

#ifndef WARPINDEX_NET_WIRE_SERVER_H_
#define WARPINDEX_NET_WIRE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "net/admission.h"
#include "net/json.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/metrics.h"

namespace warpindex {

struct WireServerOptions {
  // Name used in metrics help strings and /statusz ("shard-server",
  // "router").
  std::string name = "wire-server";
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; port() reports the real one
  int backlog = 64;
  // Receive-poll granularity for connection threads: how long a read
  // blocks before re-checking stop/drain. Bounds shutdown latency.
  int io_timeout_ms = 250;
  size_t max_body_bytes = kWireDefaultMaxBody;
  AdmissionOptions admission;
  MetricsRegistry* metrics = nullptr;  // optional
};

// Counters for /statusz (all totals since Start).
struct WireServerStats {
  uint64_t connections_total = 0;
  int active_connections = 0;
  uint64_t requests_total = 0;
  uint64_t errors_total = 0;  // kError responses sent (all causes)
  uint64_t shed_total = 0;    // admission rejections (subset of errors)
  int inflight = 0;
  bool draining = false;
};

class WireServer {
 public:
  // A handler receives the identity from the connection's HELLO (or
  // "anon" before one) and the decoded request body, and fills the
  // response body. A non-OK return becomes a kError frame carrying
  // that status.
  using Handler = std::function<Status(const std::string& client_id,
                                       const JsonValue& request,
                                       JsonValue* response)>;

  explicit WireServer(WireServerOptions options);
  ~WireServer();

  WireServer(const WireServer&) = delete;
  WireServer& operator=(const WireServer&) = delete;

  // Registers `handler` for request `type` (response type is type + 1).
  // Call before Start(). kHello/kHealth/kDrain have built-in defaults a
  // registration replaces or augments: a kHello handler's response body
  // becomes the HELLO_OK payload (this is how the shard server reports
  // its per-shard MBRs).
  void Handle(WireType type, Handler handler);

  Status Start();

  // Graceful drain: stop accepting connections, keep serving in-flight
  // requests, answer new query requests with UNAVAILABLE "draining".
  void RequestDrain();
  bool draining() const { return draining_.load(); }

  // Blocks until no request handler is executing (drain completion).
  void WaitIdle();

  // Hard stop: drains implicitly, closes every connection, joins all
  // threads. Idempotent.
  void Stop();

  uint16_t port() const { return listener_.port(); }
  bool running() const { return running_.load(); }
  WireServerStats stats() const;
  const AdmissionController& admission() const { return admission_; }

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void ServeConnection(Connection* conn);
  // Dispatches one request frame; returns false when the connection
  // should close (transport failure on the response).
  bool DispatchFrame(int fd, const WireFrame& frame,
                     std::string* client_id);
  void ReapFinishedLocked();

  WireServerOptions options_;
  TcpListener listener_;
  AdmissionController admission_;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};

  mutable std::mutex conn_mu_;
  std::vector<std::unique_ptr<Connection>> connections_;
  uint64_t connections_total_ = 0;

  std::map<WireType, Handler> handlers_;

  mutable std::mutex stats_mu_;
  std::condition_variable idle_cv_;
  int inflight_ = 0;
  uint64_t requests_total_ = 0;
  uint64_t errors_total_ = 0;

  // Optional metrics (null when options_.metrics is null).
  Counter* requests_counter_ = nullptr;
  Counter* errors_counter_ = nullptr;
  Counter* shed_counter_ = nullptr;
  Gauge* connections_gauge_ = nullptr;
  Histogram* query_wall_ms_hist_ = nullptr;
  Histogram* query_cpu_ms_hist_ = nullptr;
};

}  // namespace warpindex

#endif  // WARPINDEX_NET_WIRE_SERVER_H_
