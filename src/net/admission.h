// Admission control for the wire serving plane: per-client token-bucket
// quotas plus a global in-flight cap (load shedding).
//
// Every query RPC (RANGE/KNN) passes through Admit() before any work
// happens. Two independent gates:
//
//   * Per-client quota — a token bucket per client id (the identity the
//     HELLO handshake carried). Buckets refill at `per_client_qps` and
//     hold at most `per_client_burst` tokens, so a client may burst to
//     the bucket depth but sustains only its quota. Over-quota requests
//     are REJECTED with kResourceExhausted — the client must back off;
//     retrying elsewhere doesn't help (the quota follows the client).
//
//   * Global load shed — at most `max_inflight` query RPCs executing at
//     once. Beyond that the server is overloaded and sheds with the
//     same kResourceExhausted; finishing the queue beats queuing more.
//
// kResourceExhausted is deliberately distinct from kUnavailable
// (draining): the router retries UNAVAILABLE against a replica but
// NEVER retries RESOURCE_EXHAUSTED — hammering a replica because the
// quota said no would defeat the quota.
//
// Thread-safety: Admit/Release may race freely (one mutex; the critical
// section is a couple of arithmetic ops — connection threads, not query
// threads, take it).

#ifndef WARPINDEX_NET_ADMISSION_H_
#define WARPINDEX_NET_ADMISSION_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/status.h"

namespace warpindex {

struct AdmissionOptions {
  // Sustained per-client requests/second (0 = unmetered).
  double per_client_qps = 0.0;
  // Bucket depth; 0 defaults to max(1, per_client_qps).
  double per_client_burst = 0.0;
  // Query RPCs allowed to execute concurrently (0 = uncapped).
  int max_inflight = 0;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  // Charges one request to `client_id` at `now_ms` (any monotonic
  // millisecond clock). Ok admits — the caller MUST pair it with
  // Release() when the request finishes. kResourceExhausted rejects
  // (no Release).
  Status Admit(const std::string& client_id, double now_ms);
  void Release();

  int inflight() const;
  uint64_t admitted_total() const;
  uint64_t shed_quota_total() const;    // per-client bucket rejections
  uint64_t shed_overload_total() const; // global in-flight rejections

 private:
  struct Bucket {
    double tokens = 0.0;
    double last_refill_ms = 0.0;
  };

  AdmissionOptions options_;
  double burst_;
  mutable std::mutex mu_;
  std::map<std::string, Bucket> buckets_;
  int inflight_ = 0;
  uint64_t admitted_ = 0;
  uint64_t shed_quota_ = 0;
  uint64_t shed_overload_ = 0;
};

}  // namespace warpindex

#endif  // WARPINDEX_NET_ADMISSION_H_
