#include "net/router.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <condition_variable>
#include <thread>
#include <utility>

#include "cache/semantic_cache.h"
#include "common/stats.h"
#include "core/engine.h"
#include "net/serialize.h"
#include "rtree/geometry.h"
#include "sequence/feature.h"

namespace warpindex {
namespace {

// Same feature point the in-process ShardedEngine prunes with
// (shard/sharded_engine.cc) — identical doubles, identical skips.
Point QueryFeaturePoint(const Sequence& query) {
  const std::array<double, kFeatureDims> p = ExtractFeature(query).AsPoint();
  return Point::FromArray(p.data(), kFeatureDims);
}

std::string EndpointName(const RouterEndpoint& endpoint) {
  return endpoint.host + ":" + std::to_string(endpoint.port);
}

// Cap on pooled idle connections per replica.
constexpr size_t kMaxIdleClientsPerReplica = 8;

// Sub-request latency samples needed before the hedge delay trusts the
// p99 (before that, hedge late rather than storm a cold server).
constexpr size_t kMinHedgeSamples = 8;

}  // namespace

// Per-group progress of one scatter. Guarded by CallContext::mu except
// `request` and `launch`, which are immutable after the leg is
// submitted.
struct Router::GroupState {
  size_t group = 0;
  JsonValue request;
  std::chrono::steady_clock::time_point launch{};
  std::chrono::steady_clock::time_point hedge_deadline{};
  double start_offset_ms = 0.0;
  bool done = false;
  bool hedged = false;
  int outstanding = 0;
  Status last_status = Status::Ok();
  SubOutcome outcome;
};

// Shared between the orchestrating caller and its legs; legs hold a
// shared_ptr so a losing hedge can finish after CallGroups returned.
struct Router::CallContext {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<GroupState> states;
};

Router::Router(RouterOptions options)
    : options_(std::move(options)), disk_model_(options_.disk) {}

Router::~Router() {
  // Joins outstanding legs before the connection pool dies.
  io_pool_.reset();
}

Status Router::Create(RouterOptions options, std::unique_ptr<Router>* out) {
  if (options.groups.empty()) {
    return Status::InvalidArgument(
        "router needs at least one shard group");
  }
  for (size_t g = 0; g < options.groups.size(); ++g) {
    if (options.groups[g].empty()) {
      return Status::InvalidArgument("group " + std::to_string(g) +
                                     " has no replicas");
    }
  }
  auto router = std::unique_ptr<Router>(new Router(std::move(options)));
  router->idle_clients_.resize(router->options_.groups.size());
  for (size_t g = 0; g < router->options_.groups.size(); ++g) {
    router->idle_clients_[g].resize(router->options_.groups[g].size());
  }
  WARPINDEX_RETURN_IF_ERROR(router->Handshake());
  router->io_pool_ = std::make_unique<ThreadPool>(
      std::max<size_t>(4, 2 * router->groups_.size()));
  MetricsRegistry& registry = router->metrics();
  router->queries_counter_ = registry.GetCounter(
      "warpindex_net_router_queries_total",
      "Logical queries served by the router");
  router->subrequests_counter_ = registry.GetCounter(
      "warpindex_net_router_subrequests_total",
      "Per-group wire sub-requests issued");
  router->hedges_counter_ = registry.GetCounter(
      "warpindex_net_router_hedges_total",
      "Hedged backup requests launched");
  router->retries_counter_ = registry.GetCounter(
      "warpindex_net_router_retries_total",
      "Replica retries after a failed attempt");
  *out = std::move(router);
  return Status::Ok();
}

MetricsRegistry& Router::metrics() const {
  return options_.metrics != nullptr ? *options_.metrics
                                     : MetricsRegistry::Global();
}

Status Router::Handshake() {
  groups_.assign(options_.groups.size(), RouterGroup{});
  int64_t num_shards = -1;
  std::string partitioner_name;
  for (size_t g = 0; g < options_.groups.size(); ++g) {
    RouterGroup& group = groups_[g];
    group.replicas = options_.groups[g];
    std::string shards_fingerprint;
    Status last = Status::Unavailable("no replica contacted");
    for (size_t r = 0; r < group.replicas.size(); ++r) {
      WireClientOptions client_options;
      client_options.host = group.replicas[r].host;
      client_options.port = group.replicas[r].port;
      client_options.timeout_ms = options_.connect_timeout_ms;
      client_options.client_id = options_.client_id;
      auto client = std::make_unique<WireClient>(client_options);
      JsonValue info;
      const Status status = client->Connect(&info);
      if (!status.ok()) {
        last = status;
        continue;
      }
      const JsonValue* shards = info.Find("shards");
      if (shards == nullptr ||
          shards->kind() != JsonValue::Kind::kArray ||
          shards->size() == 0) {
        return Status::Internal(
            EndpointName(group.replicas[r]) +
            " did not report its shards in HELLO_OK");
      }
      const std::string fingerprint = shards->Render();
      if (shards_fingerprint.empty()) {
        // First replica of the group to answer: learn the shard set.
        shards_fingerprint = fingerprint;
        for (const JsonValue& item : shards->items()) {
          const int64_t shard = item.GetInt("shard", -1);
          if (shard < 0) {
            return Status::Internal("malformed shard entry in HELLO_OK");
          }
          group.shards.push_back(static_cast<uint32_t>(shard));
          ShardFeatureBounds bounds;
          const JsonValue* mbr = item.Find("mbr");
          if (mbr != nullptr && !mbr->is_null()) {
            WARPINDEX_RETURN_IF_ERROR(JsonToRect(*mbr, &bounds.mbr));
            bounds.valid = true;
          }
          group.bounds.push_back(bounds);
        }
        const int64_t total = info.GetInt("num_shards", -1);
        if (num_shards < 0) {
          num_shards = total;
          partitioner_name = info.GetString("partitioner", "");
        } else if (num_shards != total) {
          return Status::InvalidArgument(
              EndpointName(group.replicas[r]) + " serves a " +
              std::to_string(total) + "-shard database, other groups a " +
              std::to_string(num_shards) + "-shard one");
        }
      } else if (fingerprint != shards_fingerprint) {
        // Replicas of one group must be interchangeable: same shards,
        // same MBRs (bit-identical — the fingerprint is the rendered
        // %.17g JSON), or pruning would depend on which replica answers.
        return Status::InvalidArgument(
            EndpointName(group.replicas[r]) +
            " disagrees with its group about shards/MBRs");
      }
      ReleaseClient(g, r, std::move(client));
    }
    if (group.shards.empty()) {
      return Status(last.code(),
                    "no replica of group " + std::to_string(g) +
                        " answered the handshake: " + last.message());
    }
  }
  if (num_shards < 1) {
    return Status::Internal("handshake learned no shard count");
  }
  num_shards_ = static_cast<size_t>(num_shards);
  if (!ParsePartitionerKind(partitioner_name, &partitioner_)) {
    return Status::Internal("unknown partitioner '" + partitioner_name +
                            "' in HELLO_OK");
  }
  // The groups together must cover every manifest shard exactly once.
  shard_bounds_.assign(num_shards_, ShardFeatureBounds{});
  group_of_shard_.assign(num_shards_, SIZE_MAX);
  for (size_t g = 0; g < groups_.size(); ++g) {
    for (size_t i = 0; i < groups_[g].shards.size(); ++i) {
      const uint32_t shard = groups_[g].shards[i];
      if (shard >= num_shards_) {
        return Status::InvalidArgument(
            "group " + std::to_string(g) + " serves shard " +
            std::to_string(shard) + " beyond the manifest's " +
            std::to_string(num_shards_));
      }
      if (group_of_shard_[shard] != SIZE_MAX) {
        return Status::InvalidArgument(
            "shard " + std::to_string(shard) +
            " is served by groups " +
            std::to_string(group_of_shard_[shard]) + " and " +
            std::to_string(g) + "; groups must be disjoint");
      }
      group_of_shard_[shard] = g;
      shard_bounds_[shard] = groups_[g].bounds[i];
    }
  }
  for (size_t shard = 0; shard < num_shards_; ++shard) {
    if (group_of_shard_[shard] == SIZE_MAX) {
      return Status::InvalidArgument(
          "shard " + std::to_string(shard) +
          " is served by no group; the cover is incomplete");
    }
  }
  return Status::Ok();
}

std::unique_ptr<WireClient> Router::AcquireClient(size_t group,
                                                  size_t replica) const {
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    auto& idle = idle_clients_[group][replica];
    if (!idle.empty()) {
      std::unique_ptr<WireClient> client = std::move(idle.back());
      idle.pop_back();
      return client;
    }
  }
  WireClientOptions client_options;
  client_options.host = options_.groups[group][replica].host;
  client_options.port = options_.groups[group][replica].port;
  client_options.timeout_ms = options_.connect_timeout_ms;
  client_options.client_id = options_.client_id;
  return std::make_unique<WireClient>(client_options);
}

void Router::ReleaseClient(size_t group, size_t replica,
                           std::unique_ptr<WireClient> client) const {
  std::lock_guard<std::mutex> lock(pool_mu_);
  auto& idle = idle_clients_[group][replica];
  if (idle.size() < kMaxIdleClientsPerReplica) {
    idle.push_back(std::move(client));
  }
}

double Router::HedgeDelayMs() const {
  double delay = static_cast<double>(options_.hedge_max_ms);
  if (options_.flight_recorder != nullptr) {
    std::vector<double> samples;
    for (const FlightRecord& record :
         options_.flight_recorder->Snapshot()) {
      if (record.replica >= 0) {  // networked sub-requests only
        samples.push_back(record.wall_ms);
      }
    }
    if (samples.size() >= kMinHedgeSamples) {
      delay = Percentile(std::move(samples), 0.99);
    }
  }
  delay = std::min(delay, static_cast<double>(options_.hedge_max_ms));
  delay = std::max(delay, static_cast<double>(options_.hedge_min_ms));
  return delay;
}

void Router::RunLeg(WireType type, std::shared_ptr<CallContext> context,
                    size_t state_index, size_t start_replica) const {
  GroupState& state = context->states[state_index];
  const size_t group = state.group;
  const size_t num_replicas = groups_[group].replicas.size();
  Status last = Status::Internal("no attempt made");
  uint32_t leg_retries = 0;
  for (int attempt = 0; attempt < std::max(1, options_.max_attempts);
       ++attempt) {
    {
      std::lock_guard<std::mutex> lock(context->mu);
      if (state.done) {
        break;  // the other leg already won
      }
    }
    const size_t replica = (start_replica + attempt) % num_replicas;
    std::unique_ptr<WireClient> client = AcquireClient(group, replica);
    JsonValue response;
    const Status status = client->Call(type, state.request, &response,
                                       options_.call_timeout_ms);
    if (status.ok()) {
      ReleaseClient(group, replica, std::move(client));
      std::lock_guard<std::mutex> lock(context->mu);
      state.outcome.retries += leg_retries;
      if (!state.done) {
        state.done = true;
        state.outcome.status = Status::Ok();
        state.outcome.response = std::move(response);
        state.outcome.replica = static_cast<int>(replica);
        state.outcome.wall_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - state.launch)
                .count();
      }
      --state.outstanding;
      context->cv.notify_all();
      return;
    }
    // Failed attempt: the client's connection state is already torn
    // down (wire_client.cc); drop it rather than pooling it.
    last = status;
    if (status.code() == StatusCode::kResourceExhausted) {
      // The quota said no. Retrying a replica would defeat it.
      break;
    }
    if (attempt + 1 >= std::max(1, options_.max_attempts)) {
      break;
    }
    ++leg_retries;
    retries_.fetch_add(1, std::memory_order_relaxed);
    if (retries_counter_ != nullptr) {
      retries_counter_->Increment();
    }
    if (status.code() != StatusCode::kUnavailable &&
        options_.backoff_ms > 0) {
      // Exponential backoff for transient faults; UNAVAILABLE (refused
      // connection, draining server) skips it — the next replica is the
      // fix, not time.
      const int sleep_ms =
          std::min(options_.backoff_ms << attempt, 1000);
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    }
  }
  std::lock_guard<std::mutex> lock(context->mu);
  state.outcome.retries += leg_retries;
  state.last_status = last;
  --state.outstanding;
  context->cv.notify_all();
}

void Router::CallGroups(WireType type, std::vector<JsonValue> requests,
                        const std::vector<size_t>& group_ids,
                        const WallTimer& query_start,
                        std::vector<SubOutcome>* outcomes) const {
  outcomes->assign(group_ids.size(), SubOutcome());
  if (group_ids.empty()) {
    return;
  }
  const double hedge_delay = HedgeDelayMs();
  last_hedge_delay_ms_.store(hedge_delay, std::memory_order_relaxed);

  auto context = std::make_shared<CallContext>();
  context->states.resize(group_ids.size());
  const auto now = std::chrono::steady_clock::now();
  const auto hedge_at =
      now + std::chrono::microseconds(
                static_cast<int64_t>(hedge_delay * 1000.0));
  for (size_t i = 0; i < group_ids.size(); ++i) {
    GroupState& state = context->states[i];
    state.group = group_ids[i];
    state.request = std::move(requests[i]);
    state.launch = now;
    state.hedge_deadline = hedge_at;
    state.start_offset_ms = query_start.ElapsedMillis();
    state.outstanding = 1;
  }
  subrequests_.fetch_add(group_ids.size(), std::memory_order_relaxed);
  if (subrequests_counter_ != nullptr) {
    subrequests_counter_->Increment(group_ids.size());
  }
  for (size_t i = 0; i < group_ids.size(); ++i) {
    if (!io_pool_->TrySubmitDetached(
            [this, context, i, type] { RunLeg(type, context, i, 0); })) {
      std::lock_guard<std::mutex> lock(context->mu);
      GroupState& state = context->states[i];
      state.outstanding = 0;
      state.last_status = Status::Internal("I/O pool is shut down");
    }
  }

  std::unique_lock<std::mutex> lock(context->mu);
  for (;;) {
    bool all_decided = true;
    bool have_deadline = false;
    auto next_deadline = std::chrono::steady_clock::time_point::max();
    const auto poll_now = std::chrono::steady_clock::now();
    for (size_t i = 0; i < context->states.size(); ++i) {
      GroupState& state = context->states[i];
      if (state.done || state.outstanding == 0) {
        continue;
      }
      all_decided = false;
      const bool can_hedge = options_.enable_hedging && !state.hedged &&
                             groups_[state.group].replicas.size() > 1;
      if (!can_hedge) {
        continue;
      }
      if (poll_now >= state.hedge_deadline) {
        state.hedged = true;
        ++state.outstanding;
        ++state.outcome.hedges;
        hedges_.fetch_add(1, std::memory_order_relaxed);
        if (hedges_counter_ != nullptr) {
          hedges_counter_->Increment();
        }
        // Backup request starting on the NEXT replica; first answer
        // wins, the loser's response is discarded under `done`.
        if (!io_pool_->TrySubmitDetached([this, context, i, type] {
              RunLeg(type, context, i, 1);
            })) {
          --state.outstanding;
        }
      } else {
        next_deadline = std::min(next_deadline, state.hedge_deadline);
        have_deadline = true;
      }
    }
    if (all_decided) {
      break;
    }
    if (have_deadline) {
      context->cv.wait_until(lock, next_deadline);
    } else {
      context->cv.wait(lock);
    }
  }
  for (size_t i = 0; i < context->states.size(); ++i) {
    GroupState& state = context->states[i];
    if (!state.done) {
      state.outcome.status = state.last_status.ok()
                                 ? Status::Unavailable("sub-request failed")
                                 : state.last_status;
    }
    (*outcomes)[i] = state.outcome;
  }
}

void Router::StitchGroupSpans(Trace* trace, size_t parent_index,
                              size_t group,
                              const SubOutcome& outcome) const {
  if (trace == nullptr) {
    return;
  }
  TraceSpan group_span;
  group_span.name = "net_group";
  group_span.parent = static_cast<int>(parent_index);
  group_span.start_ms = outcome.start_offset_ms;
  group_span.duration_ms = outcome.wall_ms;
  group_span.counters = {
      {"group", static_cast<double>(group)},
      {"replica", static_cast<double>(outcome.replica)},
      {"hedges", static_cast<double>(outcome.hedges)},
      {"retries", static_cast<double>(outcome.retries)},
  };
  const size_t group_index = trace->AppendSpan(std::move(group_span));
  const JsonValue* spans_json = outcome.response.Find("spans");
  if (spans_json == nullptr) {
    return;
  }
  std::vector<TraceSpan> remote;
  if (!JsonToSpans(*spans_json, &remote).ok()) {
    return;  // a malformed remote trace must not fail the query
  }
  // Remote parent links are local to the remote array; rebase them onto
  // this trace, rooting parentless spans under the net_group span, and
  // shift start offsets by the sub-request's launch offset so lanes
  // line up with the router's clock.
  const size_t base = trace->spans().size();
  for (size_t i = 0; i < remote.size(); ++i) {
    TraceSpan span = std::move(remote[i]);
    span.parent = span.parent < 0
                      ? static_cast<int>(group_index)
                      : static_cast<int>(base + static_cast<size_t>(span.parent));
    span.start_ms += outcome.start_offset_ms;
    trace->AppendSpan(std::move(span));
  }
}

void Router::RecordSubFlight(const char* method, double epsilon,
                             size_t query_length, size_t group,
                             const SubOutcome& outcome, size_t matches,
                             size_t num_candidates, const SearchCost& cost,
                             uint64_t trace_id) const {
  if (options_.flight_recorder == nullptr) {
    return;
  }
  FlightRecord record;
  record.trace_id = trace_id;
  record.method = method;
  record.epsilon = epsilon;
  record.query_length = query_length;
  record.matches = matches;
  record.num_candidates = num_candidates;
  record.wall_ms = outcome.wall_ms;  // client-observed, feeds the hedge p99
  record.cpu_ms = cost.cpu_ms;  // remote thread-CPU, from the wire cost
  record.dtw_evals = cost.dtw_evals;
  record.dtw_cells = cost.dtw_cells;
  record.index_nodes = cost.index_nodes;
  record.pool_hits = cost.pool_hits;
  record.pool_misses = cost.pool_misses;
  record.stage_ms = cost.stages;
  record.stage_cpu_ms = cost.stages_cpu;
  record.prunes = cost.prunes;
  record.shard = static_cast<int32_t>(group);
  record.replica = outcome.replica;
  record.net_hedges = outcome.hedges;
  record.net_retries = outcome.retries;
  options_.flight_recorder->Record(std::move(record));
}

void Router::RecordMergedFlight(const char* method, double epsilon,
                                size_t query_length, size_t matches,
                                size_t num_candidates,
                                const SearchCost& cost,
                                uint64_t trace_id,
                                CacheTier cache_tier) const {
  FlightRecord record;
  record.trace_id = trace_id;
  record.method = method;
  record.epsilon = epsilon;
  record.query_length = query_length;
  record.matches = matches;
  record.num_candidates = num_candidates;
  record.wall_ms = cost.wall_ms;
  record.cpu_ms = cost.cpu_ms;
  record.dtw_evals = cost.dtw_evals;
  record.dtw_cells = cost.dtw_cells;
  record.index_nodes = cost.index_nodes;
  record.pool_hits = cost.pool_hits;
  record.pool_misses = cost.pool_misses;
  record.stage_ms = cost.stages;
  record.stage_cpu_ms = cost.stages_cpu;
  record.prunes = cost.prunes;
  record.shard = -1;
  record.cache_hit = cache_tier;
  if (options_.flight_recorder != nullptr) {
    options_.flight_recorder->Record(record);
  }
  if (options_.slow_log != nullptr) {
    options_.slow_log->Record(std::move(record));
  }
}

Status Router::RouteRange(MethodKind kind, const Sequence& query,
                          double epsilon, Trace* trace,
                          SearchResult* out) const {
  WallTimer timer;
  // Router-side CPU (pruning, request building, response parsing, merge,
  // sort). The remote servers' CPU arrives in the wire costs and is
  // summed by MergeParallel; the io_pool legs spend their time blocked
  // on the network, so the caller thread's CPU is strictly additive.
  ThreadCpuTimer cpu_timer;
  queries_.fetch_add(1, std::memory_order_relaxed);
  if (queries_counter_ != nullptr) {
    queries_counter_->Increment();
  }
  *out = SearchResult();
  if (query.empty()) {
    return Status::InvalidArgument("query must be non-empty");
  }
  if (!(epsilon >= 0.0)) {
    return Status::InvalidArgument("epsilon must be >= 0");
  }
  // Wire-side semantic cache: a hit answers here, before a single
  // sub-request exists — no fan-out, no hedges, no per-group flights.
  // The router fronts immutable saved shards, so version is fixed at 0;
  // the DTW configuration is the servers' (constant per deployment), so
  // a default-keyed fingerprint is consistent within this router.
  uint64_t cache_key = 0;
  if (options_.cache != nullptr) {
    cache_key = SemanticCache::RangeKey(query, DtwOptions(), kind);
    SearchResult cached;
    if (options_.cache->LookupRange(cache_key, epsilon, 0, &cached)) {
      if (trace != nullptr) {
        ScopedSpan span(trace, "cache_hit");
        TraceCounter(trace, "cached_matches",
                     static_cast<double>(cached.matches.size()));
      }
      cached.cost.wall_ms = timer.ElapsedMillis();
      cached.cost.cpu_ms = cpu_timer.ElapsedMillis();
      RecordMergedFlight(MethodKindName(kind), epsilon, query.size(),
                         cached.matches.size(), cached.num_candidates,
                         cached.cost,
                         trace != nullptr ? trace->trace_id() : 0,
                         CacheTier::kRouter);
      *out = std::move(cached);
      return Status::Ok();
    }
  }
  const Point feature_point = QueryFeaturePoint(query);

  // Router-side shard pruning — the exact in-process predicate against
  // the exact MBR doubles the handshake carried. Each group is asked
  // for only its unpruned shards, so the servers' num_candidates sums
  // match ShardedEngine's sum over active shards.
  std::vector<size_t> group_ids;
  std::vector<JsonValue> requests;
  size_t active_shards = 0;
  for (size_t g = 0; g < groups_.size(); ++g) {
    JsonValue shards = JsonValue::Array();
    for (size_t i = 0; i < groups_[g].shards.size(); ++i) {
      const ShardFeatureBounds& bounds = groups_[g].bounds[i];
      if (bounds.valid &&
          bounds.mbr.MinDistLinf(feature_point) <= epsilon) {
        shards.Add(JsonValue::Int(groups_[g].shards[i]));
      }
    }
    if (shards.size() == 0) {
      continue;  // every shard of the group pruned
    }
    active_shards += shards.size();
    JsonValue request = JsonValue::Object();
    request.Set("shards", std::move(shards));
    request.Set("method", JsonValue::Str(MethodKindName(kind)));
    request.Set("epsilon", JsonValue::Double(epsilon));
    request.Set("query", SequenceToJson(query));
    if (trace != nullptr) {
      request.Set("trace", JsonValue::Bool(true));
    }
    group_ids.push_back(g);
    requests.push_back(std::move(request));
  }
  const uint64_t trace_id = trace != nullptr ? trace->trace_id() : 0;

  std::vector<SubOutcome> outcomes;
  SearchResult merged;
  Status first_error = Status::Ok();
  {
    ScopedSpan span(trace, "scatter_gather");
    TraceCounter(trace, "group_fanout",
                 static_cast<double>(group_ids.size()));
    TraceCounter(trace, "shard_fanout",
                 static_cast<double>(active_shards));
    TraceCounter(trace, "shards_skipped",
                 static_cast<double>(num_shards_ - active_shards));
    CallGroups(WireType::kRange, std::move(requests), group_ids,
               timer, &outcomes);
    for (size_t i = 0; i < outcomes.size(); ++i) {
      const SubOutcome& outcome = outcomes[i];
      if (!outcome.status.ok()) {
        failed_subrequests_.fetch_add(1, std::memory_order_relaxed);
        if (first_error.ok()) {
          first_error = Status(
              outcome.status.code(),
              "group " + std::to_string(group_ids[i]) + ": " +
                  outcome.status.message());
        }
        continue;
      }
      const JsonValue& response = outcome.response;
      size_t group_matches = 0;
      if (const JsonValue* matches = response.Find("matches");
          matches != nullptr &&
          matches->kind() == JsonValue::Kind::kArray) {
        group_matches = matches->size();
        for (const JsonValue& id : matches->items()) {
          merged.matches.push_back(id.AsInt());
        }
      }
      if (const JsonValue* distances = response.Find("distances");
          distances != nullptr &&
          distances->kind() == JsonValue::Kind::kArray &&
          distances->size() == group_matches) {
        for (const JsonValue& d : distances->items()) {
          merged.distances.push_back(d.AsDouble());
        }
      }
      const size_t group_candidates =
          static_cast<size_t>(response.GetInt("num_candidates", 0));
      merged.num_candidates += group_candidates;
      SearchCost cost;
      if (const JsonValue* cost_json = response.Find("cost");
          cost_json != nullptr) {
        (void)JsonToCost(*cost_json, &cost);
      }
      merged.cost.MergeParallel(cost);
      StitchGroupSpans(trace, span.index(), group_ids[i], outcome);
      RecordSubFlight(MethodKindName(kind), epsilon, query.size(),
                      group_ids[i], outcome, group_matches,
                      group_candidates, cost, trace_id);
    }
  }
  if (!first_error.ok()) {
    return first_error;
  }
  // Canonical answer order, as in-process: ascending global id.
  CanonicalizeMatchOrder(&merged);
  merged.cost.wall_ms = timer.ElapsedMillis();
  merged.cost.cpu_ms += cpu_timer.ElapsedMillis();
  if (options_.cache != nullptr) {
    merged.cost.cache_misses = 1;
    options_.cache->InsertRange(cache_key, epsilon, 0, merged);
  }
  RecordMergedFlight(MethodKindName(kind), epsilon, query.size(),
                     merged.matches.size(), merged.num_candidates,
                     merged.cost, trace_id);
  *out = std::move(merged);
  return Status::Ok();
}

Status Router::RouteKnn(const Sequence& query, size_t k, Trace* trace,
                        KnnResult* out) const {
  WallTimer timer;
  // Same caller-CPU accounting as RouteRange.
  ThreadCpuTimer cpu_timer;
  queries_.fetch_add(1, std::memory_order_relaxed);
  if (queries_counter_ != nullptr) {
    queries_counter_->Increment();
  }
  *out = KnnResult();
  if (query.empty()) {
    return Status::InvalidArgument("query must be non-empty");
  }
  if (k < 1) {
    return Status::InvalidArgument("k must be >= 1");
  }
  // Wire-side cache: a stored kNN answer with k' >= k is the answer
  // (its first k entries); failing that, a stored range answer for this
  // query seeds the first wave's bound with the exact global k-th
  // distance (servers prune strictly above it, so ties survive).
  uint64_t knn_key = 0;
  double seed_bound = kInfiniteDistance;
  if (options_.cache != nullptr) {
    knn_key = SemanticCache::KnnKey(query, DtwOptions());
    KnnResult cached;
    if (options_.cache->LookupKnn(knn_key, k, 0, &cached)) {
      if (trace != nullptr) {
        ScopedSpan span(trace, "cache_hit");
        TraceCounter(trace, "cached_neighbors",
                     static_cast<double>(cached.neighbors.size()));
      }
      cached.cost.wall_ms = timer.ElapsedMillis();
      cached.cost.cpu_ms = cpu_timer.ElapsedMillis();
      RecordMergedFlight("kNN", 0.0, query.size(),
                         cached.neighbors.size(), cached.num_refined,
                         cached.cost,
                         trace != nullptr ? trace->trace_id() : 0,
                         CacheTier::kRouter);
      *out = std::move(cached);
      return Status::Ok();
    }
    (void)options_.cache->LookupKnnSeed(query, DtwOptions(), k, 0,
                                        &seed_bound);
  }
  // Like the in-process engine, kNN has no epsilon to prune with up
  // front: every group with a non-empty shard participates.
  std::vector<size_t> active;
  for (size_t g = 0; g < groups_.size(); ++g) {
    for (const ShardFeatureBounds& bounds : groups_[g].bounds) {
      if (bounds.valid) {
        active.push_back(g);
        break;
      }
    }
  }
  const uint64_t trace_id = trace != nullptr ? trace->trace_id() : 0;
  const size_t wave_size =
      options_.knn_wave_size == 0 ? std::max<size_t>(active.size(), 1)
                                  : options_.knn_wave_size;

  KnnResult merged;
  std::vector<KnnMatch> best;
  Status first_error = Status::Ok();
  {
    ScopedSpan span(trace, "scatter_gather");
    TraceCounter(trace, "group_fanout", static_cast<double>(active.size()));
    for (size_t begin = 0;
         begin < active.size() && first_error.ok();
         begin += wave_size) {
      const size_t end = std::min(begin + wave_size, active.size());
      std::vector<size_t> wave(active.begin() + begin,
                               active.begin() + end);
      std::vector<JsonValue> requests;
      requests.reserve(wave.size());
      for (const size_t g : wave) {
        JsonValue shards = JsonValue::Array();
        for (size_t i = 0; i < groups_[g].shards.size(); ++i) {
          if (groups_[g].bounds[i].valid) {
            shards.Add(JsonValue::Int(groups_[g].shards[i]));
          }
        }
        JsonValue request = JsonValue::Object();
        request.Set("shards", std::move(shards));
        request.Set("k", JsonValue::Int(static_cast<int64_t>(k)));
        request.Set("query", SequenceToJson(query));
        // The k-th best distance among settled groups upper-bounds the
        // global k-th (their union is a subset of the database), so it
        // is an exactness-preserving seed: the server prunes strictly
        // ABOVE it, ties survive. The cached-range seed is the exact
        // global k-th, so it is at least as tight and covers the first
        // wave too; without either, no bound.
        double bound = seed_bound;
        if (best.size() == k) {
          bound = std::min(bound, best.back().distance);
        }
        if (bound < kInfiniteDistance) {
          request.Set("bound", JsonValue::Double(bound));
        }
        if (trace != nullptr) {
          request.Set("trace", JsonValue::Bool(true));
        }
        requests.push_back(std::move(request));
      }
      std::vector<SubOutcome> outcomes;
      CallGroups(WireType::kKnn, std::move(requests), wave, timer,
                 &outcomes);
      for (size_t i = 0; i < outcomes.size(); ++i) {
        const SubOutcome& outcome = outcomes[i];
        if (!outcome.status.ok()) {
          failed_subrequests_.fetch_add(1, std::memory_order_relaxed);
          if (first_error.ok()) {
            first_error = Status(
                outcome.status.code(),
                "group " + std::to_string(wave[i]) + ": " +
                    outcome.status.message());
          }
          continue;
        }
        const JsonValue& response = outcome.response;
        std::vector<KnnMatch> neighbors;
        if (const JsonValue* neighbors_json = response.Find("neighbors");
            neighbors_json != nullptr) {
          (void)JsonToKnnMatches(*neighbors_json, &neighbors);
        }
        const size_t group_refined =
            static_cast<size_t>(response.GetInt("num_refined", 0));
        merged.num_refined += group_refined;
        SearchCost cost;
        if (const JsonValue* cost_json = response.Find("cost");
            cost_json != nullptr) {
          (void)JsonToCost(*cost_json, &cost);
        }
        merged.cost.MergeParallel(cost);
        StitchGroupSpans(trace, span.index(), wave[i], outcome);
        RecordSubFlight("kNN", 0.0, query.size(), wave[i], outcome,
                        neighbors.size(), group_refined, cost, trace_id);
        best.insert(best.end(), neighbors.begin(), neighbors.end());
      }
      // Canonical (distance, id) order, truncated to k: the running
      // top-k over every settled group.
      std::sort(best.begin(), best.end(), KnnMatchOrder);
      if (best.size() > k) {
        best.resize(k);
      }
    }
  }
  if (!first_error.ok()) {
    return first_error;
  }
  merged.neighbors = std::move(best);
  merged.cost.wall_ms = timer.ElapsedMillis();
  merged.cost.cpu_ms += cpu_timer.ElapsedMillis();
  if (options_.cache != nullptr) {
    merged.cost.cache_misses = 1;
    options_.cache->InsertKnn(knn_key, k, 0, merged);
  }
  RecordMergedFlight("kNN", 0.0, query.size(), merged.neighbors.size(),
                     merged.num_refined, merged.cost, trace_id);
  *out = std::move(merged);
  return Status::Ok();
}

SearchResult Router::SearchWith(MethodKind kind, const Sequence& query,
                                double epsilon, Trace* trace,
                                DtwScratch* /*scratch*/) const {
  SearchResult result;
  (void)RouteRange(kind, query, epsilon, trace, &result);
  return result;
}

KnnResult Router::SearchKnn(const Sequence& query, size_t k,
                            Trace* trace) const {
  KnnResult result;
  (void)RouteKnn(query, k, trace, &result);
  return result;
}

Router::Stats Router::stats() const {
  Stats stats;
  stats.num_groups = groups_.size();
  stats.num_shards = num_shards_;
  stats.queries = queries_.load(std::memory_order_relaxed);
  stats.subrequests = subrequests_.load(std::memory_order_relaxed);
  stats.hedges = hedges_.load(std::memory_order_relaxed);
  stats.retries = retries_.load(std::memory_order_relaxed);
  stats.failed_subrequests =
      failed_subrequests_.load(std::memory_order_relaxed);
  stats.hedge_delay_ms =
      last_hedge_delay_ms_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace warpindex
