// Router: the scatter-gather front of the multi-process serving plane
// (`warpindex_cli route`).
//
// A router connects to R replicas in each of G shard-server groups
// (net/shard_server.h), learns every shard's feature MBR at handshake,
// and serves the EngineLike interface by fanning sub-queries out over
// the wire and merging per the exact semantics of the in-process
// ShardedEngine — the property test in
// tests/net_router_property_test.cc asserts bit-identical answers.
//
// Exactness:
//   * Range queries prune shards with the same strict
//     `MinDistLinf(feature(Q), mbr) <= epsilon` predicate, against MBRs
//     that crossed the wire as %.17g decimal (bit-identical doubles).
//     Each group is asked for exactly its unpruned shards, so the
//     num_candidates sum matches the in-process sum over active shards.
//   * kNN runs in waves (knn_wave_size groups at a time; 0 = one wave
//     of everything). The k-th best distance among settled groups
//     upper-bounds the global k-th (their union is a subset of the
//     database), so re-broadcasting it as the next wave's seed bound
//     prunes only sequences provably outside the top-k; ties at the
//     bound survive (strictly-greater pruning) for the (distance, id)
//     merge. The merged, truncated list is the in-process answer.
//
// Production-traffic robustness:
//   * Hedged requests — if a group's primary replica has not answered
//     within the hedge delay, a backup request goes to the next
//     replica; first answer wins. The delay adapts: p99 of recent
//     sub-request latencies from the router's own flight recorder,
//     clamped to [hedge_min_ms, hedge_max_ms].
//   * Retry with backoff — connection failures and deadline expiries
//     move to the next replica (UNAVAILABLE — a refused connection or
//     a draining server — skips the backoff; RESOURCE_EXHAUSTED is
//     never retried: the quota said no and a replica hop would defeat
//     it).
//   * Every sub-request is flight-recorded with the winning replica and
//     its hedge/retry counts (FlightRecord::replica/net_hedges/
//     net_retries), so /flightrecorder and /slowlog show which replica
//     answered a slow query.
//
// Threading: the caller's thread orchestrates (waits, launches hedges);
// attempts run on a dedicated I/O pool and never submit further pool
// work, so the pool can saturate but not deadlock. Connections are
// pooled per replica and never shared between in-flight attempts.

#ifndef WARPINDEX_NET_ROUTER_H_
#define WARPINDEX_NET_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/timer.h"
#include "core/engine_like.h"
#include "exec/thread_pool.h"
#include "net/wire_client.h"
#include "obs/flight_recorder.h"
#include "obs/slow_log.h"
#include "shard/partitioner.h"
#include "storage/disk_model.h"

namespace warpindex {

class SemanticCache;

struct RouterEndpoint {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

struct RouterOptions {
  // groups[g] = the replica endpoints of shard group g. Every replica
  // of a group must serve the same shard subset; the groups together
  // must cover the manifest's shards exactly once.
  std::vector<std::vector<RouterEndpoint>> groups;
  std::string client_id = "router";
  // Per-attempt deadlines (wire client timeouts).
  int connect_timeout_ms = 2000;
  int call_timeout_ms = 10000;
  // Sequential replica attempts per leg (primary or hedge).
  int max_attempts = 3;
  // Base backoff between retries within a leg; doubles per attempt.
  // UNAVAILABLE failures skip it (the replica is known-dead; move on).
  int backoff_ms = 25;
  // Hedged backup requests: after the hedge delay without an answer, a
  // second leg starts on the next replica.
  bool enable_hedging = true;
  int hedge_min_ms = 10;
  int hedge_max_ms = 1000;
  // Groups per kNN wave; 0 = every group in one wave. Smaller waves
  // tighten the bound earlier at the cost of sequential rounds.
  size_t knn_wave_size = 0;
  // Disk parameters for EngineLike::ElapsedMillis (remote I/O counters
  // costed with the same model as in-process).
  DiskParameters disk;
  MetricsRegistry* metrics = nullptr;          // null = process global
  FlightRecorder* flight_recorder = nullptr;   // optional
  SlowQueryLog* slow_log = nullptr;            // optional
  // Optional wire-side semantic cache (borrowed; construct with tier
  // "router"). A hit answers before any sub-request is built, so the
  // whole scatter-gather — hedges, retries, per-group flights — is
  // skipped; warpindex_shard_subqueries_total does not move. The
  // router serves saved (immutable) shard directories, so entries are
  // tagged with version 0 and never expire; do not attach a cache when
  // fronting servers whose data can change.
  SemanticCache* cache = nullptr;
};

// One shard group as learned at handshake.
struct RouterGroup {
  std::vector<RouterEndpoint> replicas;
  std::vector<uint32_t> shards;
  std::vector<ShardFeatureBounds> bounds;  // aligned with `shards`
};

class Router : public EngineLike {
 public:
  // Connects to every group (at least one replica each must answer),
  // validates that replicas agree and the groups cover the database's
  // shards exactly once, and records the per-shard feature MBRs used
  // for router-side pruning.
  static Status Create(RouterOptions options, std::unique_ptr<Router>* out);
  ~Router() override;

  // Status-returning primary API. A non-OK status means some shard
  // group could not be reached on any replica within the retry budget —
  // the answer would be incomplete, so none is returned.
  Status RouteRange(MethodKind kind, const Sequence& query, double epsilon,
                    Trace* trace, SearchResult* out) const;
  Status RouteKnn(const Sequence& query, size_t k, Trace* trace,
                  KnnResult* out) const;

  // EngineLike — the property-tested surface. Thin wrappers over
  // RouteRange/RouteKnn; a routing failure (which the in-process
  // engines cannot have) surfaces as an empty result plus the
  // failed-subrequest counter, since this interface has no error
  // channel. Serving layers should prefer the Route* calls.
  SearchResult SearchWith(MethodKind kind, const Sequence& query,
                          double epsilon, Trace* trace = nullptr,
                          DtwScratch* scratch = nullptr) const override;
  KnnResult SearchKnn(const Sequence& query, size_t k,
                      Trace* trace = nullptr) const override;
  MetricsRegistry& metrics() const override;
  double ElapsedMillis(const SearchCost& cost) const override {
    return cost.wall_ms + disk_model_.CostMillis(cost.io);
  }

  struct Stats {
    size_t num_groups = 0;
    size_t num_shards = 0;
    uint64_t queries = 0;
    uint64_t subrequests = 0;
    uint64_t hedges = 0;
    uint64_t retries = 0;
    uint64_t failed_subrequests = 0;
    double hedge_delay_ms = 0.0;  // last computed
  };
  Stats stats() const;

  size_t num_groups() const { return groups_.size(); }
  size_t num_shards() const { return num_shards_; }
  PartitionerKind partitioner() const { return partitioner_; }
  const std::vector<RouterGroup>& groups() const { return groups_; }

 private:
  // Result of one group's sub-request (whichever leg won).
  struct SubOutcome {
    Status status = Status::Ok();
    JsonValue response;
    int replica = -1;
    uint32_t hedges = 0;
    uint32_t retries = 0;
    double wall_ms = 0.0;
    double start_offset_ms = 0.0;  // vs. query start
  };

  struct GroupState;
  struct CallContext;

  explicit Router(RouterOptions options);

  Status Handshake();

  // Scatters per-group `requests` (of `type`) to `group_ids`, with
  // hedging and retries; outcomes land in `outcomes` (aligned with
  // group_ids). Returns once every group is decided; losing hedge legs
  // may still be unwinding on the I/O pool (they hold the shared
  // context, not this call's stack). `query_start` anchors span offsets.
  void CallGroups(WireType type, std::vector<JsonValue> requests,
                  const std::vector<size_t>& group_ids,
                  const WallTimer& query_start,
                  std::vector<SubOutcome>* outcomes) const;

  // One leg: sequential replica attempts with backoff.
  void RunLeg(WireType type, std::shared_ptr<CallContext> context,
              size_t state_index, size_t start_replica) const;

  // Connection pool.
  std::unique_ptr<WireClient> AcquireClient(size_t group,
                                            size_t replica) const;
  void ReleaseClient(size_t group, size_t replica,
                     std::unique_ptr<WireClient> client) const;

  double HedgeDelayMs() const;

  void RecordSubFlight(const char* method, double epsilon,
                       size_t query_length, size_t group,
                       const SubOutcome& outcome, size_t matches,
                       size_t num_candidates, const SearchCost& cost,
                       uint64_t trace_id) const;
  void RecordMergedFlight(const char* method, double epsilon,
                          size_t query_length, size_t matches,
                          size_t num_candidates, const SearchCost& cost,
                          uint64_t trace_id,
                          CacheTier cache_tier = CacheTier::kNone) const;

  // Stitches one group's remote spans (plus a synthetic net_group span)
  // under `parent_index` of `trace`.
  void StitchGroupSpans(Trace* trace, size_t parent_index, size_t group,
                        const SubOutcome& outcome) const;

  RouterOptions options_;
  DiskModel disk_model_;
  std::vector<RouterGroup> groups_;
  size_t num_shards_ = 0;
  PartitionerKind partitioner_ = PartitionerKind::kHash;
  // Per-shard bounds in manifest shard order (router-side pruning).
  std::vector<ShardFeatureBounds> shard_bounds_;
  std::vector<size_t> group_of_shard_;

  mutable std::unique_ptr<ThreadPool> io_pool_;

  // Idle connection pool, per (group, replica).
  mutable std::mutex pool_mu_;
  mutable std::vector<std::vector<std::vector<std::unique_ptr<WireClient>>>>
      idle_clients_;

  mutable std::atomic<uint64_t> queries_{0};
  mutable std::atomic<uint64_t> subrequests_{0};
  mutable std::atomic<uint64_t> hedges_{0};
  mutable std::atomic<uint64_t> retries_{0};
  mutable std::atomic<uint64_t> failed_subrequests_{0};
  mutable std::atomic<double> last_hedge_delay_ms_{0.0};

  Counter* queries_counter_ = nullptr;
  Counter* subrequests_counter_ = nullptr;
  Counter* hedges_counter_ = nullptr;
  Counter* retries_counter_ = nullptr;
};

}  // namespace warpindex

#endif  // WARPINDEX_NET_ROUTER_H_
