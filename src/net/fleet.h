// Fleet-wide metrics federation: the router-side poller that turns a
// multi-process serving plane into one scrape target.
//
// Every shard server answers a STATS frame (net/wire.h, kStats) with
// its identity plus a full metrics snapshot as JSON — the same document
// its own /metrics endpoint renders. The FleetPoller calls STATS on one
// connection per replica and keeps, per replica, the last two answers.
// From those it derives
//
//   * /metrics?fleet=1 — a Prometheus text page where every counter and
//     gauge appears twice: once per replica with an
//     `instance="host:port"` label, and once unlabeled as the fleet sum.
//     Histograms are merged bucket-by-bucket (identical boundaries are
//     required and verified; replicas built from one binary always
//     agree), so fleet-level p99s come from real merged buckets, not
//     averaged per-replica percentiles.
//   * /fleetz — one JSON row per LIVE replica: qps (requests_total
//     delta between the last two polls), p99 wall and CPU of the wire
//     query-latency histograms, hedge-relevant request/shed/error
//     totals, and the ingest delta backlog when the replica runs an
//     ingest engine. A replica that is draining (SIGTERM received) or
//     that failed `drop_after_failures` consecutive polls disappears
//     from the page — the operator view tracks who is actually serving.
//
// Polling is pull-on-demand with a staleness bound: each render calls
// PollOnce() unless the last poll is fresher than min_poll_gap_ms, so
// scraping the router is what drives fleet polls (no idle chatter), and
// a burst of scrapes coalesces into one STATS round. Start() optionally
// adds a background thread for deployments whose dashboards want
// /fleetz liveness to advance without scrapes.
//
// Thread-safety: all public methods may race; state is guarded by one
// mutex (STATS rounds are infrequent and small).

#ifndef WARPINDEX_NET_FLEET_H_
#define WARPINDEX_NET_FLEET_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "net/json.h"
#include "net/router.h"
#include "net/wire_client.h"

namespace warpindex {

struct FleetPollerOptions {
  // groups[g] = replica endpoints of shard group g (the router's own
  // RouterOptions::groups shape).
  std::vector<std::vector<RouterEndpoint>> groups;
  std::string client_id = "fleet-poller";
  // Per-STATS-call deadline.
  int call_timeout_ms = 2000;
  // A render triggers a fresh poll only when the last one is older than
  // this (scrape coalescing).
  int min_poll_gap_ms = 500;
  // Background poll period for Start(); <= 0 disables the thread even
  // if Start() is called.
  int poll_interval_ms = 2000;
  // Consecutive failed polls before a replica is dropped from /fleetz.
  int drop_after_failures = 2;
};

class FleetPoller {
 public:
  explicit FleetPoller(FleetPollerOptions options);
  ~FleetPoller();

  FleetPoller(const FleetPoller&) = delete;
  FleetPoller& operator=(const FleetPoller&) = delete;

  // Starts the optional background polling thread. Idempotent.
  Status Start();
  void Stop();

  // One synchronous STATS round over every replica (also what renders
  // call through EnsureFresh). Safe to call without Start().
  void PollOnce();

  struct Replica {
    size_t group = 0;
    size_t replica = 0;
    std::string instance;  // "host:port", the Prometheus label value
    bool reachable = false;
    bool draining = false;
    int consecutive_failures = 0;
    // Derived from the last two successful polls.
    double qps = 0.0;
    double p99_wall_ms = 0.0;
    double p99_cpu_ms = 0.0;
    uint64_t requests_total = 0;
    uint64_t errors_total = 0;
    uint64_t shed_total = 0;
    // warpindex_ingest_delta_entries gauge, or -1 when the replica has
    // no ingest engine.
    int64_t ingest_backlog = -1;
    // The replica's full metrics document from the latest poll.
    JsonValue metrics;
  };

  // Every tracked replica, dropped ones included (flagged). Mostly for
  // tests; the renderers below apply the liveness filter.
  std::vector<Replica> Snapshot() const;

  // Prometheus text: fleet sums + per-replica instance-labeled series,
  // over replicas whose last poll succeeded.
  std::string FleetMetricsText();
  // /fleetz JSON: {"replicas":[...]} rows for live (reachable and not
  // draining) replicas only, plus tracked/live counts.
  std::string FleetzJson();

  const FleetPollerOptions& options() const { return options_; }

 private:
  struct ReplicaState {
    Replica view;
    std::unique_ptr<WireClient> client;
    // Last two successful polls, for the qps delta.
    double prev_poll_s = 0.0;
    uint64_t prev_requests_total = 0;
    double last_poll_s = 0.0;
    uint64_t last_requests_total = 0;
  };

  // Re-polls if the newest data is older than min_poll_gap_ms.
  void EnsureFresh();
  void PollLoop();

  FleetPollerOptions options_;
  // Serializes STATS rounds; held during network I/O. mu_ guards the
  // replica views and is only held for short copies, so renders never
  // wait on a dead replica's timeout.
  mutable std::mutex poll_mu_;
  mutable std::mutex mu_;
  std::vector<ReplicaState> replicas_;
  double last_round_s_ = 0.0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace warpindex

#endif  // WARPINDEX_NET_FLEET_H_
