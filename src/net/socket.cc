#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace warpindex {
namespace {

// Builds a sockaddr_in from a numeric IPv4 address. False on malformed
// input (no name resolution here by design).
bool MakeAddr(const std::string& host, uint16_t port, sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  return inet_pton(AF_INET, host.c_str(), &addr->sin_addr) == 1;
}

}  // namespace

Status ErrnoStatus(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

void SetSocketIoTimeout(int fd, int timeout_ms) {
  timeval tv;
  if (timeout_ms <= 0) {
    tv.tv_sec = 0;
    tv.tv_usec = 0;  // zero timeval = blocking forever
  } else {
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
  }
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

void CloseSocket(int fd) {
  if (fd >= 0) {
    ::close(fd);
  }
}

bool SendAll(int fd, const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, p + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

RecvOutcome RecvFull(int fd, void* data, size_t len, size_t* received) {
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, p + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (received != nullptr) {
        *received = got;
      }
      return (errno == EAGAIN || errno == EWOULDBLOCK)
                 ? RecvOutcome::kTimeout
                 : RecvOutcome::kError;
    }
    if (n == 0) {
      if (received != nullptr) {
        *received = got;
      }
      return RecvOutcome::kClosed;
    }
    got += static_cast<size_t>(n);
  }
  if (received != nullptr) {
    *received = got;
  }
  return RecvOutcome::kOk;
}

RecvOutcome RecvSome(int fd, void* buf, size_t cap, size_t* n) {
  *n = 0;
  for (;;) {
    const ssize_t got = ::recv(fd, buf, cap, 0);
    if (got < 0) {
      if (errno == EINTR) {
        continue;
      }
      return (errno == EAGAIN || errno == EWOULDBLOCK)
                 ? RecvOutcome::kTimeout
                 : RecvOutcome::kError;
    }
    if (got == 0) {
      return RecvOutcome::kClosed;
    }
    *n = static_cast<size_t>(got);
    return RecvOutcome::kOk;
  }
}

TcpListener::~TcpListener() { Close(); }

Status TcpListener::Listen(const TcpListenerOptions& options) {
  if (fd_ >= 0) {
    return Status::InvalidArgument("listener already listening");
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return ErrnoStatus("socket");
  }
  const int one = 1;
  setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  if (!MakeAddr(options.bind_address, options.port, &addr)) {
    Close();
    return Status::InvalidArgument("bad bind address " +
                                   options.bind_address);
  }
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status = ErrnoStatus("bind " + options.bind_address + ":" +
                                      std::to_string(options.port));
    Close();
    return status;
  }
  if (::listen(fd_, options.backlog) != 0) {
    const Status status = ErrnoStatus("listen");
    Close();
    return status;
  }
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  shutdown_.store(false, std::memory_order_release);
  return Status::Ok();
}

int TcpListener::Accept() {
  while (!shutdown_.load(std::memory_order_acquire)) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      return fd;
    }
    if (shutdown_.load(std::memory_order_acquire)) {
      return -1;
    }
    if (errno == EINTR || errno == ECONNABORTED) {
      continue;
    }
    return -1;  // listen socket gone
  }
  return -1;
}

void TcpListener::Shutdown() {
  if (!shutdown_.exchange(true, std::memory_order_acq_rel) && fd_ >= 0) {
    // Closing alone is not guaranteed to wake a blocked accept(2) on all
    // platforms; shutdown is (on Linux).
    ::shutdown(fd_, SHUT_RDWR);
  }
}

void TcpListener::Close() {
  CloseSocket(fd_);
  fd_ = -1;
  port_ = 0;
}

Status TcpConnect(const std::string& host, uint16_t port, int timeout_ms,
                  int* out_fd) {
  *out_fd = -1;
  sockaddr_in addr;
  if (!MakeAddr(host, port, &addr)) {
    return Status::InvalidArgument("bad host " + host +
                                   " (numeric IPv4 only)");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return ErrnoStatus("socket");
  }
  const std::string peer = host + ":" + std::to_string(port);

  // SO_SNDTIMEO does not reliably bound connect(2), so deadline the
  // handshake explicitly: non-blocking connect, poll for writability,
  // then read the outcome from SO_ERROR and restore blocking mode.
  const int saved_flags = ::fcntl(fd, F_GETFL, 0);
  if (timeout_ms > 0 && saved_flags >= 0) {
    ::fcntl(fd, F_SETFL, saved_flags | O_NONBLOCK);
  }
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno == EINPROGRESS) {
    pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLOUT;
    pfd.revents = 0;
    do {
      rc = ::poll(&pfd, 1, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc == 0) {
      CloseSocket(fd);
      return Status::DeadlineExceeded("connect " + peer + " timed out");
    }
    if (rc < 0) {
      const Status status = ErrnoStatus("poll(connect " + peer + ")");
      CloseSocket(fd);
      return status;
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
    if (so_error != 0) {
      errno = so_error;
      rc = -1;
    } else {
      rc = 0;
    }
  }
  if (rc != 0) {
    const int saved_errno = errno;
    CloseSocket(fd);
    errno = saved_errno;
    if (saved_errno == ECONNREFUSED) {
      return Status::Unavailable("connect " + peer + ": connection refused");
    }
    if (saved_errno == ETIMEDOUT) {
      return Status::DeadlineExceeded("connect " + peer + " timed out");
    }
    return ErrnoStatus("connect " + peer);
  }
  if (timeout_ms > 0 && saved_flags >= 0) {
    ::fcntl(fd, F_SETFL, saved_flags);  // back to blocking
  }
  *out_fd = fd;
  return Status::Ok();
}

}  // namespace warpindex
