// A minimal, dependency-free JSON value for the wire protocol's message
// bodies (net/wire.h).
//
// Scope: exactly what framed RPC bodies need — parse, navigate, build,
// render. Not a general-purpose JSON library:
//
//   * Numbers remember whether they were written as integers. Integers
//     round-trip through int64 (sequence ids are int64 and must not pass
//     through a double); doubles render with %.17g, which strtod parses
//     back to the bit-identical value — the property the router ≡
//     in-process-engine guarantee rests on (epsilon, kNN distances, and
//     MBR coordinates all cross the wire as decimal text).
//   * Object members keep insertion order (stable rendering; tests can
//     compare strings), and lookups are linear — wire bodies have a
//     handful of keys.
//   * Parse depth is bounded (kMaxDepth) so a hostile peer cannot blow
//     the stack, and input must be one complete value (trailing garbage
//     is an error).
//
// The obs exporters build JSON by string concatenation and stay as they
// are; this type exists for the opposite direction — messages that must
// be PARSED — and for request/response builders that would otherwise
// hand-escape.

#ifndef WARPINDEX_NET_JSON_H_
#define WARPINDEX_NET_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace warpindex {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  // Constructors via factories so call sites read as the JSON they build.
  JsonValue() = default;  // null
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Int(int64_t i);
  static JsonValue Double(double d);
  static JsonValue Str(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }

  // Value accessors (loose: the zero value of the wrong kind, never a
  // crash — wire handlers validate presence with Find/has first).
  bool AsBool() const { return kind_ == Kind::kBool && bool_; }
  int64_t AsInt() const;     // kDouble truncates; others 0
  double AsDouble() const;   // kInt widens; others 0.0
  const std::string& AsString() const { return string_; }

  // ---- Arrays.
  void Add(JsonValue v);
  size_t size() const { return items_.size(); }
  const JsonValue& at(size_t i) const { return items_[i]; }
  const std::vector<JsonValue>& items() const { return items_; }

  // ---- Objects.
  void Set(const std::string& key, JsonValue v);
  // Null when missing (or when this is not an object).
  const JsonValue* Find(const std::string& key) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }
  // Typed lookups with fallbacks, for terse handler code.
  int64_t GetInt(const std::string& key, int64_t fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

  // Compact rendering (no whitespace). Integers render as integers;
  // doubles as %.17g (shortest exact round-trip is not required, exact
  // round-trip is).
  std::string Render() const;
  void RenderTo(std::string* out) const;

  // Parses one complete JSON value (trailing non-whitespace is an
  // error). InvalidArgument on malformed input with a byte offset.
  static Status Parse(const std::string& text, JsonValue* out);

 private:
  static constexpr int kMaxDepth = 64;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace warpindex

#endif  // WARPINDEX_NET_JSON_H_
