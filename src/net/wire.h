// The warpindex wire protocol: versioned length-prefixed frames with
// JSON bodies, connecting the router process to shard-server processes
// (docs/NETWORKING.md has the full frame layout and RPC table).
//
// Frame layout (little-endian, 20-byte header):
//
//   offset 0   4 bytes   magic "WNP" + protocol version byte (0x01)
//   offset 4   1 byte    message type (WireType)
//   offset 5   1 byte    flags (reserved, 0)
//   offset 6   2 bytes   reserved (0)
//   offset 8   8 bytes   request id (echoed verbatim in the response)
//   offset 16  4 bytes   body length in bytes
//   offset 20  ...       body: one JSON value (UTF-8)
//
// Why this shape: length-prefixed framing makes the read loop trivial
// and robust (no delimiter scanning, a hard max_body bound rejects
// garbage before allocation), a version byte in the magic rejects
// cross-version peers at the first frame, and JSON bodies keep the
// payloads debuggable (`xxd` shows you the query) while the framing
// stays binary. Doubles cross as %.17g decimal (net/json.h), which
// round-trips bit-identically — the exactness contract of the router
// depends on it.
//
// Request/response pairing: every request type N has a response type
// N+1; kError answers any request. The response echoes the request id,
// which the blocking client (net/wire_client.h) verifies — a mismatch
// means the connection desynced (e.g. a stale response after a timeout)
// and the connection must be dropped.

#ifndef WARPINDEX_NET_WIRE_H_
#define WARPINDEX_NET_WIRE_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "net/json.h"

namespace warpindex {

// Protocol version, baked into the frame magic. Bump on any
// incompatible change; peers with a different version fail the first
// read with a typed error instead of misparsing.
inline constexpr uint8_t kWireProtocolVersion = 0x01;

// Frame header size in bytes.
inline constexpr size_t kWireHeaderBytes = 20;

// Default cap on body size (rejects a corrupt length prefix before any
// allocation). Generous: a 1M-point query sequence is ~20 MB of JSON.
inline constexpr size_t kWireDefaultMaxBody = 64u << 20;

enum class WireType : uint8_t {
  kError = 0,     // body {"code":"UNAVAILABLE","message":"..."}
  kHello = 1,     // client handshake: {"client":"...","trace":bool}
  kHelloOk = 2,   // server identity + per-shard feature MBRs
  kRange = 3,     // range query over an explicit shard subset
  kRangeOk = 4,
  kKnn = 5,       // kNN over an explicit shard subset, with a seed bound
  kKnnOk = 6,
  kHealth = 7,    // liveness + serving stats
  kHealthOk = 8,
  kDrain = 9,     // ask the server to drain (tests; SIGTERM is the
  kDrainOk = 10,  // production path)
  kStats = 11,    // metrics-federation scrape: the server's identity +
  kStatsOk = 12,  // full metrics snapshot as JSON (docs/OBSERVABILITY.md)
};

const char* WireTypeName(WireType type);

// One decoded frame.
struct WireFrame {
  WireType type = WireType::kError;
  uint64_t request_id = 0;
  std::string body;
};

// Renders header + body ready to send.
std::string EncodeFrame(const WireFrame& frame);

// Writes one frame to `fd` (EINTR-safe, MSG_NOSIGNAL). IoError on a
// broken connection.
Status WriteFrame(int fd, const WireFrame& frame);

// Reads one frame from `fd`. Error codes:
//   kUnavailable       peer closed cleanly between frames
//   kDeadlineExceeded  SO_RCVTIMEO expired (idle, or mid-frame — the
//                      message tells which; either way the stream
//                      position is unknown unless idle)
//   kIoError           bad magic / wrong version / oversized body /
//                      connection reset / close mid-frame
// `idle_timeout` (optional) is set true when the timeout fired before
// ANY byte of the frame arrived — the caller may safely keep the
// connection and retry (servers poll this way to notice drain/stop).
Status ReadFrame(int fd, WireFrame* out,
                 size_t max_body = kWireDefaultMaxBody,
                 bool* idle_timeout = nullptr);

// ---- Error body mapping: Status <-> kError frames.

// {"code":"RESOURCE_EXHAUSTED","message":"..."} for a non-OK status.
std::string StatusToErrorBody(const Status& status);

// Reconstructs the Status a kError body carries (unknown code names map
// to kInternal so new server codes degrade, not crash, old clients).
Status ErrorBodyToStatus(const std::string& body);

// Convenience: a fully-encoded kError response frame for `status`.
WireFrame MakeErrorFrame(uint64_t request_id, const Status& status);

}  // namespace warpindex

#endif  // WARPINDEX_NET_WIRE_H_
