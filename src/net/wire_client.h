// Blocking wire-protocol client: one TCP connection, one outstanding
// request at a time (the router holds one WireClient per replica and
// serializes calls per connection with a mutex).
//
// Deadlines: every call is bounded by `timeout_ms` (connect handshake
// included). A stalled peer — accepted the connection but never answers
// — surfaces as Status::DeadlineExceeded, never a hang. After a
// mid-call timeout the stream position is unknown (the response may
// arrive later and would pair with the wrong request), so the client
// CLOSES the connection; the next Call() reconnects. The request-id
// echo is verified on every response as a second desync tripwire.
//
// Thread-safety: none. One thread per WireClient, or external locking —
// see net/router.h for the per-replica mutex pattern.

#ifndef WARPINDEX_NET_WIRE_CLIENT_H_
#define WARPINDEX_NET_WIRE_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "net/json.h"
#include "net/wire.h"

namespace warpindex {

struct WireClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  // Per-call deadline covering connect + send + response (<= 0 = no
  // deadline). On expiry the call returns kDeadlineExceeded and the
  // connection is dropped.
  int timeout_ms = 5000;
  // Identity sent in the HELLO handshake; the server's admission
  // controller meters quotas per client id.
  std::string client_id = "anon";
  size_t max_body_bytes = kWireDefaultMaxBody;
};

class WireClient {
 public:
  explicit WireClient(WireClientOptions options);
  ~WireClient();

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  // Connects and performs the HELLO handshake; stores the server's
  // HELLO_OK body in `server_info` (null = discard). Idempotent while
  // connected. kUnavailable when the peer is down or refuses.
  Status Connect(JsonValue* server_info = nullptr);

  // Sends `request` of `type` and waits for the matching response
  // (type + 1). A kError response is decoded into its carried Status.
  // Reconnects first if the connection is down. `timeout_ms_override`
  // > 0 replaces the per-call deadline for this call only.
  Status Call(WireType type, const JsonValue& request, JsonValue* response,
              int timeout_ms_override = 0);

  // Drops the connection (next Call reconnects).
  void Disconnect();

  bool connected() const { return fd_ >= 0; }
  const WireClientOptions& options() const { return options_; }
  // Requests completed / hedge bookkeeping for the router's records.
  uint64_t calls() const { return calls_; }

 private:
  // Connect + HELLO with an explicit deadline (Call passes its
  // effective per-call timeout so a reconnect is bounded by it too).
  Status ConnectWithTimeout(JsonValue* server_info, int timeout_ms);
  Status CallLocked(WireType type, const JsonValue& request,
                    JsonValue* response, int timeout_ms);

  WireClientOptions options_;
  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  uint64_t calls_ = 0;
};

}  // namespace warpindex

#endif  // WARPINDEX_NET_WIRE_CLIENT_H_
