#include "net/wire_client.h"

#include <utility>

#include "net/socket.h"

namespace warpindex {

WireClient::WireClient(WireClientOptions options)
    : options_(std::move(options)) {}

WireClient::~WireClient() { Disconnect(); }

void WireClient::Disconnect() {
  CloseSocket(fd_);
  fd_ = -1;
}

Status WireClient::Connect(JsonValue* server_info) {
  return ConnectWithTimeout(server_info, options_.timeout_ms);
}

Status WireClient::ConnectWithTimeout(JsonValue* server_info,
                                      int timeout_ms) {
  if (fd_ >= 0 && server_info == nullptr) {
    return Status::Ok();
  }
  if (fd_ < 0) {
    WARPINDEX_RETURN_IF_ERROR(
        TcpConnect(options_.host, options_.port, timeout_ms, &fd_));
    SetSocketIoTimeout(fd_, timeout_ms);
  }
  JsonValue hello = JsonValue::Object();
  hello.Set("client", JsonValue::Str(options_.client_id));
  JsonValue reply;
  const Status status =
      CallLocked(WireType::kHello, hello, &reply, timeout_ms);
  if (!status.ok()) {
    Disconnect();
    return status;
  }
  if (server_info != nullptr) {
    *server_info = std::move(reply);
  }
  return Status::Ok();
}

Status WireClient::Call(WireType type, const JsonValue& request,
                        JsonValue* response, int timeout_ms_override) {
  const int timeout_ms =
      timeout_ms_override > 0 ? timeout_ms_override : options_.timeout_ms;
  if (fd_ < 0) {
    // The implicit reconnect honors the per-call override too: a
    // tightened deadline must bound the handshake, not just the
    // request (the hedge path depends on this).
    WARPINDEX_RETURN_IF_ERROR(ConnectWithTimeout(nullptr, timeout_ms));
  }
  return CallLocked(type, request, response, timeout_ms);
}

Status WireClient::CallLocked(WireType type, const JsonValue& request,
                              JsonValue* response, int timeout_ms) {
  SetSocketIoTimeout(fd_, timeout_ms);
  WireFrame out;
  out.type = type;
  out.request_id = next_request_id_++;
  out.body = request.Render();
  Status status = WriteFrame(fd_, out);
  if (!status.ok()) {
    Disconnect();
    return status;
  }
  WireFrame in;
  status = ReadFrame(fd_, &in, options_.max_body_bytes);
  if (!status.ok()) {
    // After a timeout (or any read failure) the stream position is
    // unknown: a late response would pair with the NEXT request. Drop
    // the connection so the next call starts clean.
    Disconnect();
    if (status.code() == StatusCode::kDeadlineExceeded) {
      return Status::DeadlineExceeded(
          "no response from " + options_.host + ":" +
          std::to_string(options_.port) + " within " +
          std::to_string(timeout_ms) + " ms (" + WireTypeName(type) + ")");
    }
    return status;
  }
  if (in.request_id != out.request_id) {
    Disconnect();
    return Status::Internal(
        "response id " + std::to_string(in.request_id) +
        " does not match request id " + std::to_string(out.request_id) +
        " (desynced connection)");
  }
  if (in.type == WireType::kError) {
    // Typed server-side failure; the connection itself is still good.
    return ErrorBodyToStatus(in.body);
  }
  const auto expected =
      static_cast<WireType>(static_cast<uint8_t>(type) + 1);
  if (in.type != expected) {
    Disconnect();
    return Status::Internal(std::string("expected ") +
                            WireTypeName(expected) + " response, got " +
                            WireTypeName(in.type));
  }
  if (response != nullptr) {
    const Status parse_status = JsonValue::Parse(in.body, response);
    if (!parse_status.ok()) {
      return Status::Internal("malformed " + std::string(WireTypeName(in.type)) +
                              " body: " + parse_status.message());
    }
  }
  ++calls_;
  return Status::Ok();
}

}  // namespace warpindex
