#include "net/shard_server.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/timer.h"
#include "obs/exporters.h"
#include "net/serialize.h"
#include "sequence/feature.h"

namespace warpindex {
namespace {

// Inverse of MethodKindName (core/engine.cc).
bool ParseMethodKindName(const std::string& name, MethodKind* out) {
  static constexpr MethodKind kKinds[] = {
      MethodKind::kTwSimSearch,    MethodKind::kNaiveScan,
      MethodKind::kLbScan,         MethodKind::kStFilter,
      MethodKind::kTwSimSearchCascade,
  };
  for (const MethodKind kind : kKinds) {
    if (name == MethodKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

}  // namespace

ShardServer::ShardServer(ShardServerOptions options)
    : options_(std::move(options)),
      server_([this] {
        WireServerOptions server_options = options_.server;
        server_options.name = "shard-server";
        return server_options;
      }()) {}

Status ShardServer::Create(ShardServerOptions options,
                           std::unique_ptr<ShardServer>* out) {
  auto server = std::unique_ptr<ShardServer>(new ShardServer(std::move(options)));
  WARPINDEX_RETURN_IF_ERROR(server->Load());
  server->RegisterHandlers();
  *out = std::move(server);
  return Status::Ok();
}

Status ShardServer::Load() {
  if (options_.serve_shards.empty()) {
    return Status::InvalidArgument(
        "a shard server must serve at least one shard");
  }
  WARPINDEX_RETURN_IF_ERROR(LoadShardManifest(
      options_.db_dir + "/manifest.wism", &manifest_));
  std::set<uint32_t> seen;
  for (const uint32_t shard : options_.serve_shards) {
    if (shard >= manifest_.assignment.num_shards) {
      return Status::InvalidArgument(
          "shard " + std::to_string(shard) + " out of range: manifest has " +
          std::to_string(manifest_.assignment.num_shards) + " shards");
    }
    if (!seen.insert(shard).second) {
      return Status::InvalidArgument("shard " + std::to_string(shard) +
                                     " listed twice");
    }
  }
  options_.engine.page_size_bytes = manifest_.page_size_bytes;

  engines_.reserve(options_.serve_shards.size());
  global_of_.reserve(options_.serve_shards.size());
  for (const uint32_t shard : options_.serve_shards) {
    std::unique_ptr<Engine> engine;
    WARPINDEX_RETURN_IF_ERROR(
        Engine::Open(options_.db_dir + "/" + ShardSubdir(shard),
                     options_.engine, &engine));
    // Local ids were assigned in ascending global order (see
    // shard/partitioner.h), so scanning the manifest assignment forward
    // rebuilds local -> global exactly.
    std::vector<SequenceId> global_of;
    const std::vector<uint32_t>& shard_of = manifest_.assignment.shard_of;
    for (size_t g = 0; g < shard_of.size(); ++g) {
      if (shard_of[g] == shard) {
        global_of.push_back(static_cast<SequenceId>(g));
      }
    }
    if (engine->dataset().size() != global_of.size()) {
      return Status::InvalidArgument(
          "shard " + std::to_string(shard) +
          " holds a different sequence count than the manifest assigns");
    }
    engines_.push_back(std::move(engine));
    global_of_.push_back(std::move(global_of));
  }

  // Live-only feature MBRs, exactly as ShardedEngine computes them: a
  // tombstoned sequence must not widen the box the router prunes with.
  bounds_.assign(engines_.size(), ShardFeatureBounds{});
  for (size_t slot = 0; slot < engines_.size(); ++slot) {
    const Engine& engine = *engines_[slot];
    const Dataset& data = engine.dataset();
    for (size_t local = 0; local < data.size(); ++local) {
      if (engine.Contains(static_cast<SequenceId>(local))) {
        bounds_[slot].Cover(ExtractFeature(data[local]));
      }
    }
  }
  return Status::Ok();
}

void ShardServer::RegisterHandlers() {
  server_.Handle(WireType::kHello,
                 [this](const std::string&, const JsonValue& request,
                        JsonValue* response) {
                   return HandleHello(request, response);
                 });
  server_.Handle(WireType::kRange,
                 [this](const std::string&, const JsonValue& request,
                        JsonValue* response) {
                   return HandleRange(request, response);
                 });
  server_.Handle(WireType::kKnn,
                 [this](const std::string&, const JsonValue& request,
                        JsonValue* response) {
                   return HandleKnn(request, response);
                 });
  server_.Handle(WireType::kStats,
                 [this](const std::string&, const JsonValue& request,
                        JsonValue* response) {
                   return HandleStats(request, response);
                 });
}

Status ShardServer::HandleStats(const JsonValue& /*request*/,
                                JsonValue* response) {
  response->Set("server", JsonValue::Str("shard-server"));
  response->Set("group", JsonValue::Int(options_.group));
  response->Set("replica", JsonValue::Int(options_.replica));
  response->Set("draining", JsonValue::Bool(server_.draining()));
  response->Set("shards",
                JsonValue::Int(static_cast<int64_t>(engines_.size())));
  // The same snapshot /metrics would render on this process, as a JSON
  // object the poller can walk (counter sums, histogram bucket merges).
  MetricsRegistry* registry = options_.server.metrics != nullptr
                                  ? options_.server.metrics
                                  : &MetricsRegistry::Global();
  const ProcessSelfMetrics process = CollectProcessSelfMetrics();
  JsonValue metrics;
  const Status parsed = JsonValue::Parse(
      MetricsToJson(registry->TakeSnapshot(), nullptr, &process), &metrics);
  response->Set("metrics",
                parsed.ok() ? std::move(metrics) : JsonValue::Object());
  return Status::Ok();
}

std::vector<ShardServer::ServedShard> ShardServer::served() const {
  std::vector<ServedShard> out;
  out.reserve(engines_.size());
  for (size_t slot = 0; slot < engines_.size(); ++slot) {
    ServedShard row;
    row.shard = options_.serve_shards[slot];
    row.sequences = engines_[slot]->dataset().size();
    row.live = engines_[slot]->live_size();
    out.push_back(row);
  }
  return out;
}

int ShardServer::SlotOf(uint32_t shard) const {
  for (size_t slot = 0; slot < options_.serve_shards.size(); ++slot) {
    if (options_.serve_shards[slot] == shard) {
      return static_cast<int>(slot);
    }
  }
  return -1;
}

Status ShardServer::RequestedSlots(const JsonValue& request,
                                   std::vector<int>* slots) const {
  const JsonValue* shards = request.Find("shards");
  if (shards == nullptr || shards->kind() != JsonValue::Kind::kArray ||
      shards->size() == 0) {
    return Status::InvalidArgument(
        "request needs a non-empty 'shards' array");
  }
  slots->clear();
  slots->reserve(shards->size());
  for (const JsonValue& item : shards->items()) {
    const int64_t shard = item.AsInt();
    const int slot =
        shard >= 0 ? SlotOf(static_cast<uint32_t>(shard)) : -1;
    if (slot < 0) {
      return Status::InvalidArgument(
          "shard " + std::to_string(shard) +
          " is not served by this server");
    }
    slots->push_back(slot);
  }
  return Status::Ok();
}

Status ShardServer::HandleHello(const JsonValue& /*request*/,
                                JsonValue* response) {
  response->Set("role", JsonValue::Str("shard-server"));
  response->Set("group", JsonValue::Int(options_.group));
  response->Set("replica", JsonValue::Int(options_.replica));
  response->Set("num_shards",
                JsonValue::Int(static_cast<int64_t>(
                    manifest_.assignment.num_shards)));
  response->Set("partitioner",
                JsonValue::Str(PartitionerKindName(manifest_.partitioner)));
  JsonValue shards = JsonValue::Array();
  for (size_t slot = 0; slot < engines_.size(); ++slot) {
    JsonValue item = JsonValue::Object();
    item.Set("shard", JsonValue::Int(options_.serve_shards[slot]));
    item.Set("sequences",
             JsonValue::Int(
                 static_cast<int64_t>(engines_[slot]->dataset().size())));
    item.Set("live", JsonValue::Int(
                         static_cast<int64_t>(engines_[slot]->live_size())));
    // null MBR = empty shard; the router prunes it unconditionally,
    // matching ShardFeatureBounds::valid == false in-process.
    item.Set("mbr", bounds_[slot].valid ? RectToJson(bounds_[slot].mbr)
                                        : JsonValue::Null());
    shards.Add(std::move(item));
  }
  response->Set("shards", std::move(shards));
  return Status::Ok();
}

Status ShardServer::HandleRange(const JsonValue& request,
                                JsonValue* response) {
  WallTimer timer;
  // The per-slot engine searches run on this thread and already measure
  // their own CPU (summed into merged.cost via MergeParallel), so this
  // handler adds only its parse/merge/serialize share: total thread CPU
  // minus the windows spent inside the engine calls.
  ThreadCpuTimer cpu_timer;
  double search_caller_cpu_ms = 0.0;
  std::vector<int> slots;
  WARPINDEX_RETURN_IF_ERROR(RequestedSlots(request, &slots));
  MethodKind kind;
  const std::string method = request.GetString("method", "");
  if (!ParseMethodKindName(method, &kind)) {
    return Status::InvalidArgument("unknown method '" + method + "'");
  }
  // A remote request must never crash the process: ST-Filter needs the
  // suffix tree this server may have been started without.
  if (kind == MethodKind::kStFilter &&
      !options_.engine.build_st_filter) {
    return Status::InvalidArgument(
        "this server was started without the ST-Filter index "
        "(st_filter=false)");
  }
  const double epsilon = request.GetDouble("epsilon", -1.0);
  if (!(epsilon >= 0.0)) {
    return Status::InvalidArgument("epsilon must be >= 0");
  }
  const JsonValue* query_json = request.Find("query");
  if (query_json == nullptr) {
    return Status::InvalidArgument("request needs a 'query' array");
  }
  Sequence query;
  WARPINDEX_RETURN_IF_ERROR(JsonToSequence(*query_json, &query));
  const bool traced = request.GetBool("trace", false);

  Trace trace;
  SearchResult merged;
  for (const int slot : slots) {
    DtwScratch scratch;
    Trace* sub = nullptr;
    size_t span = 0;
    if (traced) {
      sub = &trace;
      trace.SetThreadTag(
          static_cast<int32_t>(options_.serve_shards[slot]), 0);
      span = trace.BeginSpan("shard");
      trace.AddCounter("shard_index",
                       static_cast<double>(options_.serve_shards[slot]));
    }
    ThreadCpuTimer search_cpu;
    const SearchResult partial =
        engines_[slot]->SearchWith(kind, query, epsilon, sub, &scratch);
    search_caller_cpu_ms += search_cpu.ElapsedMillis();
    if (traced) {
      trace.AddCounter("candidates",
                       static_cast<double>(partial.num_candidates));
      trace.AddCounter("matches",
                       static_cast<double>(partial.matches.size()));
      trace.EndSpan(span);
    }
    merged.num_candidates += partial.num_candidates;
    for (const SequenceId local : partial.matches) {
      merged.matches.push_back(
          global_of_[static_cast<size_t>(slot)][static_cast<size_t>(local)]);
    }
    merged.distances.insert(merged.distances.end(),
                            partial.distances.begin(),
                            partial.distances.end());
    merged.cost.MergeParallel(partial.cost);
  }
  CanonicalizeMatchOrder(&merged);
  merged.cost.wall_ms = timer.ElapsedMillis();
  merged.cost.cpu_ms +=
      std::max(0.0, cpu_timer.ElapsedMillis() - search_caller_cpu_ms);

  JsonValue matches = JsonValue::Array();
  for (const SequenceId id : merged.matches) {
    matches.Add(JsonValue::Int(id));
  }
  response->Set("matches", std::move(matches));
  // Exact per-match D_tw distances, parallel to "matches". Doubles
  // serialize at %.17g so the router's cache stores bit-identical values.
  JsonValue distances = JsonValue::Array();
  for (const double d : merged.distances) {
    distances.Add(JsonValue::Double(d));
  }
  response->Set("distances", std::move(distances));
  response->Set("num_candidates",
                JsonValue::Int(static_cast<int64_t>(merged.num_candidates)));
  response->Set("cost", CostToJson(merged.cost));
  if (traced) {
    response->Set("spans", SpansToJson(trace.spans()));
  }
  return Status::Ok();
}

Status ShardServer::HandleKnn(const JsonValue& request,
                              JsonValue* response) {
  WallTimer timer;
  // Same CPU accounting as HandleRange.
  ThreadCpuTimer cpu_timer;
  double search_caller_cpu_ms = 0.0;
  std::vector<int> slots;
  WARPINDEX_RETURN_IF_ERROR(RequestedSlots(request, &slots));
  const int64_t k = request.GetInt("k", 0);
  if (k < 1) {
    return Status::InvalidArgument("k must be >= 1");
  }
  const JsonValue* query_json = request.Find("query");
  if (query_json == nullptr) {
    return Status::InvalidArgument("request needs a 'query' array");
  }
  Sequence query;
  WARPINDEX_RETURN_IF_ERROR(JsonToSequence(*query_json, &query));
  const bool traced = request.GetBool("trace", false);

  // The router's wave bound seeds the shared bound: pruning is strictly
  // greater-than, so members tying the bound survive for the (distance,
  // id) merge — the exactness argument in docs/NETWORKING.md.
  SharedKnnBound shared_bound;
  if (const JsonValue* bound = request.Find("bound");
      bound != nullptr && bound->is_number()) {
    shared_bound.Tighten(bound->AsDouble());
  }

  Trace trace;
  KnnResult merged;
  std::vector<KnnMatch> all;
  for (const int slot : slots) {
    Trace* sub = nullptr;
    size_t span = 0;
    if (traced) {
      sub = &trace;
      trace.SetThreadTag(
          static_cast<int32_t>(options_.serve_shards[slot]), 0);
      span = trace.BeginSpan("shard");
      trace.AddCounter("shard_index",
                       static_cast<double>(options_.serve_shards[slot]));
    }
    ThreadCpuTimer search_cpu;
    const KnnResult partial = engines_[slot]->SearchKnnBounded(
        query, static_cast<size_t>(k), sub, &shared_bound);
    search_caller_cpu_ms += search_cpu.ElapsedMillis();
    if (traced) {
      trace.AddCounter("neighbors",
                       static_cast<double>(partial.neighbors.size()));
      trace.AddCounter("refined",
                       static_cast<double>(partial.num_refined));
      trace.EndSpan(span);
    }
    merged.num_refined += partial.num_refined;
    merged.cost.MergeParallel(partial.cost);
    for (KnnMatch match : partial.neighbors) {
      match.id =
          global_of_[static_cast<size_t>(slot)][static_cast<size_t>(match.id)];
      all.push_back(match);
    }
  }
  std::sort(all.begin(), all.end(), KnnMatchOrder);
  if (all.size() > static_cast<size_t>(k)) {
    all.resize(static_cast<size_t>(k));
  }
  merged.cost.wall_ms = timer.ElapsedMillis();
  merged.cost.cpu_ms +=
      std::max(0.0, cpu_timer.ElapsedMillis() - search_caller_cpu_ms);

  response->Set("neighbors", KnnMatchesToJson(all));
  response->Set("num_refined",
                JsonValue::Int(static_cast<int64_t>(merged.num_refined)));
  const double bound_after = shared_bound.Current();
  response->Set("bound_after", bound_after < kInfiniteDistance
                                   ? JsonValue::Double(bound_after)
                                   : JsonValue::Null());
  response->Set("cost", CostToJson(merged.cost));
  if (traced) {
    response->Set("spans", SpansToJson(trace.spans()));
  }
  return Status::Ok();
}

}  // namespace warpindex
