#include "net/serialize.h"

#include <string>

namespace warpindex {
namespace {

Status ExpectKind(const JsonValue& json, JsonValue::Kind kind,
                  const char* what) {
  if (json.kind() != kind) {
    return Status::InvalidArgument(std::string(what) +
                                   " has the wrong JSON shape");
  }
  return Status::Ok();
}

Status NumberArrayToVector(const JsonValue& json, const char* what,
                           std::vector<double>* out) {
  WARPINDEX_RETURN_IF_ERROR(ExpectKind(json, JsonValue::Kind::kArray, what));
  out->clear();
  out->reserve(json.size());
  for (const JsonValue& item : json.items()) {
    if (!item.is_number()) {
      return Status::InvalidArgument(std::string(what) +
                                     " contains a non-numeric element");
    }
    out->push_back(item.AsDouble());
  }
  return Status::Ok();
}

}  // namespace

JsonValue SequenceToJson(const Sequence& sequence) {
  JsonValue array = JsonValue::Array();
  for (const double v : sequence.elements()) {
    array.Add(JsonValue::Double(v));
  }
  return array;
}

Status JsonToSequence(const JsonValue& json, Sequence* out) {
  std::vector<double> elements;
  WARPINDEX_RETURN_IF_ERROR(
      NumberArrayToVector(json, "sequence", &elements));
  if (elements.empty()) {
    return Status::InvalidArgument("sequence must be non-empty");
  }
  *out = Sequence(std::move(elements));
  return Status::Ok();
}

JsonValue CostToJson(const SearchCost& cost) {
  JsonValue json = JsonValue::Object();
  JsonValue io = JsonValue::Object();
  io.Set("random_page_reads",
         JsonValue::Int(static_cast<int64_t>(cost.io.random_page_reads)));
  io.Set("sequential_page_reads",
         JsonValue::Int(
             static_cast<int64_t>(cost.io.sequential_page_reads)));
  io.Set("page_writes",
         JsonValue::Int(static_cast<int64_t>(cost.io.page_writes)));
  io.Set("seeks", JsonValue::Int(static_cast<int64_t>(cost.io.seeks)));
  json.Set("io", std::move(io));
  json.Set("dtw_cells",
           JsonValue::Int(static_cast<int64_t>(cost.dtw_cells)));
  json.Set("dtw_evals",
           JsonValue::Int(static_cast<int64_t>(cost.dtw_evals)));
  json.Set("lb_evals", JsonValue::Int(static_cast<int64_t>(cost.lb_evals)));
  json.Set("index_nodes",
           JsonValue::Int(static_cast<int64_t>(cost.index_nodes)));
  json.Set("pool_hits",
           JsonValue::Int(static_cast<int64_t>(cost.pool_hits)));
  json.Set("pool_misses",
           JsonValue::Int(static_cast<int64_t>(cost.pool_misses)));
  json.Set("wall_ms", JsonValue::Double(cost.wall_ms));
  json.Set("cpu_ms", JsonValue::Double(cost.cpu_ms));
  JsonValue stages = JsonValue::Object();
  for (const auto& [stage, ms] : cost.stages.entries()) {
    stages.Set(stage, JsonValue::Double(ms));
  }
  json.Set("stages", std::move(stages));
  JsonValue stages_cpu = JsonValue::Object();
  for (const auto& [stage, ms] : cost.stages_cpu.entries()) {
    stages_cpu.Set(stage, JsonValue::Double(ms));
  }
  json.Set("stages_cpu", std::move(stages_cpu));
  JsonValue prunes = JsonValue::Object();
  for (const auto& [stage, counts] : cost.prunes.entries()) {
    JsonValue pair = JsonValue::Array();
    pair.Add(JsonValue::Int(static_cast<int64_t>(counts.in)));
    pair.Add(JsonValue::Int(static_cast<int64_t>(counts.pruned)));
    prunes.Set(stage, std::move(pair));
  }
  json.Set("prunes", std::move(prunes));
  return json;
}

Status JsonToCost(const JsonValue& json, SearchCost* out) {
  WARPINDEX_RETURN_IF_ERROR(
      ExpectKind(json, JsonValue::Kind::kObject, "cost"));
  *out = SearchCost();
  if (const JsonValue* io = json.Find("io");
      io != nullptr && io->kind() == JsonValue::Kind::kObject) {
    out->io.random_page_reads =
        static_cast<uint64_t>(io->GetInt("random_page_reads", 0));
    out->io.sequential_page_reads =
        static_cast<uint64_t>(io->GetInt("sequential_page_reads", 0));
    out->io.page_writes =
        static_cast<uint64_t>(io->GetInt("page_writes", 0));
    out->io.seeks = static_cast<uint64_t>(io->GetInt("seeks", 0));
  }
  out->dtw_cells = static_cast<uint64_t>(json.GetInt("dtw_cells", 0));
  out->dtw_evals = static_cast<uint64_t>(json.GetInt("dtw_evals", 0));
  out->lb_evals = static_cast<uint64_t>(json.GetInt("lb_evals", 0));
  out->index_nodes = static_cast<uint64_t>(json.GetInt("index_nodes", 0));
  out->pool_hits = static_cast<uint64_t>(json.GetInt("pool_hits", 0));
  out->pool_misses = static_cast<uint64_t>(json.GetInt("pool_misses", 0));
  out->wall_ms = json.GetDouble("wall_ms", 0.0);
  out->cpu_ms = json.GetDouble("cpu_ms", 0.0);
  if (const JsonValue* stages = json.Find("stages");
      stages != nullptr && stages->kind() == JsonValue::Kind::kObject) {
    for (const auto& [stage, ms] : stages->members()) {
      out->stages.Add(stage, ms.AsDouble());
    }
  }
  if (const JsonValue* stages_cpu = json.Find("stages_cpu");
      stages_cpu != nullptr &&
      stages_cpu->kind() == JsonValue::Kind::kObject) {
    for (const auto& [stage, ms] : stages_cpu->members()) {
      out->stages_cpu.Add(stage, ms.AsDouble());
    }
  }
  if (const JsonValue* prunes = json.Find("prunes");
      prunes != nullptr && prunes->kind() == JsonValue::Kind::kObject) {
    for (const auto& [stage, pair] : prunes->members()) {
      if (pair.kind() != JsonValue::Kind::kArray || pair.size() != 2) {
        return Status::InvalidArgument("cost.prunes entry for '" + stage +
                                       "' is not an [in, pruned] pair");
      }
      out->prunes.Record(stage,
                         static_cast<uint64_t>(pair.at(0).AsInt()),
                         static_cast<uint64_t>(pair.at(1).AsInt()));
    }
  }
  return Status::Ok();
}

JsonValue SpansToJson(const std::vector<TraceSpan>& spans) {
  JsonValue array = JsonValue::Array();
  for (const TraceSpan& span : spans) {
    JsonValue item = JsonValue::Object();
    item.Set("name", JsonValue::Str(span.name));
    item.Set("parent", JsonValue::Int(span.parent));
    item.Set("start_ms", JsonValue::Double(span.start_ms));
    item.Set("duration_ms", JsonValue::Double(span.duration_ms));
    item.Set("cpu_ms", JsonValue::Double(span.cpu_ms));
    item.Set("shard", JsonValue::Int(span.shard));
    item.Set("tid", JsonValue::Int(static_cast<int64_t>(span.tid)));
    JsonValue counters = JsonValue::Object();
    for (const auto& [name, value] : span.counters) {
      counters.Set(name, JsonValue::Double(value));
    }
    item.Set("counters", std::move(counters));
    array.Add(std::move(item));
  }
  return array;
}

Status JsonToSpans(const JsonValue& json, std::vector<TraceSpan>* out) {
  WARPINDEX_RETURN_IF_ERROR(
      ExpectKind(json, JsonValue::Kind::kArray, "spans"));
  out->clear();
  out->reserve(json.size());
  for (size_t i = 0; i < json.size(); ++i) {
    const JsonValue& item = json.at(i);
    WARPINDEX_RETURN_IF_ERROR(
        ExpectKind(item, JsonValue::Kind::kObject, "span"));
    TraceSpan span;
    span.name = item.GetString("name", "");
    const int64_t parent = item.GetInt("parent", -1);
    if (parent < -1 || parent >= static_cast<int64_t>(i)) {
      return Status::InvalidArgument(
          "span " + std::to_string(i) + " has parent " +
          std::to_string(parent) + ", which is not an earlier span");
    }
    span.parent = static_cast<int>(parent);
    span.start_ms = item.GetDouble("start_ms", 0.0);
    span.duration_ms = item.GetDouble("duration_ms", 0.0);
    span.cpu_ms = item.GetDouble("cpu_ms", 0.0);
    span.shard = static_cast<int32_t>(item.GetInt("shard", -1));
    span.tid = static_cast<uint32_t>(item.GetInt("tid", 0));
    if (const JsonValue* counters = item.Find("counters");
        counters != nullptr &&
        counters->kind() == JsonValue::Kind::kObject) {
      for (const auto& [name, value] : counters->members()) {
        span.counters.emplace_back(name, value.AsDouble());
      }
    }
    out->push_back(std::move(span));
  }
  return Status::Ok();
}

JsonValue RectToJson(const Rect& rect) {
  JsonValue json = JsonValue::Object();
  JsonValue mins = JsonValue::Array();
  JsonValue maxs = JsonValue::Array();
  for (int d = 0; d < rect.dims; ++d) {
    mins.Add(JsonValue::Double(rect.min[static_cast<size_t>(d)]));
    maxs.Add(JsonValue::Double(rect.max[static_cast<size_t>(d)]));
  }
  json.Set("min", std::move(mins));
  json.Set("max", std::move(maxs));
  return json;
}

Status JsonToRect(const JsonValue& json, Rect* out) {
  WARPINDEX_RETURN_IF_ERROR(
      ExpectKind(json, JsonValue::Kind::kObject, "mbr"));
  const JsonValue* mins = json.Find("min");
  const JsonValue* maxs = json.Find("max");
  if (mins == nullptr || maxs == nullptr) {
    return Status::InvalidArgument("mbr is missing min/max");
  }
  std::vector<double> lo;
  std::vector<double> hi;
  WARPINDEX_RETURN_IF_ERROR(NumberArrayToVector(*mins, "mbr.min", &lo));
  WARPINDEX_RETURN_IF_ERROR(NumberArrayToVector(*maxs, "mbr.max", &hi));
  if (lo.size() != hi.size() || lo.empty() ||
      lo.size() > static_cast<size_t>(kMaxRTreeDims)) {
    return Status::InvalidArgument("mbr min/max lengths are invalid");
  }
  *out = Rect();
  out->dims = static_cast<int>(lo.size());
  for (size_t d = 0; d < lo.size(); ++d) {
    out->min[d] = lo[d];
    out->max[d] = hi[d];
  }
  return Status::Ok();
}

JsonValue KnnMatchesToJson(const std::vector<KnnMatch>& matches) {
  JsonValue array = JsonValue::Array();
  for (const KnnMatch& match : matches) {
    JsonValue item = JsonValue::Object();
    item.Set("id", JsonValue::Int(match.id));
    item.Set("distance", JsonValue::Double(match.distance));
    array.Add(std::move(item));
  }
  return array;
}

Status JsonToKnnMatches(const JsonValue& json,
                        std::vector<KnnMatch>* out) {
  WARPINDEX_RETURN_IF_ERROR(
      ExpectKind(json, JsonValue::Kind::kArray, "neighbors"));
  out->clear();
  out->reserve(json.size());
  for (const JsonValue& item : json.items()) {
    WARPINDEX_RETURN_IF_ERROR(
        ExpectKind(item, JsonValue::Kind::kObject, "neighbor"));
    KnnMatch match;
    match.id = item.GetInt("id", kInvalidSequenceId);
    match.distance = item.GetDouble("distance", 0.0);
    out->push_back(match);
  }
  return Status::Ok();
}

}  // namespace warpindex
