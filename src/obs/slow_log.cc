#include "obs/slow_log.h"

#include <algorithm>

namespace warpindex {

namespace {

// Min-heap order: the cheapest (fastest) record bubbles to the front.
bool FasterThan(const FlightRecord& a, const FlightRecord& b) {
  if (a.wall_ms != b.wall_ms) {
    return a.wall_ms > b.wall_ms;  // std::push_heap wants a max-heap cmp
  }
  return a.seq < b.seq;  // equal latency: evict the newer one first
}

}  // namespace

SlowQueryLog::SlowQueryLog(size_t worst_k)
    : capacity_(std::max<size_t>(1, worst_k)) {}

void SlowQueryLog::Record(FlightRecord record) {
  record.seq = offered_.fetch_add(1, std::memory_order_relaxed) + 1;
  record.timestamp_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - origin_)
          .count();
  std::lock_guard<std::mutex> lock(mu_);
  if (heap_.size() < capacity_) {
    heap_.push_back(std::move(record));
    std::push_heap(heap_.begin(), heap_.end(), FasterThan);
    return;
  }
  if (record.wall_ms <= heap_.front().wall_ms) {
    return;  // not slower than the current worst-K floor
  }
  std::pop_heap(heap_.begin(), heap_.end(), FasterThan);
  heap_.back() = std::move(record);
  std::push_heap(heap_.begin(), heap_.end(), FasterThan);
}

std::vector<FlightRecord> SlowQueryLog::Snapshot() const {
  std::vector<FlightRecord> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = heap_;
  }
  std::sort(out.begin(), out.end(),
            [](const FlightRecord& a, const FlightRecord& b) {
              if (a.wall_ms != b.wall_ms) {
                return a.wall_ms > b.wall_ms;  // slowest first
              }
              return a.seq < b.seq;  // then oldest first
            });
  return out;
}

double SlowQueryLog::admission_threshold_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return heap_.size() < capacity_ ? 0.0 : heap_.front().wall_ms;
}

}  // namespace warpindex
