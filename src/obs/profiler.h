// Dependency-free sampling CPU profiler: a SIGPROF/timer_create-driven
// wall-of-the-CPU sampler that answers "where do the cycles go?" on a
// live serving process, with zero steady-state cost while disarmed.
//
// How it samples
//
//   Start(hz) arms a POSIX interval timer on CLOCK_PROCESS_CPUTIME_ID
//   delivering SIGPROF `hz` times per CPU-second consumed by the whole
//   process (so an idle process generates ~no signals, and a process
//   burning 8 cores is sampled 8x as often — samples are proportional
//   to CPU burn, which is the quantity being profiled). The kernel
//   delivers each SIGPROF to one currently-RUNNING thread, so the
//   sample lands in whatever code is actually on-CPU.
//
//   The handler is async-signal-safe by construction: it reads the
//   interrupted PC and frame pointer out of the ucontext, walks the
//   frame-pointer chain within the thread's known stack bounds, and
//   writes PCs plus the thread's profiling tag into a slot of a
//   pre-allocated sample buffer claimed with one atomic fetch_add. No
//   allocation, no locks, no library calls. When the buffer is full,
//   samples are counted as dropped rather than blocking.
//
// Thread tags
//
//   SetThreadTag("worker-3") labels every sample taken on the calling
//   thread, mirroring the worker/shard thread-tag scheme of
//   obs/trace.h (ThreadPool workers tag themselves "worker-<i>"; the
//   HTTP and wire-server threads tag their serving loops). Tags become
//   the first frame of the collapsed stack, so a flamegraph splits by
//   thread role before function. SetThreadTag also captures the
//   thread's stack bounds (pthread_getattr_np) — the handler only
//   frame-walks threads whose bounds it knows and records a PC-only
//   sample on unregistered threads, which is what keeps the walk
//   memory-safe.
//
// Output
//
//   Stop() symbolizes the unique PCs once (dladdr + __cxa_demangle,
//   outside any signal context), aggregates identical stacks, and
//   returns a Profile that renders as
//     * FoldedText()      — "tag;outer;...;leaf <count>" lines, the
//                           flamegraph.pl / inferno collapsed format;
//     * SpeedscopeJson()  — a speedscope.app "sampled" profile.
//
//   Serving processes expose this as GET /profilez?seconds=N&hz=M
//   (exec/introspection.h); the CLI writes a profile of the whole run
//   via --profile_out (extension picks the format).
//
// Portability: sampling requires Linux (timer_create + SIGPROF +
// ucontext register access on x86-64/aarch64). Elsewhere Start()
// returns FailedPrecondition and everything else degrades gracefully.
//
// Thread-safety: Start/Stop/Collect serialize on an internal mutex;
// only one profile can be in flight per process (the signal handler is
// process-global), and concurrent Start() returns FailedPrecondition —
// /profilez maps that to 409 Conflict. SetThreadTag may be called from
// any thread at any time.

#ifndef WARPINDEX_OBS_PROFILER_H_
#define WARPINDEX_OBS_PROFILER_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace warpindex {

struct ProfileOptions {
  // Target samples per CPU-second, process-wide. 99 (not 100) is the
  // classic choice: avoids lockstep with 10ms-aligned periodic work.
  int hz = 99;
  // Sample-buffer capacity; samples past this are counted as dropped.
  size_t max_samples = 1 << 15;
};

// One aggregated profile. `stacks` are collapsed call stacks in
// root-first order whose first entry is the thread tag.
struct Profile {
  int hz = 0;
  // Wall-clock length of the sampling window.
  double duration_s = 0.0;
  // Samples captured / dropped because the buffer was full.
  uint64_t samples = 0;
  uint64_t dropped = 0;
  // ("tag;outer;...;leaf", count), sorted by stack string.
  std::vector<std::pair<std::string, uint64_t>> folded;

  // flamegraph.pl / inferno collapsed-stack text (one line per stack).
  std::string FoldedText() const;
  // speedscope.app file-format JSON ("sampled" profile).
  std::string SpeedscopeJson() const;
};

class CpuProfiler {
 public:
  // The process-wide profiler (the signal handler is process-global, so
  // there is exactly one).
  static CpuProfiler& Global();

  CpuProfiler(const CpuProfiler&) = delete;
  CpuProfiler& operator=(const CpuProfiler&) = delete;

  // Arms the timer and starts sampling. FailedPrecondition when already
  // running or unsupported on this platform; InvalidArgument on a bad
  // hz.
  Status Start(const ProfileOptions& options = {});

  // Disarms the timer, waits for in-flight handler invocations, and
  // aggregates into *out. FailedPrecondition when not running.
  Status Stop(Profile* out);

  // Start + sleep(seconds) + Stop, the /profilez shape. Validates
  // seconds (0 < s <= 120) and hz (1 <= hz <= 1000).
  Status Collect(double seconds, int hz, Profile* out);

  bool running() const;

  // Labels every future sample taken on the calling thread and
  // registers its stack bounds for the frame walk. Tags longer than
  // kMaxTagLength are truncated. Safe to call whether or not a profile
  // is running; cheap enough for thread startup paths.
  static void SetThreadTag(std::string_view tag);

  // Max bytes of a thread tag kept per sample (excess is truncated).
  static constexpr size_t kMaxTagLength = 31;
  // Max frames kept per sample (deeper stacks are truncated at the
  // root end — the leaf frames are the interesting ones).
  static constexpr size_t kMaxDepth = 48;

 private:
  CpuProfiler() = default;

  std::mutex mu_;           // serializes Start/Stop/Collect
  double started_wall_ = 0.0;
  int hz_ = 0;
};

}  // namespace warpindex

#endif  // WARPINDEX_OBS_PROFILER_H_
