#include "obs/trace.h"

#include <cassert>

namespace warpindex {

size_t Trace::BeginSpan(std::string_view name) {
  TraceSpan span;
  span.name.assign(name.data(), name.size());
  span.parent = open_stack_.empty()
                    ? -1
                    : static_cast<int>(open_stack_.back());
  span.start_ms = ElapsedMillis();
  spans_.push_back(std::move(span));
  const size_t index = spans_.size() - 1;
  open_stack_.push_back(index);
  return index;
}

void Trace::EndSpan(size_t index) {
  assert(!open_stack_.empty() && open_stack_.back() == index &&
         "spans must close innermost-first");
  TraceSpan& span = spans_[index];
  span.duration_ms = ElapsedMillis() - span.start_ms;
  open_stack_.pop_back();
}

void Trace::AddCounter(std::string_view name, double delta) {
  if (open_stack_.empty()) {
    return;
  }
  TraceSpan& span = spans_[open_stack_.back()];
  for (auto& [key, value] : span.counters) {
    if (key == name) {
      value += delta;
      return;
    }
  }
  span.counters.emplace_back(std::string(name), delta);
}

double Trace::TotalMillis(std::string_view name) const {
  double total = 0.0;
  for (const TraceSpan& span : spans_) {
    if (span.name == name) {
      total += span.duration_ms;
    }
  }
  return total;
}

}  // namespace warpindex
