#include "obs/trace.h"

#include <atomic>
#include <cassert>

#include "common/timer.h"

namespace warpindex {
namespace {

// SplitMix64 finalizer (same mix as shard/partitioner.h): a bijective
// scramble so consecutive counter values yield well-spread ids.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

uint64_t NewTraceId() {
  // Counter mixed with a once-per-process seed so ids from separate runs
  // appended to one trace file rarely collide.
  static const uint64_t process_seed = static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  static std::atomic<uint64_t> counter{1};
  uint64_t id = 0;
  do {
    id = Mix64(process_seed ^
               counter.fetch_add(1, std::memory_order_relaxed));
  } while (id == 0);
  return id;
}

size_t Trace::BeginSpan(std::string_view name) {
  TraceSpan span;
  span.name.assign(name.data(), name.size());
  span.parent = open_stack_.empty()
                    ? -1
                    : static_cast<int>(open_stack_.back());
  span.start_ms = ElapsedMillis();
  span.shard = tag_shard_;
  span.tid = tag_tid_;
  spans_.push_back(std::move(span));
  const size_t index = spans_.size() - 1;
  open_stack_.push_back(index);
  open_cpu_s_.push_back(ThreadCpuTimer::Now());
  return index;
}

void Trace::EndSpan(size_t index) {
  assert(!open_stack_.empty() && open_stack_.back() == index &&
         "spans must close innermost-first");
  TraceSpan& span = spans_[index];
  span.duration_ms = ElapsedMillis() - span.start_ms;
  span.cpu_ms = (ThreadCpuTimer::Now() - open_cpu_s_.back()) * 1e3;
  open_stack_.pop_back();
  open_cpu_s_.pop_back();
}

void Trace::AddCounter(std::string_view name, double delta) {
  if (open_stack_.empty()) {
    return;
  }
  TraceSpan& span = spans_[open_stack_.back()];
  for (auto& [key, value] : span.counters) {
    if (key == name) {
      value += delta;
      return;
    }
  }
  span.counters.emplace_back(std::string(name), delta);
}

size_t Trace::AppendSpan(TraceSpan span) {
  assert((span.parent < 0 ||
          static_cast<size_t>(span.parent) < spans_.size()) &&
         "appended span must reference an earlier span or be a root");
  spans_.push_back(std::move(span));
  return spans_.size() - 1;
}

void Trace::Adopt(size_t parent_index, const Trace& child) {
  assert(parent_index < spans_.size() &&
         "stitch target must be an existing span");
  assert(child.open_depth() == 0 &&
         "child trace must be finished before stitching");
  const int base = static_cast<int>(spans_.size());
  spans_.reserve(spans_.size() + child.spans_.size());
  for (const TraceSpan& span : child.spans_) {
    TraceSpan copy = span;
    copy.parent = span.parent < 0 ? static_cast<int>(parent_index)
                                  : base + span.parent;
    spans_.push_back(std::move(copy));
  }
}

double Trace::TotalMillis(std::string_view name) const {
  double total = 0.0;
  for (const TraceSpan& span : spans_) {
    if (span.name == name) {
      total += span.duration_ms;
    }
  }
  return total;
}

}  // namespace warpindex
