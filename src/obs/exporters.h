// Rendering traces and metric snapshots for consumption outside the
// process.
//
//   * TraceToJsonLines: one JSON object per span (jaeger-style flat
//     list; `parent` indexes earlier lines), appendable across queries.
//   * TraceToJsonArray: the same spans as one JSON array (what /tracez
//     embeds per trace).
//   * TraceEventsJson: Chrome/Perfetto trace-event format — load the
//     file in ui.perfetto.dev or chrome://tracing. Spans map to complete
//     ("X") events; the per-span shard tag becomes the pid lane and the
//     worker tag the tid lane, so a stitched scatter-gather query renders
//     one track group per shard.
//   * MetricsToPrometheusText: the text exposition format (counters plus
//     cumulative-bucket histograms with _bucket/_sum/_count series).
//   * MetricsToJson: the same snapshot as one JSON document, for benches
//     and scripts that post-process results.
//
// Formats are documented in docs/OBSERVABILITY.md.

#ifndef WARPINDEX_OBS_EXPORTERS_H_
#define WARPINDEX_OBS_EXPORTERS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace warpindex {

// Library version (also reported in /statusz build info and the
// warpindex_build_info metric).
inline constexpr const char* kWarpIndexVersion = "0.10.0";

// Static facts about this binary, exported as the warpindex_build_info
// metric (Prometheus info-metric convention: labels carry the facts, the
// value is always 1) and shown on /statusz.
struct BuildInfo {
  std::string version;
  std::string compiler;
  std::string build_type;  // "optimized" (NDEBUG) or "debug"
};
// The running library's build info.
BuildInfo GetBuildInfo();

// Standard process self-metrics per Prometheus conventions, read from
// /proc/self (Linux). `valid` is false when /proc is unavailable (the
// exporters then omit the series instead of reporting zeros).
struct ProcessSelfMetrics {
  bool valid = false;
  // Total user+system CPU seconds consumed by the process.
  double cpu_seconds_total = 0.0;
  // Resident set size in bytes.
  double resident_memory_bytes = 0.0;
  // Open file descriptors.
  int64_t open_fds = 0;
  // Process start time, seconds since the Unix epoch.
  double start_time_seconds = 0.0;
};
// A point-in-time reading (a handful of /proc reads; fine per scrape).
ProcessSelfMetrics CollectProcessSelfMetrics();

// JSON string literal (quotes and escapes `text`).
std::string JsonEscape(const std::string& text);

// Prometheus text-format escaping. HELP text escapes `\` and newline;
// label values additionally escape `"`. Without these a help string or
// label containing a newline corrupts every series after it.
std::string PrometheusEscapeHelp(const std::string& text);
std::string PrometheusEscapeLabelValue(const std::string& text);

// 16-char lowercase hex rendering of a trace id (the form /tracez,
// /slowlog, and /flightrecorder cross-link by), and its inverse.
// ParseTraceIdHex returns 0 (the invalid id) on malformed input.
std::string TraceIdHex(uint64_t trace_id);
uint64_t ParseTraceIdHex(const std::string& hex);

// One line per span:
//   {"span":0,"parent":-1,"name":"query","start_ms":0.01,
//    "duration_ms":2.5,"counters":{"pages_read":12}}
// Spans carrying execution tags (stitched shard subtrees) add
// "shard"/"tid". `query_id` tags every line so multiple traces can share
// one file; pass a negative id to omit the tag.
std::string TraceToJsonLines(const Trace& trace, int64_t query_id = -1);

// The same span objects as one JSON array ("[...]"), for embedding in a
// larger document (/tracez).
std::string TraceToJsonArray(const Trace& trace);

// Appends TraceToJsonLines(trace) to `path` (created if missing).
Status AppendTraceJsonLines(const Trace& trace, const std::string& path,
                            int64_t query_id = -1);

// Chrome trace-event JSON for one or more traces:
//   {"displayTimeUnit":"ms","traceEvents":[...]}
// Each span becomes a complete event (ts/dur in microseconds); pid =
// span.shard + 1 (so unsharded spans share pid 0), tid = span.tid, and
// metadata events name the lanes ("shard 3", "worker 2"). Consecutive
// traces are laid out left to right on one timeline (each shifted past
// the previous trace's extent) so a store snapshot reads as a session.
std::string TraceEventsJson(const std::vector<const Trace*>& traces);

// Writes TraceEventsJson to `path` (overwritten: the format is one JSON
// document, not appendable lines).
Status WriteTraceEventsFile(const std::vector<const Trace*>& traces,
                            const std::string& path);

// `build_info` (optional) prepends the warpindex_build_info series;
// `process` (optional, and only when valid) appends the standard
// process_* self-metrics. Each histogram is exported natively
// (_bucket/_sum/_count) plus estimated-quantile gauges (<name>_p50 /
// _p99 / _p999) for dashboards that predate native-histogram support —
// the text format is pinned by metrics_test.
std::string MetricsToPrometheusText(
    const MetricsRegistry::Snapshot& snapshot,
    const BuildInfo* build_info = nullptr,
    const ProcessSelfMetrics* process = nullptr);
// Histogram objects include estimated "p50"/"p99"/"p999" quantiles (see
// Histogram::Snapshot::EstimatePercentile) alongside the raw buckets.
// `build_info` (optional) adds a "build_info" object; `process`
// (optional, when valid) a "process" object with the same self-metrics
// as the text form.
std::string MetricsToJson(const MetricsRegistry::Snapshot& snapshot,
                          const BuildInfo* build_info = nullptr,
                          const ProcessSelfMetrics* process = nullptr);

// One FlightRecord as a JSON object (stage timings and prune counters as
// nested objects keyed by stage name; trace_id as hex, null when the
// query carried no trace).
std::string FlightRecordToJson(const FlightRecord& record);

// A record list as one JSON document: {"count":N,"records":[...]}.
// Renders both `/flightrecorder` (oldest first) and `/slowlog` (slowest
// first) — the caller picks the ordering by what Snapshot() it passes.
std::string FlightRecordsToJson(const std::vector<FlightRecord>& records);

}  // namespace warpindex

#endif  // WARPINDEX_OBS_EXPORTERS_H_
