// Rendering traces and metric snapshots for consumption outside the
// process.
//
//   * TraceToJsonLines: one JSON object per span (jaeger-style flat
//     list; `parent` indexes earlier lines), appendable across queries.
//   * MetricsToPrometheusText: the text exposition format (counters plus
//     cumulative-bucket histograms with _bucket/_sum/_count series).
//   * MetricsToJson: the same snapshot as one JSON document, for benches
//     and scripts that post-process results.
//
// Formats are documented in docs/OBSERVABILITY.md.

#ifndef WARPINDEX_OBS_EXPORTERS_H_
#define WARPINDEX_OBS_EXPORTERS_H_

#include <string>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace warpindex {

// JSON string literal (quotes and escapes `text`).
std::string JsonEscape(const std::string& text);

// One line per span:
//   {"span":0,"parent":-1,"name":"query","start_ms":0.01,
//    "duration_ms":2.5,"counters":{"pages_read":12}}
// `query_id` tags every line so multiple traces can share one file; pass
// a negative id to omit the tag.
std::string TraceToJsonLines(const Trace& trace, int64_t query_id = -1);

// Appends TraceToJsonLines(trace) to `path` (created if missing).
Status AppendTraceJsonLines(const Trace& trace, const std::string& path,
                            int64_t query_id = -1);

std::string MetricsToPrometheusText(
    const MetricsRegistry::Snapshot& snapshot);
std::string MetricsToJson(const MetricsRegistry::Snapshot& snapshot);

}  // namespace warpindex

#endif  // WARPINDEX_OBS_EXPORTERS_H_
