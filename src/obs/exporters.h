// Rendering traces and metric snapshots for consumption outside the
// process.
//
//   * TraceToJsonLines: one JSON object per span (jaeger-style flat
//     list; `parent` indexes earlier lines), appendable across queries.
//   * MetricsToPrometheusText: the text exposition format (counters plus
//     cumulative-bucket histograms with _bucket/_sum/_count series).
//   * MetricsToJson: the same snapshot as one JSON document, for benches
//     and scripts that post-process results.
//
// Formats are documented in docs/OBSERVABILITY.md.

#ifndef WARPINDEX_OBS_EXPORTERS_H_
#define WARPINDEX_OBS_EXPORTERS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace warpindex {

// JSON string literal (quotes and escapes `text`).
std::string JsonEscape(const std::string& text);

// Prometheus text-format escaping. HELP text escapes `\` and newline;
// label values additionally escape `"`. Without these a help string or
// label containing a newline corrupts every series after it.
std::string PrometheusEscapeHelp(const std::string& text);
std::string PrometheusEscapeLabelValue(const std::string& text);

// One line per span:
//   {"span":0,"parent":-1,"name":"query","start_ms":0.01,
//    "duration_ms":2.5,"counters":{"pages_read":12}}
// `query_id` tags every line so multiple traces can share one file; pass
// a negative id to omit the tag.
std::string TraceToJsonLines(const Trace& trace, int64_t query_id = -1);

// Appends TraceToJsonLines(trace) to `path` (created if missing).
Status AppendTraceJsonLines(const Trace& trace, const std::string& path,
                            int64_t query_id = -1);

std::string MetricsToPrometheusText(
    const MetricsRegistry::Snapshot& snapshot);
// Histogram objects include estimated "p50"/"p99"/"p999" quantiles (see
// Histogram::Snapshot::EstimatePercentile) alongside the raw buckets.
std::string MetricsToJson(const MetricsRegistry::Snapshot& snapshot);

// One FlightRecord as a JSON object (stage timings and prune counters as
// nested objects keyed by stage name).
std::string FlightRecordToJson(const FlightRecord& record);

// A record list as one JSON document: {"count":N,"records":[...]}.
// Renders both `/flightrecorder` (oldest first) and `/slowlog` (slowest
// first) — the caller picks the ordering by what Snapshot() it passes.
std::string FlightRecordsToJson(const std::vector<FlightRecord>& records);

}  // namespace warpindex

#endif  // WARPINDEX_OBS_EXPORTERS_H_
