// Per-stage pruning counters of a filtering pipeline, carried inside
// SearchCost next to the StageTimings breakdown.
//
// Each filtering stage of a query (feature D_tw-lb, LB_Yi, LB_Keogh,
// LB_Improved, exact DTW) records how many candidates it saw and how many
// it eliminated; Merge folds the counters additively across queries so a
// workload reports the pruning power of every stage, and the engine
// exports the same numbers through the metrics registry.
//
// Stage names are shared with the timing spans (the kStage* constants in
// obs/stage_timings.h) so timings, counters, and traces line up.

#ifndef WARPINDEX_OBS_STAGE_COUNTERS_H_
#define WARPINDEX_OBS_STAGE_COUNTERS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace warpindex {

// Candidates entering / eliminated by one stage. `pruned <= in`; the
// survivors (`in - pruned`) are the next stage's input.
struct StageCounts {
  uint64_t in = 0;
  uint64_t pruned = 0;
};

// Small insertion-ordered map of stage name -> StageCounts. Pipelines
// touch at most a handful of stages, so linear probing beats a real map
// (same rationale as StageTimings).
class StageCounters {
 public:
  // Adds `in` / `pruned` to `stage` (creating it at the end of the order
  // if new).
  void Record(std::string_view stage, uint64_t in, uint64_t pruned);

  // Accumulated counts for `stage`; zeros if never recorded.
  StageCounts Get(std::string_view stage) const;

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

  // Folds `other` into this breakdown additively (stage by stage).
  void Merge(const StageCounters& other);

  void Reset() { entries_.clear(); }

  const std::vector<std::pair<std::string, StageCounts>>& entries() const {
    return entries_;
  }

 private:
  std::vector<std::pair<std::string, StageCounts>> entries_;
};

}  // namespace warpindex

#endif  // WARPINDEX_OBS_STAGE_COUNTERS_H_
