// Per-stage wall-time breakdown of a query, carried inside SearchCost.
//
// Where a Trace records a tree of timestamped spans for one query (and
// only when a caller attaches one), StageTimings is the always-on
// aggregate: each search method accumulates elapsed milliseconds per
// named stage, and SearchCost::Merge folds breakdowns additively across
// queries, so a bench workload reports exactly where the time went.
//
// Stage names are shared with the trace spans (see the kStage* constants)
// so a traced query and a workload table line up.

#ifndef WARPINDEX_OBS_STAGE_TIMINGS_H_
#define WARPINDEX_OBS_STAGE_TIMINGS_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/timer.h"
#include "obs/trace.h"

namespace warpindex {

// Canonical stage names used across search methods, traces, metrics, and
// bench tables.
inline constexpr std::string_view kStageRtreeSearch = "rtree_search";
inline constexpr std::string_view kStageCandidateFetch = "candidate_fetch";
inline constexpr std::string_view kStageLbYiCascade = "lb_yi_cascade";
inline constexpr std::string_view kStageFeatureLbCascade =
    "feature_lb_cascade";
inline constexpr std::string_view kStageLbKeoghCascade = "lb_keogh_cascade";
inline constexpr std::string_view kStageLbImprovedCascade =
    "lb_improved_cascade";
inline constexpr std::string_view kStageDtwPostfilter = "dtw_postfilter";
inline constexpr std::string_view kStageKnnRefine = "knn_refine";
inline constexpr std::string_view kStageStorageScan = "storage_scan";
inline constexpr std::string_view kStageStFilter = "st_filter";

// Small insertion-ordered map of stage name -> accumulated milliseconds.
// Queries touch at most a handful of stages, so linear probing beats a
// real map.
class StageTimings {
 public:
  // Adds `ms` to `stage` (creating it at the end of the order if new).
  void Add(std::string_view stage, double ms);

  // Accumulated milliseconds for `stage`; 0 if never recorded.
  double Get(std::string_view stage) const;

  // Sum over all stages.
  double TotalMillis() const;

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

  // Folds `other` into this breakdown additively (stage by stage).
  void Merge(const StageTimings& other);

  void Reset() { entries_.clear(); }

  // Multiplies every stage by `factor` (bench averaging).
  void Scale(double factor);

  const std::vector<std::pair<std::string, double>>& entries() const {
    return entries_;
  }

 private:
  std::vector<std::pair<std::string, double>> entries_;
};

// RAII stage clock: on destruction adds the elapsed wall time to
// `timings` and the elapsed thread-CPU time to `cpu_timings` (each when
// non-null, under the same stage name) and, when a trace is attached,
// brackets the scope in a span of the same name. All sinks are optional
// and independent. The CPU reading is per-thread, so a StageTimer must
// be constructed and destroyed on the same thread (true of every stage
// scope today).
class StageTimer {
 public:
  StageTimer(StageTimings* timings, Trace* trace, std::string_view stage)
      : StageTimer(timings, nullptr, trace, stage) {}

  StageTimer(StageTimings* timings, StageTimings* cpu_timings, Trace* trace,
             std::string_view stage)
      : timings_(timings),
        cpu_timings_(cpu_timings),
        stage_(stage),
        span_(trace, stage) {}

  ~StageTimer() {
    if (timings_ != nullptr) {
      timings_->Add(stage_, timer_.ElapsedMillis());
    }
    if (cpu_timings_ != nullptr) {
      cpu_timings_->Add(stage_, cpu_timer_.ElapsedMillis());
    }
  }

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  StageTimings* timings_;
  StageTimings* cpu_timings_;
  std::string_view stage_;
  WallTimer timer_;
  ThreadCpuTimer cpu_timer_;
  ScopedSpan span_;
};

}  // namespace warpindex

#endif  // WARPINDEX_OBS_STAGE_TIMINGS_H_
