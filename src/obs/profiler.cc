#include "obs/profiler.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <thread>

#if defined(__linux__) && (defined(__x86_64__) || defined(__aarch64__))
#define WARPINDEX_PROFILER_SUPPORTED 1
#include <cxxabi.h>
#include <dlfcn.h>
#include <pthread.h>
#include <signal.h>
#include <time.h>
#include <ucontext.h>
#include <unistd.h>
#else
#define WARPINDEX_PROFILER_SUPPORTED 0
#endif

namespace warpindex {
namespace {

// ---- Async-signal-safe sampling machinery (all file-scope: the signal
// handler cannot carry a `this`).

struct Sample {
  uint32_t depth = 0;
  char tag[CpuProfiler::kMaxTagLength + 1] = {0};
  uintptr_t pcs[CpuProfiler::kMaxDepth] = {0};
};

struct SampleBuffer {
  size_t capacity = 0;
  std::atomic<size_t> next{0};
  std::atomic<uint64_t> dropped{0};
  Sample* samples = nullptr;
};

// Published buffer + gate. The handler loads the gate with acquire and
// bails when sampling is off; Stop() clears the gate, then spins until
// g_writers drains, which establishes happens-before between the last
// handler store and the aggregation reads.
std::atomic<bool> g_enabled{false};
std::atomic<SampleBuffer*> g_buffer{nullptr};
std::atomic<int> g_writers{0};

// Per-thread profiling identity: the tag (first folded frame) and the
// stack bounds that make the frame-pointer walk memory-safe. A thread
// that never called SetThreadTag gets PC-only samples tagged "thread".
struct ThreadProfileInfo {
  char tag[CpuProfiler::kMaxTagLength + 1] = {0};
  uintptr_t stack_lo = 0;
  uintptr_t stack_hi = 0;
};
thread_local ThreadProfileInfo tls_profile_info;

#if WARPINDEX_PROFILER_SUPPORTED

timer_t g_timer;
struct sigaction g_old_action;

// Extracts the interrupted PC / frame pointer / stack pointer from the
// signal ucontext (the registers of the code the signal preempted —
// NOT the handler's own frame, which would start the walk inside the
// signal trampoline).
void InterruptedRegisters(void* ucontext, uintptr_t* pc, uintptr_t* fp,
                          uintptr_t* sp) {
  const ucontext_t* uc = static_cast<const ucontext_t*>(ucontext);
#if defined(__x86_64__)
  *pc = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
  *fp = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
  *sp = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RSP]);
#elif defined(__aarch64__)
  *pc = static_cast<uintptr_t>(uc->uc_mcontext.pc);
  *fp = static_cast<uintptr_t>(uc->uc_mcontext.regs[29]);
  *sp = static_cast<uintptr_t>(uc->uc_mcontext.sp);
#endif
}

void ProfilerSignalHandler(int /*signo*/, siginfo_t* /*info*/,
                           void* ucontext) {
  // The handler must not touch errno-modifying or locking code paths;
  // everything below is register reads, bounds-checked loads from this
  // thread's own stack, and atomics on pre-allocated memory.
  const int saved_errno = errno;
  if (g_enabled.load(std::memory_order_acquire)) {
    g_writers.fetch_add(1, std::memory_order_acq_rel);
    // Re-check under the writer mark so Stop()'s drain loop is sound.
    SampleBuffer* buffer = g_buffer.load(std::memory_order_acquire);
    if (g_enabled.load(std::memory_order_acquire) && buffer != nullptr) {
      const size_t slot =
          buffer->next.fetch_add(1, std::memory_order_relaxed);
      if (slot >= buffer->capacity) {
        buffer->dropped.fetch_add(1, std::memory_order_relaxed);
      } else {
        Sample& sample = buffer->samples[slot];
        uintptr_t pc = 0;
        uintptr_t fp = 0;
        uintptr_t sp = 0;
        InterruptedRegisters(ucontext, &pc, &fp, &sp);
        sample.pcs[0] = pc;
        sample.depth = 1;
        // Frame-pointer walk, leaf to root. Every dereference is kept
        // inside [sp, stack_hi) — the thread's own mapped stack — and
        // the chain must be strictly ascending, so the walk terminates
        // and never faults even on a corrupt or FP-omitted frame.
        const ThreadProfileInfo& info = tls_profile_info;
        if (info.stack_hi != 0) {
          uintptr_t frame = fp;
          while (sample.depth < CpuProfiler::kMaxDepth) {
            if (frame < sp || frame + 2 * sizeof(uintptr_t) > info.stack_hi ||
                (frame & (sizeof(uintptr_t) - 1)) != 0) {
              break;
            }
            const uintptr_t next_frame =
                *reinterpret_cast<const uintptr_t*>(frame);
            const uintptr_t return_pc =
                *reinterpret_cast<const uintptr_t*>(frame +
                                                    sizeof(uintptr_t));
            if (return_pc < 4096) {
              break;
            }
            sample.pcs[sample.depth++] = return_pc;
            if (next_frame <= frame) {
              break;
            }
            frame = next_frame;
          }
        }
        // Manual byte copy: memcpy may be intercepted by sanitizers.
        size_t n = 0;
        while (n < CpuProfiler::kMaxTagLength && info.tag[n] != '\0') {
          sample.tag[n] = info.tag[n];
          ++n;
        }
        sample.tag[n] = '\0';
      }
    }
    g_writers.fetch_sub(1, std::memory_order_release);
  }
  errno = saved_errno;
}

// Captures the calling thread's stack bounds once (pthread_getattr_np
// allocates, so this must run outside any signal context).
void RegisterCurrentThreadStack() {
  if (tls_profile_info.stack_hi != 0) {
    return;
  }
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) != 0) {
    return;
  }
  void* stack_addr = nullptr;
  size_t stack_size = 0;
  if (pthread_attr_getstack(&attr, &stack_addr, &stack_size) == 0 &&
      stack_addr != nullptr && stack_size != 0) {
    tls_profile_info.stack_lo = reinterpret_cast<uintptr_t>(stack_addr);
    tls_profile_info.stack_hi =
        tls_profile_info.stack_lo + static_cast<uintptr_t>(stack_size);
  }
  pthread_attr_destroy(&attr);
}

// Best-effort symbol name for one sampled PC (called at aggregation
// time only). Return addresses point one past the call, so callers pass
// pc-1 for non-leaf frames to land inside the calling function.
std::string Symbolize(uintptr_t pc) {
  Dl_info info;
  if (dladdr(reinterpret_cast<void*>(pc), &info) != 0 &&
      info.dli_sname != nullptr) {
    int demangle_status = 0;
    char* demangled = abi::__cxa_demangle(info.dli_sname, nullptr, nullptr,
                                          &demangle_status);
    if (demangle_status == 0 && demangled != nullptr) {
      std::string name(demangled);
      free(demangled);
      return name;
    }
    if (demangled != nullptr) {
      free(demangled);
    }
    return info.dli_sname;
  }
  char hex[32];
  std::snprintf(hex, sizeof(hex), "0x%zx", static_cast<size_t>(pc));
  return hex;
}

#endif  // WARPINDEX_PROFILER_SUPPORTED

double WallNowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Folded frames never contain ';' or whitespace surprises: collapse the
// separator and newlines out of symbol names.
std::string SanitizeFrame(std::string name) {
  for (char& c : name) {
    if (c == ';' || c == '\n' || c == '\r') {
      c = ':';
    }
  }
  return name;
}

std::string JsonEscapeString(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace

std::string Profile::FoldedText() const {
  std::string out;
  for (const auto& [stack, count] : folded) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

std::string Profile::SpeedscopeJson() const {
  // Frame table: unique frame names in first-seen order.
  std::map<std::string, size_t> frame_index;
  std::vector<std::string> frames;
  std::vector<std::vector<size_t>> sample_stacks;
  sample_stacks.reserve(folded.size());
  for (const auto& [stack, count] : folded) {
    (void)count;
    std::vector<size_t> indices;
    size_t begin = 0;
    while (begin <= stack.size()) {
      const size_t semi = stack.find(';', begin);
      const std::string frame =
          stack.substr(begin, semi == std::string::npos ? std::string::npos
                                                        : semi - begin);
      auto [it, inserted] = frame_index.emplace(frame, frames.size());
      if (inserted) {
        frames.push_back(frame);
      }
      indices.push_back(it->second);
      if (semi == std::string::npos) {
        break;
      }
      begin = semi + 1;
    }
    sample_stacks.push_back(std::move(indices));
  }
  uint64_t total_weight = 0;
  for (const auto& [stack, count] : folded) {
    (void)stack;
    total_weight += count;
  }

  std::string out =
      "{\"$schema\":\"https://www.speedscope.app/file-format-schema.json\","
      "\"shared\":{\"frames\":[";
  for (size_t i = 0; i < frames.size(); ++i) {
    if (i != 0) {
      out += ',';
    }
    out += "{\"name\":" + JsonEscapeString(frames[i]) + "}";
  }
  out += "]},\"profiles\":[{\"type\":\"sampled\",\"name\":";
  out += JsonEscapeString("warpindex cpu profile (" + std::to_string(hz) +
                          " Hz, " + std::to_string(samples) + " samples)");
  out += ",\"unit\":\"none\",\"startValue\":0,\"endValue\":" +
         std::to_string(total_weight) + ",\"samples\":[";
  for (size_t i = 0; i < sample_stacks.size(); ++i) {
    if (i != 0) {
      out += ',';
    }
    out += '[';
    for (size_t j = 0; j < sample_stacks[i].size(); ++j) {
      if (j != 0) {
        out += ',';
      }
      out += std::to_string(sample_stacks[i][j]);
    }
    out += ']';
  }
  out += "],\"weights\":[";
  for (size_t i = 0; i < folded.size(); ++i) {
    if (i != 0) {
      out += ',';
    }
    out += std::to_string(folded[i].second);
  }
  out += "]}],\"name\":\"warpindex\",\"exporter\":\"warpindex ";
  out += std::to_string(hz);
  out += "hz\"}";
  return out;
}

CpuProfiler& CpuProfiler::Global() {
  static CpuProfiler* profiler = new CpuProfiler();
  return *profiler;
}

void CpuProfiler::SetThreadTag(std::string_view tag) {
  const size_t n = std::min(tag.size(), kMaxTagLength);
  std::memcpy(tls_profile_info.tag, tag.data(), n);
  tls_profile_info.tag[n] = '\0';
#if WARPINDEX_PROFILER_SUPPORTED
  RegisterCurrentThreadStack();
#endif
}

bool CpuProfiler::running() const {
  return g_enabled.load(std::memory_order_acquire);
}

Status CpuProfiler::Start(const ProfileOptions& options) {
#if WARPINDEX_PROFILER_SUPPORTED
  if (options.hz < 1 || options.hz > 1000) {
    return Status::InvalidArgument("profiler hz must be in [1, 1000]");
  }
  if (options.max_samples == 0) {
    return Status::InvalidArgument("profiler max_samples must be > 0");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (g_enabled.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("a CPU profile is already running");
  }

  // All allocation happens here, before the first signal can fire.
  SampleBuffer* buffer = new SampleBuffer();
  buffer->capacity = options.max_samples;
  buffer->samples = new Sample[options.max_samples];
  g_buffer.store(buffer, std::memory_order_release);

  // The thread driving the profile is sampleable too.
  RegisterCurrentThreadStack();

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_sigaction = &ProfilerSignalHandler;
  action.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&action.sa_mask);
  if (sigaction(SIGPROF, &action, &g_old_action) != 0) {
    delete[] buffer->samples;
    delete buffer;
    g_buffer.store(nullptr, std::memory_order_release);
    return Status::Internal("sigaction(SIGPROF) failed");
  }

  struct sigevent event;
  std::memset(&event, 0, sizeof(event));
  event.sigev_notify = SIGEV_SIGNAL;
  event.sigev_signo = SIGPROF;
  if (timer_create(CLOCK_PROCESS_CPUTIME_ID, &event, &g_timer) != 0) {
    sigaction(SIGPROF, &g_old_action, nullptr);
    delete[] buffer->samples;
    delete buffer;
    g_buffer.store(nullptr, std::memory_order_release);
    return Status::Internal("timer_create(CLOCK_PROCESS_CPUTIME_ID) failed");
  }

  hz_ = options.hz;
  started_wall_ = WallNowSeconds();
  g_enabled.store(true, std::memory_order_release);

  struct itimerspec spec;
  std::memset(&spec, 0, sizeof(spec));
  const long interval_ns = static_cast<long>(1e9 / options.hz);
  spec.it_interval.tv_sec = interval_ns / 1000000000L;
  spec.it_interval.tv_nsec = interval_ns % 1000000000L;
  spec.it_value = spec.it_interval;
  if (timer_settime(g_timer, 0, &spec, nullptr) != 0) {
    g_enabled.store(false, std::memory_order_release);
    timer_delete(g_timer);
    sigaction(SIGPROF, &g_old_action, nullptr);
    delete[] buffer->samples;
    delete buffer;
    g_buffer.store(nullptr, std::memory_order_release);
    return Status::Internal("timer_settime failed");
  }
  return Status::Ok();
#else
  (void)options;
  return Status::FailedPrecondition(
      "the sampling CPU profiler requires Linux on x86-64 or aarch64");
#endif
}

Status CpuProfiler::Stop(Profile* out) {
#if WARPINDEX_PROFILER_SUPPORTED
  std::lock_guard<std::mutex> lock(mu_);
  if (!g_enabled.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("no CPU profile is running");
  }
  const double duration_s = WallNowSeconds() - started_wall_;

  // Disarm: gate off first (new signals become no-ops), then tear down
  // the timer, then drain in-flight handler invocations. After the
  // drain every claimed slot below `next` is fully written.
  g_enabled.store(false, std::memory_order_release);
  timer_delete(g_timer);
  sigaction(SIGPROF, &g_old_action, nullptr);
  while (g_writers.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  SampleBuffer* buffer = g_buffer.exchange(nullptr,
                                           std::memory_order_acq_rel);

  *out = Profile();
  out->hz = hz_;
  out->duration_s = duration_s;
  const size_t captured =
      std::min(buffer->next.load(std::memory_order_acquire),
               buffer->capacity);
  out->samples = static_cast<uint64_t>(captured);
  out->dropped = buffer->dropped.load(std::memory_order_acquire);

  // Symbolize each unique PC once (leaf PCs as-is; return addresses
  // shifted back one byte to land inside the caller).
  std::map<uintptr_t, std::string> names;
  std::map<std::string, uint64_t> counts;
  std::string stack;
  for (size_t i = 0; i < captured; ++i) {
    const Sample& sample = buffer->samples[i];
    stack.clear();
    stack += sample.tag[0] != '\0' ? sample.tag : "thread";
    // pcs are leaf-first; folded stacks read root-first.
    for (size_t d = sample.depth; d-- > 0;) {
      const uintptr_t raw = sample.pcs[d];
      const uintptr_t lookup = d == 0 ? raw : raw - 1;
      auto it = names.find(lookup);
      if (it == names.end()) {
        it = names.emplace(lookup, SanitizeFrame(Symbolize(lookup))).first;
      }
      stack += ';';
      stack += it->second;
    }
    counts[stack] += 1;
  }
  out->folded.assign(counts.begin(), counts.end());

  delete[] buffer->samples;
  delete buffer;
  return Status::Ok();
#else
  (void)out;
  return Status::FailedPrecondition(
      "the sampling CPU profiler requires Linux on x86-64 or aarch64");
#endif
}

Status CpuProfiler::Collect(double seconds, int hz, Profile* out) {
  if (!(seconds > 0.0) || seconds > 120.0) {
    return Status::InvalidArgument("seconds must be in (0, 120]");
  }
  if (hz < 1 || hz > 1000) {
    return Status::InvalidArgument("hz must be in [1, 1000]");
  }
  ProfileOptions options;
  options.hz = hz;
  WARPINDEX_RETURN_IF_ERROR(Start(options));
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  return Stop(out);
}

}  // namespace warpindex
