#include "obs/exporters.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace warpindex {
namespace {

// Shortest round-trippable representation; JSON has no Inf/NaN, so those
// degrade to null.
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) {
    return "null";
  }
  // Shortest string over all precisions that still round-trips ("%.1g"
  // of 10 is "1e+01", but "%.2g" gives the shorter "10").
  char best[64];
  std::snprintf(best, sizeof(best), "%.17g", v);
  for (int precision = 1; precision < 17; ++precision) {
    char candidate[64];
    std::snprintf(candidate, sizeof(candidate), "%.*g", precision, v);
    if (std::strtod(candidate, nullptr) == v) {
      if (std::strlen(candidate) < std::strlen(best)) {
        std::memcpy(best, candidate, std::strlen(candidate) + 1);
      }
    }
  }
  return best;
}

void AppendCounterObject(
    const std::vector<std::pair<std::string, double>>& counters,
    std::string* out) {
  out->push_back('{');
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) {
      out->push_back(',');
    }
    first = false;
    out->append(JsonEscape(name));
    out->push_back(':');
    out->append(JsonNumber(value));
  }
  out->push_back('}');
}

}  // namespace

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"':
        out.append("\\\"");
        break;
      case '\\':
        out.append("\\\\");
        break;
      case '\n':
        out.append("\\n");
        break;
      case '\r':
        out.append("\\r");
        break;
      case '\t':
        out.append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned char>(c));
          out.append(buf);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string PrometheusEscapeHelp(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\':
        out.append("\\\\");
        break;
      case '\n':
        out.append("\\n");
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string PrometheusEscapeLabelValue(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\':
        out.append("\\\\");
        break;
      case '"':
        out.append("\\\"");
        break;
      case '\n':
        out.append("\\n");
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string TraceToJsonLines(const Trace& trace, int64_t query_id) {
  std::string out;
  const std::vector<TraceSpan>& spans = trace.spans();
  for (size_t i = 0; i < spans.size(); ++i) {
    const TraceSpan& span = spans[i];
    out.push_back('{');
    if (query_id >= 0) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "\"query\":%" PRId64 ",", query_id);
      out.append(buf);
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "\"span\":%zu,\"parent\":%d,", i,
                  span.parent);
    out.append(buf);
    out.append("\"name\":");
    out.append(JsonEscape(span.name));
    out.append(",\"start_ms\":");
    out.append(JsonNumber(span.start_ms));
    out.append(",\"duration_ms\":");
    out.append(JsonNumber(span.duration_ms));
    if (!span.counters.empty()) {
      out.append(",\"counters\":");
      AppendCounterObject(span.counters, &out);
    }
    out.append("}\n");
  }
  return out;
}

Status AppendTraceJsonLines(const Trace& trace, const std::string& path,
                            int64_t query_id) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Status::IoError("cannot open trace file " + path);
  }
  const std::string lines = TraceToJsonLines(trace, query_id);
  const bool ok =
      lines.empty() ||
      std::fwrite(lines.data(), 1, lines.size(), f) == lines.size();
  std::fclose(f);
  return ok ? Status::Ok()
            : Status::IoError("short write to trace file " + path);
}

std::string MetricsToPrometheusText(
    const MetricsRegistry::Snapshot& snapshot) {
  std::string out;
  for (const auto& counter : snapshot.counters) {
    if (!counter.help.empty()) {
      out.append("# HELP " + counter.name + " " +
                 PrometheusEscapeHelp(counter.help) + "\n");
    }
    out.append("# TYPE " + counter.name + " counter\n");
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, counter.value);
    out.append(counter.name + " " + buf + "\n");
  }
  for (const auto& gauge : snapshot.gauges) {
    if (!gauge.help.empty()) {
      out.append("# HELP " + gauge.name + " " +
                 PrometheusEscapeHelp(gauge.help) + "\n");
    }
    out.append("# TYPE " + gauge.name + " gauge\n");
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, gauge.value);
    out.append(gauge.name + " " + buf + "\n");
  }
  for (const auto& hist : snapshot.histograms) {
    if (!hist.help.empty()) {
      out.append("# HELP " + hist.name + " " +
                 PrometheusEscapeHelp(hist.help) + "\n");
    }
    out.append("# TYPE " + hist.name + " histogram\n");
    const Histogram::Snapshot& s = hist.snapshot;
    uint64_t cumulative = 0;
    for (size_t i = 0; i < s.boundaries.size(); ++i) {
      cumulative += s.bucket_counts[i];
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%" PRIu64, cumulative);
      out.append(hist.name + "_bucket{le=\"" +
                 PrometheusEscapeLabelValue(JsonNumber(s.boundaries[i])) +
                 "\"} " + buf + "\n");
    }
    cumulative += s.bucket_counts.back();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, cumulative);
    out.append(hist.name + "_bucket{le=\"+Inf\"} " + std::string(buf) +
               "\n");
    out.append(hist.name + "_sum " + JsonNumber(s.stats.sum()) + "\n");
    std::snprintf(buf, sizeof(buf), "%" PRIu64,
                  static_cast<uint64_t>(s.stats.count()));
    out.append(hist.name + "_count " + buf + "\n");
  }
  return out;
}

std::string MetricsToJson(const MetricsRegistry::Snapshot& snapshot) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& counter : snapshot.counters) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, counter.value);
    out.append(JsonEscape(counter.name) + ":" + buf);
  }
  out.append("},\"gauges\":{");
  first = true;
  for (const auto& gauge : snapshot.gauges) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, gauge.value);
    out.append(JsonEscape(gauge.name) + ":" + buf);
  }
  out.append("},\"histograms\":{");
  first = true;
  for (const auto& hist : snapshot.histograms) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    const Histogram::Snapshot& s = hist.snapshot;
    out.append(JsonEscape(hist.name) + ":{");
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64,
                  static_cast<uint64_t>(s.stats.count()));
    out.append("\"count\":" + std::string(buf));
    out.append(",\"sum\":" + JsonNumber(s.stats.sum()));
    out.append(",\"mean\":" + JsonNumber(s.stats.mean()));
    out.append(",\"min\":" +
               JsonNumber(s.stats.count() == 0 ? 0.0 : s.stats.min()));
    out.append(",\"max\":" +
               JsonNumber(s.stats.count() == 0 ? 0.0 : s.stats.max()));
    out.append(",\"stddev\":" + JsonNumber(s.stats.stddev()));
    out.append(",\"p50\":" + JsonNumber(s.EstimatePercentile(0.5)));
    out.append(",\"p99\":" + JsonNumber(s.EstimatePercentile(0.99)));
    out.append(",\"p999\":" + JsonNumber(s.EstimatePercentile(0.999)));
    out.append(",\"boundaries\":[");
    for (size_t i = 0; i < s.boundaries.size(); ++i) {
      if (i > 0) {
        out.push_back(',');
      }
      out.append(JsonNumber(s.boundaries[i]));
    }
    out.append("],\"bucket_counts\":[");
    for (size_t i = 0; i < s.bucket_counts.size(); ++i) {
      if (i > 0) {
        out.push_back(',');
      }
      std::snprintf(buf, sizeof(buf), "%" PRIu64, s.bucket_counts[i]);
      out.append(buf);
    }
    out.append("]}");
  }
  out.append("}}");
  return out;
}

std::string FlightRecordToJson(const FlightRecord& record) {
  char buf[48];
  std::string out = "{";
  std::snprintf(buf, sizeof(buf), "%" PRIu64, record.seq);
  out.append("\"seq\":" + std::string(buf));
  out.append(",\"timestamp_ms\":" + JsonNumber(record.timestamp_ms));
  out.append(",\"method\":" + JsonEscape(record.method));
  out.append(",\"epsilon\":" + JsonNumber(record.epsilon));
  out.append(",\"query_length\":" + std::to_string(record.query_length));
  out.append(",\"matches\":" + std::to_string(record.matches));
  out.append(",\"num_candidates\":" +
             std::to_string(record.num_candidates));
  out.append(",\"wall_ms\":" + JsonNumber(record.wall_ms));
  std::snprintf(buf, sizeof(buf), "%" PRIu64, record.dtw_evals);
  out.append(",\"dtw_evals\":" + std::string(buf));
  std::snprintf(buf, sizeof(buf), "%" PRIu64, record.dtw_cells);
  out.append(",\"dtw_cells\":" + std::string(buf));
  std::snprintf(buf, sizeof(buf), "%" PRIu64, record.index_nodes);
  out.append(",\"index_nodes\":" + std::string(buf));
  std::snprintf(buf, sizeof(buf), "%" PRIu64, record.pool_hits);
  out.append(",\"pool_hits\":" + std::string(buf));
  std::snprintf(buf, sizeof(buf), "%" PRIu64, record.pool_misses);
  out.append(",\"pool_misses\":" + std::string(buf));
  out.append(",\"shard\":" + std::to_string(record.shard));
  out.append(",\"stages_ms\":{");
  bool first = true;
  for (const auto& [stage, ms] : record.stage_ms.entries()) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    out.append(JsonEscape(stage) + ":" + JsonNumber(ms));
  }
  out.append("},\"prunes\":{");
  first = true;
  for (const auto& [stage, counts] : record.prunes.entries()) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    std::snprintf(buf, sizeof(buf), "%" PRIu64, counts.in);
    out.append(JsonEscape(stage) + ":{\"in\":" + std::string(buf));
    std::snprintf(buf, sizeof(buf), "%" PRIu64, counts.pruned);
    out.append(",\"pruned\":" + std::string(buf) + "}");
  }
  out.append("}}");
  return out;
}

std::string FlightRecordsToJson(
    const std::vector<FlightRecord>& records) {
  std::string out =
      "{\"count\":" + std::to_string(records.size()) + ",\"records\":[";
  for (size_t i = 0; i < records.size(); ++i) {
    if (i > 0) {
      out.push_back(',');
    }
    out.append(FlightRecordToJson(records[i]));
  }
  out.append("]}");
  return out;
}

}  // namespace warpindex
