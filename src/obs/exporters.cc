#include "obs/exporters.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <utility>

#if defined(__linux__)
#include <dirent.h>
#include <unistd.h>
#endif

namespace warpindex {
namespace {

// Shortest round-trippable representation; JSON has no Inf/NaN, so those
// degrade to null.
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) {
    return "null";
  }
  // Shortest string over all precisions that still round-trips ("%.1g"
  // of 10 is "1e+01", but "%.2g" gives the shorter "10").
  char best[64];
  std::snprintf(best, sizeof(best), "%.17g", v);
  for (int precision = 1; precision < 17; ++precision) {
    char candidate[64];
    std::snprintf(candidate, sizeof(candidate), "%.*g", precision, v);
    if (std::strtod(candidate, nullptr) == v) {
      if (std::strlen(candidate) < std::strlen(best)) {
        std::memcpy(best, candidate, std::strlen(candidate) + 1);
      }
    }
  }
  return best;
}

void AppendCounterObject(
    const std::vector<std::pair<std::string, double>>& counters,
    std::string* out) {
  out->push_back('{');
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) {
      out->push_back(',');
    }
    first = false;
    out->append(JsonEscape(name));
    out->push_back(':');
    out->append(JsonNumber(value));
  }
  out->push_back('}');
}

// The shared span-object body of TraceToJsonLines and TraceToJsonArray.
void AppendSpanObject(const TraceSpan& span, size_t index,
                      std::string* out) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"span\":%zu,\"parent\":%d,", index,
                span.parent);
  out->append(buf);
  out->append("\"name\":");
  out->append(JsonEscape(span.name));
  out->append(",\"start_ms\":");
  out->append(JsonNumber(span.start_ms));
  out->append(",\"duration_ms\":");
  out->append(JsonNumber(span.duration_ms));
  out->append(",\"cpu_ms\":");
  out->append(JsonNumber(span.cpu_ms));
  if (span.shard >= 0 || span.tid > 0) {
    std::snprintf(buf, sizeof(buf), ",\"shard\":%d,\"tid\":%u",
                  span.shard, span.tid);
    out->append(buf);
  }
  if (!span.counters.empty()) {
    out->append(",\"counters\":");
    AppendCounterObject(span.counters, out);
  }
}

// Perfetto lane mapping: one pid per shard (pid 0 = unsharded / the
// merging layer), tid straight from the span tag.
int EventPid(const TraceSpan& span) { return span.shard + 1; }

}  // namespace

BuildInfo GetBuildInfo() {
  BuildInfo info;
  info.version = kWarpIndexVersion;
#if defined(__VERSION__)
  info.compiler = __VERSION__;
#else
  info.compiler = "unknown";
#endif
#if defined(NDEBUG)
  info.build_type = "optimized";
#else
  info.build_type = "debug";
#endif
  return info;
}

ProcessSelfMetrics CollectProcessSelfMetrics() {
  ProcessSelfMetrics metrics;
#if defined(__linux__)
  // /proc/self/stat: pid (comm) state ppid ... utime(14) stime(15) ...
  // starttime(22) ... rss(24). comm may contain spaces, so parse from the
  // last ')'.
  std::FILE* f = std::fopen("/proc/self/stat", "rb");
  if (f == nullptr) {
    return metrics;
  }
  char buf[1024];
  const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  buf[n] = '\0';
  const char* rest = std::strrchr(buf, ')');
  if (rest == nullptr) {
    return metrics;
  }
  ++rest;  // fields from index 3 (state) onward
  unsigned long long utime = 0;
  unsigned long long stime = 0;
  unsigned long long starttime = 0;
  long long rss_pages = 0;
  {
    // Walk the space-separated fields; `rest` starts before field 3.
    int field = 2;
    const char* cursor = rest;
    while (*cursor != '\0' && field < 24) {
      while (*cursor == ' ') {
        ++cursor;
      }
      ++field;
      char* end = nullptr;
      if (field == 14) {
        utime = std::strtoull(cursor, &end, 10);
      } else if (field == 15) {
        stime = std::strtoull(cursor, &end, 10);
      } else if (field == 22) {
        starttime = std::strtoull(cursor, &end, 10);
      } else if (field == 24) {
        rss_pages = std::strtoll(cursor, &end, 10);
      }
      while (*cursor != '\0' && *cursor != ' ') {
        ++cursor;
      }
      (void)end;
    }
    if (field < 24) {
      return metrics;
    }
  }
  const double ticks =
      static_cast<double>(std::max(1L, sysconf(_SC_CLK_TCK)));
  const double page_bytes =
      static_cast<double>(std::max(1L, sysconf(_SC_PAGESIZE)));
  metrics.cpu_seconds_total =
      (static_cast<double>(utime) + static_cast<double>(stime)) / ticks;
  metrics.resident_memory_bytes =
      static_cast<double>(rss_pages) * page_bytes;
  // Boot time (unix epoch) + starttime (ticks since boot) = start time.
  double btime = 0.0;
  if (std::FILE* stat = std::fopen("/proc/stat", "rb")) {
    char line[256];
    while (std::fgets(line, sizeof(line), stat) != nullptr) {
      unsigned long long value = 0;
      if (std::sscanf(line, "btime %llu", &value) == 1) {
        btime = static_cast<double>(value);
        break;
      }
    }
    std::fclose(stat);
  }
  metrics.start_time_seconds =
      btime + static_cast<double>(starttime) / ticks;
  // Open fds: entries under /proc/self/fd minus "." and "..".
  if (DIR* dir = opendir("/proc/self/fd")) {
    int64_t count = 0;
    while (readdir(dir) != nullptr) {
      ++count;
    }
    closedir(dir);
    metrics.open_fds = std::max<int64_t>(0, count - 2);
  }
  metrics.valid = true;
#endif
  return metrics;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"':
        out.append("\\\"");
        break;
      case '\\':
        out.append("\\\\");
        break;
      case '\n':
        out.append("\\n");
        break;
      case '\r':
        out.append("\\r");
        break;
      case '\t':
        out.append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned char>(c));
          out.append(buf);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string PrometheusEscapeHelp(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\':
        out.append("\\\\");
        break;
      case '\n':
        out.append("\\n");
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string PrometheusEscapeLabelValue(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\':
        out.append("\\\\");
        break;
      case '"':
        out.append("\\\"");
        break;
      case '\n':
        out.append("\\n");
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string TraceIdHex(uint64_t trace_id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, trace_id);
  return buf;
}

uint64_t ParseTraceIdHex(const std::string& hex) {
  if (hex.empty() || hex.size() > 16) {
    return 0;
  }
  uint64_t value = 0;
  for (const char c : hex) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      value |= static_cast<uint64_t>(c - 'A' + 10);
    } else {
      return 0;
    }
  }
  return value;
}

std::string TraceToJsonLines(const Trace& trace, int64_t query_id) {
  std::string out;
  const std::vector<TraceSpan>& spans = trace.spans();
  for (size_t i = 0; i < spans.size(); ++i) {
    out.push_back('{');
    if (query_id >= 0) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "\"query\":%" PRId64 ",", query_id);
      out.append(buf);
    }
    AppendSpanObject(spans[i], i, &out);
    out.append("}\n");
  }
  return out;
}

std::string TraceToJsonArray(const Trace& trace) {
  std::string out = "[";
  const std::vector<TraceSpan>& spans = trace.spans();
  for (size_t i = 0; i < spans.size(); ++i) {
    if (i > 0) {
      out.push_back(',');
    }
    out.push_back('{');
    AppendSpanObject(spans[i], i, &out);
    out.push_back('}');
  }
  out.push_back(']');
  return out;
}

Status AppendTraceJsonLines(const Trace& trace, const std::string& path,
                            int64_t query_id) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Status::IoError("cannot open trace file " + path);
  }
  const std::string lines = TraceToJsonLines(trace, query_id);
  const bool ok =
      lines.empty() ||
      std::fwrite(lines.data(), 1, lines.size(), f) == lines.size();
  std::fclose(f);
  return ok ? Status::Ok()
            : Status::IoError("short write to trace file " + path);
}

std::string TraceEventsJson(const std::vector<const Trace*>& traces) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto append_event = [&out, &first](const std::string& event) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    out.append(event);
  };

  // Name the lanes once across all traces: every distinct pid gets a
  // process_name, every (pid, tid) a thread_name.
  std::set<int> pids;
  std::set<std::pair<int, uint32_t>> lanes;
  for (const Trace* trace : traces) {
    if (trace == nullptr) {
      continue;
    }
    for (const TraceSpan& span : trace->spans()) {
      pids.insert(EventPid(span));
      lanes.insert({EventPid(span), span.tid});
    }
  }
  for (const int pid : pids) {
    const std::string name =
        pid == 0 ? std::string("query") : "shard " + std::to_string(pid - 1);
    append_event("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" +
                 std::to_string(pid) + ",\"tid\":0,\"args\":{\"name\":" +
                 JsonEscape(name) + "}}");
  }
  for (const auto& [pid, tid] : lanes) {
    const std::string name =
        tid == 0 ? std::string("caller")
                 : "worker " + std::to_string(tid - 1);
    append_event("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" +
                 std::to_string(pid) + ",\"tid\":" + std::to_string(tid) +
                 ",\"args\":{\"name\":" + JsonEscape(name) + "}}");
  }

  // Lay consecutive traces out left to right: each trace is shifted past
  // the previous one's extent so a store snapshot reads as one session.
  double offset_ms = 0.0;
  for (const Trace* trace : traces) {
    if (trace == nullptr) {
      continue;
    }
    double extent_ms = 0.0;
    for (const TraceSpan& span : trace->spans()) {
      extent_ms = std::max(extent_ms, span.start_ms + span.duration_ms);
      std::string event = "{\"name\":";
      event += JsonEscape(span.name);
      event += ",\"cat\":\"query\",\"ph\":\"X\",\"ts\":";
      event += JsonNumber((offset_ms + span.start_ms) * 1000.0);
      event += ",\"dur\":";
      event += JsonNumber(span.duration_ms * 1000.0);
      event += ",\"pid\":" + std::to_string(EventPid(span));
      event += ",\"tid\":" + std::to_string(span.tid);
      event += ",\"args\":{\"trace_id\":";
      event += JsonEscape(TraceIdHex(trace->trace_id()));
      event += ",\"cpu_ms\":";
      event += JsonNumber(span.cpu_ms);
      for (const auto& [name, value] : span.counters) {
        event.push_back(',');
        event += JsonEscape(name);
        event.push_back(':');
        event += JsonNumber(value);
      }
      event += "}}";
      append_event(event);
    }
    offset_ms += extent_ms + 1.0;  // 1 ms gutter between traces
  }
  out.append("]}");
  return out;
}

Status WriteTraceEventsFile(const std::vector<const Trace*>& traces,
                            const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open trace-events file " + path);
  }
  const std::string doc = TraceEventsJson(traces) + "\n";
  const bool ok =
      std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  std::fclose(f);
  return ok ? Status::Ok()
            : Status::IoError("short write to trace-events file " + path);
}

std::string MetricsToPrometheusText(
    const MetricsRegistry::Snapshot& snapshot,
    const BuildInfo* build_info,
    const ProcessSelfMetrics* process) {
  std::string out;
  if (build_info != nullptr) {
    out.append(
        "# HELP warpindex_build_info Build metadata; the value is always "
        "1\n");
    out.append("# TYPE warpindex_build_info gauge\n");
    out.append("warpindex_build_info{version=\"" +
               PrometheusEscapeLabelValue(build_info->version) +
               "\",compiler=\"" +
               PrometheusEscapeLabelValue(build_info->compiler) +
               "\",build_type=\"" +
               PrometheusEscapeLabelValue(build_info->build_type) +
               "\"} 1\n");
  }
  for (const auto& counter : snapshot.counters) {
    if (!counter.help.empty()) {
      out.append("# HELP " + counter.name + " " +
                 PrometheusEscapeHelp(counter.help) + "\n");
    }
    out.append("# TYPE " + counter.name + " counter\n");
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, counter.value);
    out.append(counter.name + " " + buf + "\n");
  }
  for (const auto& gauge : snapshot.gauges) {
    if (!gauge.help.empty()) {
      out.append("# HELP " + gauge.name + " " +
                 PrometheusEscapeHelp(gauge.help) + "\n");
    }
    out.append("# TYPE " + gauge.name + " gauge\n");
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, gauge.value);
    out.append(gauge.name + " " + buf + "\n");
  }
  for (const auto& hist : snapshot.histograms) {
    if (!hist.help.empty()) {
      out.append("# HELP " + hist.name + " " +
                 PrometheusEscapeHelp(hist.help) + "\n");
    }
    out.append("# TYPE " + hist.name + " histogram\n");
    const Histogram::Snapshot& s = hist.snapshot;
    uint64_t cumulative = 0;
    for (size_t i = 0; i < s.boundaries.size(); ++i) {
      cumulative += s.bucket_counts[i];
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%" PRIu64, cumulative);
      out.append(hist.name + "_bucket{le=\"" +
                 PrometheusEscapeLabelValue(JsonNumber(s.boundaries[i])) +
                 "\"} " + buf + "\n");
    }
    cumulative += s.bucket_counts.back();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, cumulative);
    out.append(hist.name + "_bucket{le=\"+Inf\"} " + std::string(buf) +
               "\n");
    out.append(hist.name + "_sum " + JsonNumber(s.stats.sum()) + "\n");
    std::snprintf(buf, sizeof(buf), "%" PRIu64,
                  static_cast<uint64_t>(s.stats.count()));
    out.append(hist.name + "_count " + buf + "\n");
    // Estimated-quantile gauges alongside the native histogram, for
    // dashboards without native-histogram/quantile support.
    const struct {
      const char* suffix;
      double p;
    } quantiles[] = {{"_p50", 0.5}, {"_p99", 0.99}, {"_p999", 0.999}};
    for (const auto& q : quantiles) {
      out.append("# TYPE " + hist.name + q.suffix + " gauge\n");
      out.append(hist.name + q.suffix + " " +
                 JsonNumber(s.EstimatePercentile(q.p)) + "\n");
    }
  }
  if (process != nullptr && process->valid) {
    out.append(
        "# HELP process_cpu_seconds_total Total user and system CPU time "
        "spent in seconds\n");
    out.append("# TYPE process_cpu_seconds_total counter\n");
    out.append("process_cpu_seconds_total " +
               JsonNumber(process->cpu_seconds_total) + "\n");
    out.append(
        "# HELP process_resident_memory_bytes Resident memory size in "
        "bytes\n");
    out.append("# TYPE process_resident_memory_bytes gauge\n");
    out.append("process_resident_memory_bytes " +
               JsonNumber(process->resident_memory_bytes) + "\n");
    out.append(
        "# HELP process_open_fds Number of open file descriptors\n");
    out.append("# TYPE process_open_fds gauge\n");
    out.append("process_open_fds " + std::to_string(process->open_fds) +
               "\n");
    out.append(
        "# HELP process_start_time_seconds Start time of the process "
        "since unix epoch in seconds\n");
    out.append("# TYPE process_start_time_seconds gauge\n");
    out.append("process_start_time_seconds " +
               JsonNumber(process->start_time_seconds) + "\n");
  }
  return out;
}

std::string MetricsToJson(const MetricsRegistry::Snapshot& snapshot,
                          const BuildInfo* build_info,
                          const ProcessSelfMetrics* process) {
  std::string out = "{";
  if (build_info != nullptr) {
    out.append("\"build_info\":{\"version\":" +
               JsonEscape(build_info->version));
    out.append(",\"compiler\":" + JsonEscape(build_info->compiler));
    out.append(",\"build_type\":" + JsonEscape(build_info->build_type) +
               "},");
  }
  if (process != nullptr && process->valid) {
    out.append("\"process\":{\"cpu_seconds_total\":" +
               JsonNumber(process->cpu_seconds_total));
    out.append(",\"resident_memory_bytes\":" +
               JsonNumber(process->resident_memory_bytes));
    out.append(",\"open_fds\":" + std::to_string(process->open_fds));
    out.append(",\"start_time_seconds\":" +
               JsonNumber(process->start_time_seconds) + "},");
  }
  out.append("\"counters\":{");
  bool first = true;
  for (const auto& counter : snapshot.counters) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, counter.value);
    out.append(JsonEscape(counter.name) + ":" + buf);
  }
  out.append("},\"gauges\":{");
  first = true;
  for (const auto& gauge : snapshot.gauges) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, gauge.value);
    out.append(JsonEscape(gauge.name) + ":" + buf);
  }
  out.append("},\"histograms\":{");
  first = true;
  for (const auto& hist : snapshot.histograms) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    const Histogram::Snapshot& s = hist.snapshot;
    out.append(JsonEscape(hist.name) + ":{");
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64,
                  static_cast<uint64_t>(s.stats.count()));
    out.append("\"count\":" + std::string(buf));
    out.append(",\"sum\":" + JsonNumber(s.stats.sum()));
    out.append(",\"mean\":" + JsonNumber(s.stats.mean()));
    out.append(",\"min\":" +
               JsonNumber(s.stats.count() == 0 ? 0.0 : s.stats.min()));
    out.append(",\"max\":" +
               JsonNumber(s.stats.count() == 0 ? 0.0 : s.stats.max()));
    out.append(",\"stddev\":" + JsonNumber(s.stats.stddev()));
    out.append(",\"p50\":" + JsonNumber(s.EstimatePercentile(0.5)));
    out.append(",\"p99\":" + JsonNumber(s.EstimatePercentile(0.99)));
    out.append(",\"p999\":" + JsonNumber(s.EstimatePercentile(0.999)));
    out.append(",\"boundaries\":[");
    for (size_t i = 0; i < s.boundaries.size(); ++i) {
      if (i > 0) {
        out.push_back(',');
      }
      out.append(JsonNumber(s.boundaries[i]));
    }
    out.append("],\"bucket_counts\":[");
    for (size_t i = 0; i < s.bucket_counts.size(); ++i) {
      if (i > 0) {
        out.push_back(',');
      }
      std::snprintf(buf, sizeof(buf), "%" PRIu64, s.bucket_counts[i]);
      out.append(buf);
    }
    out.append("]}");
  }
  out.append("}}");
  return out;
}

std::string FlightRecordToJson(const FlightRecord& record) {
  char buf[48];
  std::string out = "{";
  std::snprintf(buf, sizeof(buf), "%" PRIu64, record.seq);
  out.append("\"seq\":" + std::string(buf));
  out.append(",\"timestamp_ms\":" + JsonNumber(record.timestamp_ms));
  out.append(",\"trace_id\":" +
             (record.trace_id == 0
                  ? std::string("null")
                  : JsonEscape(TraceIdHex(record.trace_id))));
  out.append(",\"method\":" + JsonEscape(record.method));
  out.append(",\"epsilon\":" + JsonNumber(record.epsilon));
  out.append(",\"query_length\":" + std::to_string(record.query_length));
  out.append(",\"matches\":" + std::to_string(record.matches));
  out.append(",\"num_candidates\":" +
             std::to_string(record.num_candidates));
  out.append(",\"wall_ms\":" + JsonNumber(record.wall_ms));
  out.append(",\"cpu_ms\":" + JsonNumber(record.cpu_ms));
  std::snprintf(buf, sizeof(buf), "%" PRIu64, record.dtw_evals);
  out.append(",\"dtw_evals\":" + std::string(buf));
  std::snprintf(buf, sizeof(buf), "%" PRIu64, record.dtw_cells);
  out.append(",\"dtw_cells\":" + std::string(buf));
  std::snprintf(buf, sizeof(buf), "%" PRIu64, record.index_nodes);
  out.append(",\"index_nodes\":" + std::string(buf));
  std::snprintf(buf, sizeof(buf), "%" PRIu64, record.pool_hits);
  out.append(",\"pool_hits\":" + std::string(buf));
  std::snprintf(buf, sizeof(buf), "%" PRIu64, record.pool_misses);
  out.append(",\"pool_misses\":" + std::string(buf));
  out.append(",\"shard\":" + std::to_string(record.shard));
  out.append(",\"replica\":" + std::to_string(record.replica));
  out.append(",\"net_hedges\":" + std::to_string(record.net_hedges));
  out.append(",\"net_retries\":" + std::to_string(record.net_retries));
  out.append(",\"cache_hit\":\"" +
             std::string(CacheTierName(record.cache_hit)) + "\"");
  out.append(",\"stages_ms\":{");
  bool first = true;
  for (const auto& [stage, ms] : record.stage_ms.entries()) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    out.append(JsonEscape(stage) + ":" + JsonNumber(ms));
  }
  out.append("},\"stages_cpu_ms\":{");
  first = true;
  for (const auto& [stage, ms] : record.stage_cpu_ms.entries()) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    out.append(JsonEscape(stage) + ":" + JsonNumber(ms));
  }
  out.append("},\"prunes\":{");
  first = true;
  for (const auto& [stage, counts] : record.prunes.entries()) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    std::snprintf(buf, sizeof(buf), "%" PRIu64, counts.in);
    out.append(JsonEscape(stage) + ":{\"in\":" + std::string(buf));
    std::snprintf(buf, sizeof(buf), "%" PRIu64, counts.pruned);
    out.append(",\"pruned\":" + std::string(buf) + "}");
  }
  out.append("}}");
  return out;
}

std::string FlightRecordsToJson(
    const std::vector<FlightRecord>& records) {
  std::string out =
      "{\"count\":" + std::to_string(records.size()) + ",\"records\":[";
  for (size_t i = 0; i < records.size(); ++i) {
    if (i > 0) {
      out.push_back(',');
    }
    out.append(FlightRecordToJson(records[i]));
  }
  out.append("]}");
  return out;
}

}  // namespace warpindex
