#include "obs/trace_store.h"

#include <algorithm>

namespace warpindex {
namespace {

size_t PickStripes(size_t requested, size_t capacity) {
  if (requested > 0) {
    return std::min(requested, capacity);
  }
  return std::min<size_t>(8, capacity);
}

// SplitMix64 finalizer; the tail-sampling coin must be cheap, lock-free,
// and deterministic per (seed, offer index).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double UniformFromBits(uint64_t bits) {
  // 53 high bits -> [0, 1).
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

const char* TraceKeepName(TraceKeep keep) {
  switch (keep) {
    case TraceKeep::kNone:
      return "none";
    case TraceKeep::kSlow:
      return "slow";
    case TraceKeep::kError:
      return "error";
    case TraceKeep::kShardSkew:
      return "shard_skew";
    case TraceKeep::kSampled:
      return "sampled";
  }
  return "unknown";
}

TraceStore::TraceStore(TraceStoreOptions options)
    : options_(options),
      capacity_(std::max<size_t>(1, options.capacity)),
      origin_(std::chrono::steady_clock::now()),
      slots_(capacity_),
      stripes_(PickStripes(options.num_stripes, capacity_)) {
  if (options_.head_sample_every == 0) {
    options_.head_sample_every = 1;
  }
}

bool TraceStore::ShouldTrace() {
  const uint64_t n = head_counter_.fetch_add(1, std::memory_order_relaxed);
  return options_.head_sample_every <= 1 ||
         n % options_.head_sample_every == 0;
}

double TraceStore::ShardSkewRatio(const Trace& trace) {
  double max_ms = 0.0;
  double total_ms = 0.0;
  size_t shards = 0;
  for (const TraceSpan& span : trace.spans()) {
    if (span.name == "shard") {
      max_ms = std::max(max_ms, span.duration_ms);
      total_ms += span.duration_ms;
      ++shards;
    }
  }
  if (shards < 2 || total_ms <= 0.0) {
    return 0.0;
  }
  return max_ms / (total_ms / static_cast<double>(shards));
}

TraceKeep TraceStore::Classify(const CompletedTrace& trace) {
  if (options_.slow_ms > 0.0 && trace.wall_ms >= options_.slow_ms) {
    return TraceKeep::kSlow;
  }
  if (trace.errored) {
    return TraceKeep::kError;
  }
  if (options_.skew_ratio > 1.0 &&
      ShardSkewRatio(trace.trace) >= options_.skew_ratio) {
    return TraceKeep::kShardSkew;
  }
  if (options_.sample_probability > 0.0) {
    const uint64_t n =
        coin_counter_.fetch_add(1, std::memory_order_relaxed);
    if (UniformFromBits(Mix64(options_.seed ^ n)) <
        options_.sample_probability) {
      return TraceKeep::kSampled;
    }
  }
  return TraceKeep::kNone;
}

TraceKeep TraceStore::Offer(CompletedTrace trace) {
  offered_.fetch_add(1, std::memory_order_relaxed);
  const TraceKeep keep = Classify(trace);
  if (keep == TraceKeep::kNone) {
    return keep;  // dropped before touching any lock
  }
  switch (keep) {
    case TraceKeep::kSlow:
      kept_slow_.fetch_add(1, std::memory_order_relaxed);
      break;
    case TraceKeep::kError:
      kept_error_.fetch_add(1, std::memory_order_relaxed);
      break;
    case TraceKeep::kShardSkew:
      kept_skew_.fetch_add(1, std::memory_order_relaxed);
      break;
    case TraceKeep::kSampled:
      kept_sampled_.fetch_add(1, std::memory_order_relaxed);
      break;
    case TraceKeep::kNone:
      break;
  }
  const uint64_t seq = kept_.fetch_add(1, std::memory_order_relaxed) + 1;
  trace.seq = seq;
  trace.timestamp_ms = ElapsedMillis();
  trace.keep = keep;
  const size_t slot = static_cast<size_t>((seq - 1) % capacity_);
  Stripe& stripe = stripes_[slot % stripes_.size()];
  std::lock_guard<std::mutex> lock(stripe.mu);
  slots_[slot] = std::move(trace);
  return keep;
}

std::vector<CompletedTrace> TraceStore::Snapshot() const {
  std::vector<CompletedTrace> out;
  out.reserve(capacity_);
  // One stripe at a time (writers on other stripes keep flowing); sorting
  // by seq afterwards restores a coherent oldest-first view.
  for (size_t s = 0; s < stripes_.size(); ++s) {
    std::lock_guard<std::mutex> lock(stripes_[s].mu);
    for (size_t slot = s; slot < capacity_; slot += stripes_.size()) {
      if (slots_[slot].seq != 0) {
        out.push_back(slots_[slot]);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const CompletedTrace& a, const CompletedTrace& b) {
              return a.seq < b.seq;
            });
  return out;
}

bool TraceStore::Find(uint64_t trace_id, CompletedTrace* out) const {
  bool found = false;
  uint64_t best_seq = 0;
  for (size_t s = 0; s < stripes_.size(); ++s) {
    std::lock_guard<std::mutex> lock(stripes_[s].mu);
    for (size_t slot = s; slot < capacity_; slot += stripes_.size()) {
      const CompletedTrace& candidate = slots_[slot];
      if (candidate.seq != 0 &&
          candidate.trace.trace_id() == trace_id &&
          candidate.seq > best_seq) {
        *out = candidate;
        best_seq = candidate.seq;
        found = true;
      }
    }
  }
  return found;
}

}  // namespace warpindex
