#include "obs/stage_counters.h"

namespace warpindex {

void StageCounters::Record(std::string_view stage, uint64_t in,
                           uint64_t pruned) {
  for (auto& [name, counts] : entries_) {
    if (name == stage) {
      counts.in += in;
      counts.pruned += pruned;
      return;
    }
  }
  entries_.emplace_back(std::string(stage), StageCounts{in, pruned});
}

StageCounts StageCounters::Get(std::string_view stage) const {
  for (const auto& [name, counts] : entries_) {
    if (name == stage) {
      return counts;
    }
  }
  return StageCounts{};
}

void StageCounters::Merge(const StageCounters& other) {
  for (const auto& [name, counts] : other.entries_) {
    Record(name, counts.in, counts.pruned);
  }
}

}  // namespace warpindex
