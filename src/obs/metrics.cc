#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace warpindex {

Histogram::Histogram(std::vector<double> boundaries)
    : boundaries_(std::move(boundaries)),
      buckets_(boundaries_.size() + 1, 0) {
  assert(std::is_sorted(boundaries_.begin(), boundaries_.end()));
}

void Histogram::Observe(double value) {
  const size_t bucket =
      static_cast<size_t>(std::lower_bound(boundaries_.begin(),
                                           boundaries_.end(), value) -
                          boundaries_.begin());
  std::lock_guard<std::mutex> lock(mu_);
  ++buckets_[bucket];
  stats_.Add(value);
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snapshot;
  snapshot.boundaries = boundaries_;
  snapshot.bucket_counts = buckets_;
  snapshot.stats = stats_;
  return snapshot;
}

double Histogram::Snapshot::EstimatePercentile(double p) const {
  const uint64_t total = static_cast<uint64_t>(stats.count());
  if (total == 0) {
    return 0.0;
  }
  if (std::isnan(p) || p < 0.0) {
    p = 0.0;
  } else if (p > 1.0) {
    p = 1.0;
  }
  // Rank of the target sample, 1-based, matching the cumulative counts.
  const double rank = p * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < bucket_counts.size(); ++i) {
    const uint64_t in_bucket = bucket_counts[i];
    if (in_bucket == 0) {
      continue;
    }
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      if (i == bucket_counts.size() - 1) {
        // Overflow bucket: no upper edge, report the observed maximum.
        return stats.max();
      }
      const double upper = boundaries[i];
      const double lower = i == 0 ? std::min(stats.min(), upper)
                                  : boundaries[i - 1];
      const double fraction =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      const double estimate = lower + (upper - lower) * fraction;
      // Never report outside what was actually observed.
      return std::min(std::max(estimate, stats.min()), stats.max());
    }
    cumulative += in_bucket;
  }
  return stats.max();
}

uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.count();
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.sum();
}

std::vector<double> ExponentialBoundaries(double start, double factor,
                                          size_t count) {
  assert(start > 0.0 && factor > 1.0);
  std::vector<double> edges;
  edges.reserve(count);
  double edge = start;
  for (size_t i = 0; i < count; ++i) {
    edges.push_back(edge);
    edge *= factor;
  }
  return edges;
}

std::vector<double> LinearBoundaries(double start, double step,
                                     size_t count) {
  assert(step > 0.0);
  std::vector<double> edges;
  edges.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    edges.push_back(start + step * static_cast<double>(i));
  }
  return edges;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

bool IsValidMetricName(const std::string& name) {
  if (name.empty()) {
    return false;
  }
  const auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) {
    return false;
  }
  for (size_t i = 1; i < name.size(); ++i) {
    const char c = name[i];
    if (!head(c) && !(c >= '0' && c <= '9')) {
      return false;
    }
  }
  return true;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  if (!IsValidMetricName(name)) {
    rejected_names_.fetch_add(1, std::memory_order_relaxed);
    return &invalid_counter_sink_;
  }
  std::lock_guard<std::mutex> lock(mu_);
  CounterSlot& slot = counters_[name];
  if (slot.counter == nullptr) {
    slot.help = help;
    slot.counter = std::make_unique<Counter>();
  }
  return slot.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  if (!IsValidMetricName(name)) {
    rejected_names_.fetch_add(1, std::memory_order_relaxed);
    return &invalid_gauge_sink_;
  }
  std::lock_guard<std::mutex> lock(mu_);
  GaugeSlot& slot = gauges_[name];
  if (slot.gauge == nullptr) {
    slot.help = help;
    slot.gauge = std::make_unique<Gauge>();
  }
  return slot.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> boundaries,
                                         const std::string& help) {
  if (!IsValidMetricName(name)) {
    rejected_names_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    if (invalid_histogram_sink_ == nullptr) {
      invalid_histogram_sink_ =
          std::make_unique<Histogram>(std::move(boundaries));
    }
    return invalid_histogram_sink_.get();
  }
  std::lock_guard<std::mutex> lock(mu_);
  HistogramSlot& slot = histograms_[name];
  if (slot.histogram == nullptr) {
    slot.help = help;
    slot.histogram = std::make_unique<Histogram>(std::move(boundaries));
  }
  return slot.histogram.get();
}

MetricsRegistry::Snapshot MetricsRegistry::TakeSnapshot() const {
  Snapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, slot] : counters_) {
    snapshot.counters.push_back(
        CounterEntry{name, slot.help, slot.counter->value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, slot] : gauges_) {
    snapshot.gauges.push_back(
        GaugeEntry{name, slot.help, slot.gauge->value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, slot] : histograms_) {
    snapshot.histograms.push_back(
        HistogramEntry{name, slot.help, slot.histogram->TakeSnapshot()});
  }
  return snapshot;
}

}  // namespace warpindex
