// Per-query tracing: a span tree recording where a query spends its time.
//
// A Trace is created by the caller (one per query), passed as an optional
// `Trace*` down the search path, and read back as a tree of TraceSpans.
// Every layer opens a ScopedSpan around its stage (`rtree_search`,
// `candidate_fetch`, `dtw_postfilter`, ...) and attaches counters (pages
// read, nodes visited, DP cells) to the innermost open span.
//
// Cost discipline: with no trace attached (the default everywhere), the
// instrumentation is a null-pointer test and nothing else — no clock
// reads, no allocation. Spans use the steady clock, so durations are
// monotonic and immune to wall-clock adjustment.
//
// A Trace is a single-threaded object: one query fills one trace. Under
// the concurrent executor each worker uses its own Trace per query and
// the batch collects them afterwards (exec/query_executor.h) — traces
// are never shared across threads while being written.

#ifndef WARPINDEX_OBS_TRACE_H_
#define WARPINDEX_OBS_TRACE_H_

#include <chrono>
#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace warpindex {

// One node of the span tree. Spans are stored in begin order; `parent`
// indexes into Trace::spans() (-1 for a root span).
struct TraceSpan {
  std::string name;
  int parent = -1;
  // Offset from Trace construction, and duration, both in milliseconds.
  double start_ms = 0.0;
  double duration_ms = 0.0;
  // Named counters accumulated while this span was innermost (insertion
  // order preserved; duplicates are summed).
  std::vector<std::pair<std::string, double>> counters;
};

class Trace {
 public:
  Trace() : origin_(Clock::now()) {}

  // Opens a span as a child of the innermost open span and returns its
  // index. Prefer ScopedSpan over calling this directly.
  size_t BeginSpan(std::string_view name);

  // Closes the span at `index` (must be the innermost open span).
  void EndSpan(size_t index);

  // Adds `delta` to counter `name` on the innermost open span; dropped if
  // no span is open.
  void AddCounter(std::string_view name, double delta);

  const std::vector<TraceSpan>& spans() const { return spans_; }

  // Sum of durations of all spans named `name` (0 if none).
  double TotalMillis(std::string_view name) const;

  // Number of spans still open (0 once the query has finished).
  size_t open_depth() const { return open_stack_.size(); }

 private:
  using Clock = std::chrono::steady_clock;

  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     origin_)
        .count();
  }

  Clock::time_point origin_;
  std::vector<TraceSpan> spans_;
  std::vector<size_t> open_stack_;
};

// RAII guard opening a span for the lifetime of a scope. A null trace
// makes construction and destruction no-ops.
class ScopedSpan {
 public:
  ScopedSpan(Trace* trace, std::string_view name) : trace_(trace) {
    if (trace_ != nullptr) {
      index_ = trace_->BeginSpan(name);
    }
  }
  ~ScopedSpan() {
    if (trace_ != nullptr) {
      trace_->EndSpan(index_);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Trace* trace_;
  size_t index_ = 0;
};

// Counter attach that tolerates a null trace (the common case).
inline void TraceCounter(Trace* trace, std::string_view name,
                         double delta) {
  if (trace != nullptr) {
    trace->AddCounter(name, delta);
  }
}

}  // namespace warpindex

#endif  // WARPINDEX_OBS_TRACE_H_
