// Per-query tracing: a span tree recording where a query spends its time.
//
// A Trace is created by the caller (one per query), passed as an optional
// `Trace*` down the search path, and read back as a tree of TraceSpans.
// Every layer opens a ScopedSpan around its stage (`rtree_search`,
// `candidate_fetch`, `dtw_postfilter`, ...) and attaches counters (pages
// read, nodes visited, DP cells) to the innermost open span.
//
// Cost discipline: with no trace attached (the default everywhere), the
// instrumentation is a null-pointer test and nothing else — no clock
// reads, no allocation. Spans use the steady clock, so durations are
// monotonic and immune to wall-clock adjustment.
//
// A Trace is a single-threaded object WHILE BEING WRITTEN: one execution
// context fills one trace. Queries that cross execution boundaries — the
// sharded engine's scatter-gather fan-out — propagate a TraceContext
// instead of the Trace itself: each sub-task builds its own child Trace
// from the context (same trace_id, same time origin, so start offsets
// stay comparable) and the parent stitches the finished children into
// one coherent tree with Adopt() after the gather barrier. See
// docs/OBSERVABILITY.md ("End-to-end query tracing").

#ifndef WARPINDEX_OBS_TRACE_H_
#define WARPINDEX_OBS_TRACE_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace warpindex {

// One node of the span tree. Spans are stored in begin order; `parent`
// indexes into Trace::spans() (-1 for a root span).
struct TraceSpan {
  std::string name;
  int parent = -1;
  // Offset from Trace construction, and duration, both in milliseconds.
  double start_ms = 0.0;
  double duration_ms = 0.0;
  // Thread-CPU time consumed by the writing thread while this span was
  // open (CLOCK_THREAD_CPUTIME_ID delta between BeginSpan and EndSpan).
  // Includes child spans, like duration_ms. duration_ms - cpu_ms is the
  // span's blocking/waiting share — the wall-vs-CPU skew.
  double cpu_ms = 0.0;
  // Execution tags, stamped from the owning Trace's thread tag at
  // BeginSpan: the shard whose sub-query ran this span (-1 = unsharded /
  // the merging layer) and a logical thread id (0 = the query's origin
  // thread; pool workers report worker index + 1). The trace-event
  // exporter maps these to Perfetto's pid/tid lanes.
  int32_t shard = -1;
  uint32_t tid = 0;
  // Named counters accumulated while this span was innermost (insertion
  // order preserved; duplicates are summed).
  std::vector<std::pair<std::string, double>> counters;
};

// Process-unique 64-bit trace id; never 0 (0 means "no trace").
uint64_t NewTraceId();

// A propagatable reference to an in-flight trace: everything a task on
// another thread needs to record spans that stitch back into the
// originating trace. `origin` is the parent Trace's steady-clock zero, so
// a child Trace built from this context produces directly comparable
// start offsets. A default-constructed context is invalid (trace_id 0) —
// the "no tracing" signal that costs one integer test to check.
struct TraceContext {
  uint64_t trace_id = 0;
  // Index of the span (in the originating trace) the child subtree will
  // be stitched under.
  uint64_t span_id = 0;
  // Head-sampling decision: false means "carry the id for log
  // correlation but record no spans".
  bool sampled = true;
  std::chrono::steady_clock::time_point origin{};

  bool valid() const { return trace_id != 0; }
};

class Trace {
 public:
  // A fresh trace with its own process-unique id.
  Trace() : trace_id_(NewTraceId()), origin_(Clock::now()) {}

  // A child trace continuing `context` on another execution context:
  // adopts the originating trace's id and time origin. Span start
  // offsets are therefore comparable with the parent's and Adopt()
  // needs no clock translation.
  explicit Trace(const TraceContext& context)
      : trace_id_(context.trace_id), origin_(context.origin) {}

  uint64_t trace_id() const { return trace_id_; }

  // The context to hand to a task that should record into this trace's
  // tree under span `span_index` (typically a ScopedSpan::index()).
  TraceContext ContextForSpan(size_t span_index) const {
    TraceContext context;
    context.trace_id = trace_id_;
    context.span_id = span_index;
    context.origin = origin_;
    return context;
  }

  // Tags stamped onto every span begun after this call (see
  // TraceSpan::shard/tid). A child trace sets its tag once, before the
  // sub-query runs.
  void SetThreadTag(int32_t shard, uint32_t tid) {
    tag_shard_ = shard;
    tag_tid_ = tid;
  }

  // Opens a span as a child of the innermost open span and returns its
  // index. Prefer ScopedSpan over calling this directly.
  size_t BeginSpan(std::string_view name);

  // Closes the span at `index` (must be the innermost open span).
  void EndSpan(size_t index);

  // Adds `delta` to counter `name` on the innermost open span; dropped if
  // no span is open.
  void AddCounter(std::string_view name, double delta);

  // Appends an already-completed span verbatim (parent must be -1 or the
  // index of an earlier appended/recorded span). The ingestion side of
  // stitching: tests and (future) wire-deserialized remote sub-traces
  // build span trees without running a clock.
  size_t AppendSpan(TraceSpan span);

  // Stitches `child`'s finished span tree into this trace: child spans
  // are appended with their root spans re-parented under `parent_index`
  // and internal parent links rebased; start offsets, durations, tags,
  // and counters are preserved (child was built from ContextForSpan, so
  // its clock zero is already this trace's). `child` must have no open
  // spans. Call only after the child's writer has finished (e.g. after a
  // scatter-gather barrier) — stitching is a plain copy on the caller's
  // thread.
  void Adopt(size_t parent_index, const Trace& child);

  const std::vector<TraceSpan>& spans() const { return spans_; }

  // Sum of durations of all spans named `name` (0 if none).
  double TotalMillis(std::string_view name) const;

  // Number of spans still open (0 once the query has finished).
  size_t open_depth() const { return open_stack_.size(); }

 private:
  using Clock = std::chrono::steady_clock;

  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     origin_)
        .count();
  }

  uint64_t trace_id_;
  Clock::time_point origin_;
  int32_t tag_shard_ = -1;
  uint32_t tag_tid_ = 0;
  std::vector<TraceSpan> spans_;
  std::vector<size_t> open_stack_;
  // Thread-CPU reading (seconds) at each open span's BeginSpan, parallel
  // to open_stack_; EndSpan turns the delta into the span's cpu_ms.
  std::vector<double> open_cpu_s_;
};

// RAII guard opening a span for the lifetime of a scope. A null trace
// makes construction and destruction no-ops.
class ScopedSpan {
 public:
  ScopedSpan(Trace* trace, std::string_view name) : trace_(trace) {
    if (trace_ != nullptr) {
      index_ = trace_->BeginSpan(name);
    }
  }
  ~ScopedSpan() {
    if (trace_ != nullptr) {
      trace_->EndSpan(index_);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  // Index of the opened span (meaningful only with a non-null trace);
  // what ContextForSpan and Adopt stitch against.
  size_t index() const { return index_; }

 private:
  Trace* trace_;
  size_t index_ = 0;
};

// Counter attach that tolerates a null trace (the common case).
inline void TraceCounter(Trace* trace, std::string_view name,
                         double delta) {
  if (trace != nullptr) {
    trace->AddCounter(name, delta);
  }
}

}  // namespace warpindex

#endif  // WARPINDEX_OBS_TRACE_H_
