// SlowQueryLog: the worst-K completed queries by latency.
//
// The flight recorder answers "what happened recently"; the slow log
// answers "what were the worst queries ever" — tail latency is what a
// production search service is judged on, and the slowest queries carry
// the evidence (per-stage timings, cascade prune counters, candidate
// counts) of WHY they were slow. The log keeps the K highest-latency
// FlightRecords seen since startup; a new query enters only by evicting
// the fastest of the current worst-K, so the set is monotone: entries
// only ever get slower.
//
// Thread-safety: Record() and Snapshot() are internally synchronized (one
// mutex around a K-element min-heap; K is small, so the critical section
// is a comparison and occasionally a heap sift).

#ifndef WARPINDEX_OBS_SLOW_LOG_H_
#define WARPINDEX_OBS_SLOW_LOG_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/flight_recorder.h"

namespace warpindex {

class SlowQueryLog {
 public:
  // Retains the `worst_k` highest-latency records (clamped to >= 1).
  explicit SlowQueryLog(size_t worst_k = 32);

  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  // Offers one completed query; kept iff it ranks among the worst-K by
  // wall_ms. `record.seq` and `record.timestamp_ms` are restamped with
  // the log's own arrival counter and clock (the flight recorder keeps
  // its own numbering). Thread-safe.
  void Record(FlightRecord record);

  // The retained records, slowest first (ties broken oldest-first).
  // Thread-safe against writers.
  std::vector<FlightRecord> Snapshot() const;

  size_t capacity() const { return capacity_; }
  // Queries offered to Record() (kept or not).
  uint64_t offered() const {
    return offered_.load(std::memory_order_relaxed);
  }
  // Latency floor for admission: the fastest retained record's wall_ms,
  // or 0 while the log is not yet full. A cheap pre-check for callers
  // that want to skip building a record at all.
  double admission_threshold_ms() const;

 private:
  const size_t capacity_;
  const std::chrono::steady_clock::time_point origin_ =
      std::chrono::steady_clock::now();
  mutable std::mutex mu_;
  // Min-heap on wall_ms: heap_[0] is the fastest retained record — the
  // next eviction victim.
  std::vector<FlightRecord> heap_;
  std::atomic<uint64_t> offered_{0};
};

}  // namespace warpindex

#endif  // WARPINDEX_OBS_SLOW_LOG_H_
