#include "obs/flight_recorder.h"

#include <algorithm>

namespace warpindex {

namespace {

size_t PickStripes(size_t requested, size_t capacity) {
  if (requested > 0) {
    return std::min(requested, capacity);
  }
  return std::min<size_t>(8, capacity);
}

}  // namespace

const char* CacheTierName(CacheTier tier) {
  switch (tier) {
    case CacheTier::kExecutor:
      return "executor";
    case CacheTier::kRouter:
      return "router";
    case CacheTier::kNone:
      break;
  }
  return "none";
}

FlightRecorder::FlightRecorder(FlightRecorderOptions options)
    : options_(options),
      capacity_(std::max<size_t>(1, options.capacity)),
      origin_(std::chrono::steady_clock::now()),
      slots_(capacity_),
      stripes_(PickStripes(options.num_stripes, capacity_)) {
  if (options_.sample_every == 0) {
    options_.sample_every = 1;
  }
}

void FlightRecorder::Record(FlightRecord record) {
  const uint64_t offered =
      offered_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (options_.sample_every > 1 &&
      offered % options_.sample_every != 0) {
    return;
  }
  const uint64_t seq =
      recorded_.fetch_add(1, std::memory_order_relaxed) + 1;
  record.seq = seq;
  record.timestamp_ms = ElapsedMillis();
  const size_t slot = static_cast<size_t>((seq - 1) % capacity_);
  Stripe& stripe = stripes_[slot % stripes_.size()];
  std::lock_guard<std::mutex> lock(stripe.mu);
  slots_[slot] = std::move(record);
}

std::vector<FlightRecord> FlightRecorder::Snapshot() const {
  std::vector<FlightRecord> out;
  out.reserve(capacity_);
  // One stripe at a time: writers on other stripes keep flowing while we
  // copy. A slot overwritten between stripes just shows its newer record;
  // ordering by seq afterwards keeps the view coherent.
  for (size_t s = 0; s < stripes_.size(); ++s) {
    std::lock_guard<std::mutex> lock(stripes_[s].mu);
    for (size_t slot = s; slot < capacity_; slot += stripes_.size()) {
      if (slots_[slot].seq != 0) {
        out.push_back(slots_[slot]);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlightRecord& a, const FlightRecord& b) {
              return a.seq < b.seq;
            });
  return out;
}

}  // namespace warpindex
