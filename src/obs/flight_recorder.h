// FlightRecorder: an always-on, lock-striped ring buffer of the last N
// completed queries.
//
// Where a Trace must be attached by the caller before the query runs, the
// flight recorder captures after the fact: whoever finishes a query (the
// concurrent executor's workers, or a sequential serving loop) offers one
// FlightRecord, and the recorder keeps the most recent `capacity` of them.
// When something goes wrong in production — a latency spike, a planner
// misprediction — `/flightrecorder` (obs/httpd.h) serves the recent
// history without anyone having thought to enable tracing beforehand.
//
// Cost discipline: recording is one atomic increment to pick a slot plus
// one short stripe-mutex hold to copy the record in. Stripes are selected
// by slot, so concurrent writers on different slots almost never share a
// lock, and a snapshot reader only ever blocks one stripe at a time.
// `sample_every` > 1 drops all but every k-th query before taking any
// lock, bounding recorder overhead at arbitrary query rates.
//
// Thread-safety: Record() and Snapshot() may race freely from any number
// of threads. A snapshot is a point-in-time copy ordered oldest-first by
// completion sequence number; records being written while the snapshot
// walks the stripes are either fully visible or absent, never torn.

#ifndef WARPINDEX_OBS_FLIGHT_RECORDER_H_
#define WARPINDEX_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/stage_counters.h"
#include "obs/stage_timings.h"

namespace warpindex {

// Which semantic-cache tier (if any) answered a query without running
// the engine. Rendered as "none" / "executor" / "router" in the
// /flightrecorder and /slowlog JSON.
enum class CacheTier : int32_t {
  kNone = 0,      // the engine ran the query
  kExecutor = 1,  // QueryExecutor's engine-side cache answered
  kRouter = 2,    // the router's wire-side cache answered (no fan-out)
};

const char* CacheTierName(CacheTier tier);

// Everything worth keeping about one completed query. Built by the layer
// that ran the query (exec/query_executor.cc fills it from a
// SearchResult); obs stays independent of the core types.
struct FlightRecord {
  // Completion sequence number assigned by the recorder (1-based; 0 means
  // an empty slot). Snapshot order key.
  uint64_t seq = 0;
  // Completion time in milliseconds since the recorder was created
  // (steady clock).
  double timestamp_ms = 0.0;
  // Trace id of the query's trace, or 0 when the query ran untraced.
  // Cross-links /flightrecorder and /slowlog rows to /tracez?id=<hex>.
  uint64_t trace_id = 0;
  std::string method;
  double epsilon = 0.0;
  size_t query_length = 0;
  size_t matches = 0;
  size_t num_candidates = 0;
  double wall_ms = 0.0;
  // Thread-CPU time summed over every thread that worked on the query
  // (SearchCost::cpu_ms); > wall_ms on parallel queries.
  double cpu_ms = 0.0;
  uint64_t dtw_evals = 0;
  uint64_t dtw_cells = 0;
  uint64_t index_nodes = 0;
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  // Per-stage wall time, per-stage CPU time, and cascade prune counters,
  // verbatim from SearchCost (names are the kStage* constants).
  StageTimings stage_ms;
  StageTimings stage_cpu_ms;
  StageCounters prunes;
  // Shard that ran this (sub-)query, or -1 for an unsharded query / the
  // merged record of a sharded one (shard/sharded_engine.h). The
  // router's per-group sub-request records reuse this field for the
  // GROUP index (net/router.h).
  int32_t shard = -1;
  // Wire-plane bookkeeping (net/router.h): the replica that answered
  // this sub-request (-1 = not a networked sub-request — the test
  // /flightrecorder filters on), and how many hedged / retried attempts
  // the sub-request took before that answer.
  int32_t replica = -1;
  uint32_t net_hedges = 0;
  uint32_t net_retries = 0;
  // Semantic-cache attribution: which tier answered this query from a
  // stored result (kNone when the engine actually ran).
  CacheTier cache_hit = CacheTier::kNone;
};

struct FlightRecorderOptions {
  // Ring capacity in records.
  size_t capacity = 256;
  // Lock stripes; 0 picks min(8, capacity). More stripes = less writer
  // contention, slightly more snapshot work.
  size_t num_stripes = 0;
  // Keep every k-th offered record (1 = keep all). The skip test runs
  // before any lock, so a high-rate serving loop can leave the recorder
  // always-on and pay one atomic increment per dropped query.
  uint64_t sample_every = 1;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderOptions options = {});

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Offers one completed query. `record.seq` and `record.timestamp_ms`
  // are assigned here; everything else is the caller's. Thread-safe.
  void Record(FlightRecord record);

  // The retained records, oldest first. Thread-safe against writers.
  std::vector<FlightRecord> Snapshot() const;

  size_t capacity() const { return capacity_; }
  size_t num_stripes() const { return stripes_.size(); }
  uint64_t sample_every() const { return options_.sample_every; }
  // Queries offered to Record() (before sampling).
  uint64_t offered() const {
    return offered_.load(std::memory_order_relaxed);
  }
  // Records actually written (after sampling).
  uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }

 private:
  struct Stripe {
    mutable std::mutex mu;
  };

  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - origin_)
        .count();
  }

  FlightRecorderOptions options_;
  size_t capacity_;
  std::chrono::steady_clock::time_point origin_;
  // slots_[i] is guarded by stripes_[i % stripes_.size()].mu.
  mutable std::vector<FlightRecord> slots_;
  mutable std::vector<Stripe> stripes_;
  std::atomic<uint64_t> offered_{0};
  std::atomic<uint64_t> recorded_{0};
};

}  // namespace warpindex

#endif  // WARPINDEX_OBS_FLIGHT_RECORDER_H_
