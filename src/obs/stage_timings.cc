#include "obs/stage_timings.h"

namespace warpindex {

void StageTimings::Add(std::string_view stage, double ms) {
  for (auto& [name, total] : entries_) {
    if (name == stage) {
      total += ms;
      return;
    }
  }
  entries_.emplace_back(std::string(stage), ms);
}

double StageTimings::Get(std::string_view stage) const {
  for (const auto& [name, total] : entries_) {
    if (name == stage) {
      return total;
    }
  }
  return 0.0;
}

double StageTimings::TotalMillis() const {
  double total = 0.0;
  for (const auto& [name, ms] : entries_) {
    total += ms;
  }
  return total;
}

void StageTimings::Merge(const StageTimings& other) {
  if (&other == this) {
    for (auto& [name, ms] : entries_) {
      ms *= 2.0;
    }
    return;
  }
  for (const auto& [name, ms] : other.entries_) {
    Add(name, ms);
  }
}

void StageTimings::Scale(double factor) {
  for (auto& [name, ms] : entries_) {
    ms *= factor;
  }
}

}  // namespace warpindex
