// A small, dependency-free introspection HTTP server.
//
// Serves GET requests over blocking BSD sockets from one background
// accept thread: accept, read the request, dispatch the matching handler,
// write the response, close. Connections are therefore bounded by
// construction — exactly one request is in flight at a time and the
// kernel listen backlog queues the rest — which is the right trade for an
// operator-facing port: scrapes are rare, handlers are cheap snapshot
// renders, and the serving path never competes with query threads for
// anything but the snapshot locks the handlers themselves take.
//
// Routes are exact-path handlers registered before Start():
//
//   IntrospectionServer server({.port = 8080});
//   server.Handle("/healthz", [](const HttpRequest&) {
//     return HttpResponse{.body = "ok\n"};
//   });
//   server.Start();           // binds, spawns the accept thread
//   ...
//   server.Stop();            // unblocks accept, joins
//
// Port 0 binds an ephemeral port; port() reports the real one (tests use
// this to avoid collisions). The server speaks just enough HTTP/1.1 for
// curl, Prometheus scrapers, and the bundled HttpGet client: request
// line + headers in, status line + Content-Length + Connection: close
// out. Anything fancier (keep-alive, chunking, TLS) is out of scope for
// an introspection port.
//
// Thread-safety: Handle() before Start(); Start()/Stop() from one thread;
// handlers run on the accept thread and must be thread-safe against
// whatever state they read (snapshot APIs are; see docs/CONCURRENCY.md).

#ifndef WARPINDEX_OBS_HTTPD_H_
#define WARPINDEX_OBS_HTTPD_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

#include "common/status.h"
#include "net/socket.h"

namespace warpindex {

struct HttpRequest {
  std::string method;  // "GET"
  std::string path;    // "/statusz" (query string stripped)
  std::string query;   // "verbose=1" (after '?', may be empty)
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

struct IntrospectionServerOptions {
  // Loopback by default: the introspection port is operator-facing, not
  // internet-facing.
  std::string bind_address = "127.0.0.1";
  // 0 = ephemeral (read the real port back with port()).
  uint16_t port = 0;
  int backlog = 16;
  // Requests larger than this are rejected with 431.
  size_t max_request_bytes = 8192;
  // Per-connection socket read/write timeout.
  int io_timeout_ms = 2000;
};

class IntrospectionServer {
 public:
  explicit IntrospectionServer(IntrospectionServerOptions options = {});
  ~IntrospectionServer();  // Stop()

  IntrospectionServer(const IntrospectionServer&) = delete;
  IntrospectionServer& operator=(const IntrospectionServer&) = delete;

  // Registers `handler` for exact-match GETs of `path`. Call before
  // Start().
  void Handle(std::string path, HttpHandler handler);

  // Binds, listens, and spawns the accept thread. Fails (with an IoError
  // naming errno) when the address is unavailable or sockets cannot be
  // created — callers in restricted environments should treat that as
  // "introspection unavailable", not fatal.
  Status Start();

  // Unblocks the accept thread and joins it. Idempotent; run by the
  // destructor.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  // The bound port (the real one when options.port was 0); 0 before
  // Start().
  uint16_t port() const { return listener_.port(); }
  const IntrospectionServerOptions& options() const { return options_; }
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  IntrospectionServerOptions options_;
  std::map<std::string, HttpHandler> routes_;
  // Bind/listen/accept plumbing shared with the wire serving plane
  // (net/socket.h).
  TcpListener listener_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> requests_served_{0};
};

// Minimal blocking HTTP GET against a numeric IPv4 address (the client
// side of the server above; powers `warpindex_cli inspect`). Fills `body`
// with the response body and, when non-null, `status_code` with the HTTP
// status. Returns ok for any well-formed HTTP response, including
// non-200s.
Status HttpGet(const std::string& host, uint16_t port,
               const std::string& path, std::string* body,
               int* status_code = nullptr, int timeout_ms = 5000);

}  // namespace warpindex

#endif  // WARPINDEX_OBS_HTTPD_H_
