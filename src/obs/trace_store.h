// TraceStore: a lock-striped ring of recently completed query traces
// with TAIL-BASED sampling — the keep/drop decision runs at query END,
// when the trace's latency, error state, and shard skew are known.
//
// Head sampling (trace or don't trace) cannot keep "the interesting
// queries": whether a query turns out slow, errored, or shard-skewed is
// only known once it finishes. So the serving layer traces queries
// (gated by ShouldTrace(), a cheap every-k head limiter) and offers every
// finished trace here; the store then keeps traces that are
//
//   * slow        — wall_ms >= options.slow_ms,
//   * errored     — the query threw,
//   * shard-skew  — the slowest per-shard subtree ran >= options.
//                   skew_ratio times the mean (a scatter-gather straggler
//                   the merged latency alone would hide), or
//   * sampled     — a deterministic-PRNG coin at options.
//                   sample_probability, so /tracez always has baseline
//                   examples of healthy traffic,
//
// and drops the rest before they touch the ring. `/tracez` (see
// exec/introspection.h) serves the retained traces; `/slowlog` and
// `/flightrecorder` rows cross-link by trace_id.
//
// Thread-safety: ShouldTrace(), Offer(), Snapshot(), and Find() may race
// freely. Offer() is one atomic seq pick plus a short stripe-mutex hold
// to move the trace in (same discipline as obs/flight_recorder.h);
// dropped traces never take a lock.

#ifndef WARPINDEX_OBS_TRACE_STORE_H_
#define WARPINDEX_OBS_TRACE_STORE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace warpindex {

// Why a trace was retained (kNone = dropped).
enum class TraceKeep : uint8_t {
  kNone = 0,
  kSlow,
  kError,
  kShardSkew,
  kSampled,
};
const char* TraceKeepName(TraceKeep keep);

// One finished query's trace plus the summary the tail decision and the
// /tracez listing need. The serving layer fills everything except `seq`,
// `timestamp_ms`, and `keep` (assigned on admission).
struct CompletedTrace {
  uint64_t seq = 0;          // admission number (1-based; 0 = empty slot)
  double timestamp_ms = 0.0; // completion, ms since the store was created
  std::string method;
  double epsilon = 0.0;
  size_t query_length = 0;
  size_t matches = 0;
  double wall_ms = 0.0;
  // Total thread-CPU time of the query (SearchCost::cpu_ms), for the
  // wall-vs-CPU column in /tracez.
  double cpu_ms = 0.0;
  bool errored = false;
  TraceKeep keep = TraceKeep::kNone;
  Trace trace;  // the stitched span tree
};

struct TraceStoreOptions {
  // Ring capacity in retained traces.
  size_t capacity = 64;
  // Lock stripes; 0 picks min(8, capacity).
  size_t num_stripes = 0;
  // Keep every trace at least this slow (the slow-log admission idea as
  // a static threshold). <= 0 disables the slowness rule.
  double slow_ms = 5.0;
  // Probability of keeping an otherwise-unremarkable trace.
  double sample_probability = 0.05;
  // A trace whose slowest per-shard subtree ("shard" spans) took >=
  // skew_ratio times the mean per-shard time is a skew outlier. <= 1
  // disables the rule; traces touching < 2 shards never match.
  double skew_ratio = 4.0;
  // ShouldTrace() head gate: trace every k-th query (1 = every query).
  uint64_t head_sample_every = 1;
  // Seed of the deterministic tail-sampling coin.
  uint64_t seed = 1;
};

class TraceStore {
 public:
  explicit TraceStore(TraceStoreOptions options = {});

  TraceStore(const TraceStore&) = delete;
  TraceStore& operator=(const TraceStore&) = delete;

  // Head gate for the serving layer: true when the next query should
  // carry a trace at all (every k-th call). One relaxed atomic increment.
  bool ShouldTrace();

  // Tail decision: classifies `trace`, stores it if it matched any keep
  // rule, and returns the reason (kNone = dropped). Thread-safe.
  TraceKeep Offer(CompletedTrace trace);

  // The retained traces, oldest first. Thread-safe against writers.
  std::vector<CompletedTrace> Snapshot() const;

  // Copies the retained trace with this trace_id into `out` (the most
  // recent one, should ids ever collide). False if none is retained.
  bool Find(uint64_t trace_id, CompletedTrace* out) const;

  // The per-shard skew ratio the kShardSkew rule tests: max / mean of
  // the durations of root-stitched "shard" spans, or 0 when fewer than
  // two shards ran. Exposed for tests and /statusz explainability.
  static double ShardSkewRatio(const Trace& trace);

  size_t capacity() const { return capacity_; }
  const TraceStoreOptions& options() const { return options_; }
  // Traces offered to Offer() (kept or not).
  uint64_t offered() const {
    return offered_.load(std::memory_order_relaxed);
  }
  // Traces retained, total and per keep reason.
  uint64_t kept() const { return kept_.load(std::memory_order_relaxed); }
  uint64_t kept_slow() const {
    return kept_slow_.load(std::memory_order_relaxed);
  }
  uint64_t kept_error() const {
    return kept_error_.load(std::memory_order_relaxed);
  }
  uint64_t kept_skew() const {
    return kept_skew_.load(std::memory_order_relaxed);
  }
  uint64_t kept_sampled() const {
    return kept_sampled_.load(std::memory_order_relaxed);
  }

 private:
  struct Stripe {
    mutable std::mutex mu;
  };

  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - origin_)
        .count();
  }

  // The tail rules, in precedence order (slow > error > skew > coin).
  TraceKeep Classify(const CompletedTrace& trace);

  TraceStoreOptions options_;
  size_t capacity_;
  std::chrono::steady_clock::time_point origin_;
  // slots_[i] is guarded by stripes_[i % stripes_.size()].mu.
  mutable std::vector<CompletedTrace> slots_;
  mutable std::vector<Stripe> stripes_;
  std::atomic<uint64_t> head_counter_{0};
  std::atomic<uint64_t> coin_counter_{0};
  std::atomic<uint64_t> offered_{0};
  std::atomic<uint64_t> kept_{0};
  std::atomic<uint64_t> kept_slow_{0};
  std::atomic<uint64_t> kept_error_{0};
  std::atomic<uint64_t> kept_skew_{0};
  std::atomic<uint64_t> kept_sampled_{0};
};

}  // namespace warpindex

#endif  // WARPINDEX_OBS_TRACE_STORE_H_
