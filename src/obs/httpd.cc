#include "obs/httpd.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace warpindex {
namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

void SetIoTimeout(int fd, int timeout_ms) {
  timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    default:
      return "Unknown";
  }
}

// Writes the whole buffer, tolerating partial writes and EINTR.
bool WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

std::string SerializeResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    StatusText(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

// Reads from `fd` until the end of the header block ("\r\n\r\n") or
// `max_bytes`. GET requests carry no body, so the headers are the whole
// request.
bool ReadRequest(int fd, size_t max_bytes, std::string* raw) {
  char buf[2048];
  while (raw->size() < max_bytes) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;  // timeout or reset
    }
    if (n == 0) {
      return false;  // peer closed before finishing the request
    }
    raw->append(buf, static_cast<size_t>(n));
    if (raw->find("\r\n\r\n") != std::string::npos ||
        raw->find("\n\n") != std::string::npos) {
      return true;
    }
  }
  return true;  // oversized; the caller rejects with 431
}

// Parses "GET /path?query HTTP/1.1" into `request`.
bool ParseRequestLine(const std::string& raw, HttpRequest* request) {
  const size_t line_end = raw.find_first_of("\r\n");
  const std::string line =
      line_end == std::string::npos ? raw : raw.substr(0, line_end);
  const size_t method_end = line.find(' ');
  if (method_end == std::string::npos) {
    return false;
  }
  const size_t target_end = line.find(' ', method_end + 1);
  if (target_end == std::string::npos) {
    return false;
  }
  request->method = line.substr(0, method_end);
  std::string target =
      line.substr(method_end + 1, target_end - method_end - 1);
  if (target.empty() || target[0] != '/') {
    return false;
  }
  const size_t q = target.find('?');
  if (q == std::string::npos) {
    request->path = std::move(target);
    request->query.clear();
  } else {
    request->path = target.substr(0, q);
    request->query = target.substr(q + 1);
  }
  return true;
}

}  // namespace

IntrospectionServer::IntrospectionServer(IntrospectionServerOptions options)
    : options_(std::move(options)) {}

IntrospectionServer::~IntrospectionServer() { Stop(); }

void IntrospectionServer::Handle(std::string path, HttpHandler handler) {
  routes_[std::move(path)] = std::move(handler);
}

Status IntrospectionServer::Start() {
  if (running()) {
    return Status::InvalidArgument("server already started");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Errno("socket");
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const Status status = Errno("bind " + options_.bind_address + ":" +
                                std::to_string(options_.port));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    const Status status = Errno("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this]() { AcceptLoop(); });
  return Status::Ok();
}

void IntrospectionServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  stop_.store(true, std::memory_order_release);
  // Unblock the accept(2) in flight; closing alone is not guaranteed to
  // wake a blocked accept on all platforms, shutdown is (on Linux).
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) {
    thread_.join();
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void IntrospectionServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stop_.load(std::memory_order_acquire)) {
        return;
      }
      if (errno == EINTR || errno == ECONNABORTED) {
        continue;
      }
      return;  // listen socket gone
    }
    ServeConnection(fd);
    ::close(fd);
  }
}

void IntrospectionServer::ServeConnection(int fd) {
  SetIoTimeout(fd, options_.io_timeout_ms);
  std::string raw;
  if (!ReadRequest(fd, options_.max_request_bytes, &raw)) {
    return;
  }
  HttpResponse response;
  HttpRequest request;
  if (raw.size() >= options_.max_request_bytes) {
    response.status = 431;
    response.body = "request too large\n";
  } else if (!ParseRequestLine(raw, &request)) {
    response.status = 400;
    response.body = "malformed request\n";
  } else if (request.method != "GET" && request.method != "HEAD") {
    response.status = 405;
    response.body = "only GET is served here\n";
  } else {
    const auto it = routes_.find(request.path);
    if (it == routes_.end()) {
      response.status = 404;
      response.body = "no route " + request.path + "; try:\n";
      for (const auto& [path, handler] : routes_) {
        response.body += "  " + path + "\n";
      }
    } else {
      try {
        response = it->second(request);
      } catch (const std::exception& e) {
        response = HttpResponse{};
        response.status = 500;
        response.body = std::string("handler error: ") + e.what() + "\n";
      } catch (...) {
        response = HttpResponse{};
        response.status = 500;
        response.body = "handler error\n";
      }
    }
  }
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  if (request.method == "HEAD") {
    response.body.clear();
  }
  WriteAll(fd, SerializeResponse(response));
}

Status HttpGet(const std::string& host, uint16_t port,
               const std::string& path, std::string* body,
               int* status_code, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Errno("socket");
  }
  SetIoTimeout(fd, timeout_ms);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host " + host +
                                   " (numeric IPv4 only)");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status status =
        Errno("connect " + host + ":" + std::to_string(port));
    ::close(fd);
    return status;
  }
  const std::string request = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  if (!WriteAll(fd, request)) {
    ::close(fd);
    return Errno("send");
  }
  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      ::close(fd);
      return Errno("recv");
    }
    if (n == 0) {
      break;
    }
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  // "HTTP/1.1 200 OK\r\n...headers...\r\n\r\nbody"
  if (raw.compare(0, 5, "HTTP/") != 0) {
    return Status::IoError("not an HTTP response");
  }
  const size_t version_end = raw.find(' ');
  if (version_end == std::string::npos) {
    return Status::IoError("malformed status line");
  }
  if (status_code != nullptr) {
    *status_code = std::atoi(raw.c_str() + version_end + 1);
  }
  const size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status::IoError("missing header terminator");
  }
  *body = raw.substr(header_end + 4);
  return Status::Ok();
}

}  // namespace warpindex
