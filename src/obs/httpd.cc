#include "obs/httpd.h"

#include "obs/profiler.h"

#include <cstdlib>
#include <utility>

#include "net/socket.h"

namespace warpindex {
namespace {

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    default:
      return "Unknown";
  }
}

std::string SerializeResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    StatusText(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

// Reads from `fd` until the end of the header block ("\r\n\r\n") or
// `max_bytes`. GET requests carry no body, so the headers are the whole
// request.
bool ReadRequest(int fd, size_t max_bytes, std::string* raw) {
  char buf[2048];
  while (raw->size() < max_bytes) {
    size_t n = 0;
    if (RecvSome(fd, buf, sizeof(buf), &n) != RecvOutcome::kOk) {
      return false;  // timeout, reset, or peer closed mid-request
    }
    raw->append(buf, n);
    if (raw->find("\r\n\r\n") != std::string::npos ||
        raw->find("\n\n") != std::string::npos) {
      return true;
    }
  }
  return true;  // oversized; the caller rejects with 431
}

// Parses "GET /path?query HTTP/1.1" into `request`.
bool ParseRequestLine(const std::string& raw, HttpRequest* request) {
  const size_t line_end = raw.find_first_of("\r\n");
  const std::string line =
      line_end == std::string::npos ? raw : raw.substr(0, line_end);
  const size_t method_end = line.find(' ');
  if (method_end == std::string::npos) {
    return false;
  }
  const size_t target_end = line.find(' ', method_end + 1);
  if (target_end == std::string::npos) {
    return false;
  }
  request->method = line.substr(0, method_end);
  std::string target =
      line.substr(method_end + 1, target_end - method_end - 1);
  if (target.empty() || target[0] != '/') {
    return false;
  }
  const size_t q = target.find('?');
  if (q == std::string::npos) {
    request->path = std::move(target);
    request->query.clear();
  } else {
    request->path = target.substr(0, q);
    request->query = target.substr(q + 1);
  }
  return true;
}

}  // namespace

IntrospectionServer::IntrospectionServer(IntrospectionServerOptions options)
    : options_(std::move(options)) {}

IntrospectionServer::~IntrospectionServer() { Stop(); }

void IntrospectionServer::Handle(std::string path, HttpHandler handler) {
  routes_[std::move(path)] = std::move(handler);
}

Status IntrospectionServer::Start() {
  if (running()) {
    return Status::InvalidArgument("server already started");
  }
  TcpListenerOptions listen_options;
  listen_options.bind_address = options_.bind_address;
  listen_options.port = options_.port;
  listen_options.backlog = options_.backlog;
  WARPINDEX_RETURN_IF_ERROR(listener_.Listen(listen_options));

  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this]() {
    CpuProfiler::SetThreadTag("httpd");
    AcceptLoop();
  });
  return Status::Ok();
}

void IntrospectionServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  stop_.store(true, std::memory_order_release);
  listener_.Shutdown();  // unblock the accept(2) in flight
  if (thread_.joinable()) {
    thread_.join();
  }
  listener_.Close();
}

void IntrospectionServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    const int fd = listener_.Accept();
    if (fd < 0) {
      return;  // Shutdown() or the listen socket is gone
    }
    ServeConnection(fd);
    CloseSocket(fd);
  }
}

void IntrospectionServer::ServeConnection(int fd) {
  SetSocketIoTimeout(fd, options_.io_timeout_ms);
  std::string raw;
  if (!ReadRequest(fd, options_.max_request_bytes, &raw)) {
    return;
  }
  HttpResponse response;
  HttpRequest request;
  if (raw.size() >= options_.max_request_bytes) {
    response.status = 431;
    response.body = "request too large\n";
  } else if (!ParseRequestLine(raw, &request)) {
    response.status = 400;
    response.body = "malformed request\n";
  } else if (request.method != "GET" && request.method != "HEAD") {
    response.status = 405;
    response.body = "only GET is served here\n";
  } else {
    const auto it = routes_.find(request.path);
    if (it == routes_.end()) {
      response.status = 404;
      response.body = "no route " + request.path + "; try:\n";
      for (const auto& [path, handler] : routes_) {
        response.body += "  " + path + "\n";
      }
    } else {
      try {
        response = it->second(request);
      } catch (const std::exception& e) {
        response = HttpResponse{};
        response.status = 500;
        response.body = std::string("handler error: ") + e.what() + "\n";
      } catch (...) {
        response = HttpResponse{};
        response.status = 500;
        response.body = "handler error\n";
      }
    }
  }
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  if (request.method == "HEAD") {
    response.body.clear();
  }
  SendAll(fd, SerializeResponse(response));
}

Status HttpGet(const std::string& host, uint16_t port,
               const std::string& path, std::string* body,
               int* status_code, int timeout_ms) {
  int fd = -1;
  WARPINDEX_RETURN_IF_ERROR(TcpConnect(host, port, timeout_ms, &fd));
  SetSocketIoTimeout(fd, timeout_ms);
  const std::string request = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  if (!SendAll(fd, request)) {
    const Status status = ErrnoStatus("send");
    CloseSocket(fd);
    return status;
  }
  std::string raw;
  char buf[4096];
  for (;;) {
    size_t n = 0;
    const RecvOutcome outcome = RecvSome(fd, buf, sizeof(buf), &n);
    if (outcome == RecvOutcome::kClosed) {
      break;
    }
    if (outcome != RecvOutcome::kOk) {
      const Status status = ErrnoStatus("recv");
      CloseSocket(fd);
      return status;
    }
    raw.append(buf, n);
  }
  CloseSocket(fd);

  // "HTTP/1.1 200 OK\r\n...headers...\r\n\r\nbody"
  if (raw.compare(0, 5, "HTTP/") != 0) {
    return Status::IoError("not an HTTP response");
  }
  const size_t version_end = raw.find(' ');
  if (version_end == std::string::npos) {
    return Status::IoError("malformed status line");
  }
  if (status_code != nullptr) {
    *status_code = std::atoi(raw.c_str() + version_end + 1);
  }
  const size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status::IoError("missing header terminator");
  }
  *body = raw.substr(header_end + 4);
  return Status::Ok();
}

}  // namespace warpindex
