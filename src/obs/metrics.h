// Process-wide metrics: named counters and fixed-boundary histograms.
//
// The registry is the aggregation side of the observability layer: traces
// answer "where did THIS query go", metrics answer "how is the engine
// doing overall" (query latency distribution, candidate ratio, DTW cells
// per query, buffer-pool hit rate). Engines record into a registry after
// every query; exporters (obs/exporters.h) render snapshots as
// Prometheus-style text or JSON.
//
// Metric handles (Counter*, Histogram*) are stable for the registry's
// lifetime: look them up once, record through the pointer on the hot
// path. Counters and gauges are atomic; histograms take a small
// per-histogram lock. The registry is fully thread-safe: the concurrent
// query executor records from every worker, and the process-wide default
// registry must tolerate concurrent engines besides.

#ifndef WARPINDEX_OBS_METRICS_H_
#define WARPINDEX_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.h"

namespace warpindex {

// Monotonically increasing count.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> value_{0};
};

// A value that can go up and down — e.g. the executor's in-flight query
// count. Atomic, like Counter.
class Gauge {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Decrement(int64_t delta = 1) {
    value_.fetch_sub(delta, std::memory_order_relaxed);
  }
  void Set(int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> value_{0};
};

// Fixed-boundary histogram over doubles. `boundaries` are the inclusive
// upper edges of the finite buckets (ascending); one overflow bucket
// catches everything above the last edge. Summary moments (count, sum,
// mean, min, max, stddev) ride on RunningStats.
class Histogram {
 public:
  explicit Histogram(std::vector<double> boundaries);

  void Observe(double value);

  const std::vector<double>& boundaries() const { return boundaries_; }

  struct Snapshot {
    std::vector<double> boundaries;
    // boundaries.size() + 1 entries; the last is the overflow bucket.
    std::vector<uint64_t> bucket_counts;
    RunningStats stats;

    // Estimated p-quantile (p clamped into [0, 1]) from the bucket
    // counts: linear interpolation inside the owning bucket, clamped to
    // the observed [min, max]. Exact for p=0/p=1; elsewhere accurate to
    // the bucket resolution — good enough for p50/p99/p999 dashboards
    // without retaining raw samples. Returns 0 when empty.
    double EstimatePercentile(double p) const;
  };
  Snapshot TakeSnapshot() const;

  uint64_t count() const;
  double sum() const;

 private:
  mutable std::mutex mu_;
  std::vector<double> boundaries_;
  std::vector<uint64_t> buckets_;
  RunningStats stats_;
};

// Common boundary recipes.
// {start, start*factor, start*factor^2, ...} with `count` edges.
std::vector<double> ExponentialBoundaries(double start, double factor,
                                          size_t count);
// {start, start+step, ...} with `count` edges.
std::vector<double> LinearBoundaries(double start, double step,
                                     size_t count);

// True iff `name` matches the Prometheus metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*. Names failing this would render the whole
// scrape unparseable, so the registry rejects them at registration time.
bool IsValidMetricName(const std::string& name);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The shared process-wide registry (what Engine records into unless
  // told otherwise).
  static MetricsRegistry& Global();

  // Returns the counter named `name`, creating it on first use. `help`
  // is kept from the first registration.
  //
  // Name validation (all three getters): a name failing
  // IsValidMetricName() is rejected — the call still returns a usable
  // metric so instrumented code never null-checks, but it is a private
  // sink that no snapshot or exporter ever includes, keeping scraped
  // output parseable. rejected_names() counts such registrations.
  Counter* GetCounter(const std::string& name,
                      const std::string& help = "");

  // Returns the gauge named `name`, creating it on first use.
  Gauge* GetGauge(const std::string& name, const std::string& help = "");

  // Returns the histogram named `name`, creating it with `boundaries` on
  // first use (later calls reuse the existing instance; their boundaries
  // are ignored).
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> boundaries,
                          const std::string& help = "");

  // Registrations rejected for an invalid metric name.
  uint64_t rejected_names() const {
    return rejected_names_.load(std::memory_order_relaxed);
  }

  struct CounterEntry {
    std::string name;
    std::string help;
    uint64_t value = 0;
  };
  struct GaugeEntry {
    std::string name;
    std::string help;
    int64_t value = 0;
  };
  struct HistogramEntry {
    std::string name;
    std::string help;
    Histogram::Snapshot snapshot;
  };
  struct Snapshot {
    std::vector<CounterEntry> counters;      // name order
    std::vector<GaugeEntry> gauges;          // name order
    std::vector<HistogramEntry> histograms;  // name order
  };
  // Consistent-enough point-in-time view for the exporters.
  Snapshot TakeSnapshot() const;

 private:
  struct CounterSlot {
    std::string help;
    std::unique_ptr<Counter> counter;
  };
  struct GaugeSlot {
    std::string help;
    std::unique_ptr<Gauge> gauge;
  };
  struct HistogramSlot {
    std::string help;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, CounterSlot> counters_;
  std::map<std::string, GaugeSlot> gauges_;
  std::map<std::string, HistogramSlot> histograms_;
  // Sinks handed out for invalid names; never exported.
  Counter invalid_counter_sink_;
  Gauge invalid_gauge_sink_;
  std::unique_ptr<Histogram> invalid_histogram_sink_;
  std::atomic<uint64_t> rejected_names_{0};
};

}  // namespace warpindex

#endif  // WARPINDEX_OBS_METRICS_H_
