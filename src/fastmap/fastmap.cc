#include "fastmap/fastmap.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/prng.h"

namespace warpindex {

double FastMap::ResidualSquared(double base_distance, const Point& x,
                                const Point& y, int axis) const {
  double d2 = base_distance * base_distance;
  for (int l = 0; l < axis; ++l) {
    const double delta = x[l] - y[l];
    d2 -= delta * delta;
  }
  // D_tw is not a metric; the residual can go negative. Clamp (classical
  // FastMap practice) — one source of the embedding's distortion.
  return std::max(d2, 0.0);
}

FastMap::FastMap(const Dataset& dataset, FastMapOptions options)
    : options_(options), dtw_(options.dtw) {
  assert(options_.dims >= 1 && options_.dims <= kMaxRTreeDims);
  assert(!dataset.empty());
  const size_t n = dataset.size();
  Prng prng(options_.seed);

  data_points_.resize(n);
  for (Point& p : data_points_) {
    p.dims = options_.dims;
  }

  auto base_dist = [&](const Sequence& a, const Sequence& b) {
    ++build_distance_evals_;
    return dtw_.Distance(a, b).distance;
  };

  for (int axis = 0; axis < options_.dims; ++axis) {
    // Pivot selection: start from a random object, repeatedly jump to the
    // farthest object under the residual distance.
    size_t ia = static_cast<size_t>(
        prng.UniformInt(0, static_cast<int64_t>(n) - 1));
    size_t ib = ia;
    for (int it = 0; it < options_.pivot_iterations; ++it) {
      double best = -1.0;
      for (size_t j = 0; j < n; ++j) {
        const double d2 =
            ResidualSquared(base_dist(dataset[ia], dataset[j]),
                            data_points_[ia], data_points_[j], axis);
        if (d2 > best) {
          best = d2;
          ib = j;
        }
      }
      std::swap(ia, ib);
    }

    PivotPair pivot;
    pivot.a = dataset[ia];
    pivot.b = dataset[ib];
    pivot.a_coords = data_points_[ia];
    pivot.b_coords = data_points_[ib];
    pivot.dist_ab = std::sqrt(
        ResidualSquared(base_dist(pivot.a, pivot.b), pivot.a_coords,
                        pivot.b_coords, axis));

    // Project every object onto the new axis.
    const double dab = pivot.dist_ab;
    const double dab2 = dab * dab;
    for (size_t j = 0; j < n; ++j) {
      if (dab <= 0.0) {
        data_points_[j][axis] = 0.0;
        continue;
      }
      const double da2 =
          ResidualSquared(base_dist(pivot.a, dataset[j]), pivot.a_coords,
                          data_points_[j], axis);
      const double db2 =
          ResidualSquared(base_dist(pivot.b, dataset[j]), pivot.b_coords,
                          data_points_[j], axis);
      data_points_[j][axis] = (da2 + dab2 - db2) / (2.0 * dab);
    }
    // The pivots' own coordinates on this axis are now final; refresh the
    // stored copies so later axes see them.
    pivot.a_coords = data_points_[ia];
    pivot.b_coords = data_points_[ib];
    pivots_.push_back(std::move(pivot));
  }
}

Point FastMap::DataPoint(SequenceId id) const {
  assert(id >= 0 && static_cast<size_t>(id) < data_points_.size());
  return data_points_[static_cast<size_t>(id)];
}

Point FastMap::Embed(const Sequence& s) const {
  Point p;
  p.dims = options_.dims;
  for (int axis = 0; axis < options_.dims; ++axis) {
    const PivotPair& pivot = pivots_[static_cast<size_t>(axis)];
    if (pivot.dist_ab <= 0.0) {
      p[axis] = 0.0;
      continue;
    }
    const double da2 =
        ResidualSquared(dtw_.Distance(pivot.a, s).distance, pivot.a_coords,
                        p, axis);
    const double db2 =
        ResidualSquared(dtw_.Distance(pivot.b, s).distance, pivot.b_coords,
                        p, axis);
    p[axis] = (da2 + pivot.dist_ab * pivot.dist_ab - db2) /
              (2.0 * pivot.dist_ab);
  }
  return p;
}

}  // namespace warpindex
