// FastMap embedding (Faloutsos & Lin) under the time-warping distance —
// the indexed comparator of Yi et al. [25] that the paper excludes from
// its headline results because it admits false dismissals (§3.3).
//
// FastMap places N objects into R^k given only a pairwise distance
// function: axis i is defined by a pivot pair (a_i, b_i); an object o gets
//   x_i(o) = (D_i(a_i,o)^2 + D_i(a_i,b_i)^2 - D_i(b_i,o)^2)
//            / (2 * D_i(a_i,b_i)),
// where D_i is the residual distance after projecting out axes < i.
// Because D_tw is not a metric, residual squares can go negative (clamped
// to zero) and embedded distances neither lower- nor upper-bound D_tw —
// which is precisely why range queries in the embedded space can miss true
// results. bench/abl5_fastmap_recall quantifies the recall loss.

#ifndef WARPINDEX_FASTMAP_FASTMAP_H_
#define WARPINDEX_FASTMAP_FASTMAP_H_

#include <cstdint>
#include <vector>

#include "dtw/dtw.h"
#include "rtree/geometry.h"
#include "sequence/dataset.h"

namespace warpindex {

struct FastMapOptions {
  // Target dimensionality k (paper notation; must be <= kMaxRTreeDims).
  int dims = 4;
  // Iterations of the "choose distant objects" pivot heuristic.
  int pivot_iterations = 2;
  DtwOptions dtw = DtwOptions::Linf();
  uint64_t seed = 17;
};

class FastMap {
 public:
  // Builds the embedding over `dataset`, computing O(k * N) time-warping
  // distances. The dataset must stay alive only during construction (pivot
  // sequences are copied).
  FastMap(const Dataset& dataset, FastMapOptions options);

  int dims() const { return options_.dims; }

  // Coordinates of data object `id` (computed during construction).
  Point DataPoint(SequenceId id) const;

  // Embeds an arbitrary sequence (e.g. a query) using the stored pivots.
  Point Embed(const Sequence& s) const;

  // Total DTW evaluations spent building the embedding.
  uint64_t build_distance_evals() const { return build_distance_evals_; }

 private:
  struct PivotPair {
    Sequence a;
    Sequence b;
    Point a_coords;  // coordinates of the pivots on axes < i
    Point b_coords;
    double dist_ab = 0.0;  // residual distance at axis i
  };

  // Residual squared distance at axis `axis` between a sequence with known
  // partial coordinates and a pivot.
  double ResidualSquared(double base_distance, const Point& x,
                         const Point& y, int axis) const;

  FastMapOptions options_;
  Dtw dtw_;
  std::vector<PivotPair> pivots_;
  std::vector<Point> data_points_;
  uint64_t build_distance_evals_ = 0;
};

}  // namespace warpindex

#endif  // WARPINDEX_FASTMAP_FASTMAP_H_
