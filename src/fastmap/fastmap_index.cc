#include "fastmap/fastmap_index.h"

namespace warpindex {

FastMapIndex::FastMapIndex(const Dataset& dataset,
                           FastMapIndexOptions options)
    : fastmap_(dataset, options.fastmap),
      rtree_(options.fastmap.dims, options.rtree) {
  for (size_t i = 0; i < dataset.size(); ++i) {
    const auto id = static_cast<SequenceId>(i);
    rtree_.Insert(Rect::FromPoint(fastmap_.DataPoint(id)), id);
  }
}

std::vector<SequenceId> FastMapIndex::FindCandidates(
    const Sequence& query, double epsilon, RTreeQueryStats* stats) const {
  const Point q = fastmap_.Embed(query);
  return rtree_.RangeSearch(Rect::SquareAround(q, epsilon), stats);
}

}  // namespace warpindex
