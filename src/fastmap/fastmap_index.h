// FastMapIndex: the full indexed search pipeline of Yi et al. [25]'s
// FastMap method — embed every data sequence into R^k, index the points in
// an R-tree, answer a similarity query by embedding Q and range-searching
// with radius epsilon, then post-filter candidates with exact D_tw.
//
// Unlike TW-Sim-Search this pipeline CAN miss true results (the embedding
// does not lower-bound D_tw); bench/abl5_fastmap_recall measures the
// recall, reproducing the reason the paper excludes FastMap from its
// evaluation (§5.1).

#ifndef WARPINDEX_FASTMAP_FASTMAP_INDEX_H_
#define WARPINDEX_FASTMAP_FASTMAP_INDEX_H_

#include <vector>

#include "fastmap/fastmap.h"
#include "rtree/rtree.h"
#include "sequence/dataset.h"

namespace warpindex {

struct FastMapIndexOptions {
  FastMapOptions fastmap;
  RTreeOptions rtree;
};

class FastMapIndex {
 public:
  FastMapIndex(const Dataset& dataset, FastMapIndexOptions options);

  // Candidate ids whose embedded point falls inside the square of radius
  // epsilon around Embed(query). NOT guaranteed to be a superset of the
  // true result set.
  std::vector<SequenceId> FindCandidates(const Sequence& query,
                                         double epsilon,
                                         RTreeQueryStats* stats = nullptr)
      const;

  const FastMap& fastmap() const { return fastmap_; }
  const RTree& rtree() const { return rtree_; }

 private:
  FastMap fastmap_;
  RTree rtree_;
};

}  // namespace warpindex

#endif  // WARPINDEX_FASTMAP_FASTMAP_INDEX_H_
