// ST-Filter: suffix-tree-based candidate filtering under time warping
// (Park et al. [18]; the paper's §3.4 comparator).
//
// Construction: every data sequence is categorized into a symbol string
// (suffixtree/categorizer.h) and inserted into a generalized suffix tree.
//
// Whole-match filtering: the tree is traversed from the root with a
// time-warping DP between the query and the *category intervals* along
// each path. Interval costs lower-bound true element costs, so a subtree
// is pruned only when no sequence below it can be within epsilon — no
// false dismissal. A data sequence becomes a candidate when the traversal
// reaches its terminator through a path spelling the whole string with a
// DP value <= epsilon.
//
// The paper's criticism, reproduced by bench/fig3_stock_elapsed and
// fig4/fig5: for whole matching the shared-prefix structure the tree
// exploits is rare, so the traversal visits a node count proportional to
// the (large) tree, and ST-Filter loses to plain scans at small scale.

#ifndef WARPINDEX_SUFFIXTREE_ST_FILTER_H_
#define WARPINDEX_SUFFIXTREE_ST_FILTER_H_

#include <cstdint>
#include <vector>

#include "dtw/base_distance.h"
#include "sequence/dataset.h"
#include "suffixtree/categorizer.h"
#include "suffixtree/suffix_tree.h"

namespace warpindex {

struct StFilterOptions {
  // Paper §5.1: "we generated 100 categories using the
  // equal-length-interval method".
  size_t num_categories = 100;
  DtwCombiner combiner = DtwCombiner::kMax;
  size_t page_size_bytes = 1024;
};

struct StFilterQueryStats {
  uint64_t nodes_visited = 0;
  // Distinct suffix-tree pages touched (nodes packed in creation order).
  uint64_t pages_accessed = 0;
  uint64_t dp_cells = 0;

  void Reset() { *this = StFilterQueryStats(); }
};

class StFilter {
 public:
  StFilter(const Dataset& dataset, StFilterOptions options);

  StFilter(StFilter&&) = default;
  StFilter& operator=(StFilter&&) = default;
  StFilter(const StFilter&) = delete;
  StFilter& operator=(const StFilter&) = delete;

  // Candidate ids for whole matching: a superset of
  // { S : D_tw(S, Q) <= epsilon }. Requires a non-empty query.
  std::vector<SequenceId> FindCandidates(const Sequence& query,
                                         double epsilon,
                                         StFilterQueryStats* stats = nullptr)
      const;

  // One candidate occurrence for subsequence matching.
  struct SubsequenceCandidate {
    SequenceId sequence_id = kInvalidSequenceId;
    size_t offset = 0;
    size_t length = 0;

    friend bool operator==(const SubsequenceCandidate& a,
                           const SubsequenceCandidate& b) {
      return a.sequence_id == b.sequence_id && a.offset == b.offset &&
             a.length == b.length;
    }
  };

  // Subsequence matching — the setting ST-Filter was designed for (paper
  // §3.4): candidate windows W = S[offset, offset+length) with length in
  // [min_length, max_length] whose category-interval time-warping lower
  // bound to Q is <= epsilon. Superset of the true matches in that length
  // class (no false dismissal); verify with exact D_tw. Every root path of
  // a qualifying depth contributes the suffix occurrences below it, which
  // is where the suffix tree's sharing pays off — in contrast to whole
  // matching, where only full-string paths count.
  std::vector<SubsequenceCandidate> FindSubsequenceCandidates(
      const Sequence& query, double epsilon, size_t min_length,
      size_t max_length, StFilterQueryStats* stats = nullptr) const;

  const SuffixTree& tree() const { return tree_; }
  const Categorizer& categorizer() const { return categorizer_; }
  const StFilterOptions& options() const { return options_; }

  // Index footprint in pages under the configured page size.
  size_t IndexPages() const { return tree_.NumPages(options_.page_size_bytes); }

 private:
  StFilterOptions options_;
  Categorizer categorizer_;
  SuffixTree tree_;
};

}  // namespace warpindex

#endif  // WARPINDEX_SUFFIXTREE_ST_FILTER_H_
