// Categorization of numeric elements into symbols for ST-Filter
// (Park et al. [18]; paper §3.4 and §5.1).
//
// The paper's ST-Filter configuration uses 100 categories generated with
// the "equal-length-interval" method: the global element range is cut into
// equal-width intervals, and every element is replaced by its interval's
// index. The category interval bounds then give per-element *lower bounds*
// on the true element distance, which is what makes the suffix-tree
// traversal a no-false-dismissal filter.

#ifndef WARPINDEX_SUFFIXTREE_CATEGORIZER_H_
#define WARPINDEX_SUFFIXTREE_CATEGORIZER_H_

#include <cstdint>
#include <vector>

#include "sequence/sequence.h"

namespace warpindex {

using Symbol = int32_t;

class Categorizer {
 public:
  // Equal-width intervals over [lo, hi]. Requires lo < hi, categories >= 1.
  static Categorizer EqualWidth(double lo, double hi, size_t num_categories);

  size_t num_categories() const { return num_categories_; }

  // Category of a value; values outside [lo, hi] clamp to the border
  // categories.
  Symbol Categorize(double value) const;

  // Converts a whole sequence.
  std::vector<Symbol> CategorizeSequence(const Sequence& s) const;

  // Interval [IntervalLow(c), IntervalHigh(c)] covered by category c.
  double IntervalLow(Symbol c) const;
  double IntervalHigh(Symbol c) const;

  // Lower bound on |value - x| over all x in category c's interval; zero
  // when the value lies inside.
  double LowerBoundDistance(Symbol c, double value) const;

 private:
  Categorizer(double lo, double hi, size_t num_categories);

  double lo_;
  double hi_;
  size_t num_categories_;
  double width_;
};

}  // namespace warpindex

#endif  // WARPINDEX_SUFFIXTREE_CATEGORIZER_H_
