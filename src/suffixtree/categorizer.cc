#include "suffixtree/categorizer.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace warpindex {

Categorizer::Categorizer(double lo, double hi, size_t num_categories)
    : lo_(lo),
      hi_(hi),
      num_categories_(num_categories),
      width_((hi - lo) / static_cast<double>(num_categories)) {}

Categorizer Categorizer::EqualWidth(double lo, double hi,
                                    size_t num_categories) {
  assert(lo < hi);
  assert(num_categories >= 1);
  return Categorizer(lo, hi, num_categories);
}

Symbol Categorizer::Categorize(double value) const {
  if (value <= lo_) {
    return 0;
  }
  if (value >= hi_) {
    return static_cast<Symbol>(num_categories_ - 1);
  }
  const auto c = static_cast<Symbol>((value - lo_) / width_);
  return std::min<Symbol>(c, static_cast<Symbol>(num_categories_ - 1));
}

std::vector<Symbol> Categorizer::CategorizeSequence(const Sequence& s) const {
  std::vector<Symbol> symbols;
  symbols.reserve(s.size());
  for (double v : s.elements()) {
    symbols.push_back(Categorize(v));
  }
  return symbols;
}

double Categorizer::IntervalLow(Symbol c) const {
  assert(c >= 0 && static_cast<size_t>(c) < num_categories_);
  return lo_ + static_cast<double>(c) * width_;
}

double Categorizer::IntervalHigh(Symbol c) const {
  assert(c >= 0 && static_cast<size_t>(c) < num_categories_);
  return lo_ + static_cast<double>(c + 1) * width_;
}

double Categorizer::LowerBoundDistance(Symbol c, double value) const {
  const double lo = IntervalLow(c);
  const double hi = IntervalHigh(c);
  if (value < lo) {
    return lo - value;
  }
  if (value > hi) {
    return value - hi;
  }
  return 0.0;
}

}  // namespace warpindex
