#include "suffixtree/st_filter.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <unordered_set>

namespace warpindex {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

StFilter::StFilter(const Dataset& dataset, StFilterOptions options)
    : options_(options),
      categorizer_([&] {
        const DatasetStats stats = dataset.ComputeStats();
        // Guard against a degenerate constant-valued dataset.
        const double lo = stats.global_min;
        const double hi = stats.global_max > lo ? stats.global_max : lo + 1.0;
        return Categorizer::EqualWidth(lo, hi, options.num_categories);
      }()) {
  for (const Sequence& s : dataset.sequences()) {
    tree_.AddString(categorizer_.CategorizeSequence(s));
  }
}

std::vector<SequenceId> StFilter::FindCandidates(
    const Sequence& query, double epsilon, StFilterQueryStats* stats) const {
  assert(!query.empty());
  const size_t m = query.size();
  const bool sum = options_.combiner == DtwCombiner::kSum;

  std::vector<SequenceId> candidates;
  std::unordered_set<int64_t> pages;

  // DFS over the tree. Each frame enters a node's incoming edge with the
  // DP column computed for the path *above* that edge.
  struct Frame {
    SuffixTree::NodeIndex node;
    std::vector<double> col;  // empty <=> no symbols consumed yet
    size_t depth = 0;         // symbols consumed above this edge
  };
  std::vector<Frame> stack;
  for (SuffixTree::NodeIndex child = tree_.FirstChild(tree_.root());
       child != SuffixTree::kNoNode; child = tree_.NextSibling(child)) {
    stack.push_back({child, {}, 0});
  }
  if (stats != nullptr) {
    ++stats->nodes_visited;  // the root itself
    pages.insert(tree_.PageOf(tree_.root(), options_.page_size_bytes));
  }

  std::vector<double> next(m);
  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    if (stats != nullptr) {
      ++stats->nodes_visited;
      pages.insert(tree_.PageOf(frame.node, options_.page_size_bytes));
    }

    const size_t begin = tree_.EdgeBegin(frame.node);
    const size_t end = tree_.EdgeEnd(frame.node);
    bool pruned = false;
    size_t depth = frame.depth;
    std::vector<double>& col = frame.col;

    for (size_t pos = begin; pos < end; ++pos) {
      const Symbol symbol = tree_.SymbolAt(pos);
      if (tree_.IsTerminator(symbol)) {
        // End of some data string. Whole match <=> the path spells the
        // entire string (terminator reached at exactly its length).
        const int64_t string_id = tree_.TerminatorString(symbol);
        if (depth == tree_.StringLength(string_id) && !col.empty() &&
            col[m - 1] <= epsilon) {
          candidates.push_back(static_cast<SequenceId>(string_id));
        }
        // Symbols past a terminator belong to later strings; stop.
        pruned = true;
        break;
      }

      // Advance the time-warping DP by one path symbol. Interval costs
      // lower-bound the true element costs.
      double row_min = kInf;
      if (col.empty()) {
        // First path symbol: D(0,0) = c(0,0); D(0,j) = combine(c, D(0,j-1)).
        col.resize(m);
        double upstream = 0.0;
        for (size_t j = 0; j < m; ++j) {
          const double cost =
              categorizer_.LowerBoundDistance(symbol, query[j]);
          if (j == 0) {
            col[j] = cost;
          } else {
            col[j] = sum ? cost + upstream : std::max(cost, upstream);
          }
          upstream = col[j];
          row_min = std::min(row_min, col[j]);
        }
      } else {
        for (size_t j = 0; j < m; ++j) {
          const double cost =
              categorizer_.LowerBoundDistance(symbol, query[j]);
          double best = col[j];  // (i-1, j)
          if (j > 0) {
            best = std::min(best, col[j - 1]);   // (i-1, j-1)
            best = std::min(best, next[j - 1]);  // (i, j-1)
          }
          next[j] = sum ? cost + best : std::max(cost, best);
          row_min = std::min(row_min, next[j]);
        }
        col.swap(next);
      }
      if (stats != nullptr) {
        stats->dp_cells += m;
      }
      ++depth;
      if (row_min > epsilon) {
        pruned = true;  // nothing below can qualify
        break;
      }
    }

    if (pruned) {
      continue;
    }
    for (SuffixTree::NodeIndex child = tree_.FirstChild(frame.node);
         child != SuffixTree::kNoNode; child = tree_.NextSibling(child)) {
      stack.push_back({child, col, depth});
    }
  }

  if (stats != nullptr) {
    stats->pages_accessed = pages.size();
  }
  return candidates;
}

std::vector<StFilter::SubsequenceCandidate>
StFilter::FindSubsequenceCandidates(const Sequence& query, double epsilon,
                                    size_t min_length, size_t max_length,
                                    StFilterQueryStats* stats) const {
  assert(!query.empty());
  assert(min_length >= 1 && min_length <= max_length);
  const size_t m = query.size();
  const bool sum = options_.combiner == DtwCombiner::kSum;

  std::vector<SubsequenceCandidate> candidates;
  std::unordered_set<int64_t> pages;
  const auto touch = [&](SuffixTree::NodeIndex n) {
    if (stats != nullptr) {
      ++stats->nodes_visited;
      pages.insert(tree_.PageOf(n, options_.page_size_bytes));
    }
  };

  // Emits one candidate per suffix occurrence below `node`, for a match of
  // `match_length` symbols ending on `node`'s edge. `depth_above` is the
  // symbol depth at the top of `node`'s edge.
  const auto emit_subtree = [&](SuffixTree::NodeIndex node,
                                size_t depth_above, size_t match_length) {
    struct SubFrame {
      SuffixTree::NodeIndex node;
      size_t depth_above;
    };
    std::vector<SubFrame> sub;
    sub.push_back({node, depth_above});
    while (!sub.empty()) {
      const SubFrame frame = sub.back();
      sub.pop_back();
      const SuffixTree::NodeIndex first = tree_.FirstChild(frame.node);
      if (first == SuffixTree::kNoNode) {
        // Leaf: its suffix starts at EdgeBegin - depth_above.
        const size_t suffix_start =
            tree_.EdgeBegin(frame.node) - frame.depth_above;
        int64_t string_id = 0;
        size_t offset = 0;
        if (tree_.LocatePosition(suffix_start, &string_id, &offset)) {
          candidates.push_back({static_cast<SequenceId>(string_id), offset,
                                match_length});
        }
        continue;
      }
      const size_t child_depth = frame.depth_above +
                                 (tree_.EdgeEnd(frame.node) -
                                  tree_.EdgeBegin(frame.node));
      for (SuffixTree::NodeIndex child = first;
           child != SuffixTree::kNoNode; child = tree_.NextSibling(child)) {
        sub.push_back({child, child_depth});
      }
    }
  };

  struct Frame {
    SuffixTree::NodeIndex node;
    std::vector<double> col;
    size_t depth = 0;
  };
  std::vector<Frame> stack;
  for (SuffixTree::NodeIndex child = tree_.FirstChild(tree_.root());
       child != SuffixTree::kNoNode; child = tree_.NextSibling(child)) {
    stack.push_back({child, {}, 0});
  }
  touch(tree_.root());

  std::vector<double> next(m);
  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    touch(frame.node);

    const size_t begin = tree_.EdgeBegin(frame.node);
    const size_t end = tree_.EdgeEnd(frame.node);
    bool pruned = false;
    size_t depth = frame.depth;
    std::vector<double>& col = frame.col;

    for (size_t pos = begin; pos < end; ++pos) {
      const Symbol symbol = tree_.SymbolAt(pos);
      if (tree_.IsTerminator(symbol)) {
        pruned = true;  // paths never continue across a terminator
        break;
      }
      double row_min = kInf;
      if (col.empty()) {
        col.resize(m);
        double upstream = 0.0;
        for (size_t j = 0; j < m; ++j) {
          const double cost =
              categorizer_.LowerBoundDistance(symbol, query[j]);
          col[j] = j == 0 ? cost
                          : (sum ? cost + upstream
                                 : std::max(cost, upstream));
          upstream = col[j];
          row_min = std::min(row_min, col[j]);
        }
      } else {
        for (size_t j = 0; j < m; ++j) {
          const double cost =
              categorizer_.LowerBoundDistance(symbol, query[j]);
          double best = col[j];
          if (j > 0) {
            best = std::min(best, col[j - 1]);
            best = std::min(best, next[j - 1]);
          }
          next[j] = sum ? cost + best : std::max(cost, best);
          row_min = std::min(row_min, next[j]);
        }
        col.swap(next);
      }
      if (stats != nullptr) {
        stats->dp_cells += m;
      }
      ++depth;
      if (depth >= min_length && depth <= max_length &&
          col[m - 1] <= epsilon) {
        emit_subtree(frame.node, frame.depth, depth);
      }
      if (row_min > epsilon || depth >= max_length) {
        pruned = true;
        break;
      }
    }

    if (pruned) {
      continue;
    }
    for (SuffixTree::NodeIndex child = tree_.FirstChild(frame.node);
         child != SuffixTree::kNoNode; child = tree_.NextSibling(child)) {
      stack.push_back({child, col, depth});
    }
  }

  if (stats != nullptr) {
    stats->pages_accessed = pages.size();
  }
  return candidates;
}

}  // namespace warpindex
