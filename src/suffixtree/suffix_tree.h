// Generalized suffix tree over symbol sequences (Ukkonen's online
// algorithm), the index structure of the ST-Filter baseline [18].
//
// Strings are appended to one global text, each followed by a unique
// negative terminator symbol, and the tree is extended online — the
// classical generalized-suffix-tree construction. Terminators are unique,
// so no query over non-negative symbols can match across a string
// boundary; traversals simply stop at the first negative symbol on an
// edge.
//
// Memory layout: nodes live in one arena with first-child/next-sibling
// links (no per-node hash maps) — 28 bytes per node, which is what makes
// million-node trees feasible and also what the paper's "the suffix tree
// gets large" criticism is about: ~2 nodes per input symbol no matter how
// compactly each node is stored.

#ifndef WARPINDEX_SUFFIXTREE_SUFFIX_TREE_H_
#define WARPINDEX_SUFFIXTREE_SUFFIX_TREE_H_

#include <cstdint>
#include <vector>

#include "suffixtree/categorizer.h"

namespace warpindex {

class SuffixTree {
 public:
  using NodeIndex = int32_t;
  static constexpr NodeIndex kNoNode = -1;

  SuffixTree();

  // Appends `symbols` (all must be >= 0) as string number num_strings()
  // and extends the tree. Returns the string's id.
  int64_t AddString(const std::vector<Symbol>& symbols);

  size_t num_strings() const { return string_ranges_.size(); }
  size_t num_nodes() const { return nodes_.size(); }
  // Length of string `id`, excluding its terminator.
  size_t StringLength(int64_t id) const;
  // Total text length including terminators.
  size_t text_size() const { return text_.size(); }

  // Approximate in-memory footprint (text + node arena), used for the
  // paged cost model.
  size_t ApproxBytes() const;

  NodeIndex root() const { return 0; }

  // Navigation (edge label of `n` = text[EdgeBegin(n), EdgeEnd(n)) ).
  NodeIndex FirstChild(NodeIndex n) const { return nodes_[Idx(n)].first_child; }
  NodeIndex NextSibling(NodeIndex n) const {
    return nodes_[Idx(n)].next_sibling;
  }
  size_t EdgeBegin(NodeIndex n) const {
    return static_cast<size_t>(nodes_[Idx(n)].start);
  }
  size_t EdgeEnd(NodeIndex n) const;
  Symbol SymbolAt(size_t pos) const { return text_[pos]; }
  bool IsTerminator(Symbol s) const { return s < 0; }
  // The string a terminator symbol belongs to.
  int64_t TerminatorString(Symbol s) const { return -(s + 1); }

  // Exact substring query over non-negative symbols (testing aid).
  bool ContainsSubstring(const std::vector<Symbol>& symbols) const;

  // Maps a global text position to (string id, offset within string).
  // Returns false when `pos` holds a terminator.
  bool LocatePosition(size_t pos, int64_t* string_id, size_t* offset) const;

  // Number of suffix-tree pages for a given page size, assuming nodes are
  // packed `page_size / kNodeBytes` per page in creation order.
  size_t NumPages(size_t page_size_bytes) const;
  // Page holding node `n` under that layout.
  int64_t PageOf(NodeIndex n, size_t page_size_bytes) const;

  static constexpr size_t kNodeBytes = 28;

 private:
  struct Node {
    int32_t start = 0;  // first text position of the incoming edge label
    int32_t end = 0;    // one past the last position; kOpenEnd for leaves
    NodeIndex suffix_link = kNoNode;
    NodeIndex first_child = kNoNode;
    NodeIndex next_sibling = kNoNode;
  };
  static constexpr int32_t kOpenEnd = -1;

  static size_t Idx(NodeIndex n) { return static_cast<size_t>(n); }

  NodeIndex NewNode(int32_t start, int32_t end);
  NodeIndex FindChild(NodeIndex parent, Symbol first_symbol) const;
  void AddChild(NodeIndex parent, NodeIndex child);
  void ReplaceChild(NodeIndex parent, NodeIndex old_child,
                    NodeIndex new_child);
  size_t EdgeLength(NodeIndex n) const;
  void Extend(size_t pos);

  std::vector<Symbol> text_;
  std::vector<Node> nodes_;
  // (begin offset in text_, length) per string, excluding terminators.
  std::vector<std::pair<size_t, size_t>> string_ranges_;

  // Ukkonen's active point state.
  NodeIndex active_node_ = 0;
  size_t active_edge_ = 0;  // text position identifying the edge
  size_t active_length_ = 0;
  size_t remainder_ = 0;
};

}  // namespace warpindex

#endif  // WARPINDEX_SUFFIXTREE_SUFFIX_TREE_H_
