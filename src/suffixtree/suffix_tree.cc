#include "suffixtree/suffix_tree.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace warpindex {

SuffixTree::SuffixTree() {
  NewNode(0, 0);  // root; its edge fields are unused
}

SuffixTree::NodeIndex SuffixTree::NewNode(int32_t start, int32_t end) {
  assert(nodes_.size() <
         static_cast<size_t>(std::numeric_limits<NodeIndex>::max()));
  Node n;
  n.start = start;
  n.end = end;
  nodes_.push_back(n);
  return static_cast<NodeIndex>(nodes_.size() - 1);
}

size_t SuffixTree::EdgeEnd(NodeIndex n) const {
  const Node& node = nodes_[Idx(n)];
  return node.end == kOpenEnd ? text_.size() : static_cast<size_t>(node.end);
}

size_t SuffixTree::EdgeLength(NodeIndex n) const {
  return EdgeEnd(n) - static_cast<size_t>(nodes_[Idx(n)].start);
}

SuffixTree::NodeIndex SuffixTree::FindChild(NodeIndex parent,
                                            Symbol first_symbol) const {
  NodeIndex child = nodes_[Idx(parent)].first_child;
  while (child != kNoNode) {
    if (text_[static_cast<size_t>(nodes_[Idx(child)].start)] ==
        first_symbol) {
      return child;
    }
    child = nodes_[Idx(child)].next_sibling;
  }
  return kNoNode;
}

void SuffixTree::AddChild(NodeIndex parent, NodeIndex child) {
  nodes_[Idx(child)].next_sibling = nodes_[Idx(parent)].first_child;
  nodes_[Idx(parent)].first_child = child;
}

void SuffixTree::ReplaceChild(NodeIndex parent, NodeIndex old_child,
                              NodeIndex new_child) {
  NodeIndex* slot = &nodes_[Idx(parent)].first_child;
  while (*slot != kNoNode) {
    if (*slot == old_child) {
      nodes_[Idx(new_child)].next_sibling = nodes_[Idx(old_child)].next_sibling;
      *slot = new_child;
      nodes_[Idx(old_child)].next_sibling = kNoNode;
      return;
    }
    slot = &nodes_[Idx(*slot)].next_sibling;
  }
  assert(false && "old child not found");
}

void SuffixTree::Extend(size_t pos) {
  const Symbol symbol = text_[pos];
  ++remainder_;
  NodeIndex need_link = kNoNode;
  auto add_link = [&](NodeIndex n) {
    if (need_link != kNoNode) {
      nodes_[Idx(need_link)].suffix_link = n;
    }
    need_link = n;
  };

  while (remainder_ > 0) {
    if (active_length_ == 0) {
      active_edge_ = pos;
    }
    const NodeIndex child = FindChild(active_node_, text_[active_edge_]);
    if (child == kNoNode) {
      const NodeIndex leaf =
          NewNode(static_cast<int32_t>(pos), kOpenEnd);
      AddChild(active_node_, leaf);
      add_link(active_node_);
    } else {
      if (active_length_ >= EdgeLength(child)) {
        active_edge_ += EdgeLength(child);
        active_length_ -= EdgeLength(child);
        active_node_ = child;
        continue;  // walk down, retry at deeper node
      }
      if (text_[static_cast<size_t>(nodes_[Idx(child)].start) +
                active_length_] == symbol) {
        // Symbol already present on the edge: rule 3, stop here.
        ++active_length_;
        add_link(active_node_);
        break;
      }
      // Split the edge.
      const int32_t child_start = nodes_[Idx(child)].start;
      const NodeIndex split = NewNode(
          child_start, child_start + static_cast<int32_t>(active_length_));
      ReplaceChild(active_node_, child, split);
      const NodeIndex leaf = NewNode(static_cast<int32_t>(pos), kOpenEnd);
      AddChild(split, leaf);
      nodes_[Idx(child)].start =
          child_start + static_cast<int32_t>(active_length_);
      AddChild(split, child);
      add_link(split);
    }
    --remainder_;
    if (active_node_ == root() && active_length_ > 0) {
      --active_length_;
      active_edge_ = pos - remainder_ + 1;
    } else if (active_node_ != root()) {
      const NodeIndex link = nodes_[Idx(active_node_)].suffix_link;
      active_node_ = link != kNoNode ? link : root();
    }
  }
}

int64_t SuffixTree::AddString(const std::vector<Symbol>& symbols) {
  const int64_t string_id = static_cast<int64_t>(string_ranges_.size());
  const size_t begin = text_.size();
  string_ranges_.emplace_back(begin, symbols.size());
  text_.reserve(text_.size() + symbols.size() + 1);
  for (const Symbol s : symbols) {
    assert(s >= 0);
    text_.push_back(s);
    Extend(text_.size() - 1);
  }
  // Unique terminator, strictly negative.
  text_.push_back(static_cast<Symbol>(-(string_id + 1)));
  Extend(text_.size() - 1);
  return string_id;
}

size_t SuffixTree::StringLength(int64_t id) const {
  assert(id >= 0 && static_cast<size_t>(id) < string_ranges_.size());
  return string_ranges_[static_cast<size_t>(id)].second;
}

size_t SuffixTree::ApproxBytes() const {
  return text_.size() * sizeof(Symbol) + nodes_.size() * kNodeBytes;
}

bool SuffixTree::ContainsSubstring(const std::vector<Symbol>& symbols) const {
  NodeIndex node = root();
  size_t matched_on_edge = 0;
  NodeIndex edge_node = kNoNode;
  for (const Symbol s : symbols) {
    assert(s >= 0);
    if (edge_node == kNoNode) {
      edge_node = FindChild(node, s);
      if (edge_node == kNoNode) {
        return false;
      }
      matched_on_edge = 1;
    } else {
      const size_t pos =
          static_cast<size_t>(nodes_[Idx(edge_node)].start) + matched_on_edge;
      if (pos >= EdgeEnd(edge_node) || text_[pos] != s) {
        if (pos < EdgeEnd(edge_node)) {
          return false;
        }
        node = edge_node;
        edge_node = FindChild(node, s);
        if (edge_node == kNoNode) {
          return false;
        }
        matched_on_edge = 1;
        continue;
      }
      ++matched_on_edge;
    }
  }
  return true;
}

bool SuffixTree::LocatePosition(size_t pos, int64_t* string_id,
                                size_t* offset) const {
  assert(pos < text_.size());
  if (text_[pos] < 0) {
    return false;  // terminator
  }
  // string_ranges_ begins are strictly increasing; find the last range
  // starting at or before pos.
  size_t lo = 0;
  size_t hi = string_ranges_.size();
  while (lo + 1 < hi) {
    const size_t mid = (lo + hi) / 2;
    if (string_ranges_[mid].first <= pos) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const auto& [begin, length] = string_ranges_[lo];
  assert(pos >= begin && pos < begin + length);
  *string_id = static_cast<int64_t>(lo);
  *offset = pos - begin;
  return true;
}

size_t SuffixTree::NumPages(size_t page_size_bytes) const {
  const size_t nodes_per_page =
      std::max<size_t>(1, page_size_bytes / kNodeBytes);
  return (nodes_.size() + nodes_per_page - 1) / nodes_per_page;
}

int64_t SuffixTree::PageOf(NodeIndex n, size_t page_size_bytes) const {
  const size_t nodes_per_page =
      std::max<size_t>(1, page_size_bytes / kNodeBytes);
  return static_cast<int64_t>(Idx(n) / nodes_per_page);
}

}  // namespace warpindex
