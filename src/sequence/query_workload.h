// Query workload generation (paper §5.1).
//
// Each query sequence is produced by: (1) selecting a random data sequence;
// (2) drawing, for every element, a random value from [-std/2, +std/2]
// where `std` is the standard deviation of the selected sequence; and (3)
// adding that value to the element. The paper runs 100 such queries per
// experiment configuration.

#ifndef WARPINDEX_SEQUENCE_QUERY_WORKLOAD_H_
#define WARPINDEX_SEQUENCE_QUERY_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "sequence/dataset.h"
#include "sequence/sequence.h"

namespace warpindex {

struct QueryWorkloadOptions {
  size_t num_queries = 100;
  uint64_t seed = 7;
};

// Generates perturbed-copy queries over `dataset` per the paper's recipe.
// Requires a non-empty dataset. Deterministic in the seed.
std::vector<Sequence> GenerateQueryWorkload(
    const Dataset& dataset, const QueryWorkloadOptions& options);

// Single-query variant: perturbs `base` with the paper's recipe.
Sequence PerturbSequence(const Sequence& base, uint64_t seed);

}  // namespace warpindex

#endif  // WARPINDEX_SEQUENCE_QUERY_WORKLOAD_H_
