// Dataset: an in-memory collection of sequences plus summary statistics and
// a binary serialization format.
//
// A Dataset is the hand-off point between workload generators and the
// storage engine (storage/sequence_store.h), which lays sequences out in
// pages and charges I/O costs.

#ifndef WARPINDEX_SEQUENCE_DATASET_H_
#define WARPINDEX_SEQUENCE_DATASET_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sequence/sequence.h"

namespace warpindex {

// Summary statistics over the sequences of a dataset.
struct DatasetStats {
  size_t num_sequences = 0;
  size_t total_elements = 0;
  size_t min_length = 0;
  size_t max_length = 0;
  double avg_length = 0.0;
  // Global element range; the ST-Filter categorizer partitions it.
  double global_min = 0.0;
  double global_max = 0.0;
};

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<Sequence> sequences);

  // Appends a sequence; its id is set to its position.
  void Add(Sequence s);

  size_t size() const { return sequences_.size(); }
  bool empty() const { return sequences_.empty(); }

  const Sequence& operator[](size_t i) const { return sequences_[i]; }
  const std::vector<Sequence>& sequences() const { return sequences_; }

  DatasetStats ComputeStats() const;

  // Binary serialization:
  //   magic "WIDS" | u32 version | u64 count | per sequence: u64 len,
  //   doubles.  Little-endian host assumed (checked by magic round-trip in
  //   tests).
  Status SaveToFile(const std::string& path) const;
  static Status LoadFromFile(const std::string& path, Dataset* out);

 private:
  std::vector<Sequence> sequences_;
};

}  // namespace warpindex

#endif  // WARPINDEX_SEQUENCE_DATASET_H_
