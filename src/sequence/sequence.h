// Sequence: the fundamental data type of the library.
//
// A sequence is an ordered list of numeric elements (paper §2). Sequences in
// a database may have different lengths — that is the whole point of the
// time-warping distance.

#ifndef WARPINDEX_SEQUENCE_SEQUENCE_H_
#define WARPINDEX_SEQUENCE_SEQUENCE_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace warpindex {

// Identifier of a sequence within a Dataset / SequenceStore.
using SequenceId = int64_t;
inline constexpr SequenceId kInvalidSequenceId = -1;

// Value-semantic numeric sequence. Copyable and movable.
class Sequence {
 public:
  Sequence() = default;
  explicit Sequence(std::vector<double> elements,
                    SequenceId id = kInvalidSequenceId)
      : elements_(std::move(elements)), id_(id) {}

  Sequence(const Sequence&) = default;
  Sequence& operator=(const Sequence&) = default;
  Sequence(Sequence&&) = default;
  Sequence& operator=(Sequence&&) = default;

  size_t size() const { return elements_.size(); }
  bool empty() const { return elements_.empty(); }

  double operator[](size_t i) const {
    assert(i < elements_.size());
    return elements_[i];
  }

  // First(S) / Last(S) in the paper's notation. Require non-empty.
  double First() const {
    assert(!elements_.empty());
    return elements_.front();
  }
  double Last() const {
    assert(!elements_.empty());
    return elements_.back();
  }

  // Greatest(S) / Smallest(S): max and min element. O(|S|); computed on
  // demand (FeatureVector caches all four — see feature.h).
  double Greatest() const;
  double Smallest() const;

  // Mean and (population) standard deviation of the elements; the query
  // generator perturbs elements by U[-std/2, +std/2] (paper §5.1).
  double Mean() const;
  double StdDev() const;

  const std::vector<double>& elements() const { return elements_; }
  const double* data() const { return elements_.data(); }

  SequenceId id() const { return id_; }
  void set_id(SequenceId id) { id_ = id; }

  void Append(double value) { elements_.push_back(value); }
  void Reserve(size_t n) { elements_.reserve(n); }

  // Contiguous subsequence [begin, begin + length); used by the
  // subsequence-matching extension. Requires the range to be in bounds.
  Sequence Slice(size_t begin, size_t length) const;

  // "<s1, s2, ..., sk>", truncated with an ellipsis beyond `max_elements`.
  std::string ToString(size_t max_elements = 8) const;

  friend bool operator==(const Sequence& a, const Sequence& b) {
    return a.elements_ == b.elements_;
  }

 private:
  std::vector<double> elements_;
  SequenceId id_ = kInvalidSequenceId;
};

}  // namespace warpindex

#endif  // WARPINDEX_SEQUENCE_SEQUENCE_H_
