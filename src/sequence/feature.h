// The paper's 4-tuple feature vector and the D_tw-lb lower-bound distance.
//
// Feature(S) = (First(S), Last(S), Greatest(S), Smallest(S))      [§4.2]
// D_tw-lb(S, Q) = L_inf(Feature(S), Feature(Q))                   [Def. 3]
//
// Properties (proved in the paper, tested in tests/feature_test.cc and
// tests/lower_bound_property_test.cc):
//   * invariant under time warping (warping only repeats elements),
//   * D_tw-lb(S, Q) <= D_tw(S, Q) with L_inf base distance (Theorem 1),
//   * D_tw-lb satisfies the triangular inequality (Theorem 2), so a
//     multi-dimensional index over feature vectors never produces a false
//     dismissal (Corollary 1).

#ifndef WARPINDEX_SEQUENCE_FEATURE_H_
#define WARPINDEX_SEQUENCE_FEATURE_H_

#include <array>
#include <string>

#include "sequence/sequence.h"

namespace warpindex {

// Dimensionality of the paper's feature space.
inline constexpr int kFeatureDims = 4;

// The time-warping-invariant 4-tuple extracted from a sequence.
struct FeatureVector {
  double first = 0.0;
  double last = 0.0;
  double greatest = 0.0;
  double smallest = 0.0;

  // The tuple as a point in 4-d space, in index order
  // (first, last, greatest, smallest).
  std::array<double, kFeatureDims> AsPoint() const {
    return {first, last, greatest, smallest};
  }

  std::string ToString() const;

  friend bool operator==(const FeatureVector& a, const FeatureVector& b) {
    return a.first == b.first && a.last == b.last &&
           a.greatest == b.greatest && a.smallest == b.smallest;
  }
};

// Extracts Feature(S) in a single O(|S|) pass. Requires |S| >= 1.
FeatureVector ExtractFeature(const Sequence& s);

// D_tw-lb(S, Q) = L_inf distance between the two feature tuples.
double DtwLowerBoundDistance(const FeatureVector& a, const FeatureVector& b);

// True iff DtwLowerBoundDistance(a, b) <= epsilon; the square-range
// predicate evaluated by the R-tree range query in Algorithm 1.
bool WithinLowerBoundTolerance(const FeatureVector& a, const FeatureVector& b,
                               double epsilon);

}  // namespace warpindex

#endif  // WARPINDEX_SEQUENCE_FEATURE_H_
