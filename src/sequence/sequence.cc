#include "sequence/sequence.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/stats.h"

namespace warpindex {

double Sequence::Greatest() const {
  assert(!elements_.empty());
  return *std::max_element(elements_.begin(), elements_.end());
}

double Sequence::Smallest() const {
  assert(!elements_.empty());
  return *std::min_element(elements_.begin(), elements_.end());
}

double Sequence::Mean() const { return warpindex::Mean(elements_); }

double Sequence::StdDev() const { return warpindex::StdDev(elements_); }

Sequence Sequence::Slice(size_t begin, size_t length) const {
  assert(begin + length <= elements_.size());
  return Sequence(std::vector<double>(elements_.begin() + begin,
                                      elements_.begin() + begin + length));
}

std::string Sequence::ToString(size_t max_elements) const {
  std::ostringstream os;
  os << "<";
  const size_t shown = std::min(max_elements, elements_.size());
  for (size_t i = 0; i < shown; ++i) {
    if (i > 0) {
      os << ", ";
    }
    os << elements_[i];
  }
  if (shown < elements_.size()) {
    os << ", ... (" << elements_.size() << " elements)";
  }
  os << ">";
  return os.str();
}

}  // namespace warpindex
