#include "sequence/transforms.h"

#include <algorithm>
#include <cassert>

namespace warpindex {

Sequence Shift(const Sequence& s, double offset) {
  Sequence out;
  out.Reserve(s.size());
  for (double v : s.elements()) {
    out.Append(v + offset);
  }
  return out;
}

Sequence Scale(const Sequence& s, double factor) {
  Sequence out;
  out.Reserve(s.size());
  for (double v : s.elements()) {
    out.Append(v * factor);
  }
  return out;
}

Sequence ZNormalize(const Sequence& s) {
  assert(!s.empty());
  const double mean = s.Mean();
  const double std = s.StdDev();
  Sequence out;
  out.Reserve(s.size());
  for (double v : s.elements()) {
    out.Append(std > 0.0 ? (v - mean) / std : 0.0);
  }
  return out;
}

Sequence MinMaxNormalize(const Sequence& s) {
  assert(!s.empty());
  const double lo = s.Smallest();
  const double hi = s.Greatest();
  const double span = hi - lo;
  Sequence out;
  out.Reserve(s.size());
  for (double v : s.elements()) {
    out.Append(span > 0.0 ? (v - lo) / span : 0.0);
  }
  return out;
}

Sequence MovingAverage(const Sequence& s, size_t window) {
  assert(window >= 1);
  assert(s.size() >= window);
  Sequence out;
  out.Reserve(s.size() - window + 1);
  double sum = 0.0;
  for (size_t i = 0; i < s.size(); ++i) {
    sum += s[i];
    if (i + 1 >= window) {
      out.Append(sum / static_cast<double>(window));
      sum -= s[i + 1 - window];
    }
  }
  return out;
}

Sequence Difference(const Sequence& s) {
  assert(s.size() >= 2);
  Sequence out;
  out.Reserve(s.size() - 1);
  for (size_t i = 1; i < s.size(); ++i) {
    out.Append(s[i] - s[i - 1]);
  }
  return out;
}

}  // namespace warpindex
