#include "sequence/query_workload.h"

#include <cassert>

#include "common/prng.h"

namespace warpindex {
namespace {

Sequence PerturbWith(const Sequence& base, Prng* prng) {
  const double half_std = base.StdDev() / 2.0;
  Sequence query;
  query.Reserve(base.size());
  for (double v : base.elements()) {
    query.Append(v + prng->UniformDouble(-half_std, half_std));
  }
  return query;
}

}  // namespace

std::vector<Sequence> GenerateQueryWorkload(
    const Dataset& dataset, const QueryWorkloadOptions& options) {
  assert(!dataset.empty());
  Prng prng(options.seed);
  std::vector<Sequence> queries;
  queries.reserve(options.num_queries);
  for (size_t i = 0; i < options.num_queries; ++i) {
    const size_t pick = static_cast<size_t>(
        prng.UniformInt(0, static_cast<int64_t>(dataset.size()) - 1));
    queries.push_back(PerturbWith(dataset[pick], &prng));
  }
  return queries;
}

Sequence PerturbSequence(const Sequence& base, uint64_t seed) {
  Prng prng(seed);
  return PerturbWith(base, &prng);
}

}  // namespace warpindex
