#include "sequence/dataset_io.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace warpindex {

Status ParseSequenceLine(const std::string& line, Sequence* out) {
  Sequence result;
  const char* cursor = line.c_str();
  const char* end = cursor + line.size();
  while (cursor < end) {
    // Skip separators.
    while (cursor < end &&
           (*cursor == ',' || std::isspace(static_cast<unsigned char>(
                                  *cursor)) != 0)) {
      ++cursor;
    }
    if (cursor >= end) {
      break;
    }
    char* token_end = nullptr;
    const double v = std::strtod(cursor, &token_end);
    if (token_end == cursor) {
      return Status::InvalidArgument(std::string("bad token at: ") + cursor);
    }
    result.Append(v);
    cursor = token_end;
  }
  if (result.empty()) {
    return Status::InvalidArgument("no values on line");
  }
  *out = std::move(result);
  return Status::Ok();
}

Status LoadDatasetFromCsv(const std::string& path, Dataset* out) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open for reading: " + path);
  }
  Dataset dataset;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    // Skip blanks and comments.
    size_t first = 0;
    while (first < line.size() &&
           std::isspace(static_cast<unsigned char>(line[first])) != 0) {
      ++first;
    }
    if (first == line.size() || line[first] == '#') {
      continue;
    }
    Sequence s;
    const Status status = ParseSequenceLine(line, &s);
    if (!status.ok()) {
      std::ostringstream err;
      err << path << ":" << line_number << ": " << status.message();
      return Status::InvalidArgument(err.str());
    }
    dataset.Add(std::move(s));
  }
  if (in.bad()) {
    return Status::IoError("read error: " + path);
  }
  *out = std::move(dataset);
  return Status::Ok();
}

Status SaveDatasetToCsv(const std::string& path, const Dataset& dataset) {
  std::ofstream outfile(path);
  if (!outfile) {
    return Status::IoError("cannot open for writing: " + path);
  }
  char buf[64];
  for (const Sequence& s : dataset.sequences()) {
    for (size_t i = 0; i < s.size(); ++i) {
      std::snprintf(buf, sizeof(buf), "%.17g", s[i]);
      if (i > 0) {
        outfile << ',';
      }
      outfile << buf;
    }
    outfile << '\n';
  }
  outfile.flush();
  if (!outfile) {
    return Status::IoError("write error: " + path);
  }
  return Status::Ok();
}

}  // namespace warpindex
