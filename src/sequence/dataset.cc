#include "sequence/dataset.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <memory>

namespace warpindex {
namespace {

constexpr char kMagic[4] = {'W', 'I', 'D', 'S'};
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) {
      std::fclose(f);
    }
  }
};
using FileHandle = std::unique_ptr<std::FILE, FileCloser>;

bool WriteBytes(std::FILE* f, const void* data, size_t n) {
  return std::fwrite(data, 1, n, f) == n;
}

bool ReadBytes(std::FILE* f, void* data, size_t n) {
  return std::fread(data, 1, n, f) == n;
}

}  // namespace

Dataset::Dataset(std::vector<Sequence> sequences)
    : sequences_(std::move(sequences)) {
  for (size_t i = 0; i < sequences_.size(); ++i) {
    sequences_[i].set_id(static_cast<SequenceId>(i));
  }
}

void Dataset::Add(Sequence s) {
  s.set_id(static_cast<SequenceId>(sequences_.size()));
  sequences_.push_back(std::move(s));
}

DatasetStats Dataset::ComputeStats() const {
  DatasetStats stats;
  stats.num_sequences = sequences_.size();
  if (sequences_.empty()) {
    return stats;
  }
  stats.min_length = std::numeric_limits<size_t>::max();
  stats.global_min = std::numeric_limits<double>::infinity();
  stats.global_max = -std::numeric_limits<double>::infinity();
  for (const Sequence& s : sequences_) {
    stats.total_elements += s.size();
    stats.min_length = std::min(stats.min_length, s.size());
    stats.max_length = std::max(stats.max_length, s.size());
    for (double v : s.elements()) {
      stats.global_min = std::min(stats.global_min, v);
      stats.global_max = std::max(stats.global_max, v);
    }
  }
  stats.avg_length = static_cast<double>(stats.total_elements) /
                     static_cast<double>(stats.num_sequences);
  return stats;
}

Status Dataset::SaveToFile(const std::string& path) const {
  FileHandle file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) {
    return Status::IoError("cannot open for writing: " + path);
  }
  std::FILE* f = file.get();
  const uint64_t count = sequences_.size();
  if (!WriteBytes(f, kMagic, sizeof(kMagic)) ||
      !WriteBytes(f, &kVersion, sizeof(kVersion)) ||
      !WriteBytes(f, &count, sizeof(count))) {
    return Status::IoError("short write: " + path);
  }
  for (const Sequence& s : sequences_) {
    const uint64_t len = s.size();
    if (!WriteBytes(f, &len, sizeof(len)) ||
        !WriteBytes(f, s.data(), len * sizeof(double))) {
      return Status::IoError("short write: " + path);
    }
  }
  return Status::Ok();
}

Status Dataset::LoadFromFile(const std::string& path, Dataset* out) {
  FileHandle file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::FILE* f = file.get();
  char magic[4];
  uint32_t version = 0;
  uint64_t count = 0;
  if (!ReadBytes(f, magic, sizeof(magic)) ||
      !ReadBytes(f, &version, sizeof(version)) ||
      !ReadBytes(f, &count, sizeof(count))) {
    return Status::IoError("short read: " + path);
  }
  if (!std::equal(magic, magic + 4, kMagic)) {
    return Status::InvalidArgument("bad magic in " + path);
  }
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported dataset version in " + path);
  }
  std::vector<Sequence> sequences;
  sequences.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t len = 0;
    if (!ReadBytes(f, &len, sizeof(len))) {
      return Status::IoError("short read: " + path);
    }
    std::vector<double> elements(len);
    if (len > 0 && !ReadBytes(f, elements.data(), len * sizeof(double))) {
      return Status::IoError("short read: " + path);
    }
    sequences.emplace_back(std::move(elements));
  }
  *out = Dataset(std::move(sequences));
  return Status::Ok();
}

}  // namespace warpindex
