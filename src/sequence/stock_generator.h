// Synthetic stand-in for the paper's S&P 500 stock dataset.
//
// The paper uses 545 daily-close price series scraped from
// biz.swcp.com/stocks (long dead) with an average length of 231. The
// experiments rely on three properties of that data, all preserved here:
//   1. sequences of *different* lengths (listings start/stop on different
//      days), so only a warping distance applies;
//   2. realistic price autocorrelation (prices are near-random-walks, so
//      First/Last/Greatest/Smallest spread well in feature space);
//   3. magnitudes in the dollars range, so that the paper's tolerance
//      values select between ~0.2% and a few % of the database.
//
// We model each series as a geometric random walk with per-series drift and
// volatility: p_{i+1} = p_i * (1 + mu + sigma * g_i), g_i ~ N(0, 1), start
// price uniform in a dollars range, lengths drawn around the paper's mean
// of 231. See DESIGN.md ("Substitutions").

#ifndef WARPINDEX_SEQUENCE_STOCK_GENERATOR_H_
#define WARPINDEX_SEQUENCE_STOCK_GENERATOR_H_

#include <cstdint>

#include "sequence/dataset.h"

namespace warpindex {

struct StockDataOptions {
  // Defaults replicate the paper's corpus shape: 545 series, mean length
  // ~231.
  size_t num_sequences = 545;
  size_t mean_length = 231;
  size_t min_length = 60;
  size_t max_length = 500;
  double start_price_min = 5.0;
  double start_price_max = 120.0;
  // Per-step drift is uniform in [-drift_range, +drift_range].
  double drift_range = 0.0005;
  // Per-series volatility is uniform in [vol_min, vol_max].
  double vol_min = 0.005;
  double vol_max = 0.03;
  uint64_t seed = 2001;  // ICDE 2001
};

// Generates the synthetic stock dataset. Deterministic in the seed.
Dataset GenerateStockDataset(const StockDataOptions& options);

}  // namespace warpindex

#endif  // WARPINDEX_SEQUENCE_STOCK_GENERATOR_H_
