#include "sequence/feature.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace warpindex {

std::string FeatureVector::ToString() const {
  std::ostringstream os;
  os << "(first=" << first << ", last=" << last << ", greatest=" << greatest
     << ", smallest=" << smallest << ")";
  return os.str();
}

FeatureVector ExtractFeature(const Sequence& s) {
  assert(!s.empty());
  FeatureVector f;
  f.first = s[0];
  f.last = s[s.size() - 1];
  f.greatest = s[0];
  f.smallest = s[0];
  for (size_t i = 1; i < s.size(); ++i) {
    f.greatest = std::max(f.greatest, s[i]);
    f.smallest = std::min(f.smallest, s[i]);
  }
  return f;
}

double DtwLowerBoundDistance(const FeatureVector& a, const FeatureVector& b) {
  const double d_first = std::fabs(a.first - b.first);
  const double d_last = std::fabs(a.last - b.last);
  const double d_greatest = std::fabs(a.greatest - b.greatest);
  const double d_smallest = std::fabs(a.smallest - b.smallest);
  return std::max(std::max(d_first, d_last),
                  std::max(d_greatest, d_smallest));
}

bool WithinLowerBoundTolerance(const FeatureVector& a, const FeatureVector& b,
                               double epsilon) {
  return DtwLowerBoundDistance(a, b) <= epsilon;
}

}  // namespace warpindex
