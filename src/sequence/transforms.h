// Sequence transformations from the similarity-search literature the paper
// builds on (§1): shifting, scaling, normalization [9,12,16], and moving
// average [17,21]. Real corpora are usually preprocessed with one of these
// before warping-distance search (e.g. z-normalized stock returns), so the
// library ships them as first-class utilities.

#ifndef WARPINDEX_SEQUENCE_TRANSFORMS_H_
#define WARPINDEX_SEQUENCE_TRANSFORMS_H_

#include "sequence/sequence.h"

namespace warpindex {

// S + c: adds `offset` to every element.
Sequence Shift(const Sequence& s, double offset);

// S * c: multiplies every element by `factor`.
Sequence Scale(const Sequence& s, double factor);

// (S - mean(S)) / std(S). A constant sequence (std == 0) maps to all
// zeros. Requires a non-empty sequence.
Sequence ZNormalize(const Sequence& s);

// Min-max normalization into [0, 1]. A constant sequence maps to all
// zeros. Requires a non-empty sequence.
Sequence MinMaxNormalize(const Sequence& s);

// Simple moving average with the given window (>= 1). Output has length
// |S| - window + 1; requires |S| >= window.
Sequence MovingAverage(const Sequence& s, size_t window);

// First differences: <s_2 - s_1, ..., s_n - s_{n-1}>. Output has length
// |S| - 1; requires |S| >= 2. (Price series are often differenced before
// similarity search.)
Sequence Difference(const Sequence& s);

}  // namespace warpindex

#endif  // WARPINDEX_SEQUENCE_TRANSFORMS_H_
