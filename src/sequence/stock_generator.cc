#include "sequence/stock_generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/prng.h"

namespace warpindex {

Dataset GenerateStockDataset(const StockDataOptions& options) {
  assert(options.min_length >= 2);
  assert(options.min_length <= options.mean_length);
  assert(options.mean_length <= options.max_length);

  Prng prng(options.seed);
  Dataset dataset;
  for (size_t i = 0; i < options.num_sequences; ++i) {
    // Length: normal around the mean, clamped to [min, max]. The paper only
    // reports the mean (231); a spread of ~mean/3 gives a plausible mix of
    // recently-listed and long-listed series.
    const double raw_length =
        static_cast<double>(options.mean_length) +
        prng.NextGaussian() * static_cast<double>(options.mean_length) / 3.0;
    const size_t length = std::clamp(
        static_cast<size_t>(std::llround(std::max(raw_length, 2.0))),
        options.min_length, options.max_length);

    const double drift =
        prng.UniformDouble(-options.drift_range, options.drift_range);
    const double vol = prng.UniformDouble(options.vol_min, options.vol_max);

    Sequence s;
    s.Reserve(length);
    double price =
        prng.UniformDouble(options.start_price_min, options.start_price_max);
    s.Append(price);
    for (size_t j = 1; j < length; ++j) {
      const double ret = drift + vol * prng.NextGaussian();
      // Clamp the per-step return so a fat Gaussian tail cannot produce a
      // negative price.
      price *= 1.0 + std::clamp(ret, -0.5, 0.5);
      price = std::max(price, 0.01);
      s.Append(price);
    }
    dataset.Add(std::move(s));
  }
  return dataset;
}

}  // namespace warpindex
