// Synthetic random-walk workload generator (paper §5.1).
//
//   s_i = s_{i-1} + z_i,  z_i ~ U[-0.1, 0.1] IID,  s_1 ~ U[1, 10].
//
// Experiments 3 and 4 (Figures 4 and 5) use this generator with fixed or
// varying sequence count and length.

#ifndef WARPINDEX_SEQUENCE_RANDOM_WALK_GENERATOR_H_
#define WARPINDEX_SEQUENCE_RANDOM_WALK_GENERATOR_H_

#include <cstdint>

#include "sequence/dataset.h"

namespace warpindex {

struct RandomWalkOptions {
  size_t num_sequences = 1000;
  // When min_length == max_length all sequences share one length (the
  // paper's synthetic setup); otherwise lengths are uniform in the range.
  size_t min_length = 1000;
  size_t max_length = 1000;
  double step_min = -0.1;  // z_i lower bound
  double step_max = 0.1;   // z_i upper bound
  double start_min = 1.0;  // s_1 lower bound
  double start_max = 10.0; // s_1 upper bound
  uint64_t seed = 42;
};

// Generates a dataset per the options. Deterministic in the seed.
Dataset GenerateRandomWalkDataset(const RandomWalkOptions& options);

}  // namespace warpindex

#endif  // WARPINDEX_SEQUENCE_RANDOM_WALK_GENERATOR_H_
