#include "sequence/random_walk_generator.h"

#include <cassert>

#include "common/prng.h"

namespace warpindex {

Dataset GenerateRandomWalkDataset(const RandomWalkOptions& options) {
  assert(options.min_length >= 1);
  assert(options.min_length <= options.max_length);
  assert(options.step_min <= options.step_max);
  assert(options.start_min <= options.start_max);

  Prng prng(options.seed);
  Dataset dataset;
  for (size_t i = 0; i < options.num_sequences; ++i) {
    const size_t length =
        options.min_length == options.max_length
            ? options.min_length
            : static_cast<size_t>(prng.UniformInt(
                  static_cast<int64_t>(options.min_length),
                  static_cast<int64_t>(options.max_length)));
    Sequence s;
    s.Reserve(length);
    double value = prng.UniformDouble(options.start_min, options.start_max);
    s.Append(value);
    for (size_t j = 1; j < length; ++j) {
      value += prng.UniformDouble(options.step_min, options.step_max);
      s.Append(value);
    }
    dataset.Add(std::move(s));
  }
  return dataset;
}

}  // namespace warpindex
