// Text import/export for datasets, so downstream users can load their own
// corpora: one sequence per line, elements separated by commas and/or
// whitespace; blank lines and lines starting with '#' are ignored.
// (The binary format lives on Dataset itself; this is the interchange
// path.)

#ifndef WARPINDEX_SEQUENCE_DATASET_IO_H_
#define WARPINDEX_SEQUENCE_DATASET_IO_H_

#include <string>

#include "common/status.h"
#include "sequence/dataset.h"

namespace warpindex {

// Parses `path` into `out` (replacing its contents). Fails with
// kInvalidArgument on the first malformed token (message includes the
// line number) and kIoError if the file cannot be read. Empty sequences
// (lines with no values) are rejected.
Status LoadDatasetFromCsv(const std::string& path, Dataset* out);

// Writes one comma-separated line per sequence with round-trip-exact
// formatting (%.17g).
Status SaveDatasetToCsv(const std::string& path, const Dataset& dataset);

// Parses a single line of separated values into a sequence; used by the
// loader and handy for quick tooling. Returns kInvalidArgument on
// malformed input.
Status ParseSequenceLine(const std::string& line, Sequence* out);

}  // namespace warpindex

#endif  // WARPINDEX_SEQUENCE_DATASET_IO_H_
