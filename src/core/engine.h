// Engine: the library facade. Owns the dataset, the paged sequence store,
// the feature index, and (optionally) the comparison baselines, and
// exposes uniform query entry points plus the disk cost model.
//
// Typical use (see examples/quickstart.cc):
//
//   Engine engine(std::move(dataset), EngineOptions{});
//   SearchResult r = engine.Search(query, /*epsilon=*/0.1);
//   for (SequenceId id : r.matches) { ... }
//
// Thread-safety contract: all const query entry points — Search,
// SearchWith, SearchKnn, SearchSubsequences — are safe to call
// concurrently from any number of threads. The read path holds no shared
// mutable state: the index buffer pool is internally lock-striped, and
// per-query metrics land in an internally synchronized registry. Each
// caller must pass its own Trace/DtwScratch (those are per-thread
// objects). Mutations — Insert, Remove, Rebuild* — require external
// exclusion: no query may run concurrently with them. For a pooled
// multi-threaded serving loop, see exec/query_executor.h and
// docs/CONCURRENCY.md.

#ifndef WARPINDEX_CORE_ENGINE_H_
#define WARPINDEX_CORE_ENGINE_H_

#include <memory>
#include <string_view>
#include <vector>

#include "core/engine_like.h"
#include "core/feature_index.h"
#include "core/lb_scan.h"
#include "core/naive_scan.h"
#include "core/search_method.h"
#include "core/st_filter_search.h"
#include "core/subsequence_index.h"
#include "core/tw_knn_search.h"
#include "core/tw_sim_search.h"
#include "dtw/dtw.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "plan/cascade_search.h"
#include "sequence/dataset.h"
#include "storage/buffer_pool.h"
#include "storage/disk_model.h"
#include "storage/sequence_store.h"
#include "suffixtree/st_filter.h"

namespace warpindex {

enum class MethodKind {
  kTwSimSearch,
  kNaiveScan,
  kLbScan,
  kStFilter,
  // TW-Sim-Search with the planned lower-bound cascade between the index
  // filter and exact DTW (src/plan/). Identical answers, fewer DTW
  // evaluations; see docs/PLANNER.md.
  kTwSimSearchCascade,
};

const char* MethodKindName(MethodKind kind);

struct EngineOptions {
  // Storage and index page size (paper §5.1: 1 KB).
  size_t page_size_bytes = 1024;
  // Similarity model; the paper's default is L_inf (Definition 2).
  DtwOptions dtw = DtwOptions::Linf();
  // Feature index configuration.
  SplitPolicy split_policy = SplitPolicy::kQuadratic;
  bool bulk_load = true;
  // R*-style insert tuning for the feature index (see rtree/rtree.h).
  // The defaults reproduce the paper configuration; the streaming ingest
  // path (src/ingest/) is the intended consumer — delta inserts and
  // compacted rebuilds keep insert-built trees near bulk-load quality
  // with forced reinsertion + a distribution-factor R* split + bulk-load
  // headroom (bulk_fill_fraction < 1).
  double rtree_min_fill_fraction = 0.4;
  bool rtree_forced_reinsert = false;
  double rtree_reinsert_fraction = 0.3;
  double rtree_split_distribution_factor = 0.0;
  double rtree_bulk_fill_fraction = 1.0;
  // Build the ST-Filter baseline too (its suffix tree is expensive; only
  // the comparison benches need it).
  bool build_st_filter = false;
  size_t st_filter_categories = 100;
  // Index-page buffer pool frames for TW-Sim-Search (0 disables). With a
  // pool, hot index pages stop paying random reads across queries. The
  // pool is thread-safe (lock-striped shards), so queries stay safe to
  // run concurrently; see docs/CONCURRENCY.md.
  size_t index_buffer_pages = 0;
  // Insert the O(n) LB_Yi bound before exact DTW in TW-Sim-Search's
  // post-processing (answers unchanged, DTW cells drop). Off by default
  // to match the paper's Algorithm 1 exactly.
  bool lb_cascade = false;
  // Planner configuration for MethodKind::kTwSimSearchCascade (plan
  // mode, fixed plan, cost-model knobs). The default runs the full
  // lower-bound cascade on every query; see docs/PLANNER.md.
  CascadePlannerOptions cascade_planner;
  // Build the §6 subsequence-matching window index too (opt-in: its size
  // is O(total elements * window range / stride)).
  bool build_subsequence_index = false;
  size_t subsequence_min_window = 16;
  size_t subsequence_max_window = 64;
  size_t subsequence_stride = 1;
  // Simulated disk parameters for ElapsedMillis().
  DiskParameters disk;
  // Registry the engine records per-query metrics into. Defaults to the
  // process-wide MetricsRegistry::Global(); tests point it at their own.
  MetricsRegistry* metrics = nullptr;
};

class Engine : public EngineLike {
 public:
  // Takes ownership of the dataset.
  Engine(Dataset dataset, EngineOptions options);

  // ---- Persistence. A saved engine directory holds the dataset
  // (dataset.wids), the feature index (index.wirt), and the tombstone
  // list (tombstones.bin); Open() restores all three without rebuilding
  // the index. The optional ST-Filter is always rebuilt (its suffix tree
  // is a derived structure).

  // Writes this engine's state into `dir` (created if missing).
  Status Save(const std::string& dir) const;

  // Restores an engine saved with Save(). `options` must request the same
  // page size the index was built with (validated).
  static Status Open(const std::string& dir, EngineOptions options,
                     std::unique_ptr<Engine>* out);

  Engine(Engine&&) = delete;
  Engine& operator=(Engine&&) = delete;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // The paper's Algorithm 1 over the feature index. Attach a Trace to
  // record the query's span tree (see obs/trace.h and
  // docs/OBSERVABILITY.md); every query also lands in metrics().
  SearchResult Search(const Sequence& query, double epsilon,
                      Trace* trace = nullptr) const {
    return SearchWith(MethodKind::kTwSimSearch, query, epsilon, trace);
  }

  // Runs the selected method. kStFilter requires
  // options.build_st_filter == true. `scratch` (optional) provides
  // reusable DTW buffers — the concurrent executor passes one per worker
  // so repeated queries stop allocating; answers are unchanged.
  SearchResult SearchWith(MethodKind kind, const Sequence& query,
                          double epsilon, Trace* trace = nullptr,
                          DtwScratch* scratch = nullptr) const override;

  // Exact k-nearest-neighbor search under D_tw via the feature index
  // (lower-bound-guided filter and refine; see core/tw_knn_search.h).
  KnnResult SearchKnn(const Sequence& query, size_t k,
                      Trace* trace = nullptr) const override;

  // SearchKnn with a cross-partition pruning bound: the sharded engine's
  // per-shard searchers share one SharedKnnBound so each shard abandons
  // candidates the global k-th distance already excludes. With a foreign
  // bound active the local answer may omit globally-hopeless candidates;
  // only the shard merge is complete (see shard/sharded_engine.h).
  KnnResult SearchKnnBounded(const Sequence& query, size_t k, Trace* trace,
                             SharedKnnBound* shared_bound) const;

  // SearchKnn seeded with a valid upper bound on the k-th distance
  // (EngineLike); identical answers, fewer refinements.
  KnnResult SearchKnnSeeded(const Sequence& query, size_t k,
                            double seed_bound,
                            Trace* trace = nullptr) const override;

  // This engine IS a single-index engine (EngineLike).
  const Engine* AsSingleEngine() const override { return this; }

  // ---- Dynamic maintenance (paper §4.3.1: the index supports ordinary
  // insertion; the store appends / tombstones).
  //
  // The optional ST-Filter baseline is a static structure: after
  // Insert/Remove it reflects the dataset at its last build — call
  // RebuildStFilter() before comparing against it again.

  // Adds a sequence to the store and the feature index; returns its id.
  SequenceId Insert(Sequence s);

  // Removes a sequence from the store (tombstone) and the index. Returns
  // false if `id` is unknown or already removed.
  bool Remove(SequenceId id);

  // True iff `id` names a live sequence.
  bool Contains(SequenceId id) const { return store_.IsLive(id); }

  // Live sequence count (dataset().size() counts tombstones too).
  size_t live_size() const { return store_.num_live(); }

  // Rebuilds the ST-Filter over the current live sequences. Requires
  // options.build_st_filter.
  void RebuildStFilter();

  // ---- Subsequence matching (paper §6). Requires
  // options.build_subsequence_index. Matches inside tombstoned sequences
  // are suppressed (Remove() stays exact without a rebuild), but Insert()
  // leaves the window index blind to the new sequence — a silent
  // false-dismissal footgun. Insert() therefore marks the index STALE:
  // SearchSubsequences throws std::logic_error until
  // RebuildSubsequenceIndex() runs, so staleness is a hard error instead
  // of a quietly incomplete answer.
  bool has_subsequence_index() const {
    return subsequence_index_ != nullptr;
  }
  // True after an Insert() that the window index does not cover yet.
  bool subsequence_index_stale() const { return subsequence_index_stale_; }
  const SubsequenceIndex* subsequence_index() const {
    return subsequence_index_.get();
  }
  std::vector<SubsequenceMatch> SearchSubsequences(
      const Sequence& query, double epsilon,
      SearchCost* cost = nullptr) const;
  void RebuildSubsequenceIndex();

  const SearchMethod& method(MethodKind kind) const;
  // The TW-Sim-Search instance (never null); the concurrent executor's
  // intra-query parallel post-filter builds on its FilterAndFetch().
  const TwSimSearch& tw_sim_search() const { return *tw_sim_search_; }
  // The cascade variant (never null); the executor's parallel
  // cascade path builds on its FilterFetchAndPrune().
  const TwSimSearchCascade& tw_sim_search_cascade() const {
    return *tw_sim_search_cascade_;
  }
  bool has_st_filter() const { return st_filter_ != nullptr; }

  const Dataset& dataset() const { return dataset_; }
  const SequenceStore& store() const { return store_; }
  const FeatureIndex& feature_index() const { return feature_index_; }
  const StFilter* st_filter() const { return st_filter_.get(); }
  // Null unless options.index_buffer_pages > 0.
  const BufferPool* index_pool() const { return index_pool_.get(); }
  const DiskModel& disk_model() const { return disk_model_; }
  const EngineOptions& options() const { return options_; }
  DtwOptions dtw_options() const override { return options_.dtw; }

  // Simulated elapsed time of a query: measured CPU wall time plus the
  // disk model's cost for the recorded I/O.
  double ElapsedMillis(const SearchCost& cost) const override {
    return cost.wall_ms + disk_model_.CostMillis(cost.io);
  }

  // ---- Observability (see docs/OBSERVABILITY.md).

  // Point-in-time health of the engine's storage and index layers, the
  // core of /statusz (exec/introspection.h). Safe to call concurrently
  // with queries; one full index traversal, so poll it from dashboards,
  // not per query.
  struct Health {
    size_t dataset_sequences = 0;
    size_t live_sequences = 0;
    size_t index_entries = 0;
    RTreeHealth index;
    bool has_pool = false;
    BufferPool::StatsSnapshot pool;  // zeros when !has_pool
  };
  Health TakeHealthSnapshot() const;

  // The registry this engine records per-query metrics into.
  MetricsRegistry& metrics() const override { return *metrics_; }

  // Point-in-time view of metrics() for the exporters.
  MetricsRegistry::Snapshot MetricsSnapshot() const {
    return metrics_->TakeSnapshot();
  }

  // Appends `trace`'s spans to `path` as JSON lines (one span per line).
  Status ExportTrace(const Trace& trace, const std::string& path,
                     int64_t query_id = -1) const;

  // Writes `traces` to `path` as one Chrome/Perfetto trace-event JSON
  // document (overwrites; open it in ui.perfetto.dev). See
  // obs/exporters.h TraceEventsJson.
  Status ExportTraceEvents(const std::vector<const Trace*>& traces,
                           const std::string& path) const;

 private:
  // Restores from persisted parts (Open()).
  Engine(Dataset dataset, FeatureIndex index, EngineOptions options);

  void BuildMethods();
  void RegisterMetrics();
  void RecordQueryMetrics(MethodKind kind, const SearchResult& result) const;

  EngineOptions options_;
  Dataset dataset_;
  SequenceStore store_;
  FeatureIndex feature_index_;
  std::unique_ptr<StFilter> st_filter_;
  std::unique_ptr<SubsequenceIndex> subsequence_index_;
  // Set by Insert() while a subsequence index exists; cleared by
  // RebuildSubsequenceIndex(). Guards SearchSubsequences against silent
  // false dismissals on uncovered sequences.
  bool subsequence_index_stale_ = false;
  std::unique_ptr<BufferPool> index_pool_;
  DiskModel disk_model_;

  std::unique_ptr<TwSimSearch> tw_sim_search_;
  std::unique_ptr<TwSimSearchCascade> tw_sim_search_cascade_;
  std::unique_ptr<TwKnnSearch> tw_knn_search_;
  std::unique_ptr<NaiveScan> naive_scan_;
  std::unique_ptr<LbScan> lb_scan_;
  std::unique_ptr<StFilterSearch> st_filter_search_;

  // Metric handles, resolved once at construction (hot-path recording is
  // pointer increments, no registry lookups).
  MetricsRegistry* metrics_ = nullptr;
  Counter* queries_total_ = nullptr;
  Counter* matches_total_ = nullptr;
  Counter* pool_hits_total_ = nullptr;
  Counter* pool_misses_total_ = nullptr;
  Histogram* latency_ms_hist_ = nullptr;
  Histogram* candidate_ratio_hist_ = nullptr;
  Histogram* dtw_cells_hist_ = nullptr;
  Histogram* index_nodes_hist_ = nullptr;
  Histogram* knn_latency_ms_hist_ = nullptr;
  Counter* dtw_evals_total_ = nullptr;
  // Per-stage pruning counters (candidates-in / pruned per filtering
  // stage), pre-resolved for the known stage names.
  struct StagePruneHandles {
    std::string_view stage;
    Counter* in = nullptr;
    Counter* pruned = nullptr;
  };
  std::vector<StagePruneHandles> prune_handles_;
};

}  // namespace warpindex

#endif  // WARPINDEX_CORE_ENGINE_H_
