#include "core/search_method.h"

// Interface-only translation unit (keeps one vtable anchor out of line).

namespace warpindex {}  // namespace warpindex
