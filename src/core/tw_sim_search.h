// TW-Sim-Search: the paper's query processing algorithm (Algorithm 1).
//
//   Step-1  extract Feature(Q);
//   Step-2  square range query of radius epsilon on the 4-d feature index;
//   Step-3  candidate set := returned ids;
//   Step-4..7  for each candidate, read the sequence from the store and
//              keep it iff D_tw(S, Q) <= epsilon.
//
// Guarantees: no false dismissal (Theorem 1 + Corollary 1); the index
// range predicate equals "D_tw-lb <= epsilon", and D_tw-lb lower-bounds
// D_tw.

#ifndef WARPINDEX_CORE_TW_SIM_SEARCH_H_
#define WARPINDEX_CORE_TW_SIM_SEARCH_H_

#include "core/feature_index.h"
#include "core/search_method.h"
#include "dtw/dtw.h"
#include "storage/buffer_pool.h"
#include "storage/sequence_store.h"

namespace warpindex {

class TwSimSearch : public SearchMethod {
 public:
  // `index` and `store` must outlive this object. `index_pool` (optional,
  // borrowed) caches index pages across queries: hot pages (the root and
  // upper levels) stop paying random reads. The pool is itself
  // thread-safe (lock-striped shards, see storage/buffer_pool.h), so
  // Search stays safe to call from many threads even with a pool —
  // per-query hit/miss attribution lands in SearchCost, not on shared
  // counters.
  //
  // `lb_cascade` inserts the O(n) LB_Yi bound between the feature filter
  // and the exact DTW in Step-6 — D_tw-lb <= LB_Yi <= D_tw, so a
  // candidate failing LB_Yi needs no DP at all. (The cascade idea later
  // became standard practice, e.g. in the UCR suite.) Answers are
  // unchanged; only dtw_cells drop.
  TwSimSearch(const FeatureIndex* index, const SequenceStore* store,
              DtwOptions dtw_options,
              const BufferPool* index_pool = nullptr,
              bool lb_cascade = false)
      : index_(index), store_(store), dtw_(dtw_options),
        index_pool_(index_pool), lb_cascade_(lb_cascade) {}

  const char* name() const override { return "TW-Sim-Search"; }

  // Algorithm 1 Steps 1-5 on their own: feature extraction, index range
  // query, and candidate fetch, with I/O and node costs accounted into
  // `result` (stages rtree_search + candidate_fetch). Returns the fetched
  // candidate sequences in index-return order. The concurrent executor
  // uses this to run the remaining post-filter step in parallel chunks;
  // SearchImpl composes it with PostFilter for the sequential path.
  std::vector<Sequence> FilterAndFetch(const Sequence& query,
                                       double epsilon, SearchResult* result,
                                       Trace* trace) const;

 protected:
  SearchResult SearchImpl(const Sequence& query, double epsilon,
                          Trace* trace, DtwScratch* scratch) const override;

 private:
  const FeatureIndex* index_;
  const SequenceStore* store_;
  Dtw dtw_;
  const BufferPool* index_pool_;
  bool lb_cascade_;
};

}  // namespace warpindex

#endif  // WARPINDEX_CORE_TW_SIM_SEARCH_H_
