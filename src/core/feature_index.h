// FeatureIndex: the paper's four-dimensional index (§4.3.1).
//
// Each data sequence S contributes one entry
//   < First(S), Last(S), Greatest(S), Smallest(S), ID(S) >
// inserted into an R-tree as a point rectangle. Queries are the square
// range queries of Algorithm 1 Step-2. Because D_tw-lb is the L_inf
// distance between feature tuples, "within epsilon in every dimension" is
// exactly "D_tw-lb <= epsilon", so the returned candidate set never loses
// a true match (Corollary 1 + Theorem 2).

#ifndef WARPINDEX_CORE_FEATURE_INDEX_H_
#define WARPINDEX_CORE_FEATURE_INDEX_H_

#include <vector>

#include "obs/trace.h"
#include "rtree/bulk_load.h"
#include "rtree/rtree.h"
#include "sequence/dataset.h"
#include "sequence/feature.h"

namespace warpindex {

struct FeatureIndexOptions {
  RTreeOptions rtree;
  // Build with STR bulk loading (paper §4.3.1 recommends bulk loading for
  // large initial databases); false = one-by-one insertion.
  bool bulk_load = true;
};

class FeatureIndex {
 public:
  // Builds the index over every sequence of `dataset`.
  FeatureIndex(const Dataset& dataset, FeatureIndexOptions options);

  // Adopts an existing tree (e.g. one loaded with LoadRTreeFromFile).
  // Requires tree.dims() == kFeatureDims.
  explicit FeatureIndex(RTree tree);

  // Algorithm 1 Step-2: ids of sequences whose feature point lies in the
  // square of radius epsilon around Feature(query). When a trace is
  // attached, node-visit counters land on the caller's open span.
  std::vector<SequenceId> RangeQuery(const FeatureVector& query_feature,
                                     double epsilon,
                                     RTreeQueryStats* stats = nullptr,
                                     Trace* trace = nullptr) const;

  // Incremental maintenance.
  void Insert(SequenceId id, const FeatureVector& feature);
  bool Remove(SequenceId id, const FeatureVector& feature);

  const RTree& rtree() const { return tree_; }
  size_t size() const { return tree_.size(); }
  // Index pages (the paper reports the R-tree at < 4% of the database
  // size; benches verify).
  size_t IndexPages() const { return tree_.node_count(); }

  static Point FeatureToPoint(const FeatureVector& f);

 private:
  RTree tree_;
};

}  // namespace warpindex

#endif  // WARPINDEX_CORE_FEATURE_INDEX_H_
