#include "core/st_filter_search.h"

#include <utility>

#include "common/timer.h"

namespace warpindex {

SearchResult StFilterSearch::SearchImpl(const Sequence& query,
                                        double epsilon, Trace* trace,
                                        DtwScratch* scratch) const {
  WallTimer timer;
  ThreadCpuTimer cpu_timer;
  SearchResult result;
  DtwScratch local_scratch;
  if (scratch == nullptr) {
    scratch = &local_scratch;  // reused across candidates within the query
  }

  std::vector<SequenceId> candidates;
  {
    StageTimer stage(&result.cost.stages, &result.cost.stages_cpu, trace, kStageStFilter);
    StFilterQueryStats st_stats;
    candidates = filter_->FindCandidates(query, epsilon, &st_stats);
    result.cost.index_nodes = st_stats.nodes_visited;
    result.cost.dtw_cells += st_stats.dp_cells;
    // Distinct suffix-tree pages touched, charged as random reads (node
    // placement in a disk-resident suffix tree has no useful locality).
    result.cost.io.RecordRandomRead(st_stats.pages_accessed);
    TraceCounter(trace, "st_nodes",
                 static_cast<double>(st_stats.nodes_visited));
  }
  result.num_candidates = candidates.size();

  std::vector<Sequence> fetched;
  {
    StageTimer stage(&result.cost.stages, &result.cost.stages_cpu, trace, kStageCandidateFetch);
    fetched.reserve(candidates.size());
    for (const SequenceId id : candidates) {
      if (!store_->IsLive(id)) {
        continue;  // tombstoned since the suffix tree was (re)built
      }
      fetched.push_back(store_->Fetch(id, &result.cost.io, trace));
    }
  }

  {
    StageTimer stage(&result.cost.stages, &result.cost.stages_cpu, trace, kStageDtwPostfilter);
    for (const Sequence& s : fetched) {
      ++result.cost.dtw_evals;
      const DtwResult d =
          dtw_.DistanceWithThreshold(s, query, epsilon, scratch);
      result.cost.dtw_cells += d.cells;
      if (d.distance <= epsilon) {
        result.matches.push_back(s.id());
        result.distances.push_back(d.distance);
      }
    }
    TraceCounter(trace, "dtw_cells",
                 static_cast<double>(result.cost.dtw_cells));
  }
  result.cost.wall_ms = timer.ElapsedMillis();
  result.cost.cpu_ms = cpu_timer.ElapsedMillis();
  return result;
}

}  // namespace warpindex
