#include "core/st_filter_search.h"

#include "common/timer.h"

namespace warpindex {

SearchResult StFilterSearch::Search(const Sequence& query,
                                    double epsilon) const {
  WallTimer timer;
  SearchResult result;

  StFilterQueryStats st_stats;
  const std::vector<SequenceId> candidates =
      filter_->FindCandidates(query, epsilon, &st_stats);
  result.cost.index_nodes = st_stats.nodes_visited;
  result.cost.dtw_cells += st_stats.dp_cells;
  // Distinct suffix-tree pages touched, charged as random reads (node
  // placement in a disk-resident suffix tree has no useful locality).
  result.cost.io.RecordRandomRead(st_stats.pages_accessed);
  result.num_candidates = candidates.size();

  for (const SequenceId id : candidates) {
    if (!store_->IsLive(id)) {
      continue;  // tombstoned since the suffix tree was (re)built
    }
    const Sequence s = store_->Fetch(id, &result.cost.io);
    const DtwResult d = dtw_.DistanceWithThreshold(s, query, epsilon);
    result.cost.dtw_cells += d.cells;
    if (d.distance <= epsilon) {
      result.matches.push_back(id);
    }
  }
  result.cost.wall_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace warpindex
