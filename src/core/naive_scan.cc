#include "core/naive_scan.h"

#include "common/timer.h"

namespace warpindex {

SearchResult NaiveScan::SearchImpl(const Sequence& query, double epsilon,
                                   Trace* trace,
                                   DtwScratch* scratch) const {
  WallTimer timer;
  ThreadCpuTimer cpu_timer;
  SearchResult result;
  DtwScratch local_scratch;
  if (scratch == nullptr) {
    scratch = &local_scratch;  // reused across sequences within the scan
  }
  // One sequential pass; exact-DTW time is carved out of the scan so the
  // stage breakdown partitions the query: storage_scan holds the
  // deserialize/iterate residue, dtw_postfilter the DP work.
  double dtw_ms = 0.0;
  double dtw_cpu_ms = 0.0;
  {
    ScopedSpan span(trace, kStageStorageScan);
    WallTimer scan_timer;
    ThreadCpuTimer scan_cpu_timer;
    store_->ScanAll(
        [&](SequenceId id, const Sequence& s) {
          WallTimer per_item;
          ThreadCpuTimer per_item_cpu;
          ++result.cost.dtw_evals;
          const DtwResult d =
              dtw_.DistanceWithThreshold(s, query, epsilon, scratch);
          dtw_ms += per_item.ElapsedMillis();
          dtw_cpu_ms += per_item_cpu.ElapsedMillis();
          result.cost.dtw_cells += d.cells;
          if (d.distance <= epsilon) {
            result.matches.push_back(id);
            result.distances.push_back(d.distance);
          }
          return true;
        },
        &result.cost.io, trace);
    result.cost.stages.Add(kStageStorageScan,
                           scan_timer.ElapsedMillis() - dtw_ms);
    result.cost.stages.Add(kStageDtwPostfilter, dtw_ms);
    result.cost.stages_cpu.Add(kStageStorageScan,
                               scan_cpu_timer.ElapsedMillis() - dtw_cpu_ms);
    result.cost.stages_cpu.Add(kStageDtwPostfilter, dtw_cpu_ms);
    TraceCounter(trace, "dtw_cells",
                 static_cast<double>(result.cost.dtw_cells));
  }
  // No filtering step: the paper's Figure 2 depicts the final answers as
  // Naive-Scan's "candidates".
  result.num_candidates = result.matches.size();
  result.cost.wall_ms = timer.ElapsedMillis();
  result.cost.cpu_ms = cpu_timer.ElapsedMillis();
  return result;
}

}  // namespace warpindex
