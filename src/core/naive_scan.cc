#include "core/naive_scan.h"

#include "common/timer.h"

namespace warpindex {

SearchResult NaiveScan::Search(const Sequence& query, double epsilon) const {
  WallTimer timer;
  SearchResult result;
  store_->ScanAll(
      [&](SequenceId id, const Sequence& s) {
        const DtwResult d = dtw_.DistanceWithThreshold(s, query, epsilon);
        result.cost.dtw_cells += d.cells;
        if (d.distance <= epsilon) {
          result.matches.push_back(id);
        }
        return true;
      },
      &result.cost.io);
  // No filtering step: the paper's Figure 2 depicts the final answers as
  // Naive-Scan's "candidates".
  result.num_candidates = result.matches.size();
  result.cost.wall_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace warpindex
