// ST-Filter as a whole-match search method (Park et al. [18]; §3.4):
// suffix-tree candidate filtering followed by exact-D_tw post-processing.

#ifndef WARPINDEX_CORE_ST_FILTER_SEARCH_H_
#define WARPINDEX_CORE_ST_FILTER_SEARCH_H_

#include "core/search_method.h"
#include "dtw/dtw.h"
#include "storage/sequence_store.h"
#include "suffixtree/st_filter.h"

namespace warpindex {

class StFilterSearch : public SearchMethod {
 public:
  // `filter` and `store` must outlive this object.
  StFilterSearch(const StFilter* filter, const SequenceStore* store,
                 DtwOptions dtw_options)
      : filter_(filter), store_(store), dtw_(dtw_options) {}

  const char* name() const override { return "ST-Filter"; }

 protected:
  SearchResult SearchImpl(const Sequence& query, double epsilon,
                          Trace* trace, DtwScratch* scratch) const override;

 private:
  const StFilter* filter_;
  const SequenceStore* store_;
  Dtw dtw_;
};

}  // namespace warpindex

#endif  // WARPINDEX_CORE_ST_FILTER_SEARCH_H_
