#include "core/subsequence_index.h"

#include <algorithm>
#include <cassert>
#include <deque>

#include "common/timer.h"
#include "rtree/bulk_load.h"

namespace warpindex {
namespace {

// Feature vectors of every window of length `w` in `s`, O(|s|) via
// monotonic deques. Calls `emit(offset, feature)`.
template <typename Emit>
void SlideWindows(const Sequence& s, size_t w, size_t stride, Emit emit) {
  if (s.size() < w) {
    return;
  }
  std::deque<size_t> max_dq;  // indices, values decreasing
  std::deque<size_t> min_dq;  // indices, values increasing
  for (size_t i = 0; i < s.size(); ++i) {
    while (!max_dq.empty() && s[max_dq.back()] <= s[i]) {
      max_dq.pop_back();
    }
    max_dq.push_back(i);
    while (!min_dq.empty() && s[min_dq.back()] >= s[i]) {
      min_dq.pop_back();
    }
    min_dq.push_back(i);
    if (i + 1 < w) {
      continue;
    }
    const size_t offset = i + 1 - w;
    if (max_dq.front() < offset) {
      max_dq.pop_front();
    }
    if (min_dq.front() < offset) {
      min_dq.pop_front();
    }
    if (offset % stride == 0) {
      FeatureVector f;
      f.first = s[offset];
      f.last = s[i];
      f.greatest = s[max_dq.front()];
      f.smallest = s[min_dq.front()];
      emit(offset, f);
    }
  }
}

}  // namespace

SubsequenceIndex::SubsequenceIndex(const Dataset* dataset,
                                   SubsequenceIndexOptions options)
    : dataset_(dataset),
      options_(options),
      tree_(kFeatureDims, options.rtree),
      dtw_(options.dtw) {
  assert(options_.min_window >= 1);
  assert(options_.min_window <= options_.max_window);
  assert(options_.stride >= 1);

  std::vector<RTreeEntry> entries;
  for (const Sequence& s : dataset_->sequences()) {
    for (size_t w = options_.min_window; w <= options_.max_window; ++w) {
      SlideWindows(s, w, options_.stride,
                   [&](size_t offset, const FeatureVector& f) {
                     const auto record_id =
                         static_cast<int64_t>(windows_.size());
                     windows_.push_back({s.id(), static_cast<uint32_t>(offset),
                                         static_cast<uint32_t>(w)});
                     const auto arr = f.AsPoint();
                     entries.push_back(RTreeEntry::Leaf(
                         Rect::FromPoint(
                             Point::FromArray(arr.data(), kFeatureDims)),
                         record_id));
                   });
    }
  }
  if (options_.bulk_load) {
    tree_ = BulkLoadStr(kFeatureDims, options_.rtree, std::move(entries));
  } else {
    for (const RTreeEntry& e : entries) {
      tree_.Insert(e.rect, e.record_id);
    }
  }
}

std::vector<SubsequenceMatch> SubsequenceIndex::Search(
    const Sequence& query, double epsilon, SearchCost* cost) const {
  assert(!query.empty());
  WallTimer timer;
  const FeatureVector qf = ExtractFeature(query);
  const auto arr = qf.AsPoint();
  const Rect range = Rect::SquareAround(
      Point::FromArray(arr.data(), kFeatureDims), epsilon);

  RTreeQueryStats rstats;
  const std::vector<int64_t> candidates = tree_.RangeSearch(range, &rstats);
  if (cost != nullptr) {
    cost->index_nodes += rstats.nodes_accessed;
    cost->io.RecordRandomRead(rstats.nodes_accessed);
  }

  std::vector<SubsequenceMatch> matches;
  for (const int64_t record_id : candidates) {
    const WindowRef& ref = windows_[static_cast<size_t>(record_id)];
    const Sequence window =
        (*dataset_)[static_cast<size_t>(ref.sequence_id)].Slice(ref.offset,
                                                                ref.length);
    const DtwResult d = dtw_.DistanceWithThreshold(window, query, epsilon);
    if (cost != nullptr) {
      cost->dtw_cells += d.cells;
    }
    if (d.distance <= epsilon) {
      matches.push_back({ref.sequence_id, ref.offset, ref.length,
                         d.distance});
    }
  }
  std::sort(matches.begin(), matches.end(),
            [](const SubsequenceMatch& a, const SubsequenceMatch& b) {
              if (a.sequence_id != b.sequence_id) {
                return a.sequence_id < b.sequence_id;
              }
              if (a.offset != b.offset) {
                return a.offset < b.offset;
              }
              return a.length < b.length;
            });
  if (cost != nullptr) {
    cost->wall_ms += timer.ElapsedMillis();
  }
  return matches;
}

}  // namespace warpindex
