#include "core/tw_knn_search.h"

#include <algorithm>
#include <cassert>
#include <queue>

#include "common/timer.h"
#include "sequence/feature.h"

namespace warpindex {

KnnResult TwKnnSearch::Search(const Sequence& query, size_t k,
                              Trace* trace) const {
  assert(!query.empty());
  assert(k >= 1);
  WallTimer timer;
  KnnResult result;

  const FeatureVector qf = ExtractFeature(query);
  const auto arr = qf.AsPoint();
  const Point qp = Point::FromArray(arr.data(), kFeatureDims);

  RTreeQueryStats rstats;
  RTree::LinfNearestIterator it =
      index_->rtree().NearestLinf(qp, &rstats);

  // Max-heap of the best k exact distances seen so far.
  std::priority_queue<KnnMatch, std::vector<KnnMatch>,
                      decltype([](const KnnMatch& a, const KnnMatch& b) {
                        return a.distance < b.distance;
                      })>
      top_k;

  // Index descent and exact refinement interleave in the incremental
  // loop, so both time shares are carved out of one `knn_refine` span.
  ScopedSpan span(trace, kStageKnnRefine);
  double descent_ms = 0.0;
  double fetch_ms = 0.0;
  double refine_ms = 0.0;
  WallTimer per_item;
  RTree::Neighbor candidate;
  while (true) {
    per_item.Reset();
    const bool has_next = it.Next(&candidate);
    descent_ms += per_item.ElapsedMillis();
    if (!has_next) {
      break;
    }
    if (top_k.size() == k && candidate.distance > top_k.top().distance) {
      // Every remaining record has lower bound >= this one's, hence exact
      // D_tw >= the current k-th distance: done (no false dismissal).
      break;
    }
    per_item.Reset();
    const Sequence s =
        store_->Fetch(candidate.record_id, &result.cost.io, trace);
    fetch_ms += per_item.ElapsedMillis();
    ++result.num_refined;
    per_item.Reset();
    DtwResult d;
    if (top_k.size() == k) {
      // Thresholded refinement: only distances that would enter the top-k
      // matter, so abandon above the current k-th distance.
      d = dtw_.DistanceWithThreshold(s, query, top_k.top().distance);
    } else {
      d = dtw_.Distance(s, query);
    }
    refine_ms += per_item.ElapsedMillis();
    result.cost.dtw_cells += d.cells;
    if (top_k.size() < k) {
      top_k.push({candidate.record_id, d.distance});
    } else if (d.distance < top_k.top().distance) {
      top_k.pop();
      top_k.push({candidate.record_id, d.distance});
    }
  }
  result.cost.stages.Add(kStageRtreeSearch, descent_ms);
  result.cost.stages.Add(kStageCandidateFetch, fetch_ms);
  result.cost.stages.Add(kStageKnnRefine, refine_ms);
  TraceCounter(trace, "refined", static_cast<double>(result.num_refined));
  TraceCounter(trace, "dtw_cells",
               static_cast<double>(result.cost.dtw_cells));
  TraceCounter(trace, "rtree_nodes",
               static_cast<double>(rstats.nodes_accessed));

  result.cost.index_nodes = rstats.nodes_accessed;
  result.cost.io.RecordRandomRead(rstats.nodes_accessed);
  result.neighbors.resize(top_k.size());
  for (size_t i = top_k.size(); i-- > 0;) {
    result.neighbors[i] = top_k.top();
    top_k.pop();
  }
  result.cost.wall_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace warpindex
