#include "core/tw_knn_search.h"

#include <algorithm>
#include <cassert>
#include <queue>

#include "common/timer.h"
#include "sequence/feature.h"

namespace warpindex {

KnnResult TwKnnSearch::Search(const Sequence& query, size_t k, Trace* trace,
                              SharedKnnBound* shared_bound) const {
  assert(!query.empty());
  assert(k >= 1);
  WallTimer timer;
  ThreadCpuTimer cpu_timer;
  KnnResult result;

  const FeatureVector qf = ExtractFeature(query);
  const auto arr = qf.AsPoint();
  const Point qp = Point::FromArray(arr.data(), kFeatureDims);

  RTreeQueryStats rstats;
  RTree::LinfNearestIterator it =
      index_->rtree().NearestLinf(qp, &rstats);

  // Max-heap of the best k matches seen so far: the top is the current
  // k-th place under the canonical (distance, id) order, i.e. the first
  // entry a better candidate evicts.
  std::priority_queue<KnnMatch, std::vector<KnnMatch>,
                      decltype(&KnnMatchOrder)>
      top_k(&KnnMatchOrder);

  // The tightest distance any candidate must beat (or tie, for the id
  // tie-break) to matter: our own k-th distance once the heap is full,
  // further tightened by what concurrent searchers over sibling
  // partitions have proven.
  const auto cutoff = [&]() {
    double c = top_k.size() == k ? top_k.top().distance : kInfiniteDistance;
    if (shared_bound != nullptr) {
      c = std::min(c, shared_bound->Current());
    }
    return c;
  };

  // Index descent and exact refinement interleave in the incremental
  // loop, so both time shares are carved out of one `knn_refine` span.
  ScopedSpan span(trace, kStageKnnRefine);
  double descent_ms = 0.0;
  double fetch_ms = 0.0;
  double refine_ms = 0.0;
  double descent_cpu_ms = 0.0;
  double fetch_cpu_ms = 0.0;
  double refine_cpu_ms = 0.0;
  WallTimer per_item;
  ThreadCpuTimer per_item_cpu;
  RTree::Neighbor candidate;
  while (true) {
    per_item.Reset();
    per_item_cpu.Reset();
    const bool has_next = it.Next(&candidate);
    descent_ms += per_item.ElapsedMillis();
    descent_cpu_ms += per_item_cpu.ElapsedMillis();
    if (!has_next) {
      break;
    }
    if (candidate.distance > cutoff()) {
      // Every remaining record has lower bound >= this one's, hence exact
      // D_tw >= the proven k-th distance: done (no false dismissal).
      // Strictly greater only — a candidate tying the cutoff can still
      // enter the answer through the id tie-break.
      break;
    }
    per_item.Reset();
    per_item_cpu.Reset();
    const Sequence s =
        store_->Fetch(candidate.record_id, &result.cost.io, trace);
    fetch_ms += per_item.ElapsedMillis();
    fetch_cpu_ms += per_item_cpu.ElapsedMillis();
    ++result.num_refined;
    per_item.Reset();
    per_item_cpu.Reset();
    const double threshold = cutoff();
    DtwResult d;
    if (threshold < kInfiniteDistance) {
      // Thresholded refinement: only distances at or below the cutoff
      // matter, so abandon above it (exact when d <= threshold).
      d = dtw_.DistanceWithThreshold(s, query, threshold);
    } else {
      d = dtw_.Distance(s, query);
    }
    refine_ms += per_item.ElapsedMillis();
    refine_cpu_ms += per_item_cpu.ElapsedMillis();
    result.cost.dtw_cells += d.cells;
    const KnnMatch match{candidate.record_id, d.distance};
    if (top_k.size() < k) {
      if (match.distance <= threshold) {
        top_k.push(match);
      }
    } else if (KnnMatchOrder(match, top_k.top())) {
      top_k.pop();
      top_k.push(match);
    }
    if (shared_bound != nullptr && top_k.size() == k) {
      shared_bound->Tighten(top_k.top().distance);
    }
  }
  result.cost.stages.Add(kStageRtreeSearch, descent_ms);
  result.cost.stages.Add(kStageCandidateFetch, fetch_ms);
  result.cost.stages.Add(kStageKnnRefine, refine_ms);
  result.cost.stages_cpu.Add(kStageRtreeSearch, descent_cpu_ms);
  result.cost.stages_cpu.Add(kStageCandidateFetch, fetch_cpu_ms);
  result.cost.stages_cpu.Add(kStageKnnRefine, refine_cpu_ms);
  TraceCounter(trace, "refined", static_cast<double>(result.num_refined));
  TraceCounter(trace, "dtw_cells",
               static_cast<double>(result.cost.dtw_cells));
  TraceCounter(trace, "rtree_nodes",
               static_cast<double>(rstats.nodes_accessed));

  result.cost.index_nodes = rstats.nodes_accessed;
  result.cost.io.RecordRandomRead(rstats.nodes_accessed);
  result.neighbors.resize(top_k.size());
  for (size_t i = top_k.size(); i-- > 0;) {
    result.neighbors[i] = top_k.top();
    top_k.pop();
  }
  result.cost.wall_ms = timer.ElapsedMillis();
  result.cost.cpu_ms = cpu_timer.ElapsedMillis();
  return result;
}

}  // namespace warpindex
