// Subsequence matching extension (paper §6, Concluding Remarks):
//
//   "Our method is easily applicable to subsequence matching ... It builds
//    the same index on the feature vectors from subsequences rather than
//    whole sequences. It also applies the same algorithm for query
//    processing."
//
// This module indexes every sliding window of the data sequences whose
// length falls in a configured range (offsets aligned to a stride), using
// the same 4-tuple features and the same R-tree. A query finds all windows
// within epsilon under D_tw. With stride == 1 the result is exact for the
// query class "windows with length in [min_window, max_window]"; larger
// strides trade completeness for index size (documented, measurable with
// bench/abl6_subsequence).
//
// Window features are extracted in O(n) per window length with monotonic
// min/max deques.

#ifndef WARPINDEX_CORE_SUBSEQUENCE_INDEX_H_
#define WARPINDEX_CORE_SUBSEQUENCE_INDEX_H_

#include <vector>

#include "core/search_method.h"
#include "dtw/dtw.h"
#include "rtree/rtree.h"
#include "sequence/dataset.h"
#include "sequence/feature.h"

namespace warpindex {

struct SubsequenceIndexOptions {
  size_t min_window = 16;
  size_t max_window = 64;
  // Offset stride; 1 indexes every offset (exact), w > 1 reduces index
  // size by w at the cost of missing windows at unaligned offsets.
  size_t stride = 1;
  RTreeOptions rtree;
  bool bulk_load = true;
  DtwOptions dtw = DtwOptions::Linf();
};

struct SubsequenceMatch {
  SequenceId sequence_id = kInvalidSequenceId;
  size_t offset = 0;
  size_t length = 0;
  double distance = 0.0;

  friend bool operator==(const SubsequenceMatch& a,
                         const SubsequenceMatch& b) {
    return a.sequence_id == b.sequence_id && a.offset == b.offset &&
           a.length == b.length;
  }
};

class SubsequenceIndex {
 public:
  // `dataset` must outlive this object (slices are cut from it at query
  // time).
  SubsequenceIndex(const Dataset* dataset, SubsequenceIndexOptions options);

  // All indexed windows W with D_tw(W, Q) <= epsilon, sorted by
  // (sequence, offset, length). `cost` (optional) accumulates index node
  // accesses and DTW cells.
  std::vector<SubsequenceMatch> Search(const Sequence& query, double epsilon,
                                       SearchCost* cost = nullptr) const;

  size_t num_windows() const { return windows_.size(); }
  const RTree& rtree() const { return tree_; }
  const SubsequenceIndexOptions& options() const { return options_; }

 private:
  struct WindowRef {
    SequenceId sequence_id;
    uint32_t offset;
    uint32_t length;
  };

  const Dataset* dataset_;
  SubsequenceIndexOptions options_;
  std::vector<WindowRef> windows_;
  RTree tree_;
  Dtw dtw_;
};

}  // namespace warpindex

#endif  // WARPINDEX_CORE_SUBSEQUENCE_INDEX_H_
