// Exact k-nearest-neighbor search under the time-warping distance.
//
// The paper observes that "most users are interested in just a few
// answers" (§5.2) but only formalizes range queries. kNN is the natural
// companion, and the paper's machinery supports it exactly: because
// D_tw-lb lower-bounds D_tw and is the L_inf metric over feature tuples,
// enumerating records in increasing L_inf feature distance (the R-tree's
// incremental nearest iterator) enumerates them in non-decreasing
// lower-bound order. The classical optimal filter-and-refine loop
// (Hjaltason & Samet / Seidl & Kriegel) then gives exact kNN:
//
//   while next candidate's lower bound <= current k-th exact distance:
//     refine with exact (thresholded) D_tw and update the top-k heap.
//
// No false dismissal for the same reason as Algorithm 1 (Theorem 1).

#ifndef WARPINDEX_CORE_TW_KNN_SEARCH_H_
#define WARPINDEX_CORE_TW_KNN_SEARCH_H_

#include <vector>

#include "core/feature_index.h"
#include "core/search_method.h"
#include "dtw/dtw.h"
#include "storage/sequence_store.h"

namespace warpindex {

struct KnnMatch {
  SequenceId id = kInvalidSequenceId;
  double distance = 0.0;  // exact D_tw

  friend bool operator==(const KnnMatch& a, const KnnMatch& b) {
    return a.id == b.id && a.distance == b.distance;
  }
};

struct KnnResult {
  // The k nearest sequences in non-decreasing D_tw order (fewer if the
  // database is smaller than k).
  std::vector<KnnMatch> neighbors;
  // Candidates refined with exact D_tw before the cutoff fired.
  size_t num_refined = 0;
  SearchCost cost;
};

class TwKnnSearch {
 public:
  // `index` and `store` must outlive this object.
  TwKnnSearch(const FeatureIndex* index, const SequenceStore* store,
              DtwOptions dtw_options)
      : index_(index), store_(store), dtw_(dtw_options) {}

  // Exact kNN of `query` under D_tw. Requires a non-empty query, k >= 1.
  // When a trace is attached, the filter-and-refine loop is recorded as
  // a `knn_refine` span with per-stage breakdown in the returned cost.
  KnnResult Search(const Sequence& query, size_t k,
                   Trace* trace = nullptr) const;

 private:
  const FeatureIndex* index_;
  const SequenceStore* store_;
  Dtw dtw_;
};

}  // namespace warpindex

#endif  // WARPINDEX_CORE_TW_KNN_SEARCH_H_
