// Exact k-nearest-neighbor search under the time-warping distance.
//
// The paper observes that "most users are interested in just a few
// answers" (§5.2) but only formalizes range queries. kNN is the natural
// companion, and the paper's machinery supports it exactly: because
// D_tw-lb lower-bounds D_tw and is the L_inf metric over feature tuples,
// enumerating records in increasing L_inf feature distance (the R-tree's
// incremental nearest iterator) enumerates them in non-decreasing
// lower-bound order. The classical optimal filter-and-refine loop
// (Hjaltason & Samet / Seidl & Kriegel) then gives exact kNN:
//
//   while next candidate's lower bound <= current k-th exact distance:
//     refine with exact (thresholded) D_tw and update the top-k heap.
//
// No false dismissal for the same reason as Algorithm 1 (Theorem 1).
//
// Determinism: ties at equal D_tw are broken by SequenceId (smaller id
// wins), so the answer — including WHICH sequences fill the k-th place
// when several tie there — is a pure function of the database and query,
// independent of heap insertion order, thread count, or shard count.
//
// Sharded search: a SharedKnnBound carries the best k-th distance any
// concurrent searcher has proven so far. Each per-shard search publishes
// its local k-th distance into the bound and prunes against the tightest
// value it sees; pruning is strictly-greater-than so distance ties at the
// bound survive for the id tie-break, keeping the K-shard merge
// bit-identical to a single-engine search (see docs/SHARDING.md).

#ifndef WARPINDEX_CORE_TW_KNN_SEARCH_H_
#define WARPINDEX_CORE_TW_KNN_SEARCH_H_

#include <atomic>
#include <vector>

#include "core/feature_index.h"
#include "core/search_method.h"
#include "dtw/dtw.h"
#include "storage/sequence_store.h"

namespace warpindex {

struct KnnMatch {
  SequenceId id = kInvalidSequenceId;
  double distance = 0.0;  // exact D_tw

  friend bool operator==(const KnnMatch& a, const KnnMatch& b) {
    return a.id == b.id && a.distance == b.distance;
  }
};

// The canonical neighbor order: by distance, ties by id. A KnnResult's
// neighbors are sorted by this everywhere (single engine and shard
// merge), which is what makes answers reproducible run to run.
inline bool KnnMatchOrder(const KnnMatch& a, const KnnMatch& b) {
  if (a.distance != b.distance) {
    return a.distance < b.distance;
  }
  return a.id < b.id;
}

struct KnnResult {
  // The k nearest sequences in non-decreasing D_tw order, equal
  // distances in increasing id order (fewer than k if the database is
  // smaller than k).
  std::vector<KnnMatch> neighbors;
  // Candidates refined with exact D_tw before the cutoff fired.
  size_t num_refined = 0;
  SearchCost cost;
};

// A monotonically tightening distance bound shared by concurrent kNN
// searchers over disjoint partitions of one database. Any published
// value is some searcher's proven local k-th distance, which upper-
// bounds the global k-th distance — so every reader may discard
// candidates whose distance (or lower bound) strictly exceeds
// Current(). Ties at the bound must be kept (id tie-break decides them).
//
// Thread-safety: Tighten/Current may race freely; the bound only ever
// decreases. A stale read is merely a looser (still correct) bound.
class SharedKnnBound {
 public:
  double Current() const { return bound_.load(std::memory_order_relaxed); }

  // Lowers the bound to `d` if tighter.
  void Tighten(double d) {
    double seen = bound_.load(std::memory_order_relaxed);
    while (d < seen && !bound_.compare_exchange_weak(
                           seen, d, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<double> bound_{kInfiniteDistance};
};

class TwKnnSearch {
 public:
  // `index` and `store` must outlive this object.
  TwKnnSearch(const FeatureIndex* index, const SequenceStore* store,
              DtwOptions dtw_options)
      : index_(index), store_(store), dtw_(dtw_options) {}

  // Exact kNN of `query` under D_tw. Requires a non-empty query, k >= 1.
  // When a trace is attached, the filter-and-refine loop is recorded as
  // a `knn_refine` span with per-stage breakdown in the returned cost.
  //
  // `shared_bound` (optional) tightens the refine threshold with the
  // best k-th distance concurrent searchers over OTHER partitions of the
  // same logical database have proven; this search publishes its own
  // k-th distance back. With a foreign bound active the LOCAL result may
  // legitimately omit candidates that cannot make the GLOBAL top-k, so
  // only the cross-partition merge of every searcher's neighbors is a
  // complete answer (see shard/sharded_engine.h).
  KnnResult Search(const Sequence& query, size_t k, Trace* trace = nullptr,
                   SharedKnnBound* shared_bound = nullptr) const;

 private:
  const FeatureIndex* index_;
  const SequenceStore* store_;
  Dtw dtw_;
};

}  // namespace warpindex

#endif  // WARPINDEX_CORE_TW_KNN_SEARCH_H_
