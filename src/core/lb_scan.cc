#include "core/lb_scan.h"

#include "common/timer.h"

namespace warpindex {

SearchResult LbScan::SearchImpl(const Sequence& query, double epsilon,
                                Trace* trace, DtwScratch* scratch) const {
  WallTimer timer;
  ThreadCpuTimer cpu_timer;
  SearchResult result;
  DtwScratch local_scratch;
  if (scratch == nullptr) {
    scratch = &local_scratch;  // reused across sequences within the scan
  }
  const Envelope query_env = ComputeEnvelope(query);
  const DtwOptions& options = dtw_.options();
  // One sequential pass; lower-bound and exact-DTW time are carved out of
  // the scan so the stage breakdown partitions the query.
  double lb_ms = 0.0;
  double dtw_ms = 0.0;
  double lb_cpu_ms = 0.0;
  double dtw_cpu_ms = 0.0;
  {
    ScopedSpan span(trace, kStageStorageScan);
    WallTimer scan_timer;
    ThreadCpuTimer scan_cpu_timer;
    store_->ScanAll(
        [&](SequenceId id, const Sequence& s) {
          ++result.cost.lb_evals;
          WallTimer per_item;
          ThreadCpuTimer per_item_cpu;
          const double lb = LbYiWithEnvelopes(s, ComputeEnvelope(s), query,
                                              query_env, options);
          lb_ms += per_item.ElapsedMillis();
          lb_cpu_ms += per_item_cpu.ElapsedMillis();
          if (lb > epsilon) {
            return true;  // filtered out, no exact evaluation
          }
          ++result.num_candidates;
          per_item.Reset();
          per_item_cpu.Reset();
          ++result.cost.dtw_evals;
          const DtwResult d =
              dtw_.DistanceWithThreshold(s, query, epsilon, scratch);
          dtw_ms += per_item.ElapsedMillis();
          dtw_cpu_ms += per_item_cpu.ElapsedMillis();
          result.cost.dtw_cells += d.cells;
          if (d.distance <= epsilon) {
            result.matches.push_back(id);
            result.distances.push_back(d.distance);
          }
          return true;
        },
        &result.cost.io, trace);
    result.cost.stages.Add(kStageStorageScan,
                           scan_timer.ElapsedMillis() - lb_ms - dtw_ms);
    result.cost.stages.Add(kStageLbYiCascade, lb_ms);
    result.cost.stages.Add(kStageDtwPostfilter, dtw_ms);
    result.cost.stages_cpu.Add(
        kStageStorageScan,
        scan_cpu_timer.ElapsedMillis() - lb_cpu_ms - dtw_cpu_ms);
    result.cost.stages_cpu.Add(kStageLbYiCascade, lb_cpu_ms);
    result.cost.stages_cpu.Add(kStageDtwPostfilter, dtw_cpu_ms);
    TraceCounter(trace, "lb_evals",
                 static_cast<double>(result.cost.lb_evals));
    TraceCounter(trace, "dtw_cells",
                 static_cast<double>(result.cost.dtw_cells));
  }
  result.cost.wall_ms = timer.ElapsedMillis();
  result.cost.cpu_ms = cpu_timer.ElapsedMillis();
  return result;
}

}  // namespace warpindex
