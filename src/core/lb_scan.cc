#include "core/lb_scan.h"

#include "common/timer.h"

namespace warpindex {

SearchResult LbScan::Search(const Sequence& query, double epsilon) const {
  WallTimer timer;
  SearchResult result;
  const Envelope query_env = ComputeEnvelope(query);
  const DtwCombiner combiner = dtw_.options().combiner;
  store_->ScanAll(
      [&](SequenceId id, const Sequence& s) {
        ++result.cost.lb_evals;
        const double lb = LbYiWithEnvelopes(s, ComputeEnvelope(s), query,
                                            query_env, combiner);
        if (lb > epsilon) {
          return true;  // filtered out, no exact evaluation
        }
        ++result.num_candidates;
        const DtwResult d = dtw_.DistanceWithThreshold(s, query, epsilon);
        result.cost.dtw_cells += d.cells;
        if (d.distance <= epsilon) {
          result.matches.push_back(id);
        }
        return true;
      },
      &result.cost.io);
  result.cost.wall_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace warpindex
