#include "core/feature_index.h"

#include <cassert>

namespace warpindex {

FeatureIndex::FeatureIndex(RTree tree) : tree_(std::move(tree)) {
  assert(tree_.dims() == kFeatureDims);
}

Point FeatureIndex::FeatureToPoint(const FeatureVector& f) {
  const auto arr = f.AsPoint();
  return Point::FromArray(arr.data(), kFeatureDims);
}

FeatureIndex::FeatureIndex(const Dataset& dataset,
                           FeatureIndexOptions options)
    : tree_([&] {
        if (!options.bulk_load) {
          return RTree(kFeatureDims, options.rtree);
        }
        std::vector<RTreeEntry> entries;
        entries.reserve(dataset.size());
        for (const Sequence& s : dataset.sequences()) {
          entries.push_back(RTreeEntry::Leaf(
              Rect::FromPoint(FeatureToPoint(ExtractFeature(s))), s.id()));
        }
        return BulkLoadStr(kFeatureDims, options.rtree, std::move(entries));
      }()) {
  if (!options.bulk_load) {
    for (const Sequence& s : dataset.sequences()) {
      tree_.Insert(Rect::FromPoint(FeatureToPoint(ExtractFeature(s))),
                   s.id());
    }
  }
}

std::vector<SequenceId> FeatureIndex::RangeQuery(
    const FeatureVector& query_feature, double epsilon,
    RTreeQueryStats* stats, Trace* trace) const {
  const Rect range =
      Rect::SquareAround(FeatureToPoint(query_feature), epsilon);
  return tree_.RangeSearch(range, stats, trace);
}

void FeatureIndex::Insert(SequenceId id, const FeatureVector& feature) {
  tree_.Insert(Rect::FromPoint(FeatureToPoint(feature)), id);
}

bool FeatureIndex::Remove(SequenceId id, const FeatureVector& feature) {
  return tree_.Delete(Rect::FromPoint(FeatureToPoint(feature)), id);
}

}  // namespace warpindex
