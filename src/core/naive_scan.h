// Naive-Scan (Berndt & Clifford [4]; paper §3.1): sequential scan of the
// whole database, exact D_tw per sequence.
//
// Per the paper's §5.1 note, the implementation is "slightly modified" to
// use the L_inf time-warping distance, whose thresholded evaluation can
// abandon a sequence as soon as a full DP row exceeds the tolerance.

#ifndef WARPINDEX_CORE_NAIVE_SCAN_H_
#define WARPINDEX_CORE_NAIVE_SCAN_H_

#include "core/search_method.h"
#include "dtw/dtw.h"
#include "storage/sequence_store.h"

namespace warpindex {

class NaiveScan : public SearchMethod {
 public:
  // `store` must outlive this object.
  NaiveScan(const SequenceStore* store, DtwOptions dtw_options)
      : store_(store), dtw_(dtw_options) {}

  const char* name() const override { return "Naive-Scan"; }

 protected:
  SearchResult SearchImpl(const Sequence& query, double epsilon,
                          Trace* trace, DtwScratch* scratch) const override;

 private:
  const SequenceStore* store_;
  Dtw dtw_;
};

}  // namespace warpindex

#endif  // WARPINDEX_CORE_NAIVE_SCAN_H_
