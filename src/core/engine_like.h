// EngineLike: the query-serving surface shared by the single-index
// Engine (core/engine.h) and the partitioned ShardedEngine
// (shard/sharded_engine.h).
//
// The concurrent executor (exec/query_executor.h) serves through this
// interface, so a thread pool built for one engine shape serves the
// other unchanged: Submit/SubmitBatch only ever need "run this method at
// this tolerance" plus the metrics registry the serving layer records
// into. Intra-query parallelism that reaches into TW-Sim-Search's
// internals (QueryExecutor::SearchParallel) is single-engine-only and
// guarded via AsSingleEngine().
//
// Thread-safety contract: like Engine, every method here must be safe to
// call concurrently from any number of threads (implementations keep
// per-query state on the stack or in caller-supplied objects).

#ifndef WARPINDEX_CORE_ENGINE_LIKE_H_
#define WARPINDEX_CORE_ENGINE_LIKE_H_

#include "core/search_method.h"
#include "core/tw_knn_search.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sequence/sequence.h"

namespace warpindex {

enum class MethodKind;
class Engine;
class IngestEngine;

class EngineLike {
 public:
  virtual ~EngineLike() = default;

  // Runs the selected range-query method; see Engine::SearchWith.
  virtual SearchResult SearchWith(MethodKind kind, const Sequence& query,
                                  double epsilon, Trace* trace = nullptr,
                                  DtwScratch* scratch = nullptr) const = 0;

  // Exact k-nearest-neighbor search under D_tw; see Engine::SearchKnn.
  virtual KnnResult SearchKnn(const Sequence& query, size_t k,
                              Trace* trace = nullptr) const = 0;

  // SearchKnn pre-seeded with an upper bound on the true k-th distance
  // (the semantic cache supplies the exact k-th distance of a stored
  // range answer). Engines prune strictly ABOVE the bound, so ties
  // survive and the answer is identical to SearchKnn — only cheaper.
  // The default ignores the seed; engines with a pruning bound override.
  virtual KnnResult SearchKnnSeeded(const Sequence& query, size_t k,
                                    double /*seed_bound*/,
                                    Trace* trace = nullptr) const {
    return SearchKnn(query, k, trace);
  }

  // The registry per-query metrics land in.
  virtual MetricsRegistry& metrics() const = 0;

  // The DTW configuration answers are computed under — part of the
  // semantic cache key (the paper's base distance and warp width).
  virtual DtwOptions dtw_options() const { return DtwOptions(); }

  // Simulated elapsed time of a query under the disk model.
  virtual double ElapsedMillis(const SearchCost& cost) const = 0;

  // The underlying single-index Engine, or null when this is a
  // partitioned engine. Callers that need Engine internals (the
  // executor's intra-query SearchParallel) go through here.
  virtual const Engine* AsSingleEngine() const { return nullptr; }

  // The writable streaming-ingest engine (ingest/ingest_engine.h), or
  // null for the build-then-serve shapes. Serving layers that accept
  // writes (QueryExecutor::SubmitInsert/SubmitDelete, the /statusz
  // ingest section) discover the delta-aware engine through here without
  // the core layer depending on src/ingest/.
  virtual const IngestEngine* AsIngestEngine() const { return nullptr; }

  // Monotonic counter that advances whenever the VISIBLE data changes —
  // every insert, delete, and compaction swap (not just epoch bumps:
  // buffered delta writes change answers without an epoch change).
  // Static build-then-serve engines never change, so they stay at 0
  // forever. The semantic cache tags each entry with the version it
  // answered under and treats any advance as a global invalidation;
  // per-partition invalidation would be unsound, because a new insert
  // can extend a partition's feature MBR past what an old query's
  // pruning assumed.
  virtual uint64_t DataVersion() const { return 0; }
};

}  // namespace warpindex

#endif  // WARPINDEX_CORE_ENGINE_LIKE_H_
