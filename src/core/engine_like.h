// EngineLike: the query-serving surface shared by the single-index
// Engine (core/engine.h) and the partitioned ShardedEngine
// (shard/sharded_engine.h).
//
// The concurrent executor (exec/query_executor.h) serves through this
// interface, so a thread pool built for one engine shape serves the
// other unchanged: Submit/SubmitBatch only ever need "run this method at
// this tolerance" plus the metrics registry the serving layer records
// into. Intra-query parallelism that reaches into TW-Sim-Search's
// internals (QueryExecutor::SearchParallel) is single-engine-only and
// guarded via AsSingleEngine().
//
// Thread-safety contract: like Engine, every method here must be safe to
// call concurrently from any number of threads (implementations keep
// per-query state on the stack or in caller-supplied objects).

#ifndef WARPINDEX_CORE_ENGINE_LIKE_H_
#define WARPINDEX_CORE_ENGINE_LIKE_H_

#include "core/search_method.h"
#include "core/tw_knn_search.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sequence/sequence.h"

namespace warpindex {

enum class MethodKind;
class Engine;
class IngestEngine;

class EngineLike {
 public:
  virtual ~EngineLike() = default;

  // Runs the selected range-query method; see Engine::SearchWith.
  virtual SearchResult SearchWith(MethodKind kind, const Sequence& query,
                                  double epsilon, Trace* trace = nullptr,
                                  DtwScratch* scratch = nullptr) const = 0;

  // Exact k-nearest-neighbor search under D_tw; see Engine::SearchKnn.
  virtual KnnResult SearchKnn(const Sequence& query, size_t k,
                              Trace* trace = nullptr) const = 0;

  // The registry per-query metrics land in.
  virtual MetricsRegistry& metrics() const = 0;

  // Simulated elapsed time of a query under the disk model.
  virtual double ElapsedMillis(const SearchCost& cost) const = 0;

  // The underlying single-index Engine, or null when this is a
  // partitioned engine. Callers that need Engine internals (the
  // executor's intra-query SearchParallel) go through here.
  virtual const Engine* AsSingleEngine() const { return nullptr; }

  // The writable streaming-ingest engine (ingest/ingest_engine.h), or
  // null for the build-then-serve shapes. Serving layers that accept
  // writes (QueryExecutor::SubmitInsert/SubmitDelete, the /statusz
  // ingest section) discover the delta-aware engine through here without
  // the core layer depending on src/ingest/.
  virtual const IngestEngine* AsIngestEngine() const { return nullptr; }
};

}  // namespace warpindex

#endif  // WARPINDEX_CORE_ENGINE_LIKE_H_
