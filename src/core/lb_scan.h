// LB-Scan (Yi, Jagadish & Faloutsos [25]; paper §3.2): sequential scan
// that first evaluates the cheap O(|S| + |Q|) lower bound D_lb (LB_Yi) and
// runs the exact D_tw only on sequences passing the bound.
//
// Still touches every page of the database — the paper's argument for why
// an index-based method is needed at scale.

#ifndef WARPINDEX_CORE_LB_SCAN_H_
#define WARPINDEX_CORE_LB_SCAN_H_

#include "core/search_method.h"
#include "dtw/dtw.h"
#include "dtw/lb_yi.h"
#include "storage/sequence_store.h"

namespace warpindex {

class LbScan : public SearchMethod {
 public:
  // `store` must outlive this object.
  LbScan(const SequenceStore* store, DtwOptions dtw_options)
      : store_(store), dtw_(dtw_options) {}

  const char* name() const override { return "LB-Scan"; }

 protected:
  SearchResult SearchImpl(const Sequence& query, double epsilon,
                          Trace* trace, DtwScratch* scratch) const override;

 private:
  const SequenceStore* store_;
  Dtw dtw_;
};

}  // namespace warpindex

#endif  // WARPINDEX_CORE_LB_SCAN_H_
