#include "core/tw_sim_search.h"

#include <utility>

#include "common/timer.h"
#include "dtw/lb_yi.h"
#include "sequence/feature.h"

namespace warpindex {

std::vector<Sequence> TwSimSearch::FilterAndFetch(const Sequence& query,
                                                  double epsilon,
                                                  SearchResult* result,
                                                  Trace* trace) const {
  // Step-1: feature extraction.
  const FeatureVector query_feature = ExtractFeature(query);

  // Step-2/3: range query on the multi-dimensional index.
  RTreeQueryStats rstats;
  std::vector<NodeId> accessed;
  if (index_pool_ != nullptr) {
    rstats.accessed_nodes = &accessed;
  }
  std::vector<SequenceId> candidates;
  {
    StageTimer stage(&result->cost.stages, &result->cost.stages_cpu, trace, kStageRtreeSearch);
    candidates = index_->RangeQuery(query_feature, epsilon, &rstats, trace);
    result->cost.index_nodes = rstats.nodes_accessed;
    if (index_pool_ != nullptr) {
      // Only pool misses reach the disk (each R-tree node is one page).
      for (const NodeId id : accessed) {
        if (index_pool_->Access(id, &result->cost.io, trace)) {
          ++result->cost.pool_hits;
        } else {
          ++result->cost.pool_misses;
        }
      }
    } else {
      result->cost.io.RecordRandomRead(rstats.nodes_accessed);
    }
  }
  result->num_candidates = candidates.size();

  // Step-5: read the candidate sequences from the store.
  std::vector<Sequence> fetched;
  {
    StageTimer stage(&result->cost.stages, &result->cost.stages_cpu, trace, kStageCandidateFetch);
    fetched.reserve(candidates.size());
    for (const SequenceId id : candidates) {
      fetched.push_back(store_->Fetch(id, &result->cost.io, trace));
    }
  }
  return fetched;
}

SearchResult TwSimSearch::SearchImpl(const Sequence& query, double epsilon,
                                     Trace* trace,
                                     DtwScratch* scratch) const {
  WallTimer timer;
  ThreadCpuTimer cpu_timer;
  SearchResult result;
  DtwScratch local_scratch;
  if (scratch == nullptr) {
    scratch = &local_scratch;  // reused across candidates within the query
  }

  std::vector<Sequence> fetched =
      FilterAndFetch(query, epsilon, &result, trace);

  // Optional LB_Yi cascade: discard candidates the O(n) bound already
  // rules out (LB_Yi <= D_tw, so answers are unchanged).
  if (lb_cascade_) {
    StageTimer stage(&result.cost.stages, &result.cost.stages_cpu, trace, kStageLbYiCascade);
    const Envelope query_env = ComputeEnvelope(query);
    const size_t in = fetched.size();
    size_t kept = 0;
    for (size_t i = 0; i < fetched.size(); ++i) {
      ++result.cost.lb_evals;
      if (LbYiWithEnvelopes(fetched[i], ComputeEnvelope(fetched[i]), query,
                            query_env, dtw_.options()) <= epsilon) {
        if (kept != i) {
          fetched[kept] = std::move(fetched[i]);
        }
        ++kept;
      }
    }
    fetched.resize(kept);
    result.cost.prunes.Record(kStageLbYiCascade, in, in - kept);
    TraceCounter(trace, "lb_evals",
                 static_cast<double>(result.cost.lb_evals));
  }

  // Step-4..7: post-processing with the exact time-warping distance.
  {
    StageTimer stage(&result.cost.stages, &result.cost.stages_cpu, trace, kStageDtwPostfilter);
    for (const Sequence& s : fetched) {
      ++result.cost.dtw_evals;
      const DtwResult d =
          dtw_.DistanceWithThreshold(s, query, epsilon, scratch);
      result.cost.dtw_cells += d.cells;
      if (d.distance <= epsilon) {
        result.matches.push_back(s.id());
        result.distances.push_back(d.distance);
      }
    }
    result.cost.prunes.Record(kStageDtwPostfilter, fetched.size(),
                              fetched.size() - result.matches.size());
    TraceCounter(trace, "dtw_cells",
                 static_cast<double>(result.cost.dtw_cells));
  }
  result.cost.wall_ms = timer.ElapsedMillis();
  result.cost.cpu_ms = cpu_timer.ElapsedMillis();
  return result;
}

}  // namespace warpindex
