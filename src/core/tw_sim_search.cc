#include "core/tw_sim_search.h"

#include "common/timer.h"
#include "dtw/lb_yi.h"
#include "sequence/feature.h"

namespace warpindex {

SearchResult TwSimSearch::Search(const Sequence& query,
                                 double epsilon) const {
  WallTimer timer;
  SearchResult result;

  // Step-1: feature extraction.
  const FeatureVector query_feature = ExtractFeature(query);

  // Step-2/3: range query on the multi-dimensional index.
  RTreeQueryStats rstats;
  std::vector<NodeId> accessed;
  if (index_pool_ != nullptr) {
    rstats.accessed_nodes = &accessed;
  }
  const std::vector<SequenceId> candidates =
      index_->RangeQuery(query_feature, epsilon, &rstats);
  result.cost.index_nodes = rstats.nodes_accessed;
  if (index_pool_ != nullptr) {
    // Only pool misses reach the disk (each R-tree node is one page).
    for (const NodeId id : accessed) {
      index_pool_->Access(id, &result.cost.io);
    }
  } else {
    result.cost.io.RecordRandomRead(rstats.nodes_accessed);
  }
  result.num_candidates = candidates.size();

  // Step-4..7: post-processing with the exact time-warping distance.
  const Envelope query_env =
      lb_cascade_ ? ComputeEnvelope(query) : Envelope{};
  for (const SequenceId id : candidates) {
    const Sequence s = store_->Fetch(id, &result.cost.io);
    if (lb_cascade_) {
      ++result.cost.lb_evals;
      if (LbYiWithEnvelopes(s, ComputeEnvelope(s), query, query_env,
                            dtw_.options().combiner) > epsilon) {
        continue;  // LB_Yi <= D_tw, so this cannot be a match
      }
    }
    const DtwResult d = dtw_.DistanceWithThreshold(s, query, epsilon);
    result.cost.dtw_cells += d.cells;
    if (d.distance <= epsilon) {
      result.matches.push_back(id);
    }
  }
  result.cost.wall_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace warpindex
