// Common vocabulary for whole-match similarity search methods.
//
// All four methods of the paper's evaluation (TW-Sim-Search, Naive-Scan,
// LB-Scan, ST-Filter) implement SearchMethod and report uniform results
// and costs, so the benches can print the same series for each.

#ifndef WARPINDEX_CORE_SEARCH_METHOD_H_
#define WARPINDEX_CORE_SEARCH_METHOD_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "dtw/dtw.h"
#include "obs/stage_counters.h"
#include "obs/stage_timings.h"
#include "obs/trace.h"
#include "sequence/sequence.h"
#include "storage/disk_model.h"

namespace warpindex {

// Cost breakdown of one query.
struct SearchCost {
  // Page-level I/O (data pages + index pages), costed by the disk model.
  IoStats io;
  // DP cells computed by exact D_tw evaluations (scan or post-processing).
  uint64_t dtw_cells = 0;
  // Exact D_tw evaluations started (each may early-abandon; dtw_cells is
  // the finer-grained cost). The cascade ablation's headline metric: a
  // better filter pipeline performs strictly fewer of these at equal ε.
  uint64_t dtw_evals = 0;
  // Lower-bound evaluations (D_lb in LB-Scan; D_tw-lb happens inside the
  // R-tree and is accounted as index_nodes).
  uint64_t lb_evals = 0;
  // Index nodes visited (R-tree nodes or suffix-tree nodes).
  uint64_t index_nodes = 0;
  // Index buffer-pool hits/misses attributable to THIS query (TW-Sim-
  // Search with a pool only). Counted per query rather than read off the
  // shared pool's cumulative counters so concurrent queries never steal
  // each other's deltas.
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  // Measured wall-clock time of the query on the actual machine.
  double wall_ms = 0.0;
  // Thread-CPU time (CLOCK_THREAD_CPUTIME_ID) spent on the query, summed
  // across every thread that worked on it. On a single-threaded query
  // cpu_ms <= wall_ms (the difference is blocking and scheduling); on a
  // parallel query cpu_ms routinely EXCEEDS wall_ms, because concurrent
  // workers each burn CPU while only the critical path elapses. The
  // wall/CPU skew per stage is what tells a vectorization effort where
  // the cycles actually are (vs. where the waiting is).
  double cpu_ms = 0.0;
  // Where wall_ms went, stage by stage (rtree_search, candidate_fetch,
  // dtw_postfilter, ...). Stages do not cover setup overhead, so their
  // sum is slightly below wall_ms.
  StageTimings stages;
  // Where cpu_ms went, stage by stage — same stage names as `stages`, so
  // every wall entry has a CPU sibling under the same key.
  StageTimings stages_cpu;
  // Candidates-in / candidates-pruned per filtering stage (populated by
  // methods with a filter pipeline; empty otherwise).
  StageCounters prunes;
  // Semantic-cache attribution: how many times this query (or, after a
  // Merge, this batch) was answered from a cache tier vs. had to run the
  // engine. At most one of the two is nonzero for a single query.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;

  void Reset() { *this = SearchCost(); }
  void Merge(const SearchCost& other) {
    io.Merge(other.io);
    dtw_cells += other.dtw_cells;
    dtw_evals += other.dtw_evals;
    lb_evals += other.lb_evals;
    index_nodes += other.index_nodes;
    pool_hits += other.pool_hits;
    pool_misses += other.pool_misses;
    wall_ms += other.wall_ms;
    cpu_ms += other.cpu_ms;
    stages.Merge(other.stages);
    stages_cpu.Merge(other.stages_cpu);
    prunes.Merge(other.prunes);
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
  }

  // Folds in the cost of work that ran CONCURRENTLY with this cost (the
  // sharded engine's per-shard sub-queries): resource counters — page
  // reads, DTW cells/evals, lower-bound evals, index nodes, pool traffic,
  // per-stage attribution — are machine work actually performed and stay
  // additive, but wall time takes the max, because concurrent sub-queries
  // overlap and only the critical path elapses. Summing wall here would
  // double-count: K shards at 1 ms each finish in ~1 ms, not K ms.
  // CPU time is machine work like the counters, so it stays additive
  // even here: K workers each burning 1 ms of CPU really did consume
  // K ms of CPU, which is exactly the wall-vs-CPU skew the attribution
  // exists to expose.
  void MergeParallel(const SearchCost& other) {
    const double critical_path_ms = std::max(wall_ms, other.wall_ms);
    Merge(other);
    wall_ms = critical_path_ms;
  }
};

struct SearchResult {
  // Ids of data sequences S with D_tw(S, Q) <= epsilon.
  std::vector<SequenceId> matches;
  // Exact D_tw(S, Q) for each match, parallel to `matches`. The post-
  // filter computes the exact distance anyway to decide membership, so
  // recording it is free; the semantic cache re-filters these stored
  // distances to answer tighter-ε repeats without touching the engine.
  std::vector<double> distances;
  // Sequences that survived the filtering step and reached exact-D_tw
  // post-processing. For Naive-Scan, which has no filtering step, this
  // equals matches.size() (the convention of the paper's Figure 2).
  size_t num_candidates = 0;
  SearchCost cost;
};

// Re-orders (matches, distances) into ascending-id order — the canonical
// answer order every composite engine (sharded, ingest, wire) emits, so
// merged answers are deterministic regardless of shard count or
// completion order. Ids are unique, so the order is total. A result
// whose distances are absent (length mismatch) just sorts the ids.
inline void CanonicalizeMatchOrder(SearchResult* result) {
  if (result->distances.size() != result->matches.size()) {
    result->distances.clear();
    std::sort(result->matches.begin(), result->matches.end());
    return;
  }
  std::vector<std::pair<SequenceId, double>> paired;
  paired.reserve(result->matches.size());
  for (size_t i = 0; i < result->matches.size(); ++i) {
    paired.emplace_back(result->matches[i], result->distances[i]);
  }
  std::sort(paired.begin(), paired.end(),
            [](const std::pair<SequenceId, double>& a,
               const std::pair<SequenceId, double>& b) {
              return a.first < b.first;
            });
  for (size_t i = 0; i < paired.size(); ++i) {
    result->matches[i] = paired[i].first;
    result->distances[i] = paired[i].second;
  }
}

// Interface over the four search strategies.
//
// Thread-safety: Search() is const and safe to call concurrently from
// any number of threads — implementations keep all per-query state on
// the stack (or in the caller-supplied trace/scratch, which must not be
// shared across threads). See docs/CONCURRENCY.md.
class SearchMethod {
 public:
  virtual ~SearchMethod() = default;

  virtual const char* name() const = 0;

  // All data sequences within `epsilon` of `query` under D_tw, plus cost
  // accounting. Requires a non-empty query and epsilon >= 0. When a
  // trace is attached, each stage of the query is recorded as a span.
  // `scratch` (optional) supplies reusable DTW rolling-array buffers —
  // the executor passes each worker's scratch so repeated queries stop
  // allocating; answers are identical either way. Both out-params are
  // single-threaded objects owned by the caller.
  SearchResult Search(const Sequence& query, double epsilon,
                      Trace* trace = nullptr,
                      DtwScratch* scratch = nullptr) const {
    return SearchImpl(query, epsilon, trace, scratch);
  }

 protected:
  virtual SearchResult SearchImpl(const Sequence& query, double epsilon,
                                  Trace* trace,
                                  DtwScratch* scratch) const = 0;
};

}  // namespace warpindex

#endif  // WARPINDEX_CORE_SEARCH_METHOD_H_
