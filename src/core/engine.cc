#include "core/engine.h"

#include <cassert>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <system_error>
#include <utility>

#include "obs/exporters.h"
#include "rtree/rtree_io.h"

namespace warpindex {
namespace {

RTreeOptions MakeRTreeOptions(const EngineOptions& options) {
  RTreeOptions rtree;
  rtree.page_size_bytes = options.page_size_bytes;
  rtree.split_policy = options.split_policy;
  rtree.min_fill_fraction = options.rtree_min_fill_fraction;
  rtree.forced_reinsert = options.rtree_forced_reinsert;
  rtree.reinsert_fraction = options.rtree_reinsert_fraction;
  rtree.split_distribution_factor = options.rtree_split_distribution_factor;
  rtree.bulk_fill_fraction = options.rtree_bulk_fill_fraction;
  return rtree;
}

FeatureIndexOptions MakeFeatureIndexOptions(const EngineOptions& options) {
  FeatureIndexOptions fi;
  fi.rtree = MakeRTreeOptions(options);
  fi.bulk_load = options.bulk_load;
  return fi;
}

}  // namespace

const char* MethodKindName(MethodKind kind) {
  switch (kind) {
    case MethodKind::kTwSimSearch:
      return "TW-Sim-Search";
    case MethodKind::kNaiveScan:
      return "Naive-Scan";
    case MethodKind::kLbScan:
      return "LB-Scan";
    case MethodKind::kStFilter:
      return "ST-Filter";
    case MethodKind::kTwSimSearchCascade:
      return "TW-Sim-Search-Cascade";
  }
  return "unknown";
}

Engine::Engine(Dataset dataset, EngineOptions options)
    : options_(options),
      dataset_(std::move(dataset)),
      store_(dataset_, options_.page_size_bytes),
      feature_index_(dataset_, MakeFeatureIndexOptions(options_)),
      disk_model_(options_.disk, options_.page_size_bytes) {
  BuildMethods();
}

Engine::Engine(Dataset dataset, FeatureIndex index, EngineOptions options)
    : options_(options),
      dataset_(std::move(dataset)),
      store_(dataset_, options_.page_size_bytes),
      feature_index_(std::move(index)),
      disk_model_(options_.disk, options_.page_size_bytes) {
  BuildMethods();
}

void Engine::BuildMethods() {
  if (options_.build_subsequence_index) {
    RebuildSubsequenceIndex();
  }
  if (options_.build_st_filter) {
    StFilterOptions st;
    st.num_categories = options_.st_filter_categories;
    st.combiner = options_.dtw.combiner;
    st.page_size_bytes = options_.page_size_bytes;
    st_filter_ = std::make_unique<StFilter>(dataset_, st);
    st_filter_search_ = std::make_unique<StFilterSearch>(
        st_filter_.get(), &store_, options_.dtw);
  }
  if (options_.index_buffer_pages > 0) {
    index_pool_ = std::make_unique<BufferPool>(options_.index_buffer_pages);
  }
  tw_sim_search_ = std::make_unique<TwSimSearch>(
      &feature_index_, &store_, options_.dtw, index_pool_.get(),
      options_.lb_cascade);
  tw_sim_search_cascade_ = std::make_unique<TwSimSearchCascade>(
      tw_sim_search_.get(), options_.dtw, options_.cascade_planner);
  tw_knn_search_ = std::make_unique<TwKnnSearch>(&feature_index_, &store_,
                                                 options_.dtw);
  naive_scan_ = std::make_unique<NaiveScan>(&store_, options_.dtw);
  lb_scan_ = std::make_unique<LbScan>(&store_, options_.dtw);
  RegisterMetrics();
}

void Engine::RegisterMetrics() {
  metrics_ = options_.metrics != nullptr ? options_.metrics
                                         : &MetricsRegistry::Global();
  queries_total_ = metrics_->GetCounter(
      "warpindex_queries_total",
      "queries served (range + kNN, all methods)");
  matches_total_ = metrics_->GetCounter("warpindex_query_matches_total",
                                        "matches returned by range queries");
  pool_hits_total_ = metrics_->GetCounter(
      "warpindex_index_pool_hits_total", "index buffer-pool page hits");
  pool_misses_total_ = metrics_->GetCounter(
      "warpindex_index_pool_misses_total", "index buffer-pool page misses");
  latency_ms_hist_ = metrics_->GetHistogram(
      "warpindex_query_latency_ms",
      ExponentialBoundaries(0.01, 2.0, 20),
      "measured CPU wall time per range query (ms)");
  candidate_ratio_hist_ = metrics_->GetHistogram(
      "warpindex_query_candidate_ratio",
      LinearBoundaries(0.05, 0.05, 20),
      "candidates / live sequences per range query");
  dtw_cells_hist_ = metrics_->GetHistogram(
      "warpindex_query_dtw_cells", ExponentialBoundaries(64, 4.0, 16),
      "exact-DTW DP cells per query");
  index_nodes_hist_ = metrics_->GetHistogram(
      "warpindex_query_index_nodes", ExponentialBoundaries(1, 2.0, 14),
      "index nodes visited per query");
  knn_latency_ms_hist_ = metrics_->GetHistogram(
      "warpindex_knn_latency_ms", ExponentialBoundaries(0.01, 2.0, 20),
      "measured CPU wall time per kNN query (ms)");
  dtw_evals_total_ = metrics_->GetCounter(
      "warpindex_query_dtw_evals_total",
      "exact-DTW evaluations started across all range queries");
  // One in/pruned counter pair per known filtering stage, matching the
  // SearchCost::prunes stage names.
  const std::pair<std::string_view, std::string_view> stages[] = {
      {kStageFeatureLbCascade, "feature_lb"},
      {kStageLbYiCascade, "lb_yi"},
      {kStageLbKeoghCascade, "lb_keogh"},
      {kStageLbImprovedCascade, "lb_improved"},
      {kStageDtwPostfilter, "dtw"},
  };
  prune_handles_.clear();
  for (const auto& [stage, short_name] : stages) {
    StagePruneHandles handles;
    handles.stage = stage;
    handles.in = metrics_->GetCounter(
        "warpindex_cascade_" + std::string(short_name) + "_in_total",
        "candidates entering the " + std::string(stage) + " stage");
    handles.pruned = metrics_->GetCounter(
        "warpindex_cascade_" + std::string(short_name) + "_pruned_total",
        "candidates eliminated by the " + std::string(stage) + " stage");
    prune_handles_.push_back(handles);
  }
}

void Engine::RecordQueryMetrics(MethodKind kind,
                                const SearchResult& result) const {
  (void)kind;
  queries_total_->Increment();
  matches_total_->Increment(result.matches.size());
  latency_ms_hist_->Observe(result.cost.wall_ms);
  const size_t live = store_.num_live();
  if (live > 0) {
    candidate_ratio_hist_->Observe(
        static_cast<double>(result.num_candidates) /
        static_cast<double>(live));
  }
  dtw_cells_hist_->Observe(static_cast<double>(result.cost.dtw_cells));
  index_nodes_hist_->Observe(static_cast<double>(result.cost.index_nodes));
  // Per-query pool counters from the result, not before/after deltas of
  // the shared pool — concurrent queries would corrupt each other's
  // attribution.
  pool_hits_total_->Increment(result.cost.pool_hits);
  pool_misses_total_->Increment(result.cost.pool_misses);
  dtw_evals_total_->Increment(result.cost.dtw_evals);
  for (const auto& [stage, counts] : result.cost.prunes.entries()) {
    for (const StagePruneHandles& handles : prune_handles_) {
      if (handles.stage == stage) {
        handles.in->Increment(counts.in);
        handles.pruned->Increment(counts.pruned);
        break;
      }
    }
  }
}

Status Engine::ExportTrace(const Trace& trace, const std::string& path,
                           int64_t query_id) const {
  return AppendTraceJsonLines(trace, path, query_id);
}

Status Engine::ExportTraceEvents(const std::vector<const Trace*>& traces,
                                 const std::string& path) const {
  return WriteTraceEventsFile(traces, path);
}

Engine::Health Engine::TakeHealthSnapshot() const {
  Health health;
  health.dataset_sequences = dataset_.size();
  health.live_sequences = store_.num_live();
  health.index_entries = feature_index_.size();
  health.index = feature_index_.rtree().HealthStats();
  if (index_pool_ != nullptr) {
    health.has_pool = true;
    health.pool = index_pool_->TakeStatsSnapshot();
  }
  return health;
}

void Engine::RebuildSubsequenceIndex() {
  assert(options_.build_subsequence_index);
  SubsequenceIndexOptions sub;
  sub.min_window = options_.subsequence_min_window;
  sub.max_window = options_.subsequence_max_window;
  sub.stride = options_.subsequence_stride;
  sub.rtree = MakeRTreeOptions(options_);
  sub.dtw = options_.dtw;
  subsequence_index_ =
      std::make_unique<SubsequenceIndex>(&dataset_, sub);
  subsequence_index_stale_ = false;
}

std::vector<SubsequenceMatch> Engine::SearchSubsequences(
    const Sequence& query, double epsilon, SearchCost* cost) const {
  assert(subsequence_index_ != nullptr &&
         "construct the Engine with build_subsequence_index=true");
  if (subsequence_index_stale_) {
    throw std::logic_error(
        "subsequence index is stale: Insert() added sequences the window "
        "index does not cover; call RebuildSubsequenceIndex() first");
  }
  std::vector<SubsequenceMatch> matches =
      subsequence_index_->Search(query, epsilon, cost);
  // Suppress matches inside tombstoned sequences.
  std::erase_if(matches, [&](const SubsequenceMatch& m) {
    return !store_.IsLive(m.sequence_id);
  });
  return matches;
}

Status Engine::Save(const std::string& dir) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create directory " + dir + ": " +
                           ec.message());
  }
  WARPINDEX_RETURN_IF_ERROR(dataset_.SaveToFile(dir + "/dataset.wids"));
  WARPINDEX_RETURN_IF_ERROR(
      SaveRTreeToFile(feature_index_.rtree(), dir + "/index.wirt"));
  // Tombstones: ids not live in the store.
  std::vector<int64_t> dead;
  for (size_t i = 0; i < dataset_.size(); ++i) {
    if (!store_.IsLive(static_cast<SequenceId>(i))) {
      dead.push_back(static_cast<int64_t>(i));
    }
  }
  std::FILE* f = std::fopen((dir + "/tombstones.bin").c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot write tombstones in " + dir);
  }
  const uint64_t count = dead.size();
  bool ok = std::fwrite(&count, sizeof(count), 1, f) == 1;
  ok = ok && (dead.empty() ||
              std::fwrite(dead.data(), sizeof(int64_t), dead.size(), f) ==
                  dead.size());
  std::fclose(f);
  return ok ? Status::Ok() : Status::IoError("short tombstone write");
}

Status Engine::Open(const std::string& dir, EngineOptions options,
                    std::unique_ptr<Engine>* out) {
  Dataset dataset;
  WARPINDEX_RETURN_IF_ERROR(
      Dataset::LoadFromFile(dir + "/dataset.wids", &dataset));
  RTree tree(kFeatureDims);
  WARPINDEX_RETURN_IF_ERROR(LoadRTreeFromFile(dir + "/index.wirt", &tree));
  if (tree.dims() != kFeatureDims) {
    return Status::InvalidArgument("index is not a 4-d feature index");
  }
  if (tree.options().page_size_bytes != options.page_size_bytes) {
    return Status::InvalidArgument(
        "page size mismatch between saved index and EngineOptions");
  }
  std::vector<int64_t> dead;
  {
    std::FILE* f = std::fopen((dir + "/tombstones.bin").c_str(), "rb");
    if (f == nullptr) {
      return Status::IoError("cannot read tombstones in " + dir);
    }
    uint64_t count = 0;
    bool ok = std::fread(&count, sizeof(count), 1, f) == 1;
    if (ok && count > dataset.size()) {
      ok = false;
    }
    if (ok) {
      dead.resize(count);
      ok = count == 0 || std::fread(dead.data(), sizeof(int64_t), count,
                                    f) == count;
    }
    std::fclose(f);
    if (!ok) {
      return Status::IoError("corrupt tombstone file in " + dir);
    }
  }
  auto engine = std::unique_ptr<Engine>(
      new Engine(std::move(dataset), FeatureIndex(std::move(tree)),
                 options));
  for (const int64_t id : dead) {
    if (!engine->store_.Remove(static_cast<SequenceId>(id))) {
      return Status::InvalidArgument("tombstone id out of range");
    }
  }
  *out = std::move(engine);
  return Status::Ok();
}

const SearchMethod& Engine::method(MethodKind kind) const {
  switch (kind) {
    case MethodKind::kTwSimSearch:
      return *tw_sim_search_;
    case MethodKind::kNaiveScan:
      return *naive_scan_;
    case MethodKind::kLbScan:
      return *lb_scan_;
    case MethodKind::kStFilter:
      assert(st_filter_search_ != nullptr &&
             "construct the Engine with build_st_filter=true");
      return *st_filter_search_;
    case MethodKind::kTwSimSearchCascade:
      return *tw_sim_search_cascade_;
  }
  return *tw_sim_search_;
}

SearchResult Engine::SearchWith(MethodKind kind, const Sequence& query,
                                double epsilon, Trace* trace,
                                DtwScratch* scratch) const {
  SearchResult result;
  {
    ScopedSpan span(trace, "query");
    TraceCounter(trace, "epsilon", epsilon);
    result = method(kind).Search(query, epsilon, trace, scratch);
  }
  RecordQueryMetrics(kind, result);
  return result;
}

KnnResult Engine::SearchKnn(const Sequence& query, size_t k,
                            Trace* trace) const {
  return SearchKnnBounded(query, k, trace, nullptr);
}

KnnResult Engine::SearchKnnSeeded(const Sequence& query, size_t k,
                                  double seed_bound, Trace* trace) const {
  // The seed upper-bounds the true k-th distance, and the searcher
  // prunes strictly above the bound, so tied candidates survive and the
  // answer matches an unseeded search exactly.
  SharedKnnBound bound;
  bound.Tighten(seed_bound);
  return SearchKnnBounded(query, k, trace, &bound);
}

KnnResult Engine::SearchKnnBounded(const Sequence& query, size_t k,
                                   Trace* trace,
                                   SharedKnnBound* shared_bound) const {
  KnnResult result;
  {
    ScopedSpan span(trace, "knn_query");
    result = tw_knn_search_->Search(query, k, trace, shared_bound);
  }
  queries_total_->Increment();
  knn_latency_ms_hist_->Observe(result.cost.wall_ms);
  dtw_cells_hist_->Observe(static_cast<double>(result.cost.dtw_cells));
  index_nodes_hist_->Observe(static_cast<double>(result.cost.index_nodes));
  return result;
}

SequenceId Engine::Insert(Sequence s) {
  assert(!s.empty());
  dataset_.Add(std::move(s));
  const Sequence& stored = dataset_[dataset_.size() - 1];
  const SequenceId id = store_.Append(stored);
  assert(id == stored.id());
  feature_index_.Insert(id, ExtractFeature(stored));
  if (subsequence_index_ != nullptr) {
    // The window index has no entries for the new sequence; answering
    // from it would silently miss matches. See SearchSubsequences.
    subsequence_index_stale_ = true;
  }
  return id;
}

bool Engine::Remove(SequenceId id) {
  if (!store_.Remove(id)) {
    return false;
  }
  const bool removed = feature_index_.Remove(
      id, ExtractFeature(dataset_[static_cast<size_t>(id)]));
  assert(removed);
  (void)removed;
  return true;
}

void Engine::RebuildStFilter() {
  assert(options_.build_st_filter);
  // The suffix tree indexes strings by dense position; rebuild over live
  // sequences only, preserving original ids via a remap in the filter
  // search would complicate the baseline — instead rebuild over the full
  // dataset and let tombstoned ids be filtered by liveness at
  // post-processing time.
  StFilterOptions st;
  st.num_categories = options_.st_filter_categories;
  st.combiner = options_.dtw.combiner;
  st.page_size_bytes = options_.page_size_bytes;
  st_filter_ = std::make_unique<StFilter>(dataset_, st);
  st_filter_search_ = std::make_unique<StFilterSearch>(st_filter_.get(),
                                                       &store_, options_.dtw);
}

}  // namespace warpindex
