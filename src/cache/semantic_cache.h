// Semantic result cache: ε-subsumption range reuse, kNN bound seeding,
// version-aware invalidation.
//
// Under the paper's no-false-dismissal contract a cached range answer at
// tolerance ε' is a guaranteed superset of the answer at any ε <= ε',
// and every cached match carries its exact D_tw distance (the post-
// filter computed it anyway to decide membership). A repeat query at a
// tighter tolerance is therefore answered by RE-FILTERING the stored
// (id, distance) pairs — no R-tree descent, no DTW — and the answer is
// bit-identical to a fresh query:
//
//   * set equality: fresh matches at ε are exactly {S : D_tw(S,Q) <= ε},
//     which is exactly the stored ε' matches with distance <= ε;
//   * order equality: every method emits matches in its candidate order,
//     and shrinking ε only removes candidates without reordering the
//     survivors (R-tree DFS, store scan, and suffix-tree walks all visit
//     a subset of the same traversal), so the filtered stored list IS
//     the fresh emission order. Keys are method-tagged so an entry is
//     only ever replayed against the traversal order that produced it.
//
// A cached kNN answer for k' >= k yields the exact top-k as its first k
// entries (neighbors are stored in the canonical (distance, id) order).
// A cached RANGE entry with >= k stored distances seeds the kNN bound:
// its k-th smallest stored distance is the exact global k-th distance
// (the entry contains every sequence within ε', so nothing closer is
// missing), and the engines prune strictly above the bound, so seeding
// preserves exactness while skipping most of the refinement.
//
// Invalidation is strict and global: every entry is tagged with the
// engine's DataVersion() at answer time, and a lookup under any other
// version is a miss (the stale entry is dropped). Per-partition
// invalidation would be unsound — an insert can extend a partition's
// feature MBR beyond what an old query's pruning assumed. Static
// build-then-serve engines stay at version 0 forever, so their entries
// never expire. See docs/CACHING.md.
//
// Thread-safety: all methods are safe to call concurrently. The cache
// is striped; each stripe holds its own mutex, LRU list, and share of
// the byte budget.

#ifndef WARPINDEX_CACHE_SEMANTIC_CACHE_H_
#define WARPINDEX_CACHE_SEMANTIC_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/engine.h"
#include "core/search_method.h"
#include "core/tw_knn_search.h"
#include "dtw/base_distance.h"
#include "obs/metrics.h"
#include "sequence/sequence.h"

namespace warpindex {

struct SemanticCacheOptions {
  // Total byte budget across all stripes. Entries are charged their
  // payload vectors plus a fixed bookkeeping overhead; the LRU evicts
  // from each stripe's cold end when its share is exceeded.
  size_t max_bytes = 64ull << 20;
  // Lock stripes. Each stripe gets an equal share of max_bytes.
  size_t stripes = 8;
  // Tier label baked into the metric names (warpindex_cache_<tier>_*):
  // "executor" for the engine-side tier, "router" for the wire tier.
  std::string tier = "executor";
  // When set, the cache registers and maintains its warpindex_cache_*
  // series here (counters plus bytes/entries/hit-ratio gauges).
  MetricsRegistry* metrics = nullptr;
};

// Point-in-time view for /cachez, /statusz, and the CLI stats epilogue.
struct SemanticCacheStats {
  std::string tier;
  uint64_t lookups = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t invalidations = 0;  // entries dropped on version mismatch
  uint64_t evictions = 0;      // entries dropped by the LRU byte budget
  size_t entries = 0;
  size_t bytes = 0;
  size_t max_bytes = 0;
  double hit_ratio = 0.0;  // hits / lookups, 0 when no lookups yet
};

class SemanticCache {
 public:
  explicit SemanticCache(SemanticCacheOptions options = {});

  // Cache key for a range query: fingerprint of the query's element bit
  // patterns (-0.0 canonicalized to +0.0) and length, the base-distance
  // configuration (combiner/step/band/sqrt — the paper's base distance
  // and warp width), and the method whose traversal order the entry
  // replays.
  static uint64_t RangeKey(const Sequence& query, const DtwOptions& dtw,
                           MethodKind method);
  // Cache key for a kNN query: same fingerprint, kNN tag instead of a
  // method (kNN answers are in canonical (distance, id) order for every
  // engine shape, so one key serves them all).
  static uint64_t KnnKey(const Sequence& query, const DtwOptions& dtw);

  // Probes for an entry whose tolerance subsumes `epsilon` at exactly
  // `version`. On a hit fills out->matches/distances (re-filtered at
  // epsilon), out->num_candidates (the stored value — the superset the
  // original query refined), sets out->cost.cache_hits = 1, and returns
  // true. A version mismatch drops the stale entry and misses.
  bool LookupRange(uint64_t key, double epsilon, uint64_t version,
                   SearchResult* out);
  // Stores (or widens) the entry for `key`. An existing entry at the
  // same version with an equal-or-wider tolerance is kept (it subsumes
  // this answer); anything else is replaced. Callers must only insert
  // results whose engine version was stable across the query.
  void InsertRange(uint64_t key, double epsilon, uint64_t version,
                   const SearchResult& result);

  // Exact kNN reuse: hit when a stored entry has k' >= k at `version`;
  // the answer is the first k stored neighbors.
  bool LookupKnn(uint64_t key, size_t k, uint64_t version, KnnResult* out);
  void InsertKnn(uint64_t key, size_t k, uint64_t version,
                 const KnnResult& result);

  // kNN bound seeding from range entries: probes every method-tagged
  // range key for this query and returns the k-th smallest stored
  // distance of any valid entry with >= k matches — the exact global
  // k-th distance (see header comment). Returns false when no entry
  // qualifies. Does not count as a lookup (it is an accelerator probe,
  // not an answer).
  bool LookupKnnSeed(const Sequence& query, const DtwOptions& dtw, size_t k,
                     uint64_t version, double* bound);

  // Drops every entry (used on detach/reconfiguration; routine
  // invalidation is lazy, via the version tags).
  void Clear();

  SemanticCacheStats TakeStats() const;

  const SemanticCacheOptions& options() const { return options_; }

 private:
  struct Entry {
    uint64_t key = 0;
    uint64_t version = 0;
    // Range payload (valid when epsilon >= 0).
    double epsilon = -1.0;
    std::vector<SequenceId> matches;
    std::vector<double> distances;
    size_t num_candidates = 0;
    // kNN payload (valid when k > 0).
    size_t k = 0;
    std::vector<KnnMatch> neighbors;
    size_t num_refined = 0;
    size_t bytes = 0;
  };
  struct Stripe {
    mutable std::mutex mu;
    // Front = most recently used. The map indexes into the list.
    std::list<Entry> lru;
    std::unordered_map<uint64_t, std::list<Entry>::iterator> index;
    size_t bytes = 0;
  };

  static size_t EntryBytes(const Entry& entry);
  Stripe& StripeFor(uint64_t key);
  // Probes `key` at `version`; returns the entry (moved to the LRU
  // front) or nullptr. Drops a version-mismatched entry. Caller holds
  // the stripe lock.
  Entry* Probe(Stripe& stripe, uint64_t key, uint64_t version);
  void InsertLocked(Stripe& stripe, Entry entry);
  void RecordLookup(bool hit);
  void UpdateGauges();

  SemanticCacheOptions options_;
  size_t stripe_budget_ = 0;
  std::vector<std::unique_ptr<Stripe>> stripes_;

  std::atomic<uint64_t> lookups_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> invalidations_{0};
  std::atomic<uint64_t> evictions_{0};

  // Metric handles (null when options_.metrics is null).
  Counter* lookups_total_ = nullptr;
  Counter* hits_total_ = nullptr;
  Counter* misses_total_ = nullptr;
  Counter* insertions_total_ = nullptr;
  Counter* invalidations_total_ = nullptr;
  Counter* evictions_total_ = nullptr;
  Gauge* bytes_gauge_ = nullptr;
  Gauge* entries_gauge_ = nullptr;
  Gauge* hit_ratio_percent_ = nullptr;
};

}  // namespace warpindex

#endif  // WARPINDEX_CACHE_SEMANTIC_CACHE_H_
