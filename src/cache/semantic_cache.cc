#include "cache/semantic_cache.h"

#include <algorithm>
#include <cstring>
#include <utility>

namespace warpindex {
namespace {

// splitmix64 finalizer — cheap, well-distributed single-word mixer.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return Mix(seed ^ Mix(value));
}

uint64_t DoubleBits(double v) {
  if (v == 0.0) {
    v = 0.0;  // canonicalize -0.0: it compares equal and warps equal
  }
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

// Fingerprint of the query values + DTW configuration, before the
// method/kNN tag is folded in.
uint64_t BaseFingerprint(const Sequence& query, const DtwOptions& dtw) {
  uint64_t h = 0x77617270696e6458ull;  // "warpindX"
  h = HashCombine(h, static_cast<uint64_t>(query.size()));
  for (size_t i = 0; i < query.size(); ++i) {
    h = HashCombine(h, DoubleBits(query[i]));
  }
  h = HashCombine(h, static_cast<uint64_t>(dtw.combiner));
  h = HashCombine(h, static_cast<uint64_t>(dtw.step));
  h = HashCombine(h, static_cast<uint64_t>(static_cast<int64_t>(dtw.band)));
  h = HashCombine(h, dtw.take_sqrt ? 1u : 0u);
  return h;
}

// Tag space: range entries use the MethodKind ordinal, kNN a value no
// method occupies.
constexpr uint64_t kKnnTag = 0xffffull;

constexpr MethodKind kAllMethods[] = {
    MethodKind::kTwSimSearch, MethodKind::kNaiveScan, MethodKind::kLbScan,
    MethodKind::kStFilter, MethodKind::kTwSimSearchCascade};

// Fixed bookkeeping charge per entry: list node + map slot + the Entry
// struct itself, rounded up so small entries cannot make the accounting
// vanish.
constexpr size_t kEntryOverheadBytes = 192;

}  // namespace

SemanticCache::SemanticCache(SemanticCacheOptions options)
    : options_(std::move(options)) {
  if (options_.stripes == 0) {
    options_.stripes = 1;
  }
  stripe_budget_ = options_.max_bytes / options_.stripes;
  stripes_.reserve(options_.stripes);
  for (size_t i = 0; i < options_.stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
  if (options_.metrics != nullptr) {
    const std::string prefix = "warpindex_cache_" + options_.tier + "_";
    MetricsRegistry& metrics = *options_.metrics;
    lookups_total_ = metrics.GetCounter(
        prefix + "lookups_total", "semantic cache lookups (" +
                                      options_.tier + " tier)");
    hits_total_ = metrics.GetCounter(
        prefix + "hits_total",
        "semantic cache hits — answered by re-filtering a stored result");
    misses_total_ = metrics.GetCounter(
        prefix + "misses_total",
        "semantic cache misses — the engine ran the query");
    insertions_total_ = metrics.GetCounter(
        prefix + "insertions_total", "entries stored or widened");
    invalidations_total_ = metrics.GetCounter(
        prefix + "invalidations_total",
        "entries dropped because the engine data version advanced");
    evictions_total_ = metrics.GetCounter(
        prefix + "evictions_total", "entries evicted by the LRU byte budget");
    bytes_gauge_ = metrics.GetGauge(
        prefix + "bytes", "bytes of cached results currently resident");
    entries_gauge_ = metrics.GetGauge(
        prefix + "entries", "cached results currently resident");
    hit_ratio_percent_ = metrics.GetGauge(
        prefix + "hit_ratio_percent",
        "lifetime hit ratio of the semantic cache, percent");
  }
}

uint64_t SemanticCache::RangeKey(const Sequence& query,
                                 const DtwOptions& dtw, MethodKind method) {
  return HashCombine(BaseFingerprint(query, dtw),
                     static_cast<uint64_t>(method));
}

uint64_t SemanticCache::KnnKey(const Sequence& query, const DtwOptions& dtw) {
  return HashCombine(BaseFingerprint(query, dtw), kKnnTag);
}

size_t SemanticCache::EntryBytes(const Entry& entry) {
  return kEntryOverheadBytes +
         entry.matches.size() * sizeof(SequenceId) +
         entry.distances.size() * sizeof(double) +
         entry.neighbors.size() * sizeof(KnnMatch);
}

SemanticCache::Stripe& SemanticCache::StripeFor(uint64_t key) {
  return *stripes_[Mix(key) % stripes_.size()];
}

SemanticCache::Entry* SemanticCache::Probe(Stripe& stripe, uint64_t key,
                                           uint64_t version) {
  const auto it = stripe.index.find(key);
  if (it == stripe.index.end()) {
    return nullptr;
  }
  if (it->second->version != version) {
    // Stale: the visible data changed since this entry answered. Drop it
    // now rather than waiting for the LRU to cycle it out.
    stripe.bytes -= it->second->bytes;
    stripe.lru.erase(it->second);
    stripe.index.erase(it);
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    if (invalidations_total_ != nullptr) {
      invalidations_total_->Increment();
    }
    return nullptr;
  }
  stripe.lru.splice(stripe.lru.begin(), stripe.lru, it->second);
  return &*it->second;
}

bool SemanticCache::LookupRange(uint64_t key, double epsilon,
                                uint64_t version, SearchResult* out) {
  bool hit = false;
  {
    Stripe& stripe = StripeFor(key);
    std::lock_guard<std::mutex> lock(stripe.mu);
    Entry* entry = Probe(stripe, key, version);
    if (entry != nullptr && entry->epsilon >= epsilon) {
      // ε-subsumption: the stored answer is a superset; re-filtering the
      // stored exact distances yields the ε answer in emission order.
      *out = SearchResult();
      out->matches.reserve(entry->matches.size());
      out->distances.reserve(entry->distances.size());
      for (size_t i = 0; i < entry->matches.size(); ++i) {
        if (entry->distances[i] <= epsilon) {
          out->matches.push_back(entry->matches[i]);
          out->distances.push_back(entry->distances[i]);
        }
      }
      out->num_candidates = entry->num_candidates;
      out->cost.cache_hits = 1;
      hit = true;
    }
  }
  RecordLookup(hit);
  return hit;
}

void SemanticCache::InsertRange(uint64_t key, double epsilon,
                                uint64_t version,
                                const SearchResult& result) {
  if (epsilon < 0.0 ||
      result.distances.size() != result.matches.size()) {
    return;  // nothing replayable without per-match distances
  }
  Entry entry;
  entry.key = key;
  entry.version = version;
  entry.epsilon = epsilon;
  entry.matches = result.matches;
  entry.distances = result.distances;
  entry.num_candidates = result.num_candidates;
  entry.bytes = EntryBytes(entry);

  Stripe& stripe = StripeFor(key);
  {
    std::lock_guard<std::mutex> lock(stripe.mu);
    const auto it = stripe.index.find(key);
    if (it != stripe.index.end() && it->second->version == version &&
        it->second->epsilon >= epsilon) {
      return;  // the resident entry already subsumes this answer
    }
    InsertLocked(stripe, std::move(entry));
  }
  UpdateGauges();
}

bool SemanticCache::LookupKnn(uint64_t key, size_t k, uint64_t version,
                              KnnResult* out) {
  bool hit = false;
  {
    Stripe& stripe = StripeFor(key);
    std::lock_guard<std::mutex> lock(stripe.mu);
    Entry* entry = Probe(stripe, key, version);
    if (entry != nullptr && entry->k >= k &&
        entry->neighbors.size() >= std::min(k, entry->neighbors.size())) {
      // Neighbors are stored in the canonical (distance, id) order, so
      // the exact top-k is the stored prefix. A database smaller than k'
      // stores fewer than k' neighbors — the prefix rule still holds.
      *out = KnnResult();
      const size_t take = std::min(k, entry->neighbors.size());
      out->neighbors.assign(entry->neighbors.begin(),
                            entry->neighbors.begin() +
                                static_cast<ptrdiff_t>(take));
      out->num_refined = entry->num_refined;
      out->cost.cache_hits = 1;
      hit = true;
    }
  }
  RecordLookup(hit);
  return hit;
}

void SemanticCache::InsertKnn(uint64_t key, size_t k, uint64_t version,
                              const KnnResult& result) {
  if (k == 0) {
    return;
  }
  Entry entry;
  entry.key = key;
  entry.version = version;
  entry.k = k;
  entry.neighbors = result.neighbors;
  entry.num_refined = result.num_refined;
  entry.bytes = EntryBytes(entry);

  Stripe& stripe = StripeFor(key);
  {
    std::lock_guard<std::mutex> lock(stripe.mu);
    const auto it = stripe.index.find(key);
    if (it != stripe.index.end() && it->second->version == version &&
        it->second->k >= k) {
      return;  // resident entry already answers any k this one could
    }
    InsertLocked(stripe, std::move(entry));
  }
  UpdateGauges();
}

bool SemanticCache::LookupKnnSeed(const Sequence& query,
                                  const DtwOptions& dtw, size_t k,
                                  uint64_t version, double* bound) {
  if (k == 0) {
    return false;
  }
  bool found = false;
  double best = kInfiniteDistance;
  for (const MethodKind method : kAllMethods) {
    const uint64_t key = RangeKey(query, dtw, method);
    Stripe& stripe = StripeFor(key);
    std::lock_guard<std::mutex> lock(stripe.mu);
    Entry* entry = Probe(stripe, key, version);
    if (entry == nullptr || entry->epsilon < 0.0 ||
        entry->distances.size() < k) {
      continue;
    }
    // k-th smallest stored distance = exact global k-th distance (the
    // entry holds EVERY sequence within its ε', so nothing closer than
    // its k-th is absent).
    std::vector<double> sorted = entry->distances;
    std::nth_element(sorted.begin(),
                     sorted.begin() + static_cast<ptrdiff_t>(k - 1),
                     sorted.end());
    const double kth = sorted[k - 1];
    if (kth < best) {
      best = kth;
      found = true;
    }
  }
  if (found) {
    *bound = best;
  }
  return found;
}

void SemanticCache::InsertLocked(Stripe& stripe, Entry entry) {
  if (entry.bytes > stripe_budget_) {
    return;  // bigger than a whole stripe: caching it would just thrash
  }
  const auto it = stripe.index.find(entry.key);
  if (it != stripe.index.end()) {
    stripe.bytes -= it->second->bytes;
    stripe.lru.erase(it->second);
    stripe.index.erase(it);
  }
  stripe.bytes += entry.bytes;
  const uint64_t key = entry.key;
  stripe.lru.push_front(std::move(entry));
  stripe.index[key] = stripe.lru.begin();
  insertions_.fetch_add(1, std::memory_order_relaxed);
  if (insertions_total_ != nullptr) {
    insertions_total_->Increment();
  }
  while (stripe.bytes > stripe_budget_ && !stripe.lru.empty()) {
    const Entry& victim = stripe.lru.back();
    stripe.bytes -= victim.bytes;
    stripe.index.erase(victim.key);
    stripe.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    if (evictions_total_ != nullptr) {
      evictions_total_->Increment();
    }
  }
}

void SemanticCache::RecordLookup(bool hit) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  if (hit) {
    hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
  if (lookups_total_ != nullptr) {
    lookups_total_->Increment();
    (hit ? hits_total_ : misses_total_)->Increment();
    const uint64_t lookups = lookups_.load(std::memory_order_relaxed);
    const uint64_t hits = hits_.load(std::memory_order_relaxed);
    if (hit_ratio_percent_ != nullptr && lookups > 0) {
      hit_ratio_percent_->Set(
          static_cast<int64_t>(hits * 100 / lookups));
    }
  }
  UpdateGauges();
}

void SemanticCache::UpdateGauges() {
  if (bytes_gauge_ == nullptr && entries_gauge_ == nullptr) {
    return;
  }
  size_t bytes = 0;
  size_t entries = 0;
  for (const std::unique_ptr<Stripe>& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    bytes += stripe->bytes;
    entries += stripe->lru.size();
  }
  if (bytes_gauge_ != nullptr) {
    bytes_gauge_->Set(static_cast<int64_t>(bytes));
  }
  if (entries_gauge_ != nullptr) {
    entries_gauge_->Set(static_cast<int64_t>(entries));
  }
}

void SemanticCache::Clear() {
  for (const std::unique_ptr<Stripe>& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    stripe->lru.clear();
    stripe->index.clear();
    stripe->bytes = 0;
  }
  UpdateGauges();
}

SemanticCacheStats SemanticCache::TakeStats() const {
  SemanticCacheStats stats;
  stats.tier = options_.tier;
  stats.lookups = lookups_.load(std::memory_order_relaxed);
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.insertions = insertions_.load(std::memory_order_relaxed);
  stats.invalidations = invalidations_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.max_bytes = options_.max_bytes;
  for (const std::unique_ptr<Stripe>& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    stats.bytes += stripe->bytes;
    stats.entries += stripe->lru.size();
  }
  stats.hit_ratio = stats.lookups > 0
                        ? static_cast<double>(stats.hits) /
                              static_cast<double>(stats.lookups)
                        : 0.0;
  return stats;
}

}  // namespace warpindex
