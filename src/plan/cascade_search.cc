#include "plan/cascade_search.h"

#include <utility>

#include "common/timer.h"

namespace warpindex {

std::vector<Sequence> TwSimSearchCascade::FilterFetchAndPrune(
    const Sequence& query, double epsilon, SearchResult* result,
    Trace* trace, CascadeObservation* obs) const {
  const CascadePlan plan = planner_.Choose();
  TraceCounter(trace, "cascade_stages",
               static_cast<double>(plan.stages.size()));
  std::vector<Sequence> fetched =
      base_->FilterAndFetch(query, epsilon, result, trace);
  cascade_.RunLbStages(query, epsilon, &fetched, plan, result, trace, obs);
  return fetched;
}

SearchResult TwSimSearchCascade::SearchImpl(const Sequence& query,
                                            double epsilon, Trace* trace,
                                            DtwScratch* scratch) const {
  WallTimer timer;
  ThreadCpuTimer cpu_timer;
  SearchResult result;
  const CascadePlan plan = planner_.Choose();
  TraceCounter(trace, "cascade_stages",
               static_cast<double>(plan.stages.size()));
  std::vector<Sequence> fetched =
      base_->FilterAndFetch(query, epsilon, &result, trace);
  CascadeObservation obs;
  cascade_.Run(query, epsilon, std::move(fetched), plan, &result, trace,
               scratch, &obs);
  planner_.Observe(obs);
  result.cost.wall_ms = timer.ElapsedMillis();
  result.cost.cpu_ms = cpu_timer.ElapsedMillis();
  return result;
}

}  // namespace warpindex
