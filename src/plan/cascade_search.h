// TW-Sim-Search-Cascade: Algorithm 1's index filter + candidate fetch,
// followed by a planned FilterCascade instead of going straight to exact
// DTW. Same answers as TwSimSearch for every plan (each stage is a valid
// lower bound and ties at epsilon are kept — see filter_cascade.h);
// strictly fewer exact-DTW evaluations whenever any bound fires.

#ifndef WARPINDEX_PLAN_CASCADE_SEARCH_H_
#define WARPINDEX_PLAN_CASCADE_SEARCH_H_

#include <vector>

#include "core/search_method.h"
#include "core/tw_sim_search.h"
#include "plan/cascade_planner.h"
#include "plan/filter_cascade.h"

namespace warpindex {

class TwSimSearchCascade : public SearchMethod {
 public:
  // `base` (borrowed, must outlive this object) supplies Algorithm 1
  // Steps 1-5 (feature extraction, index range query, candidate fetch)
  // with its I/O accounting; `dtw_options` must match the base's so every
  // bound lower-bounds the same distance.
  TwSimSearchCascade(const TwSimSearch* base, DtwOptions dtw_options,
                     CascadePlannerOptions planner_options = {})
      : base_(base), cascade_(dtw_options), planner_(planner_options) {}

  const char* name() const override { return "TW-Sim-Search-Cascade"; }

  // Steps 1-5 plus the planned lower-bound stages: returns the surviving
  // candidates, leaving the exact-DTW stage to the caller (the executor
  // fans it out in parallel chunks). The caller finishes the query by
  // filling `obs->dtw` and passing `obs` to ObserveOutcome() so the
  // planner's cost model keeps learning.
  std::vector<Sequence> FilterFetchAndPrune(const Sequence& query,
                                            double epsilon,
                                            SearchResult* result,
                                            Trace* trace,
                                            CascadeObservation* obs) const;

  // Feeds one executed query's observations back into the planner.
  void ObserveOutcome(const CascadeObservation& obs) const {
    planner_.Observe(obs);
  }

  const FilterCascade& cascade() const { return cascade_; }
  const CascadePlanner& planner() const { return planner_; }

 protected:
  SearchResult SearchImpl(const Sequence& query, double epsilon,
                          Trace* trace, DtwScratch* scratch) const override;

 private:
  const TwSimSearch* base_;
  FilterCascade cascade_;
  // The planner accumulates cost-model state across const queries; it is
  // internally synchronized (see cascade_planner.h).
  mutable CascadePlanner planner_;
};

}  // namespace warpindex

#endif  // WARPINDEX_PLAN_CASCADE_SEARCH_H_
