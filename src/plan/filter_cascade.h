// FilterCascade: an ordered pipeline of progressively tighter,
// progressively costlier DTW lower bounds, run over a candidate list
// before the exact-DTW post-filter.
//
// Stage contracts (the no-false-dismissal argument):
//
//   feature_lb   D_tw-lb over the 4-tuple feature (paper Def. 3)
//   lb_yi        global-envelope bound (Yi et al.)
//   lb_keogh     per-position banded envelope bound (dtw/lb_keogh.h)
//   lb_improved  Lemire's two-pass refinement (dtw/lb_improved.h)
//   dtw          exact early-abandoning D_tw (always last, implicit)
//
// Every lower-bound stage L satisfies L(S, Q) <= D_tw(S, Q) for the
// configured DtwOptions (each proved in its own header; all three base
// distances). A stage eliminates a candidate only when its bound already
// EXCEEDS epsilon — ties (bound == epsilon) are kept, matching
// Algorithm 1's `<= epsilon` acceptance — so every true match reaches
// the exact stage and the final answer set is bit-identical to running
// exact DTW on the unfiltered list, for every plan. Only the amount of
// DP work varies.
//
// Each stage records candidates-in / pruned into SearchCost::prunes and
// its elapsed time into SearchCost::stages (names shared with traces and
// metrics), plus an optional CascadeObservation consumed by the
// CascadePlanner's online cost model.

#ifndef WARPINDEX_PLAN_FILTER_CASCADE_H_
#define WARPINDEX_PLAN_FILTER_CASCADE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/search_method.h"
#include "dtw/base_distance.h"
#include "dtw/dtw.h"
#include "dtw/lb_keogh.h"
#include "obs/trace.h"
#include "sequence/sequence.h"

namespace warpindex {

// The lower-bound stages a plan may run, in canonical cheapest-to-
// tightest order. The exact-DTW stage is implicit and always last.
enum class CascadeStage {
  kFeatureLb = 0,
  kLbYi = 1,
  kLbKeogh = 2,
  kLbImproved = 3,
};

inline constexpr size_t kNumCascadeStages = 4;

// Canonical stage name, shared across timings, prune counters, trace
// spans, and metrics (the kStage*Cascade constants).
std::string_view CascadeStageName(CascadeStage stage);

// An ordered subset of lower-bound stages to run before exact DTW.
struct CascadePlan {
  std::vector<CascadeStage> stages;

  // All four bounds in canonical order — the full cascade.
  static CascadePlan Full();
  // No lower-bound stage at all: the paper's Algorithm 1 (index filter
  // then exact DTW).
  static CascadePlan Paper() { return CascadePlan{}; }

  // "feature_lb_cascade > lb_keogh_cascade > dtw" (always ends in dtw).
  std::string ToString() const;
};

// What one executed query observed at one stage.
struct StageObservation {
  uint64_t in = 0;
  uint64_t pruned = 0;
  double ms = 0.0;
};

// Per-stage observations of one query, fed back into the planner's cost
// model. Stages that did not run keep in == 0.
struct CascadeObservation {
  std::array<StageObservation, kNumCascadeStages> lb;
  StageObservation dtw;

  StageObservation& at(CascadeStage stage) {
    return lb[static_cast<size_t>(stage)];
  }
  const StageObservation& at(CascadeStage stage) const {
    return lb[static_cast<size_t>(stage)];
  }
};

class FilterCascade {
 public:
  explicit FilterCascade(DtwOptions options)
      : options_(options), dtw_(options) {}

  const DtwOptions& options() const { return options_; }

  // Runs `plan`'s lower-bound stages and then the exact-DTW stage over
  // `candidates` (consumed). Matching ids append to result->matches in
  // candidate order; stage timings, prune counters, lb/dtw eval counts,
  // and DP cells accumulate into result->cost. `obs`, `trace`, and
  // `scratch` are optional.
  void Run(const Sequence& query, double epsilon,
           std::vector<Sequence> candidates, const CascadePlan& plan,
           SearchResult* result, Trace* trace, DtwScratch* scratch,
           CascadeObservation* obs = nullptr) const;

  // The lower-bound stages only: prunes `candidates` in place and leaves
  // the exact-DTW stage to the caller (the concurrent executor fans it
  // out in chunks). Same accounting as Run() minus the dtw stage.
  void RunLbStages(const Sequence& query, double epsilon,
                   std::vector<Sequence>* candidates,
                   const CascadePlan& plan, SearchResult* result,
                   Trace* trace, CascadeObservation* obs = nullptr) const;

 private:
  DtwOptions options_;
  Dtw dtw_;
};

}  // namespace warpindex

#endif  // WARPINDEX_PLAN_FILTER_CASCADE_H_
