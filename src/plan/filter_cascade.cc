#include "plan/filter_cascade.h"

#include <cassert>
#include <utility>

#include "common/timer.h"
#include "dtw/lb_improved.h"
#include "dtw/lb_yi.h"
#include "obs/stage_timings.h"
#include "sequence/feature.h"

namespace warpindex {

std::string_view CascadeStageName(CascadeStage stage) {
  switch (stage) {
    case CascadeStage::kFeatureLb:
      return kStageFeatureLbCascade;
    case CascadeStage::kLbYi:
      return kStageLbYiCascade;
    case CascadeStage::kLbKeogh:
      return kStageLbKeoghCascade;
    case CascadeStage::kLbImproved:
      return kStageLbImprovedCascade;
  }
  return "unknown";
}

CascadePlan CascadePlan::Full() {
  return CascadePlan{{CascadeStage::kFeatureLb, CascadeStage::kLbYi,
                      CascadeStage::kLbKeogh, CascadeStage::kLbImproved}};
}

std::string CascadePlan::ToString() const {
  std::string out;
  for (const CascadeStage stage : stages) {
    out += CascadeStageName(stage);
    out += " > ";
  }
  out += "dtw";
  return out;
}

namespace {

// Query-side artifacts, each computed at most once per query no matter
// how many stages consume it.
struct QueryArtifacts {
  const Sequence* query = nullptr;
  DtwOptions options;

  bool have_feature = false;
  FeatureVector feature;

  bool have_yi_env = false;
  Envelope yi_env;

  bool have_band_env = false;
  BandEnvelope band_env;

  const FeatureVector& Feature() {
    if (!have_feature) {
      feature = ExtractFeature(*query);
      have_feature = true;
    }
    return feature;
  }

  const Envelope& YiEnvelope() {
    if (!have_yi_env) {
      yi_env = ComputeEnvelope(*query);
      have_yi_env = true;
    }
    return yi_env;
  }

  const BandEnvelope& BandEnv() {
    if (!have_band_env) {
      band_env = ComputeBandEnvelope(*query, EnvelopeRadiusFor(options));
      have_band_env = true;
    }
    return band_env;
  }
};

// The stage's lower bound for one candidate, same domain as
// Dtw::Distance.
double StageBound(CascadeStage stage, const Sequence& s,
                  QueryArtifacts* qa) {
  switch (stage) {
    case CascadeStage::kFeatureLb:
      return DtwLowerBoundDistance(ExtractFeature(s), qa->Feature());
    case CascadeStage::kLbYi:
      return LbYiWithEnvelopes(s, ComputeEnvelope(s), *qa->query,
                               qa->YiEnvelope(), qa->options);
    case CascadeStage::kLbKeogh:
      return LbKeogh(s, *qa->query, qa->BandEnv(), qa->options);
    case CascadeStage::kLbImproved:
      return LbImproved(s, *qa->query, qa->BandEnv(), qa->options);
  }
  return 0.0;
}

}  // namespace

void FilterCascade::RunLbStages(const Sequence& query, double epsilon,
                                std::vector<Sequence>* candidates,
                                const CascadePlan& plan,
                                SearchResult* result, Trace* trace,
                                CascadeObservation* obs) const {
  assert(!query.empty() && epsilon >= 0.0);
  QueryArtifacts qa;
  qa.query = &query;
  qa.options = options_;

  for (const CascadeStage stage : plan.stages) {
    if (candidates->empty()) {
      break;  // nothing left to prune; skip the remaining stages
    }
    const std::string_view name = CascadeStageName(stage);
    ScopedSpan span(trace, name);
    WallTimer timer;
    ThreadCpuTimer cpu_timer;
    const size_t in = candidates->size();
    size_t kept = 0;
    for (size_t i = 0; i < candidates->size(); ++i) {
      ++result->cost.lb_evals;
      // Prune only on a STRICT excess: a bound exactly at epsilon cannot
      // rule the candidate out under Algorithm 1's `<= epsilon`
      // acceptance (the exact distance may equal the bound).
      if (StageBound(stage, (*candidates)[i], &qa) <= epsilon) {
        if (kept != i) {
          (*candidates)[kept] = std::move((*candidates)[i]);
        }
        ++kept;
      }
    }
    candidates->resize(kept);
    const double ms = timer.ElapsedMillis();
    result->cost.stages.Add(name, ms);
    result->cost.stages_cpu.Add(name, cpu_timer.ElapsedMillis());
    result->cost.prunes.Record(name, in, in - kept);
    if (obs != nullptr) {
      StageObservation& so = obs->at(stage);
      so.in += in;
      so.pruned += in - kept;
      so.ms += ms;
    }
  }
  TraceCounter(trace, "lb_evals",
               static_cast<double>(result->cost.lb_evals));
}

void FilterCascade::Run(const Sequence& query, double epsilon,
                        std::vector<Sequence> candidates,
                        const CascadePlan& plan, SearchResult* result,
                        Trace* trace, DtwScratch* scratch,
                        CascadeObservation* obs) const {
  RunLbStages(query, epsilon, &candidates, plan, result, trace, obs);

  DtwScratch local_scratch;
  if (scratch == nullptr) {
    scratch = &local_scratch;
  }
  ScopedSpan span(trace, kStageDtwPostfilter);
  WallTimer timer;
  ThreadCpuTimer cpu_timer;
  const size_t in = candidates.size();
  const size_t matches_before = result->matches.size();
  for (const Sequence& s : candidates) {
    ++result->cost.dtw_evals;
    const DtwResult d = dtw_.DistanceWithThreshold(s, query, epsilon,
                                                   scratch);
    result->cost.dtw_cells += d.cells;
    if (d.distance <= epsilon) {
      result->matches.push_back(s.id());
      result->distances.push_back(d.distance);
    }
  }
  const size_t matched = result->matches.size() - matches_before;
  const double ms = timer.ElapsedMillis();
  result->cost.stages.Add(kStageDtwPostfilter, ms);
  result->cost.stages_cpu.Add(kStageDtwPostfilter, cpu_timer.ElapsedMillis());
  result->cost.prunes.Record(kStageDtwPostfilter, in, in - matched);
  if (obs != nullptr) {
    obs->dtw.in += in;
    obs->dtw.pruned += in - matched;
    obs->dtw.ms += ms;
  }
  TraceCounter(trace, "dtw_cells",
               static_cast<double>(result->cost.dtw_cells));
}

}  // namespace warpindex
