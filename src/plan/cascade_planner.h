// CascadePlanner: chooses which lower-bound stages a query runs.
//
// Modes:
//   kPaper    no lower-bound stage — the paper's Algorithm 1 verbatim
//             (index filter, then exact DTW). Reproduction runs.
//   kCascade  the full fixed cascade (feature_lb > lb_yi > lb_keogh >
//             lb_improved > dtw). The safe default: every stage is a
//             valid bound, so the only risk is wasted bound evaluations.
//   kAuto     cost-based: keep a stage only when its measured cost is
//             beaten by the work it is expected to save downstream.
//   kFixed    an explicit stage subset (the ablation bench sweeps these).
//
// The kAuto cost model. For every stage the planner maintains EWMA
// estimates of
//
//   unit_cost(stage)   milliseconds per candidate evaluated
//   pass_rate(stage)   fraction of candidates the stage lets through
//
// observed online from executed queries (Observe()). A plan is built by
// walking the canonical stage order BACKWARD from exact DTW, tracking
// `downstream` = expected per-candidate cost of everything after the
// current stage. A stage earns its place iff
//
//   unit_cost(stage) < (1 - pass_rate(stage)) * downstream
//
// i.e. evaluating the bound on one candidate costs less than the
// downstream work it prunes in expectation; included stages update
// downstream = unit_cost + pass_rate * downstream. The first
// `warmup_queries` plans and every `explore_every`-th plan thereafter
// run the full cascade so every stage keeps fresh statistics even after
// being dropped (selectivity drifts with the workload).
//
// Whatever the mode chooses, answers are identical — stages only ever
// prune candidates whose bound strictly exceeds epsilon (see
// filter_cascade.h); planning affects cost, never correctness.
//
// Thread-safety: Choose() and Observe() are internally synchronized; one
// planner may serve concurrent queries (the executor's SubmitBatch path).

#ifndef WARPINDEX_PLAN_CASCADE_PLANNER_H_
#define WARPINDEX_PLAN_CASCADE_PLANNER_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>

#include "plan/filter_cascade.h"

namespace warpindex {

enum class PlanMode {
  kPaper,
  kCascade,
  kAuto,
  kFixed,
};

const char* PlanModeName(PlanMode mode);

struct CascadePlannerOptions {
  PlanMode mode = PlanMode::kCascade;
  // The plan used by kFixed (and the starting statistics-free shape of
  // kAuto's exploration).
  CascadePlan fixed;
  // kAuto: first plans that always run the full cascade.
  size_t warmup_queries = 8;
  // kAuto: after warm-up, every explore_every-th plan runs the full
  // cascade to refresh statistics for dropped stages. 0 disables.
  size_t explore_every = 32;
  // EWMA smoothing for unit cost and pass rate, in (0, 1].
  double ewma_alpha = 0.2;
};

class CascadePlanner {
 public:
  explicit CascadePlanner(CascadePlannerOptions options = {});

  const CascadePlannerOptions& options() const { return options_; }
  PlanMode mode() const { return options_.mode; }

  // The plan for the next query. Thread-safe.
  CascadePlan Choose();

  // Folds one executed query's per-stage observations into the cost
  // model. Thread-safe; cheap (a handful of multiplies under a mutex).
  void Observe(const CascadeObservation& obs);

  // Introspection (tests, bench tables).
  struct StageStats {
    double unit_cost_ms = 0.0;  // per candidate evaluated
    double pass_rate = 1.0;     // kept / in
    uint64_t updates = 0;       // Observe() calls that saw this stage
  };
  StageStats stage_stats(CascadeStage stage) const;
  StageStats dtw_stats() const;
  uint64_t plans_chosen() const;

  // Point-in-time view of the planner for live introspection (/statusz):
  // the cost-model state behind every stage plus the plan the next query
  // would get. Taking a snapshot does NOT count as choosing a plan —
  // scraping the endpoint never perturbs kAuto's warmup/explore cadence.
  struct StageSnapshot {
    CascadeStage stage;
    StageStats stats;
    bool in_current_plan = false;
  };
  struct Snapshot {
    PlanMode mode = PlanMode::kCascade;
    uint64_t plans_chosen = 0;
    // What Choose() would return for the next query (kAuto: the cost
    // model's current pick, ignoring the explore cadence).
    CascadePlan current_plan;
    std::array<StageSnapshot, kNumCascadeStages> stages;
    StageStats dtw;
  };
  Snapshot TakeSnapshot() const;

 private:
  CascadePlan ChooseAutoLocked() const;

  CascadePlannerOptions options_;

  mutable std::mutex mu_;
  std::array<StageStats, kNumCascadeStages> lb_stats_;
  StageStats dtw_stats_;
  uint64_t plans_chosen_ = 0;
};

}  // namespace warpindex

#endif  // WARPINDEX_PLAN_CASCADE_PLANNER_H_
