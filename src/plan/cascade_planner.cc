#include "plan/cascade_planner.h"

#include <cassert>

namespace warpindex {

const char* PlanModeName(PlanMode mode) {
  switch (mode) {
    case PlanMode::kPaper:
      return "paper";
    case PlanMode::kCascade:
      return "cascade";
    case PlanMode::kAuto:
      return "auto";
    case PlanMode::kFixed:
      return "fixed";
  }
  return "unknown";
}

CascadePlanner::CascadePlanner(CascadePlannerOptions options)
    : options_(options) {
  assert(options_.ewma_alpha > 0.0 && options_.ewma_alpha <= 1.0);
}

namespace {

void UpdateStats(CascadePlanner::StageStats* stats,
                 const StageObservation& obs, double alpha) {
  if (obs.in == 0) {
    return;
  }
  const double unit = obs.ms / static_cast<double>(obs.in);
  const double pass =
      static_cast<double>(obs.in - obs.pruned) / static_cast<double>(obs.in);
  if (stats->updates == 0) {
    stats->unit_cost_ms = unit;
    stats->pass_rate = pass;
  } else {
    stats->unit_cost_ms += alpha * (unit - stats->unit_cost_ms);
    stats->pass_rate += alpha * (pass - stats->pass_rate);
  }
  ++stats->updates;
}

}  // namespace

void CascadePlanner::Observe(const CascadeObservation& obs) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < kNumCascadeStages; ++i) {
    UpdateStats(&lb_stats_[i], obs.lb[i], options_.ewma_alpha);
  }
  UpdateStats(&dtw_stats_, obs.dtw, options_.ewma_alpha);
}

CascadePlan CascadePlanner::ChooseAutoLocked() const {
  const bool warming = plans_chosen_ <= options_.warmup_queries;
  const bool exploring =
      options_.explore_every > 0 &&
      plans_chosen_ % options_.explore_every == 0;
  if (warming || exploring || dtw_stats_.updates == 0) {
    return CascadePlan::Full();
  }

  // Backward greedy over the canonical order: `downstream` is the
  // expected per-candidate cost of everything after the stage under
  // consideration; a stage stays iff the bound evaluation is cheaper
  // than the downstream work it prunes in expectation.
  const CascadePlan full = CascadePlan::Full();
  double downstream = dtw_stats_.unit_cost_ms;
  std::vector<CascadeStage> chosen_reversed;
  for (size_t k = full.stages.size(); k-- > 0;) {
    const CascadeStage stage = full.stages[k];
    const StageStats& stats = lb_stats_[static_cast<size_t>(stage)];
    if (stats.updates == 0) {
      continue;  // never measured (always-empty input); nothing to gain
    }
    const double saved = (1.0 - stats.pass_rate) * downstream;
    if (stats.unit_cost_ms < saved) {
      chosen_reversed.push_back(stage);
      downstream = stats.unit_cost_ms + stats.pass_rate * downstream;
    }
  }

  CascadePlan plan;
  plan.stages.assign(chosen_reversed.rbegin(), chosen_reversed.rend());
  return plan;
}

CascadePlan CascadePlanner::Choose() {
  std::lock_guard<std::mutex> lock(mu_);
  ++plans_chosen_;
  switch (options_.mode) {
    case PlanMode::kPaper:
      return CascadePlan::Paper();
    case PlanMode::kCascade:
      return CascadePlan::Full();
    case PlanMode::kFixed:
      return options_.fixed;
    case PlanMode::kAuto:
      return ChooseAutoLocked();
  }
  return CascadePlan::Full();
}

CascadePlanner::StageStats CascadePlanner::stage_stats(
    CascadeStage stage) const {
  std::lock_guard<std::mutex> lock(mu_);
  return lb_stats_[static_cast<size_t>(stage)];
}

CascadePlanner::StageStats CascadePlanner::dtw_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dtw_stats_;
}

uint64_t CascadePlanner::plans_chosen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plans_chosen_;
}

CascadePlanner::Snapshot CascadePlanner::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snapshot;
  snapshot.mode = options_.mode;
  snapshot.plans_chosen = plans_chosen_;
  switch (options_.mode) {
    case PlanMode::kPaper:
      snapshot.current_plan = CascadePlan::Paper();
      break;
    case PlanMode::kCascade:
      snapshot.current_plan = CascadePlan::Full();
      break;
    case PlanMode::kFixed:
      snapshot.current_plan = options_.fixed;
      break;
    case PlanMode::kAuto:
      // ChooseAutoLocked reads plans_chosen_ but does not bump it, so
      // the explore cadence is unaffected by snapshots.
      snapshot.current_plan = ChooseAutoLocked();
      break;
  }
  for (size_t i = 0; i < kNumCascadeStages; ++i) {
    snapshot.stages[i].stage = static_cast<CascadeStage>(i);
    snapshot.stages[i].stats = lb_stats_[i];
    for (const CascadeStage s : snapshot.current_plan.stages) {
      if (s == snapshot.stages[i].stage) {
        snapshot.stages[i].in_current_plan = true;
        break;
      }
    }
  }
  snapshot.dtw = dtw_stats_;
  return snapshot;
}

}  // namespace warpindex
