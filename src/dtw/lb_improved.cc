#include "dtw/lb_improved.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>
#include <vector>

#include "dtw/dtw.h"

namespace warpindex {

double LbImproved(const Sequence& s, const Sequence& q,
                  const BandEnvelope& q_env, const DtwOptions& options) {
  assert(!s.empty() && !q.empty());
  const size_t radius =
      EffectiveSakoeChibaRadius(options, s.size(), q.size());

  std::vector<double> h;
  double part1;
  if (q_env.radius >= radius) {
    part1 = internal::OneSidedKeogh(s, q_env, radius, options, &h);
  } else {
    const BandEnvelope widened = ComputeBandEnvelope(q, radius);
    part1 = internal::OneSidedKeogh(s, widened, radius, options, &h);
  }

  const Sequence h_seq(std::move(h));
  const BandEnvelope h_env = ComputeBandEnvelope(h_seq, radius);
  const double part2 =
      internal::OneSidedKeogh(q, h_env, radius, options, nullptr);

  const double acc = options.combiner == DtwCombiner::kSum
                         ? part1 + part2
                         : std::max(part1, part2);
  return options.take_sqrt ? std::sqrt(acc) : acc;
}

}  // namespace warpindex
