// LB_Keogh: the banded-envelope lower bound of Keogh & Ratanamahatana,
// adapted to this library's three base-distance models and to
// variable-length sequences.
//
// For a query Q and a Sakoe-Chiba radius r, the envelope of Q is the pair
// of per-position sequences
//
//   U_j = max Q[k],  L_j = min Q[k]   for k in [j - r, j + r] cap [0, |Q|)
//
// computed in O(|Q|) with streaming monotonic deques. Under the band
// constraint every candidate element S[i] must align with some Q[j] with
// |i - j| <= r, hence with a value inside [L_i, U_i]; the part of S
// sticking out of the envelope is unavoidable warping cost:
//
//   * sum-combined (L1/L2):  LB = sum_i cost(dist(S[i], [L_i, U_i]))
//   * max-combined (L_inf):  LB = max_i dist(S[i], [L_i, U_i])
//
// with cost() the configured step cost (|.| or (.)^2, sqrt on exit for
// the L2 convention), each provably <= the banded D_tw of the same
// DtwOptions — and therefore also <= the unconstrained D_tw whenever the
// envelope was built full-width (see kFullWidthRadius). Tightness: with a
// narrow band LB_Keogh is far tighter than LB_Yi (whose envelope is the
// single global [min, max] interval); with a full-width envelope it
// degenerates to LB_Yi's one-sided bound.
//
// Variable lengths: the DP widens the effective band to at least
// ||S| - |Q|| so a path exists (see EffectiveSakoeChibaRadius). The
// envelope carries suffix min/max arrays so candidate positions beyond
// |Q| still get the correct (right-clipped) window, and a bound request
// whose effective radius exceeds the envelope's build radius falls back
// to computing a correctly widened envelope — the returned value is a
// valid lower bound for every (envelope, pair) combination.

#ifndef WARPINDEX_DTW_LB_KEOGH_H_
#define WARPINDEX_DTW_LB_KEOGH_H_

#include <cstddef>
#include <limits>
#include <vector>

#include "dtw/base_distance.h"
#include "sequence/sequence.h"

namespace warpindex {

// Radius value requesting a full-width envelope (window = the whole
// sequence at every position). The right choice when the DTW itself is
// unconstrained (DtwOptions::band < 0).
inline constexpr size_t kFullWidthRadius =
    std::numeric_limits<size_t>::max();

// The envelope radius matching `options`: the configured Sakoe-Chiba
// radius, or full-width when the DTW is unconstrained.
inline size_t EnvelopeRadiusFor(const DtwOptions& options) {
  return options.band < 0 ? kFullWidthRadius
                          : static_cast<size_t>(options.band);
}

// Per-position banded envelope of a sequence (usually the query, built
// once and reused across every candidate of that query).
struct BandEnvelope {
  // lower[j] / upper[j]: min / max over [j - radius, j + radius] clipped
  // to the sequence; size() entries each.
  std::vector<double> lower;
  std::vector<double> upper;
  // suffix_min[j] / suffix_max[j]: min / max over positions [j, size());
  // serves candidate positions beyond the sequence end, whose window is
  // right-clipped. Radius-independent.
  std::vector<double> suffix_min;
  std::vector<double> suffix_max;
  // The radius the lower/upper windows were built with (possibly
  // kFullWidthRadius).
  size_t radius = 0;

  size_t size() const { return lower.size(); }
};

// Builds the envelope of `s` with Sakoe-Chiba radius `radius` in O(|s|)
// (streaming monotonic deques). Requires a non-empty sequence.
BandEnvelope ComputeBandEnvelope(const Sequence& s, size_t radius);

// One-sided LB_Keogh: the cost forced onto the elements of `s` by the
// envelope of `q`. `q_env` must be ComputeBandEnvelope(q, r) for some r;
// when r is narrower than the pair's effective radius the function
// recomputes a correctly widened envelope, so the result lower-bounds
// Dtw(options).Distance(s, q) for every input. Returned in the same
// domain as Dtw::Distance (sqrt applied for the L2 convention).
double LbKeogh(const Sequence& s, const Sequence& q,
               const BandEnvelope& q_env, const DtwOptions& options);

namespace internal {

// Accumulated-domain (pre-sqrt) one-sided envelope bound with an explicit
// effective radius; `h_out` (optional) receives the projection of `s`
// onto the envelope (Lemire's h sequence, consumed by LB_Improved).
double OneSidedKeogh(const Sequence& s, const BandEnvelope& env,
                     size_t effective_radius, const DtwOptions& options,
                     std::vector<double>* h_out);

}  // namespace internal

}  // namespace warpindex

#endif  // WARPINDEX_DTW_LB_KEOGH_H_
