// Warping paths: the element mappings M = <m_1, ..., m_|M|> of paper §4.1.

#ifndef WARPINDEX_DTW_WARPING_PATH_H_
#define WARPINDEX_DTW_WARPING_PATH_H_

#include <cstddef>
#include <string>
#include <vector>

#include "dtw/base_distance.h"
#include "sequence/sequence.h"

namespace warpindex {

// One element mapping m_h = (s_i, q_j), stored by position.
struct WarpingStep {
  size_t i = 0;  // position in S
  size_t j = 0;  // position in Q

  friend bool operator==(const WarpingStep& a, const WarpingStep& b) {
    return a.i == b.i && a.j == b.j;
  }
};

// A full warping path between S (length n) and Q (length m).
class WarpingPath {
 public:
  WarpingPath() = default;
  explicit WarpingPath(std::vector<WarpingStep> steps)
      : steps_(std::move(steps)) {}

  const std::vector<WarpingStep>& steps() const { return steps_; }
  size_t size() const { return steps_.size(); }
  bool empty() const { return steps_.empty(); }

  // Checks the three classical warping-path constraints against sequences
  // of length n and m:
  //   boundary:     starts at (0,0), ends at (n-1, m-1);
  //   monotonicity: i and j never decrease;
  //   continuity:   each step advances i and/or j by at most 1 and at
  //                 least one of them by exactly 1.
  bool IsValid(size_t n, size_t m) const;

  // Accumulates the path's cost over the given sequences with the given
  // cost model (sum- or max-combined). The path must be non-empty and in
  // bounds.
  double Cost(const Sequence& s, const Sequence& q,
              const DtwOptions& options) const;

  std::string ToString() const;

 private:
  std::vector<WarpingStep> steps_;
};

}  // namespace warpindex

#endif  // WARPINDEX_DTW_WARPING_PATH_H_
