// LB_Improved: Lemire's two-pass refinement of LB_Keogh (arXiv:0811.3301),
// adapted to the three base-distance models.
//
// Pass 1 is plain LB_Keogh of S against Q's envelope, but it also records
// the projection h of S onto that envelope (h_i = S_i clamped into
// [L_i, U_i]). Pass 2 adds the cost forced onto Q by h's envelope:
//
//   * sum-combined (L1/L2):  LB = keogh(S, Env(Q)) + keogh(Q, Env(h))
//   * max-combined (L_inf):  LB = max of the two parts
//
// Validity (sum case, Lemire Prop. 2 generalised): for any warping path,
// each step cost(S_i, Q_j) with |i - j| <= r splits as
// cost >= cost(S_i, h_i) + cost(h_i, Q_j) when S_i is outside the window
// (the clamp puts h_i between S_i and Q_j; for squared costs the cross
// term 2(S_i - h_i)(h_i - Q_j) is non-negative), and cost >= cost(h_i, Q_j)
// when inside (h_i = S_i). Charging the first part per-i recovers pass 1
// and the second part is >= LB_Keogh(Q, Env(h)) because h_i lies in Q_j's
// radius-r window. In the max case the same per-step inequality
// cost(S_i, Q_j) >= max(cost(S_i, h_i), cost(h_i, Q_j)) holds (|S_i - Q_j|
// >= |S_i - h_i| and >= |h_i - Q_j| whenever Q_j is inside S_i's window),
// so the path max dominates both parts.
//
// Always >= LB_Keogh (it adds a non-negative second pass), still O(n), and
// in practice prunes a large fraction of the candidates LB_Keogh lets
// through — at roughly 2x its cost, which is what the cascade planner's
// cost model weighs.

#ifndef WARPINDEX_DTW_LB_IMPROVED_H_
#define WARPINDEX_DTW_LB_IMPROVED_H_

#include "dtw/base_distance.h"
#include "dtw/lb_keogh.h"
#include "sequence/sequence.h"

namespace warpindex {

// Lower-bounds Dtw(options).Distance(s, q); always >= the LbKeogh of the
// same arguments. `q_env` as for LbKeogh (recomputed internally when too
// narrow for the pair). Same domain as Dtw::Distance (sqrt for L2).
double LbImproved(const Sequence& s, const Sequence& q,
                  const BandEnvelope& q_env, const DtwOptions& options);

}  // namespace warpindex

#endif  // WARPINDEX_DTW_LB_IMPROVED_H_
