// LB_Yi: the O(|S| + |Q|) lower bound of Yi, Jagadish & Faloutsos used by
// the LB-Scan baseline (paper §3.2, reference [25]).
//
// Intuition: under time warping, every element of S must map to *some*
// element of Q, hence to a value inside [Smallest(Q), Greatest(Q)]; the
// part of S sticking out of that envelope is unavoidable cost (and
// symmetrically for Q vs S's envelope).
//
//   * sum-combined (L1) variant (Yi et al.'s original):
//       LB = max( sum_i dist(s_i, [minQ, maxQ]),
//                 sum_j dist(q_j, [minS, maxS]) )
//   * max-combined (L_inf) variant (this paper's similarity model; used by
//     the modified LB-Scan of §5.1):
//       LB = max( max_i dist(s_i, [minQ, maxQ]),
//                 max_j dist(q_j, [minS, maxS]) )
//
// Both consistently lower-bound the corresponding D_tw (tested as a
// property in tests/lb_yi_test.cc).

#ifndef WARPINDEX_DTW_LB_YI_H_
#define WARPINDEX_DTW_LB_YI_H_

#include "dtw/base_distance.h"
#include "sequence/sequence.h"

namespace warpindex {

// Lower-bounds D_tw(S, Q) for the matching combiner. Requires non-empty
// sequences. O(|S| + |Q|) given nothing precomputed.
double LbYi(const Sequence& s, const Sequence& q, DtwCombiner combiner);

// Variant taking precomputed envelopes (Smallest/Greatest of each side);
// the LB-Scan baseline precomputes the data-sequence envelopes once.
struct Envelope {
  double smallest = 0.0;
  double greatest = 0.0;
};

Envelope ComputeEnvelope(const Sequence& s);

double LbYiWithEnvelopes(const Sequence& s, const Envelope& s_env,
                         const Sequence& q, const Envelope& q_env,
                         DtwCombiner combiner);

// DtwOptions-aware variants: accumulate the configured step cost
// (|.| or (.)^2) and apply take_sqrt on exit, so the bound is valid for
// all three base-distance models and directly comparable to
// Dtw::Distance. The combiner-only overloads above are correct for the
// absolute step cost (L1 / L_inf) but NOT for the L2 convention — a sum
// of absolute interval distances does not lower-bound the sqrt of a sum
// of squares.
double LbYi(const Sequence& s, const Sequence& q, const DtwOptions& options);

double LbYiWithEnvelopes(const Sequence& s, const Envelope& s_env,
                         const Sequence& q, const Envelope& q_env,
                         const DtwOptions& options);

}  // namespace warpindex

#endif  // WARPINDEX_DTW_LB_YI_H_
