#include "dtw/warping_path.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace warpindex {

bool WarpingPath::IsValid(size_t n, size_t m) const {
  if (steps_.empty()) {
    return n == 0 && m == 0;
  }
  if (steps_.front().i != 0 || steps_.front().j != 0) {
    return false;
  }
  if (steps_.back().i != n - 1 || steps_.back().j != m - 1) {
    return false;
  }
  for (size_t k = 1; k < steps_.size(); ++k) {
    const size_t di = steps_[k].i - steps_[k - 1].i;
    const size_t dj = steps_[k].j - steps_[k - 1].j;
    if (steps_[k].i < steps_[k - 1].i || steps_[k].j < steps_[k - 1].j) {
      return false;  // monotonicity
    }
    if (di > 1 || dj > 1 || (di == 0 && dj == 0)) {
      return false;  // continuity
    }
  }
  return true;
}

double WarpingPath::Cost(const Sequence& s, const Sequence& q,
                         const DtwOptions& options) const {
  assert(!steps_.empty());
  double acc = options.combiner == DtwCombiner::kSum ? 0.0 : 0.0;
  for (const WarpingStep& step : steps_) {
    assert(step.i < s.size() && step.j < q.size());
    const double cost = ElementCost(s[step.i], q[step.j], options.step);
    if (options.combiner == DtwCombiner::kSum) {
      acc += cost;
    } else {
      acc = std::max(acc, cost);
    }
  }
  return options.take_sqrt ? std::sqrt(acc) : acc;
}

std::string WarpingPath::ToString() const {
  std::ostringstream os;
  os << "[";
  for (size_t k = 0; k < steps_.size(); ++k) {
    if (k > 0) {
      os << ", ";
    }
    os << "(" << steps_[k].i << "," << steps_[k].j << ")";
  }
  os << "]";
  return os.str();
}

}  // namespace warpindex
