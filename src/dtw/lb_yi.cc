#include "dtw/lb_yi.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace warpindex {
namespace {

// Distance from a value to an interval; zero inside.
inline double DistToInterval(double v, double lo, double hi) {
  if (v < lo) return lo - v;
  if (v > hi) return v - hi;
  return 0.0;
}

// One-sided bound: cost forced onto elements of `s` by `other`'s envelope.
double OneSided(const Sequence& s, const Envelope& other,
                DtwCombiner combiner) {
  double acc = 0.0;
  for (double v : s.elements()) {
    const double d = DistToInterval(v, other.smallest, other.greatest);
    if (combiner == DtwCombiner::kSum) {
      acc += d;
    } else {
      acc = std::max(acc, d);
    }
  }
  return acc;
}

}  // namespace

Envelope ComputeEnvelope(const Sequence& s) {
  assert(!s.empty());
  Envelope env;
  env.smallest = s[0];
  env.greatest = s[0];
  for (double v : s.elements()) {
    env.smallest = std::min(env.smallest, v);
    env.greatest = std::max(env.greatest, v);
  }
  return env;
}

double LbYiWithEnvelopes(const Sequence& s, const Envelope& s_env,
                         const Sequence& q, const Envelope& q_env,
                         DtwCombiner combiner) {
  assert(!s.empty() && !q.empty());
  return std::max(OneSided(s, q_env, combiner),
                  OneSided(q, s_env, combiner));
}

double LbYi(const Sequence& s, const Sequence& q, DtwCombiner combiner) {
  return LbYiWithEnvelopes(s, ComputeEnvelope(s), q, ComputeEnvelope(q),
                           combiner);
}

namespace {

// One-sided bound in the accumulated (pre-sqrt) domain with the
// configured step cost.
double OneSidedAccumulated(const Sequence& s, const Envelope& other,
                           const DtwOptions& options) {
  const bool sum = options.combiner == DtwCombiner::kSum;
  const bool squared = options.step == StepCost::kSquared;
  double acc = 0.0;
  for (double v : s.elements()) {
    const double d = DistToInterval(v, other.smallest, other.greatest);
    const double cost = squared ? d * d : d;
    acc = sum ? acc + cost : std::max(acc, cost);
  }
  return acc;
}

}  // namespace

double LbYiWithEnvelopes(const Sequence& s, const Envelope& s_env,
                         const Sequence& q, const Envelope& q_env,
                         const DtwOptions& options) {
  assert(!s.empty() && !q.empty());
  // Both one-sided bounds hold in the accumulated domain, so their max
  // does too; sqrt is monotone, so it commutes with the max.
  const double acc = std::max(OneSidedAccumulated(s, q_env, options),
                              OneSidedAccumulated(q, s_env, options));
  return options.take_sqrt ? std::sqrt(acc) : acc;
}

double LbYi(const Sequence& s, const Sequence& q, const DtwOptions& options) {
  return LbYiWithEnvelopes(s, ComputeEnvelope(s), q, ComputeEnvelope(q),
                           options);
}

}  // namespace warpindex
