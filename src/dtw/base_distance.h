// Base-distance configuration for the time-warping distance (paper Def. 1).
//
// D_base in the paper is an L_p function applied to a *pair of elements*;
// what distinguishes the L_p choices in the DTW recursion is (a) the
// per-step cost (|a-b| for L1/L_inf, (a-b)^2 for L2) and (b) how step costs
// combine along the warping path (+ for L1/L2, max for L_inf — Def. 2).

#ifndef WARPINDEX_DTW_BASE_DISTANCE_H_
#define WARPINDEX_DTW_BASE_DISTANCE_H_

#include <cmath>

namespace warpindex {

// How per-step costs accumulate along a warping path.
enum class DtwCombiner {
  kSum,  // L1 / L2 style: D = cost + min(...)
  kMax,  // L_inf style (paper Def. 2): D = max(cost, min(...))
};

// Per-step cost between two elements.
enum class StepCost {
  kAbsolute,  // |a - b|
  kSquared,   // (a - b)^2
};

struct DtwOptions {
  DtwCombiner combiner = DtwCombiner::kMax;
  StepCost step = StepCost::kAbsolute;
  // Sakoe-Chiba band radius on |i - j|; < 0 means unconstrained. The
  // effective radius is widened to at least ||S| - |Q|| so a path always
  // exists.
  int band = -1;
  // Take sqrt of the final accumulated value (L2 convention).
  bool take_sqrt = false;

  // The paper's similarity model (Def. 2): max-combined absolute costs.
  static DtwOptions Linf() { return DtwOptions{}; }
  static DtwOptions L1() {
    return DtwOptions{DtwCombiner::kSum, StepCost::kAbsolute, -1, false};
  }
  static DtwOptions L2() {
    return DtwOptions{DtwCombiner::kSum, StepCost::kSquared, -1, true};
  }
};

inline double ElementCost(double a, double b, StepCost step) {
  const double d = a - b;
  return step == StepCost::kAbsolute ? std::fabs(d) : d * d;
}

}  // namespace warpindex

#endif  // WARPINDEX_DTW_BASE_DISTANCE_H_
