#include "dtw/lb_keogh.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>

#include "dtw/dtw.h"

namespace warpindex {
namespace {

inline double DistToInterval(double v, double lo, double hi) {
  if (v < lo) return lo - v;
  if (v > hi) return v - hi;
  return 0.0;
}

}  // namespace

BandEnvelope ComputeBandEnvelope(const Sequence& s, size_t radius) {
  assert(!s.empty());
  const size_t m = s.size();
  // Clamp the working radius: any radius >= m already yields full-width
  // windows at every position (and avoids j + radius overflow).
  const size_t r = std::min(radius, m);

  BandEnvelope env;
  env.radius = radius;
  env.lower.resize(m);
  env.upper.resize(m);

  // Monotonic deques over the advancing right window edge: max_idx keeps
  // indices of strictly decreasing values, min_idx strictly increasing,
  // so the window extreme is always at the front. Each index enters and
  // leaves each deque at most once — O(m) total.
  std::deque<size_t> max_idx;
  std::deque<size_t> min_idx;
  size_t next = 0;  // next position to admit into the deques
  for (size_t j = 0; j < m; ++j) {
    const size_t win_hi = std::min(m - 1, j + r);
    for (; next <= win_hi; ++next) {
      while (!max_idx.empty() && s[max_idx.back()] <= s[next]) {
        max_idx.pop_back();
      }
      max_idx.push_back(next);
      while (!min_idx.empty() && s[min_idx.back()] >= s[next]) {
        min_idx.pop_back();
      }
      min_idx.push_back(next);
    }
    const size_t win_lo = j >= r ? j - r : 0;
    while (max_idx.front() < win_lo) {
      max_idx.pop_front();
    }
    while (min_idx.front() < win_lo) {
      min_idx.pop_front();
    }
    env.upper[j] = s[max_idx.front()];
    env.lower[j] = s[min_idx.front()];
  }

  env.suffix_min.resize(m);
  env.suffix_max.resize(m);
  double lo = s[m - 1];
  double hi = s[m - 1];
  for (size_t j = m; j-- > 0;) {
    lo = std::min(lo, s[j]);
    hi = std::max(hi, s[j]);
    env.suffix_min[j] = lo;
    env.suffix_max[j] = hi;
  }
  return env;
}

namespace internal {

double OneSidedKeogh(const Sequence& s, const BandEnvelope& env,
                     size_t effective_radius, const DtwOptions& options,
                     std::vector<double>* h_out) {
  const size_t n = s.size();
  const size_t m = env.size();
  assert(n > 0 && m > 0);
  assert(env.radius >= effective_radius);
  if (h_out != nullptr) {
    h_out->resize(n);
  }
  const bool sum = options.combiner == DtwCombiner::kSum;
  const bool squared = options.step == StepCost::kSquared;
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double lo;
    double hi;
    if (i < m) {
      lo = env.lower[i];
      hi = env.upper[i];
    } else {
      // Beyond the envelope's end the window is right-clipped to
      // [i - R, m - 1]; i - R <= m - 1 because R >= n - m.
      const size_t from =
          i >= effective_radius
              ? std::min(i - effective_radius, m - 1)
              : 0;
      lo = env.suffix_min[from];
      hi = env.suffix_max[from];
    }
    const double v = s[i];
    const double d = DistToInterval(v, lo, hi);
    if (h_out != nullptr) {
      (*h_out)[i] = v < lo ? lo : (v > hi ? hi : v);
    }
    const double cost = squared ? d * d : d;
    acc = sum ? acc + cost : std::max(acc, cost);
  }
  return acc;
}

}  // namespace internal

double LbKeogh(const Sequence& s, const Sequence& q,
               const BandEnvelope& q_env, const DtwOptions& options) {
  assert(!s.empty() && !q.empty());
  const size_t radius =
      EffectiveSakoeChibaRadius(options, s.size(), q.size());
  double acc;
  if (q_env.radius >= radius) {
    // A wider-than-required envelope stays a valid (if looser) bound.
    acc = internal::OneSidedKeogh(s, q_env, radius, options, nullptr);
  } else {
    // The pair's length mismatch widened the effective radius past the
    // envelope's build radius; recompute so the windows admit every
    // alignment the DP admits (correctness over speed — rare path).
    const BandEnvelope widened = ComputeBandEnvelope(q, radius);
    acc = internal::OneSidedKeogh(s, widened, radius, options, nullptr);
  }
  return options.take_sqrt ? std::sqrt(acc) : acc;
}

}  // namespace warpindex
