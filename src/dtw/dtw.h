// The time-warping distance D_tw (paper Definitions 1 and 2) computed by
// dynamic programming, with:
//
//   * pluggable base distance: sum-combined |.| or (.)^2 (L1 / L2) and the
//     paper's max-combined |.| (L_inf, Definition 2);
//   * O(min(|S|, |Q|)) rolling-array memory for distance-only queries;
//   * thresholded early-abandoning evaluation: stops as soon as every cell
//     of a DP row exceeds the tolerance — exact because step costs are
//     non-negative and both combiners are monotone along path extension.
//     This is the paper's stated CPU advantage of the L_inf model (§4.1);
//   * optional Sakoe-Chiba band;
//   * full-matrix evaluation with warping-path recovery.
//
// CPU cost accounting: every evaluation reports the number of DP cells
// computed, which benches aggregate as the machine-independent CPU metric.

#ifndef WARPINDEX_DTW_DTW_H_
#define WARPINDEX_DTW_DTW_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "dtw/base_distance.h"
#include "dtw/warping_path.h"
#include "sequence/sequence.h"

namespace warpindex {

inline constexpr double kInfiniteDistance =
    std::numeric_limits<double>::infinity();

// Effective Sakoe-Chiba radius for a pair of lengths (n, m): the
// configured radius widened to at least |n - m| so a path from (0,0) to
// (n-1,m-1) always exists; max(n, m) when unconstrained. Shared with the
// envelope lower bounds (dtw/lb_keogh.h), whose windows must admit every
// alignment the DP admits.
size_t EffectiveSakoeChibaRadius(const DtwOptions& options, size_t n,
                                 size_t m);

// Result of a DTW evaluation.
struct DtwResult {
  // The distance; kInfiniteDistance when a thresholded evaluation abandoned
  // (the true distance then exceeds the threshold) or when exactly one of
  // the sequences is empty (Def. 1).
  double distance = 0.0;
  // DP cells actually computed — the CPU cost of this evaluation.
  uint64_t cells = 0;
};

// Distance plus the optimal warping path (full-matrix evaluation only).
struct DtwPathResult {
  double distance = 0.0;
  uint64_t cells = 0;
  WarpingPath path;
};

// Reusable rolling-array buffers for Dtw's distance evaluations. A fresh
// pair of DP rows per evaluation is pure heap churn when a query
// post-filters hundreds of candidates; passing one DtwScratch through the
// loop (or keeping one per executor worker, reused across queries) makes
// every evaluation after the first allocation-free. Results are
// bit-identical with and without a scratch.
//
// Thread-safety: a DtwScratch is mutable state — use one per thread.
class DtwScratch {
 public:
  DtwScratch() = default;

  DtwScratch(const DtwScratch&) = delete;
  DtwScratch& operator=(const DtwScratch&) = delete;

  // Largest row capacity retained so far (for tests/introspection).
  size_t capacity() const { return prev_.capacity(); }

 private:
  friend class Dtw;
  std::vector<double> prev_;
  std::vector<double> curr_;
};

class Dtw {
 public:
  explicit Dtw(DtwOptions options = DtwOptions::Linf())
      : options_(options) {}

  const DtwOptions& options() const { return options_; }

  // Exact D_tw(S, Q). Rolling-array DP, O(min(|S|,|Q|)) memory. When
  // `scratch` is non-null its buffers are reused instead of allocating.
  DtwResult Distance(const Sequence& s, const Sequence& q,
                     DtwScratch* scratch = nullptr) const;

  // Thresholded decision procedure: returns the exact distance when
  // D_tw(S, Q) <= epsilon, and kInfiniteDistance otherwise (possibly
  // abandoning early). Never returns a finite value > epsilon.
  DtwResult DistanceWithThreshold(const Sequence& s, const Sequence& q,
                                  double epsilon,
                                  DtwScratch* scratch = nullptr) const;

  // Convenience: D_tw(S, Q) <= epsilon?
  bool WithinTolerance(const Sequence& s, const Sequence& q,
                       double epsilon) const {
    return DistanceWithThreshold(s, q, epsilon).distance <= epsilon;
  }

  // Full-matrix evaluation with backtracking. O(|S| * |Q|) memory.
  DtwPathResult DistanceWithPath(const Sequence& s, const Sequence& q) const;

 private:
  DtwResult ComputeRolling(const Sequence& s, const Sequence& q,
                           double threshold, DtwScratch* scratch) const;

  DtwOptions options_;
};

}  // namespace warpindex

#endif  // WARPINDEX_DTW_DTW_H_
