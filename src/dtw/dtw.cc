#include "dtw/dtw.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace warpindex {
namespace {

inline double Combine(double cost, double upstream, DtwCombiner combiner) {
  return combiner == DtwCombiner::kSum ? cost + upstream
                                       : std::max(cost, upstream);
}

}  // namespace

size_t EffectiveSakoeChibaRadius(const DtwOptions& options, size_t n,
                                 size_t m) {
  if (options.band < 0) {
    return std::max(n, m);  // unconstrained
  }
  const size_t min_needed = n > m ? n - m : m - n;
  return std::max(static_cast<size_t>(options.band), min_needed);
}

DtwResult Dtw::ComputeRolling(const Sequence& s_in, const Sequence& q_in,
                              double threshold,
                              DtwScratch* scratch) const {
  // D_tw is symmetric; keep the shorter sequence on the columns to bound
  // rolling-array memory by min(|S|, |Q|).
  const Sequence& s = s_in.size() >= q_in.size() ? s_in : q_in;
  const Sequence& q = s_in.size() >= q_in.size() ? q_in : s_in;

  DtwResult result;
  if (s.empty() && q.empty()) {
    result.distance = 0.0;
    return result;
  }
  if (s.empty() || q.empty()) {
    result.distance = kInfiniteDistance;
    return result;
  }

  const size_t n = s.size();
  const size_t m = q.size();
  const size_t band = EffectiveSakoeChibaRadius(options_, n, m);
  // Work in the accumulated domain; take_sqrt is applied on exit, so the
  // threshold must be squared-domain too.
  const double internal_threshold =
      options_.take_sqrt ? threshold * threshold : threshold;

  // With a scratch, assign() reuses the retained capacity; the local
  // vectors stay empty and cost nothing.
  std::vector<double> local_prev;
  std::vector<double> local_curr;
  std::vector<double>& prev = scratch != nullptr ? scratch->prev_ : local_prev;
  std::vector<double>& curr = scratch != nullptr ? scratch->curr_ : local_curr;
  prev.assign(m, kInfiniteDistance);
  curr.assign(m, kInfiniteDistance);

  for (size_t i = 0; i < n; ++i) {
    const size_t j_lo = i >= band ? i - band : 0;
    const size_t j_hi = std::min(m - 1, i + band);
    double row_min = kInfiniteDistance;
    std::fill(curr.begin(), curr.end(), kInfiniteDistance);
    for (size_t j = j_lo; j <= j_hi; ++j) {
      const double cost = ElementCost(s[i], q[j], options_.step);
      ++result.cells;
      if (i == 0 && j == 0) {
        curr[j] = cost;  // base case, both combiners
        row_min = std::min(row_min, curr[j]);
        continue;
      }
      double best = kInfiniteDistance;
      if (i > 0) {
        best = std::min(best, prev[j]);                 // (i-1, j)
        if (j > 0) best = std::min(best, prev[j - 1]);  // (i-1, j-1)
      }
      if (j > 0) {
        best = std::min(best, curr[j - 1]);             // (i, j-1)
      }
      if (std::isinf(best)) {
        continue;  // unreachable cell at a band edge
      }
      curr[j] = Combine(cost, best, options_.combiner);
      row_min = std::min(row_min, curr[j]);
    }
    if (row_min > internal_threshold) {
      // Every extension of every partial path already exceeds the
      // tolerance; abandon (exact for non-negative costs).
      result.distance = kInfiniteDistance;
      return result;
    }
    std::swap(prev, curr);
  }

  double final_value = prev[m - 1];
  if (final_value > internal_threshold) {
    result.distance = kInfiniteDistance;
    return result;
  }
  if (options_.take_sqrt) {
    final_value = std::sqrt(final_value);
  }
  result.distance = final_value;
  return result;
}

DtwResult Dtw::Distance(const Sequence& s, const Sequence& q,
                        DtwScratch* scratch) const {
  return ComputeRolling(s, q, kInfiniteDistance, scratch);
}

DtwResult Dtw::DistanceWithThreshold(const Sequence& s, const Sequence& q,
                                     double epsilon,
                                     DtwScratch* scratch) const {
  assert(epsilon >= 0.0);
  return ComputeRolling(s, q, epsilon, scratch);
}

DtwPathResult Dtw::DistanceWithPath(const Sequence& s,
                                    const Sequence& q) const {
  DtwPathResult result;
  if (s.empty() && q.empty()) {
    result.distance = 0.0;
    return result;
  }
  if (s.empty() || q.empty()) {
    result.distance = kInfiniteDistance;
    return result;
  }

  const size_t n = s.size();
  const size_t m = q.size();
  const size_t band = EffectiveSakoeChibaRadius(options_, n, m);
  std::vector<double> dp(n * m, kInfiniteDistance);
  auto at = [&](size_t i, size_t j) -> double& { return dp[i * m + j]; };

  for (size_t i = 0; i < n; ++i) {
    const size_t j_lo = i >= band ? i - band : 0;
    const size_t j_hi = std::min(m - 1, i + band);
    for (size_t j = j_lo; j <= j_hi; ++j) {
      const double cost = ElementCost(s[i], q[j], options_.step);
      ++result.cells;
      if (i == 0 && j == 0) {
        at(i, j) = cost;
        continue;
      }
      double best = kInfiniteDistance;
      if (i > 0) {
        best = std::min(best, at(i - 1, j));
        if (j > 0) best = std::min(best, at(i - 1, j - 1));
      }
      if (j > 0) {
        best = std::min(best, at(i, j - 1));
      }
      if (std::isinf(best)) {
        continue;  // unreachable inside band edge cases
      }
      at(i, j) = Combine(cost, best, options_.combiner);
    }
  }

  double final_value = at(n - 1, m - 1);
  result.distance = options_.take_sqrt && !std::isinf(final_value)
                        ? std::sqrt(final_value)
                        : final_value;
  if (std::isinf(final_value)) {
    return result;  // no feasible path (cannot happen with valid band)
  }

  // Backtrack: from (n-1, m-1), repeatedly move to the reachable
  // predecessor with the smallest DP value. For both combiners the DP value
  // of the chosen predecessor reconstructs an optimal path.
  std::vector<WarpingStep> reversed;
  size_t i = n - 1;
  size_t j = m - 1;
  reversed.push_back({i, j});
  while (i > 0 || j > 0) {
    double best = kInfiniteDistance;
    size_t bi = i;
    size_t bj = j;
    if (i > 0 && j > 0 && at(i - 1, j - 1) <= best) {
      best = at(i - 1, j - 1);
      bi = i - 1;
      bj = j - 1;
    }
    if (i > 0 && at(i - 1, j) < best) {
      best = at(i - 1, j);
      bi = i - 1;
      bj = j;
    }
    if (j > 0 && at(i, j - 1) < best) {
      best = at(i, j - 1);
      bi = i;
      bj = j - 1;
    }
    i = bi;
    j = bj;
    reversed.push_back({i, j});
  }
  std::reverse(reversed.begin(), reversed.end());
  result.path = WarpingPath(std::move(reversed));
  return result;
}

}  // namespace warpindex
