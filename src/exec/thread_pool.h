// Fixed-size thread pool with a FIFO work queue and graceful shutdown.
//
// The pool is the substrate of the concurrent query executor
// (exec/query_executor.h): a server core keeps one pool for its lifetime
// and feeds it queries, so thread creation cost is paid once, not per
// request. Tasks are arbitrary callables; Submit() returns a
// std::future carrying the callable's result — or its exception, which
// packaged_task propagates to whoever calls future::get().
//
// Shutdown semantics: Shutdown() (also run by the destructor) stops
// accepting new work, lets every already-queued task run to completion,
// and joins the workers. Work submitted after shutdown fails with
// std::runtime_error. This "drain, don't drop" policy means a caller
// holding futures never deadlocks on a future whose task was discarded.
//
// Worker identity: inside a pool task, ThreadPool::current_worker_index()
// is the index of the executing worker in [0, num_threads) — the query
// executor uses it to give each worker its own DTW scratch buffer.
// Outside any pool thread it is -1.

#ifndef WARPINDEX_EXEC_THREAD_POOL_H_
#define WARPINDEX_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace warpindex {

class ThreadPool {
 public:
  // Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(size_t num_threads);

  // Drains and joins (Shutdown()).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `fn` and returns a future for its result. The future
  // receives any exception `fn` throws. Throws std::runtime_error if the
  // pool is shut down.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Enqueue([task]() { (*task)(); });
    return future;
  }

  // Fire-and-forget enqueue; returns false (dropping `fn`) if the pool is
  // shut down instead of throwing. Used for helper tasks whose completion
  // is tracked elsewhere (e.g. the executor's intra-query chunk cursor).
  bool TrySubmitDetached(std::function<void()> fn);

  // Stops accepting work, runs everything already queued, joins all
  // workers. Idempotent; safe to call concurrently with Submit (the loser
  // of the race gets the runtime_error).
  void Shutdown();

  size_t num_threads() const { return threads_.size(); }

  // Tasks queued but not yet claimed by a worker (approximate: another
  // thread may claim concurrently).
  size_t queue_depth() const;

  // Index of the calling pool worker in [0, num_threads); -1 when called
  // from a thread that does not belong to any ThreadPool.
  static int current_worker_index();

 private:
  void Enqueue(std::function<void()> fn);
  void WorkerLoop(size_t worker_index);

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace warpindex

#endif  // WARPINDEX_EXEC_THREAD_POOL_H_
