// Concurrent query execution over an engine: the server core's serving
// path. The executor serves any EngineLike — a single Engine or a
// ShardedEngine (which borrows this executor's pool for its own
// scatter-gather fan-out; see shard/sharded_engine.h).
//
// The executor owns a fixed ThreadPool and runs range queries of any
// MethodKind over it, two ways:
//
//   * Inter-query parallelism — Submit() enqueues one query and returns a
//     future; SubmitBatch() runs a whole workload and blocks until every
//     result is in, reporting batch wall time and throughput. Queries are
//     embarrassingly parallel (the Engine's read path is const and
//     thread-safe; see core/engine.h), so N workers give ~N× throughput
//     until memory bandwidth saturates.
//
//   * Intra-query parallelism — SearchParallel() runs TW-Sim-Search with
//     its post-filter stage (Algorithm 1 Steps 4..7, the DTW-heavy part)
//     chunked across the pool: the candidate list is split into fixed
//     chunks claimed off an atomic cursor by the calling thread plus any
//     idle workers. Matches come back in candidate order, so answers are
//     byte-identical to the sequential path.
//
// Each worker keeps a DtwScratch reused across every query it executes,
// so steady-state serving performs no per-query DP-row allocations.
//
// Observability: the executor registers into the engine's metrics
// registry — a queue-wait histogram (submit → execution start), an
// in-flight gauge, query/batch counters, and a batch-latency histogram.
// With BatchOptions::collect_traces each query's span tree is recorded by
// its worker into a per-query Trace (traces are single-writer objects;
// sharded queries stitch per-shard child traces via TraceContext — see
// obs/trace.h). The batch result carries one per query, in request
// order — export them with Engine::ExportTrace tagged by query index.
// With QueryExecutorOptions::trace_store set, the executor additionally
// head-gates its own traces on untraced queries and offers every
// finished (or thrown) trace for tail-based retention behind /tracez.
//
// Thread-safety: Submit/SubmitBatch/SearchParallel may be called from
// multiple threads concurrently. Do not mutate the engine (Insert/
// Remove/Rebuild*) while queries are in flight.

#ifndef WARPINDEX_EXEC_QUERY_EXECUTOR_H_
#define WARPINDEX_EXEC_QUERY_EXECUTOR_H_

#include <future>
#include <memory>
#include <vector>

#include "core/engine.h"
#include "exec/thread_pool.h"
#include "obs/flight_recorder.h"
#include "obs/slow_log.h"
#include "obs/trace_store.h"

namespace warpindex {

class IngestEngine;
class SemanticCache;

struct QueryExecutorOptions {
  // Worker count; 0 picks std::thread::hardware_concurrency().
  size_t num_threads = 0;
  // Candidates per chunk for SearchParallel's post-filter fan-out.
  size_t postfilter_chunk = 16;
  // Optional always-on query history sinks (borrowed; must outlive the
  // executor). Every completed query is offered to both — the recorder
  // samples, the slow log keeps the worst-K — feeding /flightrecorder
  // and /slowlog (see exec/introspection.h).
  FlightRecorder* flight_recorder = nullptr;
  SlowQueryLog* slow_log = nullptr;
  // Optional tail-sampled trace retention (borrowed; must outlive the
  // executor). When set, queries that arrive WITHOUT a caller trace are
  // traced by the executor itself (gated by TraceStore::ShouldTrace) and
  // every finished trace — executor-created or caller-supplied — is
  // offered for the tail keep/drop decision, feeding /tracez. Flight and
  // slow-log records carry the trace_id for cross-linking. Without a
  // store (and no caller trace) the hot path stays null-pointer-test
  // only.
  TraceStore* trace_store = nullptr;
  // Optional semantic result cache (borrowed; must outlive the
  // executor). When set, every range query consults it before touching
  // the engine (ε-subsumption reuse; see cache/semantic_cache.h) and
  // populates it on a miss, and SearchKnn() reuses / bound-seeds from
  // it. Answers are bit-identical with or without the cache; hits are
  // attributed in SearchCost::cache_hits, the flight recorder's
  // cache_hit tier, and the warpindex_cache_executor_* metrics.
  SemanticCache* cache = nullptr;
};

// One range query of a batch.
struct QueryRequest {
  MethodKind method = MethodKind::kTwSimSearch;
  Sequence query;
  double epsilon = 0.0;
};

struct BatchOptions {
  // Record a Trace per query (filled by the executing worker).
  bool collect_traces = false;
};

struct BatchResult {
  // One entry per request, in request order.
  std::vector<SearchResult> results;
  // One trace per request (request order); empty unless collect_traces.
  std::vector<Trace> traces;
  // Wall time of the whole batch and the resulting throughput.
  double wall_ms = 0.0;
  double queries_per_sec = 0.0;
};

class QueryExecutor {
 public:
  // `engine` is borrowed and must outlive the executor.
  explicit QueryExecutor(const EngineLike* engine,
                         QueryExecutorOptions options = {});

  // Drains in-flight work (ThreadPool shutdown).
  ~QueryExecutor() = default;

  QueryExecutor(const QueryExecutor&) = delete;
  QueryExecutor& operator=(const QueryExecutor&) = delete;

  // Enqueues one query; the future carries the result (or the exception
  // the query threw). `trace` (optional, caller-owned, must outlive the
  // future's completion) is filled by the executing worker.
  std::future<SearchResult> Submit(MethodKind kind, Sequence query,
                                   double epsilon, Trace* trace = nullptr);

  // Runs `requests` over the pool and blocks until all results are in.
  BatchResult SubmitBatch(const std::vector<QueryRequest>& requests,
                          const BatchOptions& batch_options = {});

  // TW-Sim-Search with the post-filter stage parallelized across the
  // pool. Answers (matches, num_candidates, dtw_cells, I/O) are
  // identical to engine().Search(); only wall time shrinks. Safe to call
  // even from inside a pool task: the calling thread participates in the
  // chunk work, so progress never depends on idle workers.
  //
  // On an engine that is not a single index (AsSingleEngine() == null,
  // i.e. a ShardedEngine), the chunked post-filter does not apply; the
  // query runs through SearchWith instead, whose per-shard fan-out IS
  // the intra-query parallelism. Answers are identical either way.
  //
  // With `use_cascade`, the planned lower-bound cascade
  // (engine().tw_sim_search_cascade()) runs on the calling thread
  // between the fetch and the parallel DTW fan-out, so only the
  // survivors pay chunked DP; answers are still identical (see
  // docs/PLANNER.md), and the executed query feeds the planner's cost
  // model exactly like the sequential path.
  SearchResult SearchParallel(const Sequence& query, double epsilon,
                              Trace* trace = nullptr,
                              bool use_cascade = false);

  // Exact kNN through the semantic cache (when configured): a stored
  // kNN answer with k' >= k is returned directly; otherwise a stored
  // range answer for the same query seeds the engine's pruning bound
  // with the exact k-th distance (SearchKnnSeeded). Without a cache this
  // is engine().SearchKnn() verbatim. Answers are identical in every
  // case. Runs on the calling thread.
  KnnResult SearchKnn(const Sequence& query, size_t k,
                      Trace* trace = nullptr);

  const EngineLike& engine() const { return *engine_; }
  size_t num_threads() const { return pool_.num_threads(); }
  ThreadPool& pool() { return pool_; }

  // ---- Write submission (streaming ingest; see docs/INGEST.md).
  //
  // Wires the executor's pool as the engine's write path: SubmitInsert /
  // SubmitDelete enqueue the mutation like a query and return a future
  // for its outcome, so a serving loop drives reads AND writes through
  // one pool with one backpressure signal (queue_depth). Requires the
  // ingest engine to be the engine this executor serves (its write path
  // is internally synchronized against its own queries — the
  // no-mutation-while-querying rule of Engine/ShardedEngine does NOT
  // apply to it). Wire before serving; not thread-safe against in-flight
  // submissions.
  void AttachIngest(IngestEngine* ingest) { ingest_ = ingest; }
  IngestEngine* ingest() const { return ingest_; }

  // Enqueues one insert; the future carries the assigned global id (or
  // the exception the write threw). Requires AttachIngest.
  std::future<SequenceId> SubmitInsert(Sequence s);

  // Enqueues one delete; the future carries Delete()'s result. Requires
  // AttachIngest.
  std::future<bool> SubmitDelete(SequenceId id);

  // Point-in-time serving-path gauges for live introspection (/statusz).
  // Safe to call concurrently with queries; values are relaxed atomic
  // reads, coherent enough for a dashboard.
  struct Snapshot {
    size_t num_threads = 0;
    size_t queue_depth = 0;
    int64_t in_flight = 0;
    uint64_t queries_total = 0;
    uint64_t batches_total = 0;
  };
  Snapshot TakeSnapshot() const;

 private:
  // Runs one query on the calling (worker) thread with its scratch.
  SearchResult RunQuery(MethodKind kind, const Sequence& query,
                        double epsilon, Trace* trace);

  // Offers a finished query to the configured flight recorder / slow
  // log (no-op when neither is set). `trace_id` (0 = untraced) links the
  // record to its /tracez entry; `cache_tier` marks which cache answered
  // (kNone when the engine ran).
  void RecordFlight(MethodKind kind, const Sequence& query, double epsilon,
                    const SearchResult& result, uint64_t trace_id,
                    CacheTier cache_tier = CacheTier::kNone) const;

  // Offers a finished trace to the trace store's tail sampler (no-op
  // without a store).
  void OfferTrace(MethodKind kind, const Sequence& query, double epsilon,
                  const Trace& trace, size_t matches, double wall_ms,
                  double cpu_ms, bool errored) const;

  DtwScratch* CurrentWorkerScratch();

  const EngineLike* engine_;
  IngestEngine* ingest_ = nullptr;
  QueryExecutorOptions options_;
  ThreadPool pool_;
  // One scratch per worker, indexed by ThreadPool::current_worker_index().
  std::vector<std::unique_ptr<DtwScratch>> worker_scratch_;

  // Metric handles (engine's registry).
  Counter* queries_total_ = nullptr;
  Counter* batches_total_ = nullptr;
  Gauge* inflight_ = nullptr;
  Histogram* queue_wait_ms_ = nullptr;
  Histogram* batch_ms_ = nullptr;
};

}  // namespace warpindex

#endif  // WARPINDEX_EXEC_QUERY_EXECUTOR_H_
