#include "exec/thread_pool.h"

#include <string>

#include "obs/profiler.h"

#include <stdexcept>

namespace warpindex {
namespace {

// Thread-local worker identity, set for the lifetime of WorkerLoop.
thread_local int tls_worker_index = -1;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = 1;
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i]() { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

int ThreadPool::current_worker_index() { return tls_worker_index; }

void ThreadPool::Enqueue(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      throw std::runtime_error("ThreadPool::Submit after Shutdown");
    }
    queue_.push_back(std::move(fn));
  }
  work_available_.notify_one();
}

bool ThreadPool::TrySubmitDetached(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return false;
    }
    queue_.push_back(std::move(fn));
  }
  work_available_.notify_one();
  return true;
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      // Joining is owned by the first caller; later callers may return
      // while the drain completes (the destructor always runs last).
      return;
    }
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  tls_worker_index = static_cast<int>(worker_index);
  // Label this worker's CPU-profile samples (obs/profiler.h) with the
  // same identity the trace thread-tag scheme uses.
  CpuProfiler::SetThreadTag("worker-" + std::to_string(worker_index));
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this]() { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutdown_ && drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // Run outside the lock. packaged_task stores any exception in the
    // future; detached helpers are required not to throw.
    task();
  }
}

}  // namespace warpindex
