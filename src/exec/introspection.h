// Wires the serving stack into the introspection HTTP server
// (obs/httpd.h): one call registers every operator-facing endpoint over
// an Engine and (optionally) its QueryExecutor, FlightRecorder, and
// SlowQueryLog.
//
// Endpoints (reference with sample payloads in docs/OBSERVABILITY.md):
//
//   /healthz          liveness: "ok\n" while the process serves
//   /metrics          Prometheus text exposition of the engine registry
//                     (plus the warpindex_build_info info metric)
//   /statusz          JSON: build info, uptime, executor gauges,
//                     buffer-pool hit ratio, R-tree health, planner
//                     cost-model snapshot, recorder/slow-log/trace-store
//                     state
//   /slowlog          JSON: the worst-K queries by latency, slowest
//                     first, with per-stage timings and prune counters
//   /flightrecorder   JSON: the last N completed queries, oldest first
//   /tracez           JSON: the tail-sampled trace store — recent
//                     stitched traces with full span trees; ?id=<hex>
//                     fetches one trace by the trace_id that /slowlog
//                     and /flightrecorder rows carry
//   /cachez           JSON: one row per semantic-cache tier (executor
//                     and/or router) — lookups, hits, misses, hit
//                     ratio, entries, bytes vs. budget, invalidations,
//                     evictions (cache/semantic_cache.h)
//
// Every handler renders from the snapshot APIs (Engine::
// TakeHealthSnapshot, CascadePlanner::TakeSnapshot, BufferPool::
// TakeStatsSnapshot, QueryExecutor::TakeSnapshot, FlightRecorder/
// SlowQueryLog::Snapshot), all of which are safe against in-flight
// queries — scraping never pauses serving. Do not mutate the engine
// (Insert/Remove/Rebuild*) while the server is running; the same
// exclusion rule as for queries (docs/CONCURRENCY.md).

#ifndef WARPINDEX_EXEC_INTROSPECTION_H_
#define WARPINDEX_EXEC_INTROSPECTION_H_

#include <string>

#include "cache/semantic_cache.h"
#include "core/engine.h"
#include "exec/query_executor.h"
#include "ingest/ingest_engine.h"
#include "net/fleet.h"
#include "net/router.h"
#include "net/shard_server.h"
#include "obs/exporters.h"  // kWarpIndexVersion, GetBuildInfo
#include "obs/flight_recorder.h"
#include "obs/httpd.h"
#include "obs/slow_log.h"
#include "obs/trace_store.h"
#include "shard/sharded_engine.h"

namespace warpindex {

struct IntrospectionOptions {
  // At most one of `engine` / `sharded` / `ingest` is set: the local
  // serving engine the endpoints describe. Wire-plane processes set
  // `router` or `shard_server` below instead (no local engine). With `sharded`, /statusz
  // renders a "sharding" section with one entry per shard (sequence
  // counts, sub-query/skip counters, feature MBR, and full R-tree
  // health) and /metrics exports the shared registry, including the
  // warpindex_shard_* series. With `ingest`, /statusz renders an
  // "ingest" section instead — epoch, write totals, and per-shard
  // base/delta/compaction state — and /metrics carries the
  // warpindex_ingest_* series (see docs/INGEST.md).
  const Engine* engine = nullptr;
  const ShardedEngine* sharded = nullptr;
  const IngestEngine* ingest = nullptr;
  // Wire-plane roles (net/): a router process sets `router` (and no
  // local engine); a shard-server process sets `shard_server`. Each adds
  // its own /statusz section ("router" with group/hedge/retry state,
  // "shard_server" with served shards, connection counters, and
  // admission-shed totals) and serves /metrics from its registry, so the
  // multi-process smoke test can scrape any process the same way.
  const Router* router = nullptr;
  const ShardServer* shard_server = nullptr;
  // Fleet federation (router processes; net/fleet.h). When set,
  // /metrics?fleet=1 renders the aggregated fleet page and /fleetz the
  // per-replica liveness rows. Mutable: rendering may trigger a poll.
  FleetPoller* fleet = nullptr;
  const QueryExecutor* executor = nullptr;  // optional
  // Semantic-cache tiers (cache/semantic_cache.h), each one /cachez row
  // and part of the /statusz "cache" section: `cache` is the serving
  // process's engine-side (executor) tier, `router_cache` the router's
  // wire-side tier. Either, both, or neither may be set.
  const SemanticCache* cache = nullptr;
  const SemanticCache* router_cache = nullptr;
  const FlightRecorder* flight_recorder = nullptr;
  const SlowQueryLog* slow_log = nullptr;
  // Tail-sampled trace store behind /tracez (obs/trace_store.h).
  const TraceStore* trace_store = nullptr;
};

// Registers /healthz, /metrics, /statusz, /slowlog, /flightrecorder,
// /tracez, and /profilez on `server` (call before Start()), plus
// /fleetz when `options.fleet` is set. All pointers in `options`
// are borrowed and must outlive the server. Null optionals render as
// JSON null in /statusz; /slowlog, /flightrecorder, and /tracez answer
// 404-free with an empty record list (except /tracez?id=<hex>, which is
// 404 when no retained trace has that id).
void RegisterIntrospectionRoutes(IntrospectionServer* server,
                                 const IntrospectionOptions& options);

// The /statusz document (exposed separately so tests and the CLI can
// render it without a socket). `uptime_s` is the caller's serving-start
// clock.
std::string StatuszJson(const IntrospectionOptions& options,
                        double uptime_s);

}  // namespace warpindex

#endif  // WARPINDEX_EXEC_INTROSPECTION_H_
