// Wires the serving stack into the introspection HTTP server
// (obs/httpd.h): one call registers every operator-facing endpoint over
// an Engine and (optionally) its QueryExecutor, FlightRecorder, and
// SlowQueryLog.
//
// Endpoints (reference with sample payloads in docs/OBSERVABILITY.md):
//
//   /healthz          liveness: "ok\n" while the process serves
//   /metrics          Prometheus text exposition of the engine registry
//   /statusz          JSON: build info, uptime, executor gauges,
//                     buffer-pool hit ratio, R-tree health, planner
//                     cost-model snapshot, recorder/slow-log state
//   /slowlog          JSON: the worst-K queries by latency, slowest
//                     first, with per-stage timings and prune counters
//   /flightrecorder   JSON: the last N completed queries, oldest first
//
// Every handler renders from the snapshot APIs (Engine::
// TakeHealthSnapshot, CascadePlanner::TakeSnapshot, BufferPool::
// TakeStatsSnapshot, QueryExecutor::TakeSnapshot, FlightRecorder/
// SlowQueryLog::Snapshot), all of which are safe against in-flight
// queries — scraping never pauses serving. Do not mutate the engine
// (Insert/Remove/Rebuild*) while the server is running; the same
// exclusion rule as for queries (docs/CONCURRENCY.md).

#ifndef WARPINDEX_EXEC_INTROSPECTION_H_
#define WARPINDEX_EXEC_INTROSPECTION_H_

#include <string>

#include "core/engine.h"
#include "exec/query_executor.h"
#include "obs/flight_recorder.h"
#include "obs/httpd.h"
#include "obs/slow_log.h"
#include "shard/sharded_engine.h"

namespace warpindex {

// Library version reported in /statusz build info.
inline constexpr const char* kWarpIndexVersion = "0.5.0";

struct IntrospectionOptions {
  // Exactly one of `engine` / `sharded` must be set: the serving engine
  // the endpoints describe. With `sharded`, /statusz renders a
  // "sharding" section with one entry per shard (sequence counts,
  // sub-query/skip counters, feature MBR, and full R-tree health) and
  // /metrics exports the shared registry, including the
  // warpindex_shard_* series.
  const Engine* engine = nullptr;
  const ShardedEngine* sharded = nullptr;
  const QueryExecutor* executor = nullptr;  // optional
  const FlightRecorder* flight_recorder = nullptr;
  const SlowQueryLog* slow_log = nullptr;
};

// Registers /healthz, /metrics, /statusz, /slowlog, and /flightrecorder
// on `server` (call before Start()). All pointers in `options` are
// borrowed and must outlive the server. Null optionals render as JSON
// null in /statusz; /slowlog and /flightrecorder answer 404-free with an
// empty record list.
void RegisterIntrospectionRoutes(IntrospectionServer* server,
                                 const IntrospectionOptions& options);

// The /statusz document (exposed separately so tests and the CLI can
// render it without a socket). `uptime_s` is the caller's serving-start
// clock.
std::string StatuszJson(const IntrospectionOptions& options,
                        double uptime_s);

}  // namespace warpindex

#endif  // WARPINDEX_EXEC_INTROSPECTION_H_
