#include "exec/introspection.h"

#include <cstdlib>

#include "obs/profiler.h"

#include <chrono>
#include <cmath>
#include <cstdio>

#include "obs/exporters.h"
#include "plan/cascade_planner.h"

namespace warpindex {
namespace {

// Local finite-number formatter (JSON has no Inf/NaN).
std::string Num(double v) {
  if (!std::isfinite(v)) {
    return "null";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string RTreeHealthJson(const RTreeHealth& h) {
  std::string out = "{";
  out += "\"height\":" + std::to_string(h.height);
  out += ",\"records\":" + std::to_string(h.records);
  out += ",\"nodes\":" + std::to_string(h.nodes);
  out += ",\"leaves\":" + std::to_string(h.leaves);
  out += ",\"supernodes\":" + std::to_string(h.supernodes);
  out += ",\"pages\":" + std::to_string(h.pages);
  out += ",\"bytes\":" + std::to_string(h.bytes);
  out += ",\"node_capacity\":" + std::to_string(h.node_capacity);
  out += ",\"leaf_occupancy\":" + Num(h.leaf_occupancy);
  out += ",\"overlap_ratio\":" + Num(h.overlap_ratio);
  out += ",\"dead_space_ratio\":" + Num(h.dead_space_ratio);
  out += ",\"levels\":[";
  for (size_t i = 0; i < h.levels.size(); ++i) {
    const RTreeHealth::LevelStats& level = h.levels[i];
    if (i > 0) {
      out.push_back(',');
    }
    out += "{\"level\":" + std::to_string(level.level);
    out += ",\"nodes\":" + std::to_string(level.nodes);
    out += ",\"entries\":" + std::to_string(level.entries);
    out += ",\"avg_occupancy\":" + Num(level.avg_occupancy);
    out += ",\"min_occupancy\":" + Num(level.min_occupancy) + "}";
  }
  out += "]}";
  return out;
}

std::string PlannerJson(const CascadePlanner::Snapshot& p) {
  std::string out = "{";
  out += "\"mode\":" + JsonEscape(PlanModeName(p.mode));
  out += ",\"plans_chosen\":" + std::to_string(p.plans_chosen);
  out += ",\"current_plan\":" + JsonEscape(p.current_plan.ToString());
  out += ",\"stages\":{";
  for (size_t i = 0; i < p.stages.size(); ++i) {
    const CascadePlanner::StageSnapshot& stage = p.stages[i];
    if (i > 0) {
      out.push_back(',');
    }
    out += JsonEscape(std::string(CascadeStageName(stage.stage)));
    out += ":{\"unit_cost_ms\":" + Num(stage.stats.unit_cost_ms);
    out += ",\"pass_rate\":" + Num(stage.stats.pass_rate);
    out += ",\"updates\":" + std::to_string(stage.stats.updates);
    out += std::string(",\"in_current_plan\":") +
           (stage.in_current_plan ? "true" : "false") + "}";
  }
  out += "},\"dtw\":{\"unit_cost_ms\":" + Num(p.dtw.unit_cost_ms);
  out += ",\"pass_rate\":" + Num(p.dtw.pass_rate);
  out += ",\"updates\":" + std::to_string(p.dtw.updates) + "}}";
  return out;
}

std::string BufferPoolJson(const BufferPool::StatsSnapshot& pool) {
  std::string out = "{\"capacity\":" + std::to_string(pool.capacity);
  out += ",\"cached\":" + std::to_string(pool.cached);
  out += ",\"shards\":" + std::to_string(pool.shards);
  out += ",\"hits\":" + std::to_string(pool.hits);
  out += ",\"misses\":" + std::to_string(pool.misses);
  out += ",\"hit_ratio\":" + Num(pool.hit_ratio) + "}";
  return out;
}

std::string CacheStatsJson(const SemanticCacheStats& stats) {
  std::string out = "{\"tier\":" + JsonEscape(stats.tier);
  out += ",\"lookups\":" + std::to_string(stats.lookups);
  out += ",\"hits\":" + std::to_string(stats.hits);
  out += ",\"misses\":" + std::to_string(stats.misses);
  out += ",\"hit_ratio\":" + Num(stats.hit_ratio);
  out += ",\"insertions\":" + std::to_string(stats.insertions);
  out += ",\"invalidations\":" + std::to_string(stats.invalidations);
  out += ",\"evictions\":" + std::to_string(stats.evictions);
  out += ",\"entries\":" + std::to_string(stats.entries);
  out += ",\"bytes\":" + std::to_string(stats.bytes);
  out += ",\"max_bytes\":" + std::to_string(stats.max_bytes) + "}";
  return out;
}

// The /cachez document and the /statusz "cache" section: one row per
// configured tier, executor first.
std::string CachezJson(const IntrospectionOptions& options) {
  std::string out = "{\"tiers\":[";
  bool first = true;
  for (const SemanticCache* cache : {options.cache, options.router_cache}) {
    if (cache == nullptr) {
      continue;
    }
    if (!first) {
      out.push_back(',');
    }
    first = false;
    out += CacheStatsJson(cache->TakeStats());
  }
  out += "]}";
  return out;
}

std::string FeatureMbrJson(const ShardFeatureBounds& bounds) {
  if (!bounds.valid) {
    return "null";
  }
  std::string out = "{\"min\":[";
  for (int d = 0; d < bounds.mbr.dims; ++d) {
    if (d > 0) {
      out.push_back(',');
    }
    out += Num(bounds.mbr.min[static_cast<size_t>(d)]);
  }
  out += "],\"max\":[";
  for (int d = 0; d < bounds.mbr.dims; ++d) {
    if (d > 0) {
      out.push_back(',');
    }
    out += Num(bounds.mbr.max[static_cast<size_t>(d)]);
  }
  out += "]}";
  return out;
}

// One /statusz row per shard: data/index health, serving counters, and
// the pruning MBR — the acceptance surface for "is shard i healthy and
// is pruning actually skipping it".
std::string ShardingJson(const ShardedEngine::Health& health) {
  std::string out = "{\"num_shards\":" + std::to_string(health.num_shards);
  out += ",\"partitioner\":" +
         JsonEscape(PartitionerKindName(health.partitioner));
  out += ",\"queries_total\":" + std::to_string(health.queries_total);
  out += ",\"subqueries_total\":" +
         std::to_string(health.subqueries_total);
  out += ",\"shards_skipped_total\":" +
         std::to_string(health.shards_skipped_total);
  out += ",\"shards\":[";
  for (size_t i = 0; i < health.shards.size(); ++i) {
    const ShardedEngine::ShardStatus& shard = health.shards[i];
    if (i > 0) {
      out.push_back(',');
    }
    out += "{\"shard\":" + std::to_string(shard.shard_index);
    out += ",\"sequences\":" +
           std::to_string(shard.health.dataset_sequences);
    out += ",\"live\":" + std::to_string(shard.health.live_sequences);
    out += ",\"index_entries\":" +
           std::to_string(shard.health.index_entries);
    out += ",\"queries\":" + std::to_string(shard.queries);
    out += ",\"skipped\":" + std::to_string(shard.skipped);
    out += ",\"feature_mbr\":" + FeatureMbrJson(shard.bounds);
    out += ",\"rtree\":" + RTreeHealthJson(shard.health.index);
    out += ",\"buffer_pool\":" +
           (shard.health.has_pool ? BufferPoolJson(shard.health.pool)
                                  : std::string("null"));
    out += "}";
  }
  out += "]}";
  return out;
}

// One /tracez row: the tail summary plus the full stitched span tree.
std::string CompletedTraceJson(const CompletedTrace& trace) {
  std::string out = "{\"seq\":" + std::to_string(trace.seq);
  out += ",\"trace_id\":" + JsonEscape(TraceIdHex(trace.trace.trace_id()));
  out += ",\"timestamp_ms\":" + Num(trace.timestamp_ms);
  out += ",\"method\":" + JsonEscape(trace.method);
  out += ",\"epsilon\":" + Num(trace.epsilon);
  out += ",\"query_length\":" + std::to_string(trace.query_length);
  out += ",\"matches\":" + std::to_string(trace.matches);
  out += ",\"wall_ms\":" + Num(trace.wall_ms);
  out += ",\"cpu_ms\":" + Num(trace.cpu_ms);
  out += std::string(",\"errored\":") + (trace.errored ? "true" : "false");
  out += ",\"keep\":" + JsonEscape(TraceKeepName(trace.keep));
  size_t shards = 0;
  for (const TraceSpan& span : trace.trace.spans()) {
    if (span.name == "shard") {
      ++shards;
    }
  }
  out += ",\"shards\":" + std::to_string(shards);
  out += ",\"shard_skew_ratio\":" +
         Num(TraceStore::ShardSkewRatio(trace.trace));
  out += ",\"spans\":" + TraceToJsonArray(trace.trace) + "}";
  return out;
}

std::string TracezListJson(const TraceStore* store) {
  if (store == nullptr) {
    return "{\"count\":0,\"traces\":[]}";
  }
  const std::vector<CompletedTrace> traces = store->Snapshot();
  std::string out = "{\"count\":" + std::to_string(traces.size());
  out += ",\"offered\":" + std::to_string(store->offered());
  out += ",\"kept\":" + std::to_string(store->kept());
  out += ",\"kept_slow\":" + std::to_string(store->kept_slow());
  out += ",\"kept_error\":" + std::to_string(store->kept_error());
  out += ",\"kept_shard_skew\":" + std::to_string(store->kept_skew());
  out += ",\"kept_sampled\":" + std::to_string(store->kept_sampled());
  out += ",\"traces\":[";
  for (size_t i = 0; i < traces.size(); ++i) {
    if (i > 0) {
      out.push_back(',');
    }
    out += CompletedTraceJson(traces[i]);
  }
  out += "]}";
  return out;
}

// One /statusz row per ingest shard: base vs delta split, write rate,
// and compaction history — the acceptance surface for "is the write
// path keeping up and is the compactor draining it".
std::string IngestJson(const IngestEngine::Health& health) {
  std::string out = "{\"num_shards\":" + std::to_string(health.num_shards);
  out += ",\"partitioner\":" +
         JsonEscape(PartitionerKindName(health.partitioner));
  out += ",\"epoch\":" + std::to_string(health.epoch);
  out += ",\"live\":" + std::to_string(health.live_sequences);
  out += ",\"id_space\":" + std::to_string(health.id_space);
  out += ",\"inserts_total\":" + std::to_string(health.inserts_total);
  out += ",\"deletes_total\":" + std::to_string(health.deletes_total);
  out += ",\"compactions_total\":" +
         std::to_string(health.compactions_total);
  out += ",\"cut_rebalances_total\":" +
         std::to_string(health.cut_rebalances_total);
  out += ",\"compaction_backlog\":" +
         std::to_string(health.compaction_backlog);
  out += ",\"shards\":[";
  for (size_t i = 0; i < health.shards.size(); ++i) {
    const IngestEngine::ShardStatus& shard = health.shards[i];
    if (i > 0) {
      out.push_back(',');
    }
    out += "{\"shard\":" + std::to_string(shard.shard_index);
    out += ",\"base_sequences\":" + std::to_string(shard.base_sequences);
    out += ",\"delta_entries\":" + std::to_string(shard.delta_entries);
    out += ",\"tombstones\":" + std::to_string(shard.tombstones);
    out += ",\"writes_total\":" + std::to_string(shard.writes_total);
    out += ",\"write_rate_per_s\":" + Num(shard.write_rate_per_s);
    out += ",\"compactions\":" + std::to_string(shard.compactions);
    out += ",\"last_compaction_ms\":" + Num(shard.last_compaction_ms);
    out += ",\"feature_mbr\":" + FeatureMbrJson(shard.bounds);
    out += ",\"rtree\":" + RTreeHealthJson(shard.base_health.index);
    out += "}";
  }
  out += "]}";
  return out;
}

// The router process's /statusz section: topology as learned at
// handshake plus the hedging/retry counters — the acceptance surface
// for "did the hedge fire and which replica answered".
std::string RouterJson(const Router& router) {
  const Router::Stats stats = router.stats();
  std::string out = "{\"num_groups\":" + std::to_string(stats.num_groups);
  out += ",\"num_shards\":" + std::to_string(stats.num_shards);
  out += ",\"partitioner\":" +
         JsonEscape(PartitionerKindName(router.partitioner()));
  out += ",\"queries_total\":" + std::to_string(stats.queries);
  out += ",\"subrequests_total\":" + std::to_string(stats.subrequests);
  out += ",\"hedges_total\":" + std::to_string(stats.hedges);
  out += ",\"retries_total\":" + std::to_string(stats.retries);
  out += ",\"failed_subrequests_total\":" +
         std::to_string(stats.failed_subrequests);
  out += ",\"hedge_delay_ms\":" + Num(stats.hedge_delay_ms);
  out += ",\"groups\":[";
  const std::vector<RouterGroup>& groups = router.groups();
  for (size_t g = 0; g < groups.size(); ++g) {
    if (g > 0) {
      out.push_back(',');
    }
    out += "{\"group\":" + std::to_string(g);
    out += ",\"replicas\":[";
    for (size_t r = 0; r < groups[g].replicas.size(); ++r) {
      if (r > 0) {
        out.push_back(',');
      }
      out += JsonEscape(groups[g].replicas[r].host + ":" +
                        std::to_string(groups[g].replicas[r].port));
    }
    out += "],\"shards\":[";
    for (size_t i = 0; i < groups[g].shards.size(); ++i) {
      if (i > 0) {
        out.push_back(',');
      }
      out += std::to_string(groups[g].shards[i]);
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

// A shard-server process's /statusz section: identity, served shards,
// transport counters, and admission-shed totals.
std::string ShardServerJson(const ShardServer& server) {
  const WireServerStats stats = server.server().stats();
  const AdmissionController& admission = server.server().admission();
  std::string out = "{\"group\":" + std::to_string(server.group());
  out += ",\"replica\":" + std::to_string(server.replica());
  out += ",\"port\":" + std::to_string(server.port());
  out += ",\"manifest_num_shards\":" +
         std::to_string(server.manifest_num_shards());
  out += ",\"partitioner\":" +
         JsonEscape(PartitionerKindName(server.partitioner()));
  out += std::string(",\"draining\":") +
         (stats.draining ? "true" : "false");
  out += ",\"connections_total\":" +
         std::to_string(stats.connections_total);
  out += ",\"active_connections\":" +
         std::to_string(stats.active_connections);
  out += ",\"requests_total\":" + std::to_string(stats.requests_total);
  out += ",\"errors_total\":" + std::to_string(stats.errors_total);
  out += ",\"shed_total\":" + std::to_string(stats.shed_total);
  out += ",\"inflight\":" + std::to_string(stats.inflight);
  out += ",\"admission\":{\"admitted_total\":" +
         std::to_string(admission.admitted_total());
  out += ",\"shed_quota_total\":" +
         std::to_string(admission.shed_quota_total());
  out += ",\"shed_overload_total\":" +
         std::to_string(admission.shed_overload_total()) + "}";
  out += ",\"shards\":[";
  const std::vector<ShardServer::ServedShard> served = server.served();
  for (size_t i = 0; i < served.size(); ++i) {
    if (i > 0) {
      out.push_back(',');
    }
    out += "{\"shard\":" + std::to_string(served[i].shard);
    out += ",\"sequences\":" + std::to_string(served[i].sequences);
    out += ",\"live\":" + std::to_string(served[i].live) + "}";
  }
  out += "]}";
  return out;
}

// "<key>=<value>" from a query string, or empty when absent.
std::string QueryParam(const std::string& query, const std::string& key) {
  const std::string prefix = key + "=";
  size_t pos = 0;
  while (pos < query.size()) {
    size_t end = query.find('&', pos);
    if (end == std::string::npos) {
      end = query.size();
    }
    const std::string param = query.substr(pos, end - pos);
    if (param.rfind(prefix, 0) == 0) {
      return param.substr(prefix.size());
    }
    pos = end + 1;
  }
  return "";
}

// "id=<hex>" from a /tracez query string, or empty.
std::string TraceIdParam(const std::string& query) {
  return QueryParam(query, "id");
}

// Strict numeric parses for /profilez: the whole string must be the
// number (a trailing "abc" is a 400, not silently ignored).
bool ParseDoubleParam(const std::string& text, double* out) {
  if (text.empty()) {
    return false;
  }
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) {
    return false;
  }
  *out = value;
  return true;
}

bool ParseIntParam(const std::string& text, int* out) {
  double value = 0.0;
  if (!ParseDoubleParam(text, &value) ||
      value != static_cast<double>(static_cast<int>(value))) {
    return false;
  }
  *out = static_cast<int>(value);
  return true;
}

// The registry behind whichever engine flavor is being served.
MetricsRegistry* RegistryOf(const IntrospectionOptions& options) {
  if (options.engine != nullptr) {
    return &options.engine->metrics();
  }
  if (options.sharded != nullptr) {
    return &options.sharded->metrics();
  }
  if (options.ingest != nullptr) {
    return &options.ingest->metrics();
  }
  if (options.router != nullptr) {
    return &options.router->metrics();
  }
  if (options.shard_server != nullptr) {
    // Wire-plane processes (the CLI's shard-serve) register their
    // warpindex_net_* series in the process-global registry.
    return &MetricsRegistry::Global();
  }
  return nullptr;
}

}  // namespace

std::string StatuszJson(const IntrospectionOptions& options,
                        double uptime_s) {
  const BuildInfo build = GetBuildInfo();
  std::string out = "{\"build\":{";
  out += "\"name\":\"warpindex\"";
  out += ",\"version\":" + JsonEscape(build.version);
  out += ",\"compiler\":" + JsonEscape(build.compiler);
  out += ",\"build_type\":" + JsonEscape(build.build_type);
  out += ",\"cxx_standard\":" + std::to_string(__cplusplus);
  out += "},\"uptime_s\":" + Num(uptime_s);

  // One ingest snapshot reused for the dataset line and the "ingest"
  // section (TakeHealthSnapshot traverses every base index).
  IngestEngine::Health ingest_health;
  if (options.ingest != nullptr) {
    ingest_health = options.ingest->TakeHealthSnapshot();
  }

  Engine::Health health;  // single-engine sections (empty when sharded)
  if (options.engine != nullptr) {
    health = options.engine->TakeHealthSnapshot();
    out += ",\"dataset\":{\"sequences\":" +
           std::to_string(health.dataset_sequences);
    out += ",\"live\":" + std::to_string(health.live_sequences);
    out += ",\"index_entries\":" + std::to_string(health.index_entries) +
           "}";
    out += ",\"engine\":{\"page_size_bytes\":" +
           std::to_string(options.engine->options().page_size_bytes);
    out += ",\"index_buffer_pages\":" +
           std::to_string(options.engine->options().index_buffer_pages) +
           "}";
  } else if (options.sharded != nullptr) {
    const ShardedEngine& sharded = *options.sharded;
    size_t index_entries = 0;
    // Aggregate dataset view; the per-shard split is in "sharding".
    for (size_t s = 0; s < sharded.num_shards(); ++s) {
      index_entries += sharded.shard(s).feature_index().size();
    }
    out += ",\"dataset\":{\"sequences\":" +
           std::to_string(sharded.total_sequences());
    out += ",\"live\":" + std::to_string(sharded.live_size());
    out += ",\"index_entries\":" + std::to_string(index_entries) + "}";
    const EngineOptions& engine_options = sharded.shard(0).options();
    out += ",\"engine\":{\"page_size_bytes\":" +
           std::to_string(engine_options.page_size_bytes);
    out += ",\"index_buffer_pages\":" +
           std::to_string(engine_options.index_buffer_pages) + "}";
  } else if (options.ingest != nullptr) {
    size_t index_entries = 0;
    size_t delta_entries = 0;
    for (const IngestEngine::ShardStatus& shard : ingest_health.shards) {
      index_entries += shard.base_health.index_entries;
      delta_entries += shard.delta_entries;
    }
    out += ",\"dataset\":{\"sequences\":" +
           std::to_string(ingest_health.id_space);
    out += ",\"live\":" + std::to_string(ingest_health.live_sequences);
    out += ",\"index_entries\":" + std::to_string(index_entries);
    out += ",\"delta_entries\":" + std::to_string(delta_entries) + "}";
    const EngineOptions& engine_options = options.ingest->options().engine;
    out += ",\"engine\":{\"page_size_bytes\":" +
           std::to_string(engine_options.page_size_bytes);
    out += ",\"index_buffer_pages\":" +
           std::to_string(engine_options.index_buffer_pages) + "}";
  }

  if (options.executor != nullptr) {
    const QueryExecutor::Snapshot exec = options.executor->TakeSnapshot();
    out += ",\"executor\":{\"threads\":" +
           std::to_string(exec.num_threads);
    out += ",\"in_flight\":" + std::to_string(exec.in_flight);
    out += ",\"queue_depth\":" + std::to_string(exec.queue_depth);
    out += ",\"queries_total\":" + std::to_string(exec.queries_total);
    out += ",\"batches_total\":" + std::to_string(exec.batches_total) +
           "}";
  } else {
    out += ",\"executor\":null";
  }

  if (options.engine != nullptr && health.has_pool) {
    out += ",\"buffer_pool\":" + BufferPoolJson(health.pool);
  } else {
    out += ",\"buffer_pool\":null";
  }

  // Single-engine index/planner detail; the sharded equivalents live
  // per shard inside "sharding" (each shard has its own R-tree and
  // CascadePlanner).
  if (options.engine != nullptr) {
    out += ",\"rtree\":" + RTreeHealthJson(health.index);
    out += ",\"planner\":" +
           PlannerJson(options.engine->tw_sim_search_cascade()
                           .planner()
                           .TakeSnapshot());
  } else {
    out += ",\"rtree\":null,\"planner\":null";
  }

  if (options.sharded != nullptr) {
    out += ",\"sharding\":" +
           ShardingJson(options.sharded->TakeHealthSnapshot());
  } else {
    out += ",\"sharding\":null";
  }

  if (options.ingest != nullptr) {
    out += ",\"ingest\":" + IngestJson(ingest_health);
  } else {
    out += ",\"ingest\":null";
  }

  if (options.router != nullptr) {
    out += ",\"router\":" + RouterJson(*options.router);
  } else {
    out += ",\"router\":null";
  }

  if (options.shard_server != nullptr) {
    out += ",\"shard_server\":" + ShardServerJson(*options.shard_server);
  } else {
    out += ",\"shard_server\":null";
  }

  if (options.flight_recorder != nullptr) {
    const FlightRecorder& recorder = *options.flight_recorder;
    out += ",\"flight_recorder\":{\"capacity\":" +
           std::to_string(recorder.capacity());
    out += ",\"sample_every\":" + std::to_string(recorder.sample_every());
    out += ",\"offered\":" + std::to_string(recorder.offered());
    out += ",\"recorded\":" + std::to_string(recorder.recorded()) + "}";
  } else {
    out += ",\"flight_recorder\":null";
  }

  if (options.slow_log != nullptr) {
    out += ",\"slow_log\":{\"capacity\":" +
           std::to_string(options.slow_log->capacity());
    out += ",\"offered\":" + std::to_string(options.slow_log->offered());
    out += ",\"admission_threshold_ms\":" +
           Num(options.slow_log->admission_threshold_ms()) + "}";
  } else {
    out += ",\"slow_log\":null";
  }

  if (options.cache != nullptr || options.router_cache != nullptr) {
    out += ",\"cache\":" + CachezJson(options);
  } else {
    out += ",\"cache\":null";
  }

  if (options.trace_store != nullptr) {
    const TraceStore& store = *options.trace_store;
    out += ",\"trace_store\":{\"capacity\":" +
           std::to_string(store.capacity());
    out += ",\"slow_ms\":" + Num(store.options().slow_ms);
    out += ",\"sample_probability\":" +
           Num(store.options().sample_probability);
    out += ",\"skew_ratio\":" + Num(store.options().skew_ratio);
    out += ",\"head_sample_every\":" +
           std::to_string(store.options().head_sample_every);
    out += ",\"offered\":" + std::to_string(store.offered());
    out += ",\"kept\":" + std::to_string(store.kept());
    out += ",\"kept_slow\":" + std::to_string(store.kept_slow());
    out += ",\"kept_error\":" + std::to_string(store.kept_error());
    out += ",\"kept_shard_skew\":" + std::to_string(store.kept_skew());
    out += ",\"kept_sampled\":" + std::to_string(store.kept_sampled()) +
           "}";
  } else {
    out += ",\"trace_store\":null";
  }

  out += "}";
  return out;
}

void RegisterIntrospectionRoutes(IntrospectionServer* server,
                                 const IntrospectionOptions& options) {
  const auto started = std::chrono::steady_clock::now();

  server->Handle("/healthz", [](const HttpRequest&) {
    return HttpResponse{.body = "ok\n"};
  });

  server->Handle("/metrics", [options](const HttpRequest& request) {
    HttpResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    // ?fleet=1 on a router: the federated page (per-replica instance
    // labels + fleet sums) instead of this process's own registry.
    if (QueryParam(request.query, "fleet") == "1") {
      if (options.fleet == nullptr) {
        response.status = 400;
        response.content_type = "text/plain";
        response.body = "fleet=1 requires a router with a fleet poller\n";
        return response;
      }
      response.body = options.fleet->FleetMetricsText();
      return response;
    }
    MetricsRegistry* registry = RegistryOf(options);
    const BuildInfo build = GetBuildInfo();
    const ProcessSelfMetrics process = CollectProcessSelfMetrics();
    response.body =
        registry != nullptr
            ? MetricsToPrometheusText(registry->TakeSnapshot(), &build,
                                      &process)
            : MetricsToPrometheusText(MetricsRegistry::Snapshot{}, &build,
                                      &process);
    return response;
  });

  server->Handle("/statusz", [options, started](const HttpRequest&) {
    const double uptime_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count();
    HttpResponse response;
    response.content_type = "application/json";
    response.body = StatuszJson(options, uptime_s);
    return response;
  });

  server->Handle("/slowlog", [options](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json";
    response.body = FlightRecordsToJson(
        options.slow_log != nullptr ? options.slow_log->Snapshot()
                                    : std::vector<FlightRecord>{});
    return response;
  });

  server->Handle("/flightrecorder", [options](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json";
    response.body = FlightRecordsToJson(
        options.flight_recorder != nullptr
            ? options.flight_recorder->Snapshot()
            : std::vector<FlightRecord>{});
    return response;
  });

  server->Handle("/profilez", [](const HttpRequest& request) {
    HttpResponse response;
    // ?seconds=N&hz=M&format=speedscope|folded. Sampling blocks this
    // handler thread for the window; serving continues meanwhile.
    double seconds = 5.0;
    int hz = 99;
    const std::string seconds_param = QueryParam(request.query, "seconds");
    const std::string hz_param = QueryParam(request.query, "hz");
    const std::string format = QueryParam(request.query, "format");
    if (!seconds_param.empty() &&
        !ParseDoubleParam(seconds_param, &seconds)) {
      response.status = 400;
      response.content_type = "text/plain";
      response.body = "invalid seconds parameter\n";
      return response;
    }
    if (!hz_param.empty() && !ParseIntParam(hz_param, &hz)) {
      response.status = 400;
      response.content_type = "text/plain";
      response.body = "invalid hz parameter\n";
      return response;
    }
    if (!format.empty() && format != "speedscope" && format != "folded") {
      response.status = 400;
      response.content_type = "text/plain";
      response.body = "format must be speedscope or folded\n";
      return response;
    }
    Profile profile;
    const Status status =
        CpuProfiler::Global().Collect(seconds, hz, &profile);
    if (!status.ok()) {
      // A profile already in flight is a conflict; bad parameters and
      // unsupported platforms are the client's problem.
      response.status =
          status.code() == StatusCode::kFailedPrecondition ? 409 : 400;
      response.content_type = "text/plain";
      response.body = std::string(status.message()) + "\n";
      return response;
    }
    if (format == "folded") {
      response.content_type = "text/plain; charset=utf-8";
      response.body = profile.FoldedText();
    } else {
      response.content_type = "application/json";
      response.body = profile.SpeedscopeJson();
    }
    return response;
  });

  if (options.fleet != nullptr) {
    FleetPoller* fleet = options.fleet;
    server->Handle("/fleetz", [fleet](const HttpRequest&) {
      HttpResponse response;
      response.content_type = "application/json";
      response.body = fleet->FleetzJson();
      return response;
    });
  }

  server->Handle("/cachez", [options](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json";
    response.body = CachezJson(options);
    return response;
  });

  server->Handle("/tracez", [options](const HttpRequest& request) {
    HttpResponse response;
    response.content_type = "application/json";
    const std::string id_hex = TraceIdParam(request.query);
    if (id_hex.empty()) {
      response.body = TracezListJson(options.trace_store);
      return response;
    }
    const uint64_t trace_id = ParseTraceIdHex(id_hex);
    CompletedTrace trace;
    if (trace_id == 0 || options.trace_store == nullptr ||
        !options.trace_store->Find(trace_id, &trace)) {
      response.status = 404;
      response.body =
          "{\"error\":\"no retained trace\",\"id\":" + JsonEscape(id_hex) +
          "}";
      return response;
    }
    response.body = CompletedTraceJson(trace);
    return response;
  });
}

}  // namespace warpindex
