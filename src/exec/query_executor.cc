#include "exec/query_executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <utility>

#include <stdexcept>

#include "cache/semantic_cache.h"
#include "common/timer.h"
#include "ingest/ingest_engine.h"

namespace warpindex {
namespace {

double MillisSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// Decrements the in-flight gauge on every exit path, including a query
// that throws through the future.
class InflightGuard {
 public:
  explicit InflightGuard(Gauge* gauge) : gauge_(gauge) {}
  ~InflightGuard() { gauge_->Decrement(); }
  InflightGuard(const InflightGuard&) = delete;
  InflightGuard& operator=(const InflightGuard&) = delete;

 private:
  Gauge* gauge_;
};

size_t DefaultThreads(size_t requested) {
  if (requested > 0) {
    return requested;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace

QueryExecutor::QueryExecutor(const EngineLike* engine,
                             QueryExecutorOptions options)
    : engine_(engine),
      options_(options),
      pool_(DefaultThreads(options.num_threads)) {
  worker_scratch_.reserve(pool_.num_threads());
  for (size_t i = 0; i < pool_.num_threads(); ++i) {
    worker_scratch_.push_back(std::make_unique<DtwScratch>());
  }
  MetricsRegistry& metrics = engine_->metrics();
  queries_total_ = metrics.GetCounter(
      "warpindex_exec_queries_total",
      "queries executed by the concurrent executor");
  batches_total_ = metrics.GetCounter(
      "warpindex_exec_batches_total", "SubmitBatch calls");
  inflight_ = metrics.GetGauge(
      "warpindex_exec_inflight_queries",
      "queries submitted to the executor but not yet finished");
  queue_wait_ms_ = metrics.GetHistogram(
      "warpindex_exec_queue_wait_ms",
      ExponentialBoundaries(0.001, 2.0, 24),
      "submit-to-start wait in the executor's work queue (ms)");
  batch_ms_ = metrics.GetHistogram(
      "warpindex_exec_batch_ms", ExponentialBoundaries(0.1, 2.0, 24),
      "wall time per SubmitBatch call (ms)");
}

DtwScratch* QueryExecutor::CurrentWorkerScratch() {
  // Only ever called from this pool's own tasks, so the thread-local
  // worker index addresses worker_scratch_ of this executor.
  const int worker = ThreadPool::current_worker_index();
  if (worker >= 0 &&
      static_cast<size_t>(worker) < worker_scratch_.size()) {
    return worker_scratch_[static_cast<size_t>(worker)].get();
  }
  return nullptr;
}

SearchResult QueryExecutor::RunQuery(MethodKind kind, const Sequence& query,
                                     double epsilon, Trace* trace) {
  queries_total_->Increment();
  // Executor-initiated tracing: with a trace store configured and no
  // caller trace, trace the query ourselves (head-gated) so the tail
  // sampler has material. Untraced queries pay only the null tests.
  std::optional<Trace> local;
  if (trace == nullptr && options_.trace_store != nullptr &&
      options_.trace_store->ShouldTrace()) {
    local.emplace();
    trace = &*local;
  }
  std::optional<WallTimer> timer;
  std::optional<ThreadCpuTimer> cpu_timer;
  if (trace != nullptr) {
    timer.emplace();
    cpu_timer.emplace();
  }
  // Semantic cache consult. The data version is read BEFORE the lookup
  // and re-checked before the populate, so a write racing the query can
  // never publish an answer under a version it does not belong to.
  uint64_t cache_key = 0;
  uint64_t cache_version = 0;
  if (options_.cache != nullptr) {
    cache_key =
        SemanticCache::RangeKey(query, engine_->dtw_options(), kind);
    cache_version = engine_->DataVersion();
    WallTimer hit_timer;
    SearchResult cached;
    if (options_.cache->LookupRange(cache_key, epsilon, cache_version,
                                    &cached)) {
      cached.cost.wall_ms = hit_timer.ElapsedMillis();
      if (trace != nullptr) {
        {
          ScopedSpan span(trace, "cache_hit");
          TraceCounter(trace, "cached_matches",
                       static_cast<double>(cached.matches.size()));
        }
        OfferTrace(kind, query, epsilon, *trace, cached.matches.size(),
                   timer->ElapsedMillis(), cpu_timer->ElapsedMillis(),
                   /*errored=*/false);
      }
      RecordFlight(kind, query, epsilon, cached,
                   trace != nullptr ? trace->trace_id() : 0,
                   CacheTier::kExecutor);
      return cached;
    }
  }
  SearchResult result;
  try {
    result = engine_->SearchWith(kind, query, epsilon, trace,
                                 CurrentWorkerScratch());
  } catch (...) {
    // The ScopedSpans unwound with the stack, so the trace is closed and
    // offerable — errored traces are exactly what tail sampling keeps.
    if (trace != nullptr) {
      OfferTrace(kind, query, epsilon, *trace, 0, timer->ElapsedMillis(),
                 cpu_timer->ElapsedMillis(), /*errored=*/true);
    }
    throw;
  }
  if (trace != nullptr) {
    OfferTrace(kind, query, epsilon, *trace, result.matches.size(),
               result.cost.wall_ms, result.cost.cpu_ms, /*errored=*/false);
  }
  if (options_.cache != nullptr) {
    result.cost.cache_misses = 1;
    // Populate only if the data did not change under the query;
    // otherwise the result may mix pre- and post-write state and must
    // not be replayed under either version.
    if (engine_->DataVersion() == cache_version) {
      options_.cache->InsertRange(cache_key, epsilon, cache_version,
                                  result);
    }
  }
  RecordFlight(kind, query, epsilon, result,
               trace != nullptr ? trace->trace_id() : 0);
  return result;
}

void QueryExecutor::OfferTrace(MethodKind kind, const Sequence& query,
                               double epsilon, const Trace& trace,
                               size_t matches, double wall_ms,
                               double cpu_ms, bool errored) const {
  if (options_.trace_store == nullptr) {
    return;
  }
  CompletedTrace completed;
  completed.method = MethodKindName(kind);
  completed.epsilon = epsilon;
  completed.query_length = query.size();
  completed.matches = matches;
  completed.wall_ms = wall_ms;
  completed.cpu_ms = cpu_ms;
  completed.errored = errored;
  completed.trace = trace;  // copy: the caller may still own the original
  options_.trace_store->Offer(std::move(completed));
}

void QueryExecutor::RecordFlight(MethodKind kind, const Sequence& query,
                                 double epsilon, const SearchResult& result,
                                 uint64_t trace_id,
                                 CacheTier cache_tier) const {
  if (options_.flight_recorder == nullptr && options_.slow_log == nullptr) {
    return;
  }
  FlightRecord record;
  record.trace_id = trace_id;
  record.method = MethodKindName(kind);
  record.epsilon = epsilon;
  record.query_length = query.size();
  record.matches = result.matches.size();
  record.num_candidates = result.num_candidates;
  record.wall_ms = result.cost.wall_ms;
  record.cpu_ms = result.cost.cpu_ms;
  record.dtw_evals = result.cost.dtw_evals;
  record.dtw_cells = result.cost.dtw_cells;
  record.index_nodes = result.cost.index_nodes;
  record.pool_hits = result.cost.pool_hits;
  record.pool_misses = result.cost.pool_misses;
  record.stage_ms = result.cost.stages;
  record.stage_cpu_ms = result.cost.stages_cpu;
  record.prunes = result.cost.prunes;
  record.cache_hit = cache_tier;
  if (options_.slow_log != nullptr) {
    options_.slow_log->Record(record);
  }
  if (options_.flight_recorder != nullptr) {
    options_.flight_recorder->Record(std::move(record));
  }
}

QueryExecutor::Snapshot QueryExecutor::TakeSnapshot() const {
  Snapshot snapshot;
  snapshot.num_threads = pool_.num_threads();
  snapshot.queue_depth = pool_.queue_depth();
  snapshot.in_flight = inflight_->value();
  snapshot.queries_total = queries_total_->value();
  snapshot.batches_total = batches_total_->value();
  return snapshot;
}

std::future<SearchResult> QueryExecutor::Submit(MethodKind kind,
                                                Sequence query,
                                                double epsilon,
                                                Trace* trace) {
  inflight_->Increment();
  const auto submitted = std::chrono::steady_clock::now();
  try {
    return pool_.Submit(
        [this, kind, q = std::move(query), epsilon, trace, submitted]() {
          InflightGuard guard(inflight_);
          queue_wait_ms_->Observe(MillisSince(submitted));
          return RunQuery(kind, q, epsilon, trace);
        });
  } catch (...) {
    inflight_->Decrement();  // pool rejected the task (shut down)
    throw;
  }
}

std::future<SequenceId> QueryExecutor::SubmitInsert(Sequence s) {
  if (ingest_ == nullptr) {
    throw std::logic_error("SubmitInsert requires AttachIngest()");
  }
  return pool_.Submit(
      [ingest = ingest_, seq = std::move(s)]() mutable {
        return ingest->Insert(std::move(seq));
      });
}

std::future<bool> QueryExecutor::SubmitDelete(SequenceId id) {
  if (ingest_ == nullptr) {
    throw std::logic_error("SubmitDelete requires AttachIngest()");
  }
  return pool_.Submit([ingest = ingest_, id]() { return ingest->Delete(id); });
}

BatchResult QueryExecutor::SubmitBatch(
    const std::vector<QueryRequest>& requests,
    const BatchOptions& batch_options) {
  BatchResult batch;
  batch.results.resize(requests.size());
  if (batch_options.collect_traces) {
    batch.traces.resize(requests.size());
  }
  batches_total_->Increment();

  WallTimer timer;
  std::vector<std::future<void>> futures;
  futures.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    inflight_->Increment();
    const auto submitted = std::chrono::steady_clock::now();
    futures.push_back(pool_.Submit([this, &requests, &batch, i,
                                    collect = batch_options.collect_traces,
                                    submitted]() {
      InflightGuard guard(inflight_);
      queue_wait_ms_->Observe(MillisSince(submitted));
      const QueryRequest& request = requests[i];
      // Slot i is this task's alone — disjoint writes need no lock.
      Trace* trace = collect ? &batch.traces[i] : nullptr;
      batch.results[i] =
          RunQuery(request.method, request.query, request.epsilon, trace);
    }));
  }
  // Wait for every task before surfacing any exception: the tasks write
  // into `batch`, which must stay alive until the last one finishes.
  for (std::future<void>& f : futures) {
    f.wait();
  }
  for (std::future<void>& f : futures) {
    f.get();  // rethrows the first failed query, if any
  }

  batch.wall_ms = timer.ElapsedMillis();
  batch_ms_->Observe(batch.wall_ms);
  batch.queries_per_sec =
      batch.wall_ms > 0.0
          ? static_cast<double>(requests.size()) / (batch.wall_ms / 1000.0)
          : 0.0;
  return batch;
}

SearchResult QueryExecutor::SearchParallel(const Sequence& query,
                                           double epsilon, Trace* trace,
                                           bool use_cascade) {
  WallTimer timer;
  ThreadCpuTimer cpu_timer;
  SearchResult result;
  queries_total_->Increment();
  inflight_->Increment();
  InflightGuard guard(inflight_);

  // Same executor-initiated tracing as RunQuery.
  std::optional<Trace> local;
  if (trace == nullptr && options_.trace_store != nullptr &&
      options_.trace_store->ShouldTrace()) {
    local.emplace();
    trace = &*local;
  }

  const MethodKind kind = use_cascade ? MethodKind::kTwSimSearchCascade
                                      : MethodKind::kTwSimSearch;
  // Semantic cache consult — same protocol as RunQuery. The parallel
  // post-filter emits matches in candidate order, identical to the
  // sequential path, so both populate and replay the same entry.
  uint64_t cache_key = 0;
  uint64_t cache_version = 0;
  if (options_.cache != nullptr) {
    cache_key =
        SemanticCache::RangeKey(query, engine_->dtw_options(), kind);
    cache_version = engine_->DataVersion();
    SearchResult cached;
    if (options_.cache->LookupRange(cache_key, epsilon, cache_version,
                                    &cached)) {
      cached.cost.wall_ms = timer.ElapsedMillis();
      if (trace != nullptr) {
        {
          ScopedSpan span(trace, "cache_hit");
          TraceCounter(trace, "cached_matches",
                       static_cast<double>(cached.matches.size()));
        }
        OfferTrace(kind, query, epsilon, *trace, cached.matches.size(),
                   cached.cost.wall_ms, cpu_timer.ElapsedMillis(),
                   /*errored=*/false);
      }
      RecordFlight(kind, query, epsilon, cached,
                   trace != nullptr ? trace->trace_id() : 0,
                   CacheTier::kExecutor);
      return cached;
    }
  }

  const Engine* single = engine_->AsSingleEngine();
  if (single == nullptr) {
    // Composite engine (ShardedEngine): its SearchWith already fans the
    // query out across shards on this executor's pool — that fan-out is
    // the intra-query parallelism here, and the chunked post-filter
    // below does not apply. Answers are identical either way.
    result = engine_->SearchWith(kind, query, epsilon, trace,
                                 CurrentWorkerScratch());
    if (trace != nullptr) {
      OfferTrace(kind, query, epsilon, *trace, result.matches.size(),
                 result.cost.wall_ms, result.cost.cpu_ms, /*errored=*/false);
    }
    if (options_.cache != nullptr) {
      result.cost.cache_misses = 1;
      if (engine_->DataVersion() == cache_version) {
        options_.cache->InsertRange(cache_key, epsilon, cache_version,
                                    result);
      }
    }
    RecordFlight(kind, query, epsilon, result,
                 trace != nullptr ? trace->trace_id() : 0);
    return result;
  }

  CascadeObservation obs;
  {
    ScopedSpan span(trace, "query");
    TraceCounter(trace, "epsilon", epsilon);
    // The lower-bound cascade (when requested) runs on the calling
    // thread — its stages are O(n) per candidate and prune the list the
    // chunked DTW fan-out then works through.
    std::vector<Sequence> fetched =
        use_cascade
            ? single->tw_sim_search_cascade().FilterFetchAndPrune(
                  query, epsilon, &result, trace, &obs)
            : single->tw_sim_search().FilterAndFetch(query, epsilon,
                                                     &result, trace);

    const size_t chunk_size = std::max<size_t>(1, options_.postfilter_chunk);
    const size_t num_chunks =
        (fetched.size() + chunk_size - 1) / chunk_size;

    ScopedSpan dtw_span(trace, kStageDtwPostfilter);
    WallTimer dtw_timer;
    ThreadCpuTimer dtw_cpu_timer;
    // CPU burnt in the DTW post-filter across all participating threads.
    // On the sequential path this is just the caller's delta; the chunked
    // path sums the per-chunk readings (helper CPU the caller's own
    // thread clock cannot see).
    double dtw_cpu_ms = 0.0;
    // Helper-thread CPU to fold into the query total (the caller's share
    // is already inside cpu_timer).
    double helper_cpu_ms = 0.0;
    const size_t dtw_in = fetched.size();
    result.cost.dtw_evals += dtw_in;
    if (num_chunks <= 1) {
      // Not worth fanning out; identical to the sequential Step-4..7.
      DtwScratch scratch;
      const Dtw dtw(single->options().dtw);
      for (const Sequence& s : fetched) {
        const DtwResult d =
            dtw.DistanceWithThreshold(s, query, epsilon, &scratch);
        result.cost.dtw_cells += d.cells;
        if (d.distance <= epsilon) {
          result.matches.push_back(s.id());
          result.distances.push_back(d.distance);
        }
      }
      dtw_cpu_ms = dtw_cpu_timer.ElapsedMillis();
    } else {
      // Shared chunk cursor. The context is a shared_ptr so a straggler
      // helper task that runs after this call returned (every chunk
      // already claimed) touches only heap state, never our stack.
      struct Context {
        const Sequence* query = nullptr;
        double epsilon = 0.0;
        Dtw dtw;
        std::vector<Sequence> fetched;
        size_t chunk_size = 0;
        size_t num_chunks = 0;
        // Indexed by chunk: outputs stay in candidate order.
        std::vector<std::vector<SequenceId>> chunk_matches;
        std::vector<std::vector<double>> chunk_distances;
        std::vector<uint64_t> chunk_cells;
        // Thread-CPU ms burnt per chunk (each chunk runs on one thread).
        std::vector<double> chunk_cpu_ms;
        std::atomic<size_t> next{0};
        std::atomic<size_t> done{0};
        std::mutex mu;
        std::condition_variable all_done;
      };
      auto ctx = std::make_shared<Context>();
      ctx->query = &query;
      ctx->epsilon = epsilon;
      ctx->dtw = Dtw(single->options().dtw);
      ctx->fetched = std::move(fetched);
      ctx->chunk_size = chunk_size;
      ctx->num_chunks = num_chunks;
      ctx->chunk_matches.resize(num_chunks);
      ctx->chunk_distances.resize(num_chunks);
      ctx->chunk_cells.resize(num_chunks, 0);
      ctx->chunk_cpu_ms.resize(num_chunks, 0.0);

      auto work = [ctx]() {
        DtwScratch scratch;  // one per participating thread
        for (;;) {
          const size_t c = ctx->next.fetch_add(1, std::memory_order_relaxed);
          if (c >= ctx->num_chunks) {
            return;
          }
          const size_t begin = c * ctx->chunk_size;
          const size_t end =
              std::min(ctx->fetched.size(), begin + ctx->chunk_size);
          std::vector<SequenceId>& matches = ctx->chunk_matches[c];
          std::vector<double>& distances = ctx->chunk_distances[c];
          ThreadCpuTimer chunk_cpu;
          uint64_t cells = 0;
          for (size_t i = begin; i < end; ++i) {
            const DtwResult d = ctx->dtw.DistanceWithThreshold(
                ctx->fetched[i], *ctx->query, ctx->epsilon, &scratch);
            cells += d.cells;
            if (d.distance <= ctx->epsilon) {
              matches.push_back(ctx->fetched[i].id());
              distances.push_back(d.distance);
            }
          }
          ctx->chunk_cells[c] = cells;
          ctx->chunk_cpu_ms[c] = chunk_cpu.ElapsedMillis();
          if (ctx->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
              ctx->num_chunks) {
            std::lock_guard<std::mutex> lock(ctx->mu);
            ctx->all_done.notify_all();
          }
        }
      };

      // Idle workers help; the calling thread always participates, so
      // completion never depends on the pool having free capacity (no
      // deadlock when called from inside a pool task).
      const size_t helpers = std::min(pool_.num_threads(), num_chunks - 1);
      for (size_t i = 0; i < helpers; ++i) {
        pool_.TrySubmitDetached(work);
      }
      ThreadCpuTimer caller_chunk_cpu;
      work();
      const double caller_chunk_cpu_ms = caller_chunk_cpu.ElapsedMillis();
      {
        std::unique_lock<std::mutex> lock(ctx->mu);
        ctx->all_done.wait(lock, [&ctx]() {
          return ctx->done.load(std::memory_order_acquire) ==
                 ctx->num_chunks;
        });
      }

      for (size_t c = 0; c < num_chunks; ++c) {
        result.cost.dtw_cells += ctx->chunk_cells[c];
        dtw_cpu_ms += ctx->chunk_cpu_ms[c];
        result.matches.insert(result.matches.end(),
                              ctx->chunk_matches[c].begin(),
                              ctx->chunk_matches[c].end());
        result.distances.insert(result.distances.end(),
                                ctx->chunk_distances[c].begin(),
                                ctx->chunk_distances[c].end());
      }
      helper_cpu_ms = std::max(0.0, dtw_cpu_ms - caller_chunk_cpu_ms);
    }
    const double dtw_ms = dtw_timer.ElapsedMillis();
    const size_t dtw_pruned = dtw_in - result.matches.size();
    result.cost.stages.Add(kStageDtwPostfilter, dtw_ms);
    result.cost.stages_cpu.Add(kStageDtwPostfilter, dtw_cpu_ms);
    result.cost.cpu_ms += helper_cpu_ms;
    result.cost.prunes.Record(kStageDtwPostfilter, dtw_in, dtw_pruned);
    if (use_cascade) {
      obs.dtw.in += dtw_in;
      obs.dtw.pruned += dtw_pruned;
      obs.dtw.ms += dtw_ms;
      single->tw_sim_search_cascade().ObserveOutcome(obs);
    }
    TraceCounter(trace, "dtw_cells",
                 static_cast<double>(result.cost.dtw_cells));
  }
  result.cost.wall_ms = timer.ElapsedMillis();
  // Caller CPU (cascade + its own chunk share + merge) plus the helper
  // CPU folded in above.
  result.cost.cpu_ms += cpu_timer.ElapsedMillis();
  if (trace != nullptr) {
    OfferTrace(kind, query, epsilon, *trace, result.matches.size(),
               result.cost.wall_ms, result.cost.cpu_ms, /*errored=*/false);
  }
  if (options_.cache != nullptr) {
    result.cost.cache_misses = 1;
    if (engine_->DataVersion() == cache_version) {
      options_.cache->InsertRange(cache_key, epsilon, cache_version,
                                  result);
    }
  }
  RecordFlight(kind, query, epsilon, result,
               trace != nullptr ? trace->trace_id() : 0);
  return result;
}

KnnResult QueryExecutor::SearchKnn(const Sequence& query, size_t k,
                                   Trace* trace) {
  queries_total_->Increment();
  SemanticCache* cache = options_.cache;
  if (cache == nullptr) {
    return engine_->SearchKnn(query, k, trace);
  }
  const DtwOptions dtw = engine_->dtw_options();
  const uint64_t key = SemanticCache::KnnKey(query, dtw);
  const uint64_t version = engine_->DataVersion();
  KnnResult cached;
  if (cache->LookupKnn(key, k, version, &cached)) {
    return cached;
  }
  // A cached range answer for this query with >= k matches holds the
  // exact global k-th distance — seed the engine's pruning bound with it
  // (ties at the bound survive; answers stay identical, only cheaper).
  double seed = kInfiniteDistance;
  const bool seeded = cache->LookupKnnSeed(query, dtw, k, version, &seed);
  KnnResult result = seeded
                         ? engine_->SearchKnnSeeded(query, k, seed, trace)
                         : engine_->SearchKnn(query, k, trace);
  result.cost.cache_misses = 1;
  if (engine_->DataVersion() == version) {
    cache->InsertKnn(key, k, version, result);
  }
  return result;
}

}  // namespace warpindex
