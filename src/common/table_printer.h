// Aligned tabular output for benchmark harnesses.
//
// Benches print the same rows/series the paper's figures plot; this helper
// keeps the output readable both to humans and to a simple CSV consumer
// (set csv mode to emit comma-separated rows).

#ifndef WARPINDEX_COMMON_TABLE_PRINTER_H_
#define WARPINDEX_COMMON_TABLE_PRINTER_H_

#include <cstdio>
#include <string>
#include <vector>

namespace warpindex {

class TablePrinter {
 public:
  // `out` must outlive the printer. If `csv` is true, rows are emitted as
  // CSV instead of aligned columns.
  TablePrinter(std::FILE* out, std::vector<std::string> columns,
               bool csv = false);

  // Prints the header row.
  void PrintHeader();

  // Prints one data row; the number of cells must match the column count.
  void PrintRow(const std::vector<std::string>& cells);

  // Formatting helpers for cells.
  static std::string FormatDouble(double v, int precision = 3);
  static std::string FormatInt(int64_t v);

 private:
  std::FILE* out_;
  std::vector<std::string> columns_;
  std::vector<size_t> widths_;
  bool csv_;
};

}  // namespace warpindex

#endif  // WARPINDEX_COMMON_TABLE_PRINTER_H_
