#include "common/flags.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace warpindex {
namespace {

std::string Repr(int64_t v) { return std::to_string(v); }

std::string Repr(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

void FlagSet::AddInt64(const std::string& name, int64_t* value,
                       const std::string& help) {
  flags_.push_back({name, Type::kInt64, value, help, Repr(*value)});
}

void FlagSet::AddDouble(const std::string& name, double* value,
                        const std::string& help) {
  flags_.push_back({name, Type::kDouble, value, help, Repr(*value)});
}

void FlagSet::AddString(const std::string& name, std::string* value,
                        const std::string& help) {
  flags_.push_back({name, Type::kString, value, help, *value});
}

void FlagSet::AddBool(const std::string& name, bool* value,
                      const std::string& help) {
  flags_.push_back(
      {name, Type::kBool, value, help, *value ? "true" : "false"});
}

const FlagSet::Flag* FlagSet::Find(const std::string& name) const {
  for (const Flag& flag : flags_) {
    if (flag.name == name) {
      return &flag;
    }
  }
  return nullptr;
}

bool FlagSet::SetValue(const Flag& flag, const std::string& text) const {
  char* end = nullptr;
  switch (flag.type) {
    case Type::kInt64: {
      const long long v = std::strtoll(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0') {
        return false;
      }
      *static_cast<int64_t*>(flag.target) = v;
      return true;
    }
    case Type::kDouble: {
      const double v = std::strtod(text.c_str(), &end);
      if (end == text.c_str() || *end != '\0') {
        return false;
      }
      *static_cast<double*>(flag.target) = v;
      return true;
    }
    case Type::kString:
      *static_cast<std::string*>(flag.target) = text;
      return true;
    case Type::kBool:
      if (text == "true" || text == "1") {
        *static_cast<bool*>(flag.target) = true;
        return true;
      }
      if (text == "false" || text == "0") {
        *static_cast<bool*>(flag.target) = false;
        return true;
      }
      return false;
  }
  return false;
}

bool FlagSet::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(Usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "%s: unexpected argument '%s'\n%s",
                   program_name_.c_str(), arg.c_str(), Usage().c_str());
      return false;
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    const Flag* flag = Find(arg);
    if (flag == nullptr && !has_value && arg.rfind("no", 0) == 0) {
      // --noflag form for booleans.
      const Flag* negated = Find(arg.substr(2));
      if (negated != nullptr && negated->type == Type::kBool) {
        *static_cast<bool*>(negated->target) = false;
        continue;
      }
    }
    if (flag == nullptr) {
      std::fprintf(stderr, "%s: unknown flag '--%s'\n%s",
                   program_name_.c_str(), arg.c_str(), Usage().c_str());
      return false;
    }
    if (!has_value) {
      if (flag->type == Type::kBool) {
        *static_cast<bool*>(flag->target) = true;
        continue;
      }
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: flag '--%s' expects a value\n",
                     program_name_.c_str(), arg.c_str());
        return false;
      }
      value = argv[++i];
    }
    if (!SetValue(*flag, value)) {
      std::fprintf(stderr, "%s: bad value '%s' for flag '--%s'\n",
                   program_name_.c_str(), value.c_str(), arg.c_str());
      return false;
    }
  }
  return true;
}

std::string FlagSet::Usage() const {
  std::ostringstream os;
  os << "usage: " << program_name_ << " [flags]\n";
  for (const Flag& flag : flags_) {
    os << "  --" << flag.name << "  " << flag.help
       << " (default: " << flag.default_repr << ")\n";
  }
  return os.str();
}

}  // namespace warpindex
