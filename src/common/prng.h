// Deterministic pseudo-random number generation for workload synthesis.
//
// Experiments must be reproducible bit-for-bit across runs and platforms,
// so the library carries its own generator (xoshiro256** seeded via
// SplitMix64) instead of relying on implementation-defined std::
// distributions.

#ifndef WARPINDEX_COMMON_PRNG_H_
#define WARPINDEX_COMMON_PRNG_H_

#include <cstdint>

namespace warpindex {

// xoshiro256** 1.0 (Blackman & Vigna), seeded with SplitMix64. Not
// cryptographic; plenty for workload generation.
class Prng {
 public:
  explicit Prng(uint64_t seed);

  // Uniform over the full 64-bit range.
  uint64_t NextUint64();

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform in [lo, hi).
  double UniformDouble(double lo, double hi);

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Standard normal via Box-Muller (cached pair).
  double NextGaussian();

  // Creates an independent child stream; deterministic in (this stream
  // state, label).
  Prng Fork(uint64_t label);

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace warpindex

#endif  // WARPINDEX_COMMON_PRNG_H_
