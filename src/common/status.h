// Lightweight error-handling vocabulary for the warpindex library.
//
// The library does not use exceptions (per the project style). Operations
// that can fail for environmental reasons (I/O, malformed input) return a
// Status; programmer errors are guarded with assertions.

#ifndef WARPINDEX_COMMON_STATUS_H_
#define WARPINDEX_COMMON_STATUS_H_

#include <cassert>
#include <ostream>
#include <string>
#include <utility>

namespace warpindex {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kIoError = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kInternal = 6,
  // A client-side deadline elapsed before the operation finished (the
  // wire client's --timeout_ms; see net/wire_client.h). Distinct from
  // kIoError so callers can tell "the peer is slow" from "the peer is
  // broken".
  kDeadlineExceeded = 7,
  // The peer exists but is not serving right now (draining on SIGTERM,
  // or the connection was refused). Retryable against a replica.
  kUnavailable = 8,
  // The peer shed the request under admission control (per-client quota
  // or load limit). NOT retryable — backing off is the client's job.
  kResourceExhausted = 9,
};

// Returns a stable human-readable name, e.g. "IO_ERROR".
const char* StatusCodeName(StatusCode code);

// Value-semantic status: either OK or a code plus message.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Propagates a non-OK status to the caller.
#define WARPINDEX_RETURN_IF_ERROR(expr)            \
  do {                                             \
    ::warpindex::Status status_macro_tmp = (expr); \
    if (!status_macro_tmp.ok()) {                  \
      return status_macro_tmp;                     \
    }                                              \
  } while (false)

}  // namespace warpindex

#endif  // WARPINDEX_COMMON_STATUS_H_
