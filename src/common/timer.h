// Wall-clock timer for benchmark harnesses.

#ifndef WARPINDEX_COMMON_TIMER_H_
#define WARPINDEX_COMMON_TIMER_H_

#include <chrono>

namespace warpindex {

// Measures elapsed wall time since construction or the last Reset().
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace warpindex

#endif  // WARPINDEX_COMMON_TIMER_H_
