// Wall-clock and thread-CPU timers for benchmark harnesses and the
// per-query cost model.

#ifndef WARPINDEX_COMMON_TIMER_H_
#define WARPINDEX_COMMON_TIMER_H_

#include <ctime>

#include <chrono>

namespace warpindex {

// Measures elapsed wall time since construction or the last Reset().
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Measures CPU time consumed by the *calling thread* since construction
// or the last Reset() (CLOCK_THREAD_CPUTIME_ID). Unlike wall time this
// excludes blocking — a thread parked on a condition variable accrues
// none — so summing it across workers gives machine work, not elapsed
// time. The timer is only meaningful when Reset/Elapsed run on the same
// thread; it must not be shared across threads.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() { Reset(); }

  void Reset() { start_ = Now(); }

  double ElapsedSeconds() const { return Now() - start_; }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  // Absolute thread-CPU reading in seconds (for callers pairing begin/end
  // readings across scopes, e.g. the trace span stack).
  static double Now() {
    struct timespec ts;
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) {
      return 0.0;
    }
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }

 private:
  double start_ = 0.0;
};

}  // namespace warpindex

#endif  // WARPINDEX_COMMON_TIMER_H_
