// Small statistics helpers used by workload generators and benchmarks.

#ifndef WARPINDEX_COMMON_STATS_H_
#define WARPINDEX_COMMON_STATS_H_

#include <cstddef>
#include <limits>
#include <vector>

namespace warpindex {

// Streaming mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  RunningStats() = default;

  void Add(double x);

  // Merges another accumulator into this one.
  void Merge(const RunningStats& other);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  // Population variance. Zero for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Convenience one-shot helpers.
double Mean(const std::vector<double>& values);
double StdDev(const std::vector<double>& values);

// Linear interpolation between order statistics. `p` is clamped into
// [0, 1] (NaN clamps to 0). Returns 0 for an empty input.
double Percentile(std::vector<double> values, double p);

}  // namespace warpindex

#endif  // WARPINDEX_COMMON_STATS_H_
