// Minimal command-line flag parsing for benchmark and example binaries.
//
// Usage:
//   FlagSet flags("fig4_scale_nseq");
//   int64_t n = 10000;
//   flags.AddInt64("n", &n, "number of data sequences");
//   if (!flags.Parse(argc, argv)) return 1;   // prints help on --help
//
// Accepted syntax: --name=value, --name value, and --flag / --noflag for
// booleans. Unknown flags are an error.

#ifndef WARPINDEX_COMMON_FLAGS_H_
#define WARPINDEX_COMMON_FLAGS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace warpindex {

class FlagSet {
 public:
  explicit FlagSet(std::string program_name)
      : program_name_(std::move(program_name)) {}

  void AddInt64(const std::string& name, int64_t* value,
                const std::string& help);
  void AddDouble(const std::string& name, double* value,
                 const std::string& help);
  void AddString(const std::string& name, std::string* value,
                 const std::string& help);
  void AddBool(const std::string& name, bool* value, const std::string& help);

  // Returns false (after printing a message to stderr/stdout) if parsing
  // fails or --help was requested.
  bool Parse(int argc, char** argv);

  // Renders the usage text.
  std::string Usage() const;

 private:
  enum class Type { kInt64, kDouble, kString, kBool };

  struct Flag {
    std::string name;
    Type type;
    void* target;
    std::string help;
    std::string default_repr;
  };

  const Flag* Find(const std::string& name) const;
  bool SetValue(const Flag& flag, const std::string& text) const;

  std::string program_name_;
  std::vector<Flag> flags_;
};

}  // namespace warpindex

#endif  // WARPINDEX_COMMON_FLAGS_H_
