#include "common/prng.h"

#include <cassert>
#include <cmath>

namespace warpindex {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Prng::Prng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(&sm);
  }
}

uint64_t Prng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Prng::NextDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Prng::UniformDouble(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

int64_t Prng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {
    // Full 64-bit range requested.
    return static_cast<int64_t>(NextUint64());
  }
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t value = NextUint64();
  while (value >= limit) {
    value = NextUint64();
  }
  return lo + static_cast<int64_t>(value % span);
}

double Prng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  while (u1 <= 1e-300) {
    u1 = NextDouble();
  }
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

Prng Prng::Fork(uint64_t label) {
  return Prng(NextUint64() ^ (label * 0x9e3779b97f4a7c15ULL));
}

}  // namespace warpindex
