#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace warpindex {

void RunningStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::Merge(const RunningStats& other) {
  if (&other == this) {
    // Self-merge: the combined stream holds every sample twice, so the
    // mean and extrema are unchanged while count and M2 double. The
    // general path below would read `other`'s fields mid-update.
    count_ *= 2;
    m2_ *= 2.0;
    return;
  }
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ += delta * static_cast<double>(other.count_) / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Mean(const std::vector<double>& values) {
  RunningStats stats;
  for (double v : values) {
    stats.Add(v);
  }
  return stats.mean();
}

double StdDev(const std::vector<double>& values) {
  RunningStats stats;
  for (double v : values) {
    stats.Add(v);
  }
  return stats.stddev();
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0.0;
  }
  // Clamp rather than assert: an out-of-range p (including NaN) from a
  // caller must not be UB in release builds.
  if (!(p >= 0.0)) {
    p = 0.0;
  } else if (p > 1.0) {
    p = 1.0;
  }
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

}  // namespace warpindex
