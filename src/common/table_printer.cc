#include "common/table_printer.h"

#include <algorithm>
#include <cassert>
#include <cinttypes>

namespace warpindex {

TablePrinter::TablePrinter(std::FILE* out, std::vector<std::string> columns,
                           bool csv)
    : out_(out), columns_(std::move(columns)), csv_(csv) {
  widths_.reserve(columns_.size());
  for (const std::string& c : columns_) {
    widths_.push_back(std::max<size_t>(c.size(), 10));
  }
}

void TablePrinter::PrintHeader() {
  if (csv_) {
    for (size_t i = 0; i < columns_.size(); ++i) {
      std::fprintf(out_, "%s%s", i == 0 ? "" : ",", columns_[i].c_str());
    }
    std::fprintf(out_, "\n");
    return;
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    std::fprintf(out_, "%-*s ", static_cast<int>(widths_[i]),
                 columns_[i].c_str());
  }
  std::fprintf(out_, "\n");
  for (size_t i = 0; i < columns_.size(); ++i) {
    std::fprintf(out_, "%s ", std::string(widths_[i], '-').c_str());
  }
  std::fprintf(out_, "\n");
}

void TablePrinter::PrintRow(const std::vector<std::string>& cells) {
  assert(cells.size() == columns_.size());
  if (csv_) {
    for (size_t i = 0; i < cells.size(); ++i) {
      std::fprintf(out_, "%s%s", i == 0 ? "" : ",", cells[i].c_str());
    }
    std::fprintf(out_, "\n");
    return;
  }
  for (size_t i = 0; i < cells.size(); ++i) {
    std::fprintf(out_, "%-*s ", static_cast<int>(widths_[i]),
                 cells[i].c_str());
  }
  std::fprintf(out_, "\n");
  std::fflush(out_);
}

std::string TablePrinter::FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::FormatInt(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  return buf;
}

}  // namespace warpindex
