// ShardedEngine: one logical sequence database partitioned across K
// independent per-shard Engines, with scatter-gather query fan-out.
//
// Why: every structure a query touches — R-tree, sequence store, buffer
// pool, cascade planner — is per-shard, so each index stays N/K small, K
// shards answer one query in parallel on the serving pool, and each
// shard's CascadePlanner learns the cost model of ITS data rather than a
// global average. Answers are bit-identical to a
// single Engine over the same dataset:
//
//   * Range queries run TW-Sim-Search (or any MethodKind) per shard and
//     take the union, remapped to global ids and sorted ascending — the
//     canonical order a single engine's answer is compared in. Shards
//     whose feature-space MBR is strictly farther than epsilon from the
//     query's feature point (L_inf MINDIST) are skipped without being
//     touched; exact by the Theorem 1 argument lifted to a shard's MBR
//     (see shard/partitioner.h). With the range partitioner, clustered
//     data makes these skips routine.
//
//   * kNN runs the filter-and-refine search per shard with a shared,
//     monotonically shrinking SharedKnnBound: as soon as any shard has
//     proven a k-th distance, every other shard's refine loop abandons
//     candidates beyond it mid-flight. The per-shard top-k lists are
//     then merged by (distance, id) and truncated to k — identical to
//     the single-engine answer because pruning is strictly-greater-than
//     and ties at the k-th distance resolve by id everywhere.
//
// Cost semantics: per-shard SearchCosts are folded with MergeParallel —
// page reads, DTW evals/cells, node visits, and per-stage attribution
// are summed (work actually done), wall time is NOT (concurrent shards
// overlap); the reported wall_ms is the measured end-to-end time of the
// sharded query, which is the critical path plus fan-out/merge overhead.
//
// Threading: queries fan out over a borrowed ThreadPool (AttachPool) —
// typically the QueryExecutor's own pool, shared safely because the
// scatter-gather layer has the calling thread participate (see
// shard/scatter_gather.h; no nested-pool deadlock). Without a pool,
// shards run sequentially on the caller: same answers. All query entry
// points are const and safe to call concurrently; like Engine, there is
// no concurrent mutation to exclude — ShardedEngine is read-only after
// construction (repartition-on-insert is future work; rebuild instead).
//
// Persistence: Save() writes a manifest (shard count, partitioner,
// global-id assignment) plus one Engine::Save directory per shard;
// Open() validates the requested topology against the manifest and
// rejects mismatches (see shard/shard_io.h).

#ifndef WARPINDEX_SHARD_SHARDED_ENGINE_H_
#define WARPINDEX_SHARD_SHARDED_ENGINE_H_

#include <atomic>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/engine_like.h"
#include "obs/flight_recorder.h"
#include "shard/partitioner.h"
#include "shard/scatter_gather.h"

namespace warpindex {

struct ShardedEngineOptions {
  // Number of shards (>= 1).
  size_t num_shards = 4;
  PartitionerKind partitioner = PartitionerKind::kHash;
  // Per-shard engine configuration. Every shard gets an identical copy;
  // options.engine.metrics (or the global registry) is shared by all
  // shards AND the sharded layer, so per-shard query metrics aggregate
  // in one place. Note warpindex_queries_total then counts per-shard
  // sub-queries; warpindex_shard_queries_total counts logical queries.
  EngineOptions engine;
  // Optional (borrowed, must outlive the engine): every per-shard
  // sub-query is offered here with its shard id, so /flightrecorder can
  // attribute latency to the shard that caused it. The serving layer's
  // own recorder entry (shard = -1) covers the merged query.
  FlightRecorder* flight_recorder = nullptr;
};

class ShardedEngine : public EngineLike {
 public:
  // Partitions `dataset` and builds one Engine per shard. Takes
  // ownership of the dataset (it is consumed by the split).
  ShardedEngine(Dataset dataset, ShardedEngineOptions options);

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  // ---- Persistence (manifest + per-shard Engine directories).

  Status Save(const std::string& dir) const;

  // Restores a sharded engine saved with Save(). `options` must request
  // the same shard count, partitioner, and page size the directory was
  // written with — mismatches are rejected, never re-partitioned.
  static Status Open(const std::string& dir, ShardedEngineOptions options,
                     std::unique_ptr<ShardedEngine>* out);

  // ---- Queries (EngineLike).

  SearchResult Search(const Sequence& query, double epsilon,
                      Trace* trace = nullptr) const {
    return SearchWith(MethodKind::kTwSimSearch, query, epsilon, trace);
  }

  // Scatter-gather over the non-prunable shards; matches are global ids
  // sorted ascending. `scratch` is accepted for interface compatibility
  // but unused — each per-shard task keeps its own scratch (sub-queries
  // run on different threads). With a trace attached, the caller's trace
  // gets one scatter_gather span (fanout/skip/partitioner counters) and
  // every sub-query records into its own child Trace — built from
  // ContextForSpan, tagged with (shard, pool worker) — which is stitched
  // back under the scatter_gather span after the gather barrier, in
  // shard order, so one query yields ONE tree holding every per-shard
  // subtree. Pruned shards leave zero-duration "shard_skipped" markers.
  SearchResult SearchWith(MethodKind kind, const Sequence& query,
                          double epsilon, Trace* trace = nullptr,
                          DtwScratch* scratch = nullptr) const override;

  // Exact kNN with the shared epsilon-shrinking bound across shards.
  KnnResult SearchKnn(const Sequence& query, size_t k,
                      Trace* trace = nullptr) const override;

  // SearchKnn with the shared bound pre-tightened to a valid upper
  // bound on the k-th distance (EngineLike); identical answers.
  KnnResult SearchKnnSeeded(const Sequence& query, size_t k,
                            double seed_bound,
                            Trace* trace = nullptr) const override;

  MetricsRegistry& metrics() const override {
    return shards_.front()->metrics();
  }
  DtwOptions dtw_options() const override {
    return shards_.front()->dtw_options();
  }

  double ElapsedMillis(const SearchCost& cost) const override {
    return shards_.front()->ElapsedMillis(cost);
  }

  // ---- Topology.

  size_t num_shards() const { return shards_.size(); }
  PartitionerKind partitioner() const { return options_.partitioner; }
  const Engine& shard(size_t index) const { return *shards_[index]; }
  const ShardFeatureBounds& shard_bounds(size_t index) const {
    return bounds_[index];
  }

  // Total sequences across shards (including tombstones).
  size_t total_sequences() const { return shard_of_.size(); }
  size_t live_size() const;

  // Global id of shard-local sequence `local` of shard `shard_index`.
  SequenceId ToGlobalId(size_t shard_index, SequenceId local) const {
    return global_of_[shard_index][static_cast<size_t>(local)];
  }
  // (shard, local id) of a global id. For an id a v2 manifest marks
  // dropped (deleted + compacted; see shard/shard_io.h) the local id is
  // kInvalidSequenceId.
  std::pair<size_t, SequenceId> ToShardLocal(SequenceId global) const {
    const size_t g = static_cast<size_t>(global);
    return {shard_of_[g], local_of_[g]};
  }

  // Lends a thread pool for query fan-out (typically the serving
  // executor's: `sharded.AttachPool(&executor.pool())`). Null detaches;
  // not thread-safe against in-flight queries — wire before serving.
  void AttachPool(ThreadPool* pool) { pool_ = pool; }

  // ---- Observability.

  struct ShardStatus {
    size_t shard_index = 0;
    Engine::Health health;
    ShardFeatureBounds bounds;
    // Sub-queries this shard served / times MBR pruning skipped it.
    uint64_t queries = 0;
    uint64_t skipped = 0;
  };
  struct Health {
    size_t num_shards = 0;
    PartitionerKind partitioner = PartitionerKind::kHash;
    uint64_t queries_total = 0;     // logical (merged) queries
    uint64_t subqueries_total = 0;  // per-shard executions
    uint64_t shards_skipped_total = 0;
    std::vector<ShardStatus> shards;
  };
  // Safe to call concurrently with queries (one index traversal per
  // shard; poll from dashboards, not per query). Feeds /statusz.
  Health TakeHealthSnapshot() const;

 private:
  // Open() path: adopts already-restored shards.
  ShardedEngine(std::vector<std::unique_ptr<Engine>> shards,
                ShardedEngineOptions options, ShardAssignment assignment);

  // Shared body of SearchKnn / SearchKnnSeeded; `seed_bound` pre-
  // tightens the cross-shard bound (kInfiniteDistance = no seed).
  KnnResult SearchKnnImpl(const Sequence& query, size_t k,
                          double seed_bound, Trace* trace) const;

  void BuildFromDataset(Dataset dataset, ShardAssignment assignment);
  void BuildIdMaps(ShardAssignment assignment);
  void InitWiring();
  void ComputeBoundsFromShards();
  void RegisterMetrics();
  void RecordShardFlight(size_t shard_index, const char* method,
                         double epsilon, size_t query_length,
                         const SearchResult& result,
                         uint64_t trace_id) const;

  // Appends a zero-duration "shard_skipped" marker span (tagged with the
  // shard) for every shard not in `active`, under the currently open
  // span. No-op without a trace.
  void MarkSkippedShards(Trace* trace,
                         const std::vector<size_t>& active) const;

  ShardedEngineOptions options_;
  std::vector<std::unique_ptr<Engine>> shards_;
  // global id -> shard / local id, and shard -> local -> global id.
  std::vector<uint32_t> shard_of_;
  std::vector<SequenceId> local_of_;
  std::vector<std::vector<SequenceId>> global_of_;
  // Feature-space MBR per shard over live sequences (pruning filter).
  std::vector<ShardFeatureBounds> bounds_;
  ThreadPool* pool_ = nullptr;

  // Per-instance serving stats for /statusz (relaxed; dashboards only).
  // The registry counters below can be shared across engines (process
  // metrics); Health must describe THIS engine, so it reads these.
  mutable std::atomic<uint64_t> logical_queries_{0};
  mutable std::vector<std::atomic<uint64_t>> shard_queries_;
  mutable std::vector<std::atomic<uint64_t>> shard_skipped_;

  // Metric handles (shared registry).
  Counter* queries_total_ = nullptr;
  Counter* subqueries_total_ = nullptr;
  Counter* skipped_total_ = nullptr;
  Histogram* fanout_hist_ = nullptr;
};

}  // namespace warpindex

#endif  // WARPINDEX_SHARD_SHARDED_ENGINE_H_
