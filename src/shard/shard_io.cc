#include "shard/shard_io.h"

#include <cstdio>
#include <cstring>

namespace warpindex {
namespace {

constexpr char kMagic[4] = {'W', 'I', 'S', 'M'};
constexpr uint32_t kVersionV1 = 1;
constexpr uint32_t kVersionV2 = 2;

}  // namespace

std::string ShardSubdir(size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard-%04zu", index);
  return buf;
}

Status SaveShardManifest(const std::string& path,
                         const ShardManifest& manifest) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot write shard manifest " + path);
  }
  const uint32_t version = kVersionV2;
  const uint32_t num_shards =
      static_cast<uint32_t>(manifest.assignment.num_shards);
  const uint32_t partitioner = static_cast<uint32_t>(manifest.partitioner);
  const uint64_t page_size = manifest.page_size_bytes;
  const uint64_t count = manifest.assignment.shard_of.size();
  bool ok = std::fwrite(kMagic, sizeof(kMagic), 1, f) == 1;
  ok = ok && std::fwrite(&version, sizeof(version), 1, f) == 1;
  ok = ok && std::fwrite(&num_shards, sizeof(num_shards), 1, f) == 1;
  ok = ok && std::fwrite(&partitioner, sizeof(partitioner), 1, f) == 1;
  ok = ok && std::fwrite(&page_size, sizeof(page_size), 1, f) == 1;
  ok = ok && std::fwrite(&count, sizeof(count), 1, f) == 1;
  ok = ok &&
       (count == 0 ||
        std::fwrite(manifest.assignment.shard_of.data(), sizeof(uint32_t),
                    count, f) == count);
  // v2 trailing block: the range partitioner's routing cut points.
  const uint32_t has_cuts = manifest.range_cuts.empty() ? 0 : 1;
  ok = ok && std::fwrite(&has_cuts, sizeof(has_cuts), 1, f) == 1;
  if (has_cuts != 0) {
    ok = ok && manifest.range_cuts.size() == manifest.assignment.num_shards;
    for (const auto& cut : manifest.range_cuts) {
      ok = ok &&
           std::fwrite(cut.data(), sizeof(double), cut.size(), f) ==
               cut.size();
    }
  }
  std::fclose(f);
  return ok ? Status::Ok() : Status::IoError("short manifest write: " + path);
}

Status LoadShardManifest(const std::string& path, ShardManifest* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot read shard manifest " + path);
  }
  char magic[4];
  uint32_t version = 0;
  uint32_t num_shards = 0;
  uint32_t partitioner = 0;
  uint64_t page_size = 0;
  uint64_t count = 0;
  bool ok = std::fread(magic, sizeof(magic), 1, f) == 1 &&
            std::memcmp(magic, kMagic, sizeof(kMagic)) == 0;
  ok = ok && std::fread(&version, sizeof(version), 1, f) == 1 &&
       (version == kVersionV1 || version == kVersionV2);
  ok = ok && std::fread(&num_shards, sizeof(num_shards), 1, f) == 1 &&
       num_shards >= 1;
  ok = ok && std::fread(&partitioner, sizeof(partitioner), 1, f) == 1 &&
       partitioner <= static_cast<uint32_t>(PartitionerKind::kRange);
  ok = ok && std::fread(&page_size, sizeof(page_size), 1, f) == 1;
  ok = ok && std::fread(&count, sizeof(count), 1, f) == 1;
  if (ok) {
    out->assignment.shard_of.resize(count);
    ok = count == 0 ||
         std::fread(out->assignment.shard_of.data(), sizeof(uint32_t),
                    count, f) == count;
  }
  out->range_cuts.clear();
  if (ok && version >= kVersionV2) {
    uint32_t has_cuts = 0;
    ok = std::fread(&has_cuts, sizeof(has_cuts), 1, f) == 1 && has_cuts <= 1;
    if (ok && has_cuts != 0) {
      out->range_cuts.resize(num_shards);
      for (auto& cut : out->range_cuts) {
        ok = ok && std::fread(cut.data(), sizeof(double), cut.size(), f) ==
                       cut.size();
      }
    }
  }
  std::fclose(f);
  if (!ok) {
    return Status::IoError("corrupt shard manifest " + path);
  }
  for (const uint32_t shard : out->assignment.shard_of) {
    // kDroppedShard (v2): the id was deleted and compacted away.
    if (shard >= num_shards && shard != kDroppedShard) {
      return Status::IoError("corrupt shard manifest " + path +
                             ": assignment out of range");
    }
  }
  out->partitioner = static_cast<PartitionerKind>(partitioner);
  out->page_size_bytes = static_cast<size_t>(page_size);
  out->assignment.num_shards = num_shards;
  return Status::Ok();
}

}  // namespace warpindex
