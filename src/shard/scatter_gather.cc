#include "shard/scatter_gather.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <utility>

namespace warpindex {

void ScatterGather::Run(size_t num_tasks,
                        std::function<void(size_t)> fn) const {
  if (num_tasks == 0) {
    return;
  }
  if (num_tasks == 1 || pool_ == nullptr || pool_->num_threads() == 0) {
    for (size_t i = 0; i < num_tasks; ++i) {
      fn(i);
    }
    return;
  }

  // Shared on the heap: a helper task that starts after Run returned
  // (every index already claimed) touches only this context, never the
  // caller's stack. The function object itself lives here for the same
  // reason; its captures are safe because any invocation with a valid
  // index finishes before the done-count releases Run.
  struct Context {
    std::function<void(size_t)> fn;
    size_t num_tasks = 0;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mu;
    std::condition_variable all_done;
  };
  auto ctx = std::make_shared<Context>();
  ctx->fn = std::move(fn);
  ctx->num_tasks = num_tasks;

  auto work = [ctx]() {
    for (;;) {
      const size_t i = ctx->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= ctx->num_tasks) {
        return;
      }
      ctx->fn(i);
      if (ctx->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          ctx->num_tasks) {
        std::lock_guard<std::mutex> lock(ctx->mu);
        ctx->all_done.notify_all();
      }
    }
  };

  // Idle workers help; the calling thread always participates, so
  // completion never depends on the pool having free capacity (no
  // deadlock when called from inside a pool task).
  const size_t helpers = std::min(pool_->num_threads(), num_tasks - 1);
  for (size_t i = 0; i < helpers; ++i) {
    pool_->TrySubmitDetached(work);
  }
  work();
  std::unique_lock<std::mutex> lock(ctx->mu);
  ctx->all_done.wait(lock, [&ctx]() {
    return ctx->done.load(std::memory_order_acquire) == ctx->num_tasks;
  });
}

}  // namespace warpindex
