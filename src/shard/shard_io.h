// Sharded-engine persistence: one manifest file describing the partition
// plus one saved Engine directory per shard.
//
// Layout of a saved ShardedEngine directory:
//
//   <dir>/manifest.wism      shard count, partitioner, page size, and the
//                            full global-id -> shard assignment
//   <dir>/shard-0000/...     Engine::Save of shard 0
//   <dir>/shard-0001/...     ...
//
// The manifest is authoritative: reopening validates the caller's
// requested shard count, partitioner, and page size against it and
// REJECTS mismatches instead of silently re-partitioning — a database
// saved as 8 range-partitioned shards answers queries as exactly that,
// or not at all. (Global ids are positions in the original dataset; the
// persisted assignment restores the id mapping without re-running the
// partitioner, whose input ordering is gone after the split.)
//
// Binary format (little-endian host, same convention as dataset.wids):
//   magic "WISM" | u32 version | u32 num_shards | u32 partitioner |
//   u64 page_size_bytes | u64 num_sequences | u32 shard_of[num_sequences]
//
// Version history:
//   v1  the layout above; every shard_of entry is a live assignment.
//   v2  (streaming ingest, src/ingest/) two extensions:
//       * shard_of entries may be kDroppedShard — the global id was
//         deleted and compacted away. The id stays in the manifest so
//         the global id space (positions assigned at insert time) never
//         renumbers across compactions.
//       * an optional trailing block with the range partitioner's cut
//         points (recomputed online as shards grow):
//         u32 has_cuts | [num_shards * kFeatureDims doubles]
//       Readers accept both versions; the writer emits v2.

#ifndef WARPINDEX_SHARD_SHARD_IO_H_
#define WARPINDEX_SHARD_SHARD_IO_H_

#include <array>
#include <string>

#include "common/status.h"
#include "shard/partitioner.h"

namespace warpindex {

// shard_of[] sentinel for a global id that was deleted and compacted
// away (manifest v2).
inline constexpr uint32_t kDroppedShard = 0xFFFFFFFFu;

struct ShardManifest {
  PartitionerKind partitioner = PartitionerKind::kHash;
  size_t page_size_bytes = 0;
  ShardAssignment assignment;
  // Range-partitioner routing cut points (upper feature key per shard in
  // index order, lexicographic); empty when absent (v1 manifests, hash
  // partitioner, or pre-ingest writers).
  std::vector<std::array<double, kFeatureDims>> range_cuts;
};

// Subdirectory of shard `index` under a sharded-engine directory
// ("shard-0000", ...).
std::string ShardSubdir(size_t index);

Status SaveShardManifest(const std::string& path,
                         const ShardManifest& manifest);
Status LoadShardManifest(const std::string& path, ShardManifest* out);

}  // namespace warpindex

#endif  // WARPINDEX_SHARD_SHARD_IO_H_
