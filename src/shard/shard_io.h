// Sharded-engine persistence: one manifest file describing the partition
// plus one saved Engine directory per shard.
//
// Layout of a saved ShardedEngine directory:
//
//   <dir>/manifest.wism      shard count, partitioner, page size, and the
//                            full global-id -> shard assignment
//   <dir>/shard-0000/...     Engine::Save of shard 0
//   <dir>/shard-0001/...     ...
//
// The manifest is authoritative: reopening validates the caller's
// requested shard count, partitioner, and page size against it and
// REJECTS mismatches instead of silently re-partitioning — a database
// saved as 8 range-partitioned shards answers queries as exactly that,
// or not at all. (Global ids are positions in the original dataset; the
// persisted assignment restores the id mapping without re-running the
// partitioner, whose input ordering is gone after the split.)
//
// Binary format (little-endian host, same convention as dataset.wids):
//   magic "WISM" | u32 version | u32 num_shards | u32 partitioner |
//   u64 page_size_bytes | u64 num_sequences | u32 shard_of[num_sequences]

#ifndef WARPINDEX_SHARD_SHARD_IO_H_
#define WARPINDEX_SHARD_SHARD_IO_H_

#include <string>

#include "common/status.h"
#include "shard/partitioner.h"

namespace warpindex {

struct ShardManifest {
  PartitionerKind partitioner = PartitionerKind::kHash;
  size_t page_size_bytes = 0;
  ShardAssignment assignment;
};

// Subdirectory of shard `index` under a sharded-engine directory
// ("shard-0000", ...).
std::string ShardSubdir(size_t index);

Status SaveShardManifest(const std::string& path,
                         const ShardManifest& manifest);
Status LoadShardManifest(const std::string& path, ShardManifest* out);

}  // namespace warpindex

#endif  // WARPINDEX_SHARD_SHARD_IO_H_
