#include "shard/sharded_engine.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <filesystem>
#include <string>
#include <system_error>

#include "common/timer.h"
#include "shard/shard_io.h"

namespace warpindex {
namespace {

Point QueryFeaturePoint(const Sequence& query) {
  const std::array<double, kFeatureDims> p = ExtractFeature(query).AsPoint();
  return Point::FromArray(p.data(), kFeatureDims);
}

}  // namespace

ShardedEngine::ShardedEngine(Dataset dataset, ShardedEngineOptions options)
    : options_(std::move(options)) {
  assert(options_.num_shards >= 1);
  ShardAssignment assignment =
      AssignShards(dataset, options_.partitioner, options_.num_shards);
  BuildFromDataset(std::move(dataset), std::move(assignment));
}

ShardedEngine::ShardedEngine(std::vector<std::unique_ptr<Engine>> shards,
                             ShardedEngineOptions options,
                             ShardAssignment assignment)
    : options_(std::move(options)), shards_(std::move(shards)) {
  BuildIdMaps(std::move(assignment));
  ComputeBoundsFromShards();
  InitWiring();
}

void ShardedEngine::BuildFromDataset(Dataset dataset,
                                     ShardAssignment assignment) {
  // Split into per-shard datasets. Dataset::Add re-ids each copy to its
  // position, and we visit global ids ascending, so shard-local ids
  // preserve global order (the kNN tie-break relies on this; see
  // shard/partitioner.h).
  std::vector<Dataset> parts(assignment.num_shards);
  for (size_t i = 0; i < dataset.size(); ++i) {
    parts[assignment.shard_of[i]].Add(dataset[i]);
  }
  shards_.reserve(parts.size());
  for (Dataset& part : parts) {
    shards_.push_back(
        std::make_unique<Engine>(std::move(part), options_.engine));
  }
  BuildIdMaps(std::move(assignment));
  ComputeBoundsFromShards();
  InitWiring();
}

void ShardedEngine::BuildIdMaps(ShardAssignment assignment) {
  shard_of_ = std::move(assignment.shard_of);
  const size_t n = shard_of_.size();
  local_of_.resize(n);
  global_of_.assign(shards_.size(), {});
  for (size_t g = 0; g < n; ++g) {
    const uint32_t s = shard_of_[g];
    if (s == kDroppedShard) {
      // Manifest v2: the id was deleted and compacted away (see
      // shard/shard_io.h); it keeps its slot in the global id space but
      // maps to no shard.
      local_of_[g] = kInvalidSequenceId;
      continue;
    }
    local_of_[g] = static_cast<SequenceId>(global_of_[s].size());
    global_of_[s].push_back(static_cast<SequenceId>(g));
  }
}

void ShardedEngine::ComputeBoundsFromShards() {
  // Over live sequences only (Open() restores tombstones): a dead
  // sequence must not widen the pruning MBR.
  bounds_.assign(shards_.size(), ShardFeatureBounds{});
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Engine& engine = *shards_[s];
    const Dataset& data = engine.dataset();
    for (size_t local = 0; local < data.size(); ++local) {
      if (engine.Contains(static_cast<SequenceId>(local))) {
        bounds_[s].Cover(ExtractFeature(data[local]));
      }
    }
  }
}

void ShardedEngine::InitWiring() {
  shard_queries_ = std::vector<std::atomic<uint64_t>>(shards_.size());
  shard_skipped_ = std::vector<std::atomic<uint64_t>>(shards_.size());
  MetricsRegistry& registry = metrics();
  queries_total_ =
      registry.GetCounter("warpindex_shard_queries_total",
                          "Logical queries served by the sharded engine");
  subqueries_total_ =
      registry.GetCounter("warpindex_shard_subqueries_total",
                          "Per-shard sub-queries executed");
  skipped_total_ =
      registry.GetCounter("warpindex_shard_skipped_total",
                          "Shard visits avoided by feature-MBR pruning");
  fanout_hist_ = registry.GetHistogram(
      "warpindex_shard_fanout", LinearBoundaries(1.0, 1.0, 16),
      "Shards queried per logical query");
}

size_t ShardedEngine::live_size() const {
  size_t live = 0;
  for (const auto& shard : shards_) {
    live += shard->live_size();
  }
  return live;
}

SearchResult ShardedEngine::SearchWith(MethodKind kind, const Sequence& query,
                                       double epsilon, Trace* trace,
                                       DtwScratch* /*scratch*/) const {
  WallTimer timer;
  // Caller-thread CPU for the pruning/merge/sort work this layer does
  // itself. The caller also participates in the scatter-gather fan-out,
  // but THAT CPU is already inside the per-shard partial costs, so the
  // fan-out window is measured separately and subtracted below.
  ThreadCpuTimer cpu_timer;
  double fanout_caller_cpu_ms = 0.0;
  logical_queries_.fetch_add(1, std::memory_order_relaxed);
  queries_total_->Increment();
  const Point feature_point = QueryFeaturePoint(query);

  // Shard pruning: a shard whose feature MBR is strictly farther than
  // epsilon (L_inf MINDIST) holds no sequence within D_tw-lb <= epsilon,
  // hence none within D_tw <= epsilon (Theorem 1 lifted to the MBR; see
  // shard/partitioner.h). Ties at epsilon keep the shard. Exact for
  // every MethodKind — the predicate is a property of the answer set.
  std::vector<size_t> active;
  active.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (bounds_[s].valid &&
        bounds_[s].mbr.MinDistLinf(feature_point) <= epsilon) {
      active.push_back(s);
    } else {
      shard_skipped_[s].fetch_add(1, std::memory_order_relaxed);
    }
  }
  skipped_total_->Increment(shards_.size() - active.size());
  subqueries_total_->Increment(active.size());
  fanout_hist_->Observe(static_cast<double>(active.size()));

  const uint64_t trace_id = trace != nullptr ? trace->trace_id() : 0;
  std::vector<SearchResult> partials(active.size());
  {
    ScopedSpan span(trace, "scatter_gather");
    TraceCounter(trace, "shard_fanout", static_cast<double>(active.size()));
    TraceCounter(trace, "shards_skipped",
                 static_cast<double>(shards_.size() - active.size()));
    TraceCounter(trace, "partitioner",
                 static_cast<double>(options_.partitioner));
    MarkSkippedShards(trace, active);

    // Cross-thread tracing: the Trace object itself is single-writer, so
    // each sub-task records into its own child Trace built from the
    // scatter_gather span's context (same trace_id, same clock zero) and
    // the children are stitched back after the barrier, in shard order —
    // the stitched shape is deterministic however the pool interleaves.
    std::vector<Trace> subs;
    if (trace != nullptr) {
      subs.assign(active.size(),
                  Trace(trace->ContextForSpan(span.index())));
    }
    ThreadCpuTimer fanout_cpu;
    ScatterGather(pool_).Run(active.size(), [&](size_t i) {
      const size_t s = active[i];
      DtwScratch scratch;
      Trace* sub = trace != nullptr ? &subs[i] : nullptr;
      size_t shard_span = 0;
      if (sub != nullptr) {
        sub->SetThreadTag(
            static_cast<int32_t>(s),
            static_cast<uint32_t>(ThreadPool::current_worker_index() + 1));
        shard_span = sub->BeginSpan("shard");
        sub->AddCounter("shard_index", static_cast<double>(s));
      }
      partials[i] =
          shards_[s]->SearchWith(kind, query, epsilon, sub, &scratch);
      if (sub != nullptr) {
        sub->AddCounter("candidates",
                        static_cast<double>(partials[i].num_candidates));
        sub->AddCounter("matches",
                        static_cast<double>(partials[i].matches.size()));
        sub->AddCounter("index_nodes",
                        static_cast<double>(partials[i].cost.index_nodes));
        sub->AddCounter("dtw_evals",
                        static_cast<double>(partials[i].cost.dtw_evals));
        sub->EndSpan(shard_span);
      }
      shard_queries_[s].fetch_add(1, std::memory_order_relaxed);
      RecordShardFlight(s, MethodKindName(kind), epsilon, query.size(),
                        partials[i], trace_id);
    });
    fanout_caller_cpu_ms = fanout_cpu.ElapsedMillis();
    if (trace != nullptr) {
      for (const Trace& sub : subs) {
        trace->Adopt(span.index(), sub);
      }
    }
  }

  SearchResult result;
  for (size_t i = 0; i < active.size(); ++i) {
    const SearchResult& partial = partials[i];
    result.num_candidates += partial.num_candidates;
    for (const SequenceId local : partial.matches) {
      result.matches.push_back(ToGlobalId(active[i], local));
    }
    result.distances.insert(result.distances.end(),
                            partial.distances.begin(),
                            partial.distances.end());
    result.cost.MergeParallel(partial.cost);
  }
  // Canonical answer order: ascending global id, independent of shard
  // count and completion order.
  CanonicalizeMatchOrder(&result);
  // Resource counters stay as MergeParallel left them (work summed);
  // wall time is the measured end-to-end latency of the sharded query.
  result.cost.wall_ms = timer.ElapsedMillis();
  // This layer's own CPU (pruning, stitching, merge, sort), on top of
  // the per-shard CPU MergeParallel already summed.
  result.cost.cpu_ms +=
      std::max(0.0, cpu_timer.ElapsedMillis() - fanout_caller_cpu_ms);
  return result;
}

KnnResult ShardedEngine::SearchKnn(const Sequence& query, size_t k,
                                   Trace* trace) const {
  return SearchKnnImpl(query, k, kInfiniteDistance, trace);
}

KnnResult ShardedEngine::SearchKnnSeeded(const Sequence& query, size_t k,
                                         double seed_bound,
                                         Trace* trace) const {
  return SearchKnnImpl(query, k, seed_bound, trace);
}

KnnResult ShardedEngine::SearchKnnImpl(const Sequence& query, size_t k,
                                       double seed_bound,
                                       Trace* trace) const {
  WallTimer timer;
  // Same caller-CPU accounting as SearchWith: fan-out CPU is in the
  // partials, so only this layer's own share is added at the end.
  ThreadCpuTimer cpu_timer;
  double fanout_caller_cpu_ms = 0.0;
  logical_queries_.fetch_add(1, std::memory_order_relaxed);
  queries_total_->Increment();

  // No epsilon to prune against up front — only empty shards are skipped.
  // The SharedKnnBound provides the dynamic equivalent: as soon as any
  // shard proves a k-th distance, the others prune against it mid-flight.
  std::vector<size_t> active;
  active.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (bounds_[s].valid) {
      active.push_back(s);
    } else {
      shard_skipped_[s].fetch_add(1, std::memory_order_relaxed);
    }
  }
  skipped_total_->Increment(shards_.size() - active.size());
  subqueries_total_->Increment(active.size());
  fanout_hist_->Observe(static_cast<double>(active.size()));

  SharedKnnBound shared_bound;
  // A cache-provided seed is a valid upper bound on the global k-th
  // distance; pruning is strictly-above, so seeding preserves answers.
  shared_bound.Tighten(seed_bound);
  std::vector<KnnResult> partials(active.size());
  {
    ScopedSpan span(trace, "scatter_gather");
    TraceCounter(trace, "shard_fanout", static_cast<double>(active.size()));
    TraceCounter(trace, "partitioner",
                 static_cast<double>(options_.partitioner));
    MarkSkippedShards(trace, active);

    // Same stitching discipline as SearchWith: one child Trace per
    // sub-query, adopted in shard order after the barrier.
    std::vector<Trace> subs;
    if (trace != nullptr) {
      subs.assign(active.size(),
                  Trace(trace->ContextForSpan(span.index())));
    }
    ThreadCpuTimer fanout_cpu;
    ScatterGather(pool_).Run(active.size(), [&](size_t i) {
      const size_t s = active[i];
      Trace* sub = trace != nullptr ? &subs[i] : nullptr;
      size_t shard_span = 0;
      if (sub != nullptr) {
        sub->SetThreadTag(
            static_cast<int32_t>(s),
            static_cast<uint32_t>(ThreadPool::current_worker_index() + 1));
        shard_span = sub->BeginSpan("shard");
        sub->AddCounter("shard_index", static_cast<double>(s));
      }
      partials[i] =
          shards_[s]->SearchKnnBounded(query, k, sub, &shared_bound);
      if (sub != nullptr) {
        sub->AddCounter("neighbors",
                        static_cast<double>(partials[i].neighbors.size()));
        sub->AddCounter("refined",
                        static_cast<double>(partials[i].num_refined));
        sub->EndSpan(shard_span);
      }
      shard_queries_[s].fetch_add(1, std::memory_order_relaxed);
    });
    fanout_caller_cpu_ms = fanout_cpu.ElapsedMillis();
    if (trace != nullptr) {
      for (const Trace& sub : subs) {
        trace->Adopt(span.index(), sub);
      }
    }
  }

  // Merge: every shard's survivors, remapped to global ids, in the
  // canonical (distance, id) order, truncated to k. Per-shard local
  // lists may vary with bound-propagation timing, but only by members
  // the global top-k provably excludes, so the merged prefix is
  // deterministic (see docs/SHARDING.md).
  KnnResult result;
  std::vector<KnnMatch> merged;
  for (size_t i = 0; i < active.size(); ++i) {
    result.num_refined += partials[i].num_refined;
    result.cost.MergeParallel(partials[i].cost);
    for (KnnMatch match : partials[i].neighbors) {
      match.id = ToGlobalId(active[i], match.id);
      merged.push_back(match);
    }
  }
  std::sort(merged.begin(), merged.end(), KnnMatchOrder);
  if (merged.size() > k) {
    merged.resize(k);
  }
  result.neighbors = std::move(merged);
  result.cost.wall_ms = timer.ElapsedMillis();
  result.cost.cpu_ms +=
      std::max(0.0, cpu_timer.ElapsedMillis() - fanout_caller_cpu_ms);
  return result;
}

void ShardedEngine::MarkSkippedShards(
    Trace* trace, const std::vector<size_t>& active) const {
  if (trace == nullptr || active.size() == shards_.size()) {
    return;
  }
  // `active` is sorted ascending (built by one forward scan), so one
  // cursor finds the gaps.
  size_t cursor = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (cursor < active.size() && active[cursor] == s) {
      ++cursor;
      continue;
    }
    trace->SetThreadTag(static_cast<int32_t>(s), 0);
    const size_t marker = trace->BeginSpan("shard_skipped");
    trace->AddCounter("shard_index", static_cast<double>(s));
    trace->EndSpan(marker);
  }
  trace->SetThreadTag(-1, 0);
}

void ShardedEngine::RecordShardFlight(size_t shard_index, const char* method,
                                      double epsilon, size_t query_length,
                                      const SearchResult& result,
                                      uint64_t trace_id) const {
  if (options_.flight_recorder == nullptr) {
    return;
  }
  FlightRecord record;
  record.trace_id = trace_id;
  record.method = method;
  record.epsilon = epsilon;
  record.query_length = query_length;
  record.matches = result.matches.size();
  record.num_candidates = result.num_candidates;
  record.wall_ms = result.cost.wall_ms;
  record.cpu_ms = result.cost.cpu_ms;
  record.dtw_evals = result.cost.dtw_evals;
  record.dtw_cells = result.cost.dtw_cells;
  record.index_nodes = result.cost.index_nodes;
  record.pool_hits = result.cost.pool_hits;
  record.pool_misses = result.cost.pool_misses;
  record.stage_ms = result.cost.stages;
  record.stage_cpu_ms = result.cost.stages_cpu;
  record.prunes = result.cost.prunes;
  record.shard = static_cast<int32_t>(shard_index);
  options_.flight_recorder->Record(std::move(record));
}

Status ShardedEngine::Save(const std::string& dir) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create directory " + dir + ": " +
                           ec.message());
  }
  ShardManifest manifest;
  manifest.partitioner = options_.partitioner;
  manifest.page_size_bytes = options_.engine.page_size_bytes;
  manifest.assignment.num_shards = shards_.size();
  manifest.assignment.shard_of = shard_of_;
  WARPINDEX_RETURN_IF_ERROR(
      SaveShardManifest(dir + "/manifest.wism", manifest));
  for (size_t s = 0; s < shards_.size(); ++s) {
    WARPINDEX_RETURN_IF_ERROR(shards_[s]->Save(dir + "/" + ShardSubdir(s)));
  }
  return Status::Ok();
}

Status ShardedEngine::Open(const std::string& dir,
                           ShardedEngineOptions options,
                           std::unique_ptr<ShardedEngine>* out) {
  ShardManifest manifest;
  WARPINDEX_RETURN_IF_ERROR(
      LoadShardManifest(dir + "/manifest.wism", &manifest));
  if (manifest.assignment.num_shards != options.num_shards) {
    return Status::InvalidArgument(
        "shard count mismatch: saved " +
        std::to_string(manifest.assignment.num_shards) + ", requested " +
        std::to_string(options.num_shards));
  }
  if (manifest.partitioner != options.partitioner) {
    return Status::InvalidArgument(
        std::string("partitioner mismatch: saved ") +
        PartitionerKindName(manifest.partitioner) + ", requested " +
        PartitionerKindName(options.partitioner));
  }
  if (manifest.page_size_bytes != options.engine.page_size_bytes) {
    return Status::InvalidArgument(
        "page size mismatch between saved shards and EngineOptions");
  }
  std::vector<std::unique_ptr<Engine>> shards;
  shards.reserve(options.num_shards);
  for (size_t s = 0; s < options.num_shards; ++s) {
    std::unique_ptr<Engine> shard;
    WARPINDEX_RETURN_IF_ERROR(
        Engine::Open(dir + "/" + ShardSubdir(s), options.engine, &shard));
    shards.push_back(std::move(shard));
  }
  auto engine = std::unique_ptr<ShardedEngine>(new ShardedEngine(
      std::move(shards), std::move(options), std::move(manifest.assignment)));
  // The manifest's assignment and the shard directories travel
  // separately; make sure they still describe the same database.
  for (size_t s = 0; s < engine->shards_.size(); ++s) {
    if (engine->shards_[s]->dataset().size() !=
        engine->global_of_[s].size()) {
      return Status::InvalidArgument(
          "shard " + std::to_string(s) +
          " holds a different sequence count than the manifest assigns");
    }
  }
  *out = std::move(engine);
  return Status::Ok();
}

ShardedEngine::Health ShardedEngine::TakeHealthSnapshot() const {
  Health health;
  health.num_shards = shards_.size();
  health.partitioner = options_.partitioner;
  // Per-instance state, not the registry counters: the registry can be
  // shared across engines, but Health describes this engine alone.
  health.queries_total = logical_queries_.load(std::memory_order_relaxed);
  health.shards.resize(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    ShardStatus& status = health.shards[s];
    status.shard_index = s;
    status.health = shards_[s]->TakeHealthSnapshot();
    status.bounds = bounds_[s];
    status.queries = shard_queries_[s].load(std::memory_order_relaxed);
    status.skipped = shard_skipped_[s].load(std::memory_order_relaxed);
    health.subqueries_total += status.queries;
    health.shards_skipped_total += status.skipped;
  }
  return health;
}

}  // namespace warpindex
