// Partitioners: how a ShardedEngine splits one logical database across K
// per-shard Engines (shard/sharded_engine.h).
//
// Two strategies, both deterministic in the dataset alone:
//
//   * kHash — shard = mix64(id) mod K. Uniform spread regardless of data
//     distribution; every shard's feature MBR covers roughly the whole
//     feature space, so range queries fan out to all shards.
//
//   * kRange — sequences are sorted by their 4-d feature tuple
//     (First, Last, Greatest, Smallest; lexicographic, ties by id) and
//     cut into K near-equal contiguous runs. Feature-space locality
//     lands in one shard, so shard MBRs separate on clustered data and
//     the engine's MBR pruning filter can skip whole shards.
//
// Exactness of MBR shard pruning (either partitioner — it is a property
// of the MBR, not the assignment): every live sequence S of shard i has
// Feature(S) inside mbr_i, so for any query Q
//
//   D_tw-lb(S, Q) = L_inf(Feature(S), Feature(Q))
//                >= MinDistLinf(Feature(Q), mbr_i).
//
// If that MINDIST exceeds epsilon strictly, Theorem 1 (D_tw-lb <= D_tw)
// puts every sequence of the shard strictly outside the answer — the
// same no-false-dismissal argument Algorithm 1 makes per sequence, lifted
// to a shard. Ties at epsilon keep the shard, matching the `<= epsilon`
// query predicate.
//
// Within a shard, local ids are assigned in increasing GLOBAL id order,
// so per-shard (distance, id) orderings agree with the global ordering —
// the property the deterministic kNN tie-break relies on.

#ifndef WARPINDEX_SHARD_PARTITIONER_H_
#define WARPINDEX_SHARD_PARTITIONER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rtree/geometry.h"
#include "sequence/dataset.h"
#include "sequence/feature.h"

namespace warpindex {

enum class PartitionerKind : uint32_t {
  kHash = 0,
  kRange = 1,
};

const char* PartitionerKindName(PartitionerKind kind);
// Parses "hash" / "range"; false (and *kind untouched) otherwise.
bool ParsePartitionerKind(const std::string& name, PartitionerKind* kind);

// The assignment of every sequence to its shard.
struct ShardAssignment {
  size_t num_shards = 0;
  // shard_of[global id] in [0, num_shards).
  std::vector<uint32_t> shard_of;
};

// Deterministic 64-bit mix (SplitMix64 finalizer); fixed here rather
// than std::hash so assignments are stable across standard libraries —
// a saved manifest must mean the same partition everywhere.
uint64_t MixSequenceId(uint64_t id);

// Assigns every sequence of `dataset` to one of `num_shards` shards.
// Requires num_shards >= 1. Deterministic in (dataset, kind, K).
ShardAssignment AssignShards(const Dataset& dataset, PartitionerKind kind,
                             size_t num_shards);

// The 4-d feature-space MBR of one shard's sequences: the box fed to
// MinDistLinf for shard pruning. `valid` is false for an empty shard
// (prune it unconditionally).
struct ShardFeatureBounds {
  Rect mbr;  // dims == kFeatureDims when valid
  bool valid = false;

  // Grows the box to cover `f`.
  void Cover(const FeatureVector& f);
};

// Per-shard feature MBRs for an assignment over `dataset`.
std::vector<ShardFeatureBounds> ComputeShardBounds(
    const Dataset& dataset, const ShardAssignment& assignment);

}  // namespace warpindex

#endif  // WARPINDEX_SHARD_PARTITIONER_H_
