#include "shard/partitioner.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <numeric>

namespace warpindex {

const char* PartitionerKindName(PartitionerKind kind) {
  switch (kind) {
    case PartitionerKind::kHash:
      return "hash";
    case PartitionerKind::kRange:
      return "range";
  }
  return "unknown";
}

bool ParsePartitionerKind(const std::string& name, PartitionerKind* kind) {
  if (name == "hash") {
    *kind = PartitionerKind::kHash;
    return true;
  }
  if (name == "range") {
    *kind = PartitionerKind::kRange;
    return true;
  }
  return false;
}

uint64_t MixSequenceId(uint64_t id) {
  uint64_t x = id + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

namespace {

ShardAssignment AssignByHash(size_t n, size_t num_shards) {
  ShardAssignment assignment;
  assignment.num_shards = num_shards;
  assignment.shard_of.resize(n);
  for (size_t i = 0; i < n; ++i) {
    assignment.shard_of[i] =
        static_cast<uint32_t>(MixSequenceId(i) % num_shards);
  }
  return assignment;
}

ShardAssignment AssignByFeatureRange(const Dataset& dataset,
                                     size_t num_shards) {
  const size_t n = dataset.size();
  std::vector<std::array<double, kFeatureDims>> features(n);
  for (size_t i = 0; i < n; ++i) {
    features[i] = ExtractFeature(dataset[i]).AsPoint();
  }
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (features[a] != features[b]) {
      return features[a] < features[b];
    }
    return a < b;  // ties by id keep the sort (and the cuts) total
  });

  ShardAssignment assignment;
  assignment.num_shards = num_shards;
  assignment.shard_of.resize(n);
  // K near-equal contiguous runs of the sorted order; the first n % K
  // runs take one extra sequence.
  const size_t base = n / num_shards;
  const size_t extra = n % num_shards;
  size_t next = 0;
  for (size_t shard = 0; shard < num_shards; ++shard) {
    const size_t count = base + (shard < extra ? 1 : 0);
    for (size_t j = 0; j < count; ++j) {
      assignment.shard_of[order[next++]] = static_cast<uint32_t>(shard);
    }
  }
  assert(next == n);
  return assignment;
}

}  // namespace

ShardAssignment AssignShards(const Dataset& dataset, PartitionerKind kind,
                             size_t num_shards) {
  assert(num_shards >= 1);
  switch (kind) {
    case PartitionerKind::kHash:
      return AssignByHash(dataset.size(), num_shards);
    case PartitionerKind::kRange:
      return AssignByFeatureRange(dataset, num_shards);
  }
  return AssignByHash(dataset.size(), num_shards);
}

void ShardFeatureBounds::Cover(const FeatureVector& f) {
  const std::array<double, kFeatureDims> p = f.AsPoint();
  if (!valid) {
    mbr.dims = kFeatureDims;
    for (int d = 0; d < kFeatureDims; ++d) {
      mbr.min[static_cast<size_t>(d)] = p[static_cast<size_t>(d)];
      mbr.max[static_cast<size_t>(d)] = p[static_cast<size_t>(d)];
    }
    valid = true;
    return;
  }
  for (int d = 0; d < kFeatureDims; ++d) {
    mbr.min[static_cast<size_t>(d)] =
        std::min(mbr.min[static_cast<size_t>(d)], p[static_cast<size_t>(d)]);
    mbr.max[static_cast<size_t>(d)] =
        std::max(mbr.max[static_cast<size_t>(d)], p[static_cast<size_t>(d)]);
  }
}

std::vector<ShardFeatureBounds> ComputeShardBounds(
    const Dataset& dataset, const ShardAssignment& assignment) {
  std::vector<ShardFeatureBounds> bounds(assignment.num_shards);
  for (size_t i = 0; i < dataset.size(); ++i) {
    bounds[assignment.shard_of[i]].Cover(ExtractFeature(dataset[i]));
  }
  return bounds;
}

}  // namespace warpindex
