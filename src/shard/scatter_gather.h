// ScatterGather: fan a fixed set of independent sub-tasks out over a
// borrowed ThreadPool, with the calling thread always participating.
//
// This is the sharded engine's fan-out substrate. The caller-
// participation rule is what lets a ShardedEngine share the
// QueryExecutor's pool without a second pool or a deadlock: when a pool
// WORKER runs a sharded query, its per-shard sub-tasks are offered to the
// same pool — but the worker also claims sub-tasks itself off the shared
// cursor, so the query completes even when every other worker is busy
// with queries of its own (the same argument as QueryExecutor::
// SearchParallel; see docs/CONCURRENCY.md).
//
// With a null pool (or a single task) everything runs inline on the
// caller — same results, no concurrency.

#ifndef WARPINDEX_SHARD_SCATTER_GATHER_H_
#define WARPINDEX_SHARD_SCATTER_GATHER_H_

#include <cstddef>
#include <functional>

#include "exec/thread_pool.h"

namespace warpindex {

class ScatterGather {
 public:
  // `pool` is borrowed (may be null) and must outlive this object.
  explicit ScatterGather(ThreadPool* pool) : pool_(pool) {}

  // Runs fn(i) exactly once for every i in [0, num_tasks), distributing
  // tasks over the pool's idle workers plus the calling thread, and
  // returns when all have finished. Tasks must not throw. fn may capture
  // caller-stack state: every invocation completes before Run returns
  // (a straggling helper that finds no work left touches only the
  // heap-allocated cursor, never fn).
  void Run(size_t num_tasks, std::function<void(size_t)> fn) const;

  ThreadPool* pool() const { return pool_; }

 private:
  ThreadPool* pool_;
};

}  // namespace warpindex

#endif  // WARPINDEX_SHARD_SCATTER_GATHER_H_
