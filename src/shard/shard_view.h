// ShardView: the immutable per-epoch serving snapshot of the streaming
// ingest engine (ingest/ingest_engine.h).
//
// The build-then-serve ShardedEngine owns its per-shard Engines for its
// whole lifetime. Under streaming ingest the base shards are REPLACED at
// compaction time, so the serving topology becomes an epoch-published
// value: one ShardView holds shared ownership of every base Engine, the
// local->global id mapping of each, the feature-MBR pruning bounds, and
// the range partitioner's routing cut points. Readers pin the view (a
// shared_ptr copy under the epoch lock) and keep querying it even while
// the compactor swaps in a successor — sequences never disappear under a
// running query, and a query's answer is computed against exactly one
// topology.
//
// A ShardView is deep-immutable after publication: the compactor builds
// a fresh copy (cheap — K shared_ptrs and id vectors are reused for the
// untouched shards), replaces the one compacted entry, and publishes the
// new view with the epoch counter bumped. See docs/INGEST.md.

#ifndef WARPINDEX_SHARD_SHARD_VIEW_H_
#define WARPINDEX_SHARD_SHARD_VIEW_H_

#include <array>
#include <memory>
#include <vector>

#include "core/engine.h"
#include "shard/partitioner.h"

namespace warpindex {

// A sequence's 4-d feature tuple as the lexicographic routing key the
// range partitioner orders by (same order AssignShards sorts with).
using FeatureKey = std::array<double, kFeatureDims>;

inline FeatureKey FeatureKeyOf(const FeatureVector& f) {
  return f.AsPoint();
}

// One immutable base shard of a view.
struct BaseShard {
  // The STR-bulk-loaded (or Open()-restored) engine serving this
  // partition's compacted sequences. Shared: successive views alias the
  // engines they did not replace.
  std::shared_ptr<const Engine> engine;
  // Shard-local id -> global id, ascending (local ids are assigned in
  // increasing global id order, preserving the kNN tie-break property;
  // see shard/partitioner.h).
  std::shared_ptr<const std::vector<SequenceId>> global_of;
  // Live feature MBR at build time (deletes buffered in the delta layer
  // do not shrink it — conservative, so pruning stays exact).
  ShardFeatureBounds bounds;
};

struct ShardView {
  std::vector<BaseShard> shards;
  // Routing cut points for PartitionerKind::kRange: an insert routes to
  // the first shard whose cut (upper feature key, lexicographic) is >=
  // the sequence's key, else the last shard. Routing only — answers
  // never depend on placement — so the compactor may recompute cuts
  // freely when a shard outgrows its neighbors. Empty for kHash.
  std::vector<FeatureKey> range_cuts;
  // Monotonic publication counter (0 = initial build).
  uint64_t epoch = 0;
};

// The shard an insert with key `key` routes to under `cuts` (see
// ShardView::range_cuts). Requires cuts non-empty.
inline size_t RouteByRangeCuts(const std::vector<FeatureKey>& cuts,
                               const FeatureKey& key) {
  for (size_t s = 0; s + 1 < cuts.size(); ++s) {
    if (key <= cuts[s]) {
      return s;
    }
  }
  return cuts.size() - 1;
}

}  // namespace warpindex

#endif  // WARPINDEX_SHARD_SHARD_VIEW_H_
