// Ablation A5: FastMap recall (why the paper excludes it, §3.3/§5.1).
//
// Yi et al.'s FastMap method embeds sequences into R^k under D_tw and
// range-searches the embedding. Because the embedded distance does not
// lower-bound D_tw, true matches can be missed. This harness measures
// recall (fraction of true matches among candidates) for several k,
// against TW-Sim-Search's guaranteed recall of 1.0.

#include <algorithm>
#include <cstdio>

#include "common/bench_util.h"
#include "common/flags.h"
#include "common/table_printer.h"
#include "dtw/dtw.h"
#include "fastmap/fastmap_index.h"
#include "sequence/stock_generator.h"

namespace warpindex {
namespace {

int Run(int argc, char** argv) {
  int64_t num_sequences = 300;
  int64_t num_queries = 40;
  double eps = 2.0;
  std::string dims_list = "2,4,8";

  FlagSet flags("abl5_fastmap_recall");
  flags.AddInt64("n", &num_sequences, "number of stock sequences");
  flags.AddInt64("queries", &num_queries, "queries");
  flags.AddDouble("eps", &eps, "tolerance (dollars)");
  flags.AddString("dims", &dims_list, "FastMap dimensionalities");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }

  StockDataOptions stock;
  stock.num_sequences = static_cast<size_t>(num_sequences);
  const Engine engine(GenerateStockDataset(stock), EngineOptions{});
  const Dataset& dataset = engine.dataset();
  const auto queries = GenerateQueryWorkload(
      dataset,
      QueryWorkloadOptions{.num_queries = static_cast<size_t>(num_queries)});

  // Ground truth via Naive-Scan.
  const Dtw dtw(DtwOptions::Linf());
  std::vector<std::vector<SequenceId>> truth(queries.size());
  size_t total_truth = 0;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    for (size_t i = 0; i < dataset.size(); ++i) {
      if (dtw.Distance(dataset[i], queries[qi]).distance <= eps) {
        truth[qi].push_back(static_cast<SequenceId>(i));
      }
    }
    total_truth += truth[qi].size();
  }

  bench::PrintPreamble(
      "Ablation A5: FastMap recall vs TW-Sim-Search",
      "Kim/Park/Chu ICDE'01 §3.3/§5.1 (FastMap excluded for false "
      "dismissals)",
      std::to_string(num_sequences) + " stock sequences, eps=" +
          bench::FormatDouble(eps, 1) + ", " +
          std::to_string(total_truth) + " true matches over " +
          std::to_string(queries.size()) + " queries");

  TablePrinter table(stdout, {"method", "k", "recall", "candidate_ratio",
                              "false_dismissals"});
  table.PrintHeader();

  // TW-Sim-Search row: recall 1.0 by Theorem 1/Corollary 1.
  {
    size_t covered = 0;
    double candidates = 0;
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const auto result = engine.Search(queries[qi], eps);
      candidates += static_cast<double>(result.num_candidates);
      std::vector<SequenceId> sorted = result.matches;
      std::sort(sorted.begin(), sorted.end());
      for (const SequenceId id : truth[qi]) {
        if (std::binary_search(sorted.begin(), sorted.end(), id)) {
          ++covered;
        }
      }
    }
    table.PrintRow({"TW-Sim-Search", "4",
                    bench::FormatDouble(
                        total_truth == 0
                            ? 1.0
                            : static_cast<double>(covered) /
                                  static_cast<double>(total_truth),
                        4),
                    bench::FormatDouble(candidates /
                                            static_cast<double>(
                                                queries.size()) /
                                            static_cast<double>(
                                                dataset.size()),
                                        4),
                    std::to_string(total_truth - covered)});
  }

  for (const int64_t k : bench::ParseIntList(dims_list)) {
    FastMapIndexOptions options;
    options.fastmap.dims = static_cast<int>(k);
    const FastMapIndex index(dataset, options);
    size_t covered = 0;
    double candidates = 0;
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      auto cands = index.FindCandidates(queries[qi], eps);
      candidates += static_cast<double>(cands.size());
      std::sort(cands.begin(), cands.end());
      for (const SequenceId id : truth[qi]) {
        if (std::binary_search(cands.begin(), cands.end(), id)) {
          ++covered;
        }
      }
    }
    table.PrintRow(
        {"FastMap", std::to_string(k),
         bench::FormatDouble(total_truth == 0
                                 ? 1.0
                                 : static_cast<double>(covered) /
                                       static_cast<double>(total_truth),
                             4),
         bench::FormatDouble(candidates /
                                 static_cast<double>(queries.size()) /
                                 static_cast<double>(dataset.size()),
                             4),
         std::to_string(total_truth - covered)});
  }
  std::printf(
      "\nexpected shape: TW-Sim-Search recall exactly 1.0; FastMap recall "
      "typically < 1.0 (its false dismissals are the paper's reason to "
      "exclude it).\n");
  return 0;
}

}  // namespace
}  // namespace warpindex

int main(int argc, char** argv) { return warpindex::Run(argc, argv); }
