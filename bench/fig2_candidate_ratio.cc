// Figure 2 / Experiment 1: candidate ratio vs tolerance on the stock
// corpus, for Naive-Scan, LB-Scan, ST-Filter, and TW-Sim-Search.
//
// Paper result shape: TW-Sim-Search filters slightly better than
// ST-Filter, which filters much better than LB-Scan; Naive-Scan's line is
// the final answer ratio (0.2% .. 1.7% over the tolerance sweep).

#include <cstdio>

#include "common/bench_util.h"
#include "common/flags.h"
#include "common/table_printer.h"
#include "sequence/stock_generator.h"

namespace warpindex {
namespace {

int Run(int argc, char** argv) {
  int64_t num_sequences = 545;  // paper §5.1
  int64_t num_queries = 50;     // paper: 100
  std::string eps_list = "0.5,1,2,4,8,16";
  int64_t categories = 100;     // paper §5.1
  int64_t seed = 2001;
  std::string metrics_json;

  FlagSet flags("fig2_candidate_ratio");
  flags.AddInt64("n", &num_sequences, "number of stock sequences");
  flags.AddInt64("queries", &num_queries, "queries per tolerance");
  flags.AddString("eps", &eps_list, "comma-separated tolerances (dollars)");
  flags.AddInt64("categories", &categories, "ST-Filter category count");
  flags.AddInt64("seed", &seed, "dataset seed");
  flags.AddString("metrics_json", &metrics_json,
                  "also write per-method rows (with per-stage ms) to this "
                  "file as JSON lines");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }

  StockDataOptions stock;
  stock.num_sequences = static_cast<size_t>(num_sequences);
  stock.seed = static_cast<uint64_t>(seed);
  EngineOptions options;
  options.build_st_filter = true;
  options.st_filter_categories = static_cast<size_t>(categories);
  const Engine engine(GenerateStockDataset(stock), options);
  const auto queries = GenerateQueryWorkload(
      engine.dataset(),
      QueryWorkloadOptions{.num_queries = static_cast<size_t>(num_queries)});

  bench::PrintPreamble(
      "Figure 2: filtering effect (candidate ratio vs tolerance)",
      "Kim/Park/Chu ICDE'01, Experiment 1, Figure 2",
      std::to_string(num_sequences) + " synthetic S&P-like sequences, " +
          std::to_string(num_queries) + " perturbed-copy queries per eps");

  bench::MetricsJsonWriter json("fig2_candidate_ratio", metrics_json);
  TablePrinter table(stdout,
                     {"eps", "naive_scan(answers)", "lb_scan", "st_filter",
                      "tw_sim_search", "avg_answers"});
  table.PrintHeader();
  for (const double eps : bench::ParseDoubleList(eps_list)) {
    const auto naive =
        bench::RunWorkload(engine, MethodKind::kNaiveScan, queries, eps);
    const auto lb =
        bench::RunWorkload(engine, MethodKind::kLbScan, queries, eps);
    const auto st =
        bench::RunWorkload(engine, MethodKind::kStFilter, queries, eps);
    const auto tw =
        bench::RunWorkload(engine, MethodKind::kTwSimSearch, queries, eps);
    table.PrintRow({bench::FormatDouble(eps, 2),
                    bench::FormatDouble(naive.candidate_ratio, 4),
                    bench::FormatDouble(lb.candidate_ratio, 4),
                    bench::FormatDouble(st.candidate_ratio, 4),
                    bench::FormatDouble(tw.candidate_ratio, 4),
                    bench::FormatDouble(naive.avg_matches, 2)});
    json.AddRow("naive_scan", "eps", eps, naive);
    json.AddRow("lb_scan", "eps", eps, lb);
    json.AddRow("st_filter", "eps", eps, st);
    json.AddRow("tw_sim_search", "eps", eps, tw);
  }
  std::printf(
      "\nexpected shape: tw_sim_search <= st_filter << lb_scan, all >= "
      "naive_scan's answer ratio.\n");
  json.Flush();
  return 0;
}

}  // namespace
}  // namespace warpindex

int main(int argc, char** argv) { return warpindex::Run(argc, argv); }
