// Streaming ingest: write throughput and query latency while the
// background compactor runs.
//
// For each partitioner and shard count, builds an IngestEngine over a
// walk corpus, then streams --writes inserts (with a delete every
// --delete_every) through the executor's write path while the main
// thread runs range queries against the moving snapshot. Reports insert
// throughput, query latency percentiles measured DURING the stream, and
// how many background compactions the write volume triggered.
//
// With --metrics_json each row is also written as a JSON line:
//   {"bench":"micro_ingest","partition":"hash","shards":4,
//    "inserts_per_s":...,"qps":...,"p50_ms":...,"p99_ms":...,
//    "compactions":...}

#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/bench_util.h"
#include "common/flags.h"
#include "common/stats.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "exec/query_executor.h"
#include "ingest/ingest_engine.h"
#include "sequence/query_workload.h"
#include "sequence/random_walk_generator.h"

namespace warpindex {
namespace {

Dataset WalkDataset(size_t num_sequences, size_t length) {
  RandomWalkOptions rw;
  rw.num_sequences = num_sequences;
  rw.min_length = length;
  rw.max_length = length;
  rw.seed = 42;
  return GenerateRandomWalkDataset(rw);
}

int Run(int argc, char** argv) {
  int64_t num_sequences = 1000;
  int64_t length = 128;
  int64_t writes = 4000;
  int64_t delete_every = 10;
  int64_t compact_entries = 256;
  double eps = 0.2;
  int64_t threads = 4;
  std::string shard_list = "1,2,4";
  std::string metrics_json;

  FlagSet flags("micro_ingest");
  flags.AddInt64("n", &num_sequences, "base corpus size");
  flags.AddInt64("len", &length, "sequence length");
  flags.AddInt64("writes", &writes, "inserts streamed per configuration");
  flags.AddInt64("delete_every", &delete_every,
                 "delete one acknowledged insert every N inserts "
                 "(0 = no deletes)");
  flags.AddInt64("compact_entries", &compact_entries,
                 "delta entries per shard that trigger compaction");
  flags.AddDouble("eps", &eps, "range-query tolerance");
  flags.AddInt64("threads", &threads, "executor worker threads");
  flags.AddString("shards", &shard_list, "shard counts to sweep");
  flags.AddString("metrics_json", &metrics_json,
                  "also write one JSON line per row to this file");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }

  const Dataset dataset = WalkDataset(static_cast<size_t>(num_sequences),
                                      static_cast<size_t>(length));
  const auto queries = GenerateQueryWorkload(
      dataset, QueryWorkloadOptions{.num_queries = 64});

  bench::PrintPreamble(
      "Micro: streaming ingest under background compaction",
      "delta-shard writes + epoch-snapshot reads + compactor merges",
      std::to_string(num_sequences) + " base walks of length " +
          std::to_string(length) + ", " + std::to_string(writes) +
          " streamed writes, compaction at " +
          std::to_string(compact_entries) + " delta entries, eps=" +
          bench::FormatDouble(eps, 2));

  std::FILE* json = nullptr;
  if (!metrics_json.empty()) {
    json = std::fopen(metrics_json.c_str(), "w");
    if (json == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", metrics_json.c_str());
      return 1;
    }
  }

  TablePrinter table(stdout,
                     {"partition", "shards", "inserts_per_s", "qps",
                      "p50_ms", "p99_ms", "compactions"});
  table.PrintHeader();
  for (const PartitionerKind partitioner :
       {PartitionerKind::kHash, PartitionerKind::kRange}) {
    for (const int64_t num_shards : bench::ParseIntList(shard_list)) {
      IngestOptions options;
      options.num_shards = static_cast<size_t>(num_shards);
      options.partitioner = partitioner;
      options.compact_max_delta_entries =
          static_cast<size_t>(compact_entries);
      options.compact_max_tombstones =
          static_cast<size_t>(compact_entries);
      IngestEngine ingest(Dataset(dataset.sequences()), options);
      QueryExecutorOptions executor_options;
      executor_options.num_threads = static_cast<size_t>(threads);
      QueryExecutor executor(&ingest, executor_options);
      ingest.AttachPool(&executor.pool());
      executor.AttachIngest(&ingest);

      // Writer: stream the configured inserts/deletes as fast as the
      // pool absorbs them; report the acknowledged-write rate.
      std::atomic<bool> writing{true};
      double insert_wall_ms = 0.0;
      std::thread writer([&] {
        WallTimer timer;
        std::vector<std::future<SequenceId>> acks;
        acks.reserve(static_cast<size_t>(writes));
        std::vector<std::future<bool>> delete_acks;
        for (int64_t i = 0; i < writes; ++i) {
          acks.push_back(executor.SubmitInsert(PerturbSequence(
              dataset[static_cast<size_t>(i) % dataset.size()],
              static_cast<uint64_t>(i) + 7)));
          if (delete_every > 0 && (i + 1) % delete_every == 0) {
            const size_t victim = static_cast<size_t>(i + 1 - delete_every);
            delete_acks.push_back(
                executor.SubmitDelete(acks[victim].get()));
          }
        }
        for (std::future<SequenceId>& ack : acks) {
          if (ack.valid()) {
            ack.wait();
          }
        }
        for (std::future<bool>& ack : delete_acks) {
          ack.wait();
        }
        insert_wall_ms = timer.ElapsedMillis();
        writing.store(false, std::memory_order_relaxed);
      });

      // Query side: sequential range queries against the moving
      // snapshot for as long as the stream lasts.
      std::vector<double> latencies;
      size_t rounds = 0;
      while (writing.load(std::memory_order_relaxed)) {
        const Sequence& q = queries[rounds % queries.size()];
        WallTimer per_query;
        (void)ingest.Search(q, eps);
        latencies.push_back(per_query.ElapsedMillis());
        ++rounds;
      }
      writer.join();

      // Let the compactor drain before reading the totals.
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(10);
      IngestEngine::Health health = ingest.TakeHealthSnapshot();
      while (health.compaction_backlog > 0 &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        health = ingest.TakeHealthSnapshot();
      }

      const double inserts_per_s =
          insert_wall_ms > 0.0
              ? 1e3 * static_cast<double>(writes) / insert_wall_ms
              : 0.0;
      const double qps =
          insert_wall_ms > 0.0
              ? 1e3 * static_cast<double>(latencies.size()) / insert_wall_ms
              : 0.0;
      const double p50 = Percentile(latencies, 0.5);
      const double p99 = Percentile(latencies, 0.99);
      table.PrintRow({PartitionerKindName(partitioner),
                      std::to_string(num_shards),
                      bench::FormatDouble(inserts_per_s, 1),
                      bench::FormatDouble(qps, 1),
                      bench::FormatDouble(p50, 3),
                      bench::FormatDouble(p99, 3),
                      std::to_string(health.compactions_total)});
      if (json != nullptr) {
        std::fprintf(
            json,
            "{\"bench\":\"micro_ingest\",\"partition\":\"%s\","
            "\"shards\":%lld,\"threads\":%lld,\"writes\":%lld,"
            "\"inserts_per_s\":%.3f,\"qps\":%.3f,\"p50_ms\":%.5f,"
            "\"p99_ms\":%.5f,\"compactions\":%llu}\n",
            PartitionerKindName(partitioner),
            static_cast<long long>(num_shards),
            static_cast<long long>(threads),
            static_cast<long long>(writes), inserts_per_s, qps, p50, p99,
            static_cast<unsigned long long>(health.compactions_total));
      }
    }
  }
  if (json != nullptr) {
    std::fclose(json);
    std::printf("\nwrote JSON lines to %s\n", metrics_json.c_str());
  }
  std::printf(
      "\nexpected shape: insert throughput rises with shards (writes "
      "fan out over independent delta mutexes) until the pool saturates; "
      "query p99 absorbs the compaction merges without stalls because "
      "reads pin an epoch snapshot and never block on the swap. "
      "compactions should be roughly writes / compact_entries.\n");
  return 0;
}

}  // namespace
}  // namespace warpindex

int main(int argc, char** argv) { return warpindex::Run(argc, argv); }
