// Ablation A1: L1 vs L_inf base distance (paper §4.1 and footnote 3).
//
// The paper claims the overall trends are identical under L1 but with
// higher CPU cost (sum-combined DTW abandons later than max-combined).
// This harness runs the stock workload under both similarity models and
// reports elapsed times and DTW cell counts.

#include <cstdio>

#include "common/bench_util.h"
#include "common/flags.h"
#include "common/table_printer.h"
#include "sequence/stock_generator.h"

namespace warpindex {
namespace {

uint64_t TotalDtwCells(const Engine& engine, MethodKind kind,
                       const std::vector<Sequence>& queries, double eps) {
  uint64_t cells = 0;
  for (const Sequence& q : queries) {
    cells += engine.SearchWith(kind, q, eps).cost.dtw_cells;
  }
  return cells;
}

int Run(int argc, char** argv) {
  int64_t num_sequences = 545;
  int64_t num_queries = 50;
  // L1 accumulates costs along the path, so tolerances scale with path
  // length; sweep both in their natural units.
  std::string linf_eps_list = "1,4,16";
  std::string l1_eps_list = "5,20,80";

  FlagSet flags("abl1_base_distance");
  flags.AddInt64("n", &num_sequences, "number of stock sequences");
  flags.AddInt64("queries", &num_queries, "queries per tolerance");
  flags.AddString("linf_eps", &linf_eps_list, "tolerances for Linf model");
  flags.AddString("l1_eps", &l1_eps_list, "tolerances for L1 model");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }

  StockDataOptions stock;
  stock.num_sequences = static_cast<size_t>(num_sequences);

  bench::PrintPreamble(
      "Ablation A1: base distance L_inf vs L1",
      "Kim/Park/Chu ICDE'01 §4.1 + footnote 3 (same trends, higher CPU "
      "under L1)",
      std::to_string(num_sequences) + " stock sequences, " +
          std::to_string(num_queries) + " queries per eps");

  TablePrinter table(stdout,
                     {"model", "eps", "naive_ms", "lb_scan_ms", "tw_sim_ms",
                      "naive_dtw_cells", "tw_candidates"});
  table.PrintHeader();

  struct ModelRun {
    const char* name;
    DtwOptions dtw;
    std::string eps_list;
  };
  const ModelRun runs[] = {
      {"Linf", DtwOptions::Linf(), linf_eps_list},
      {"L1", DtwOptions::L1(), l1_eps_list},
  };
  for (const ModelRun& run : runs) {
    EngineOptions options;
    options.dtw = run.dtw;
    const Engine engine(GenerateStockDataset(stock), options);
    const auto queries = GenerateQueryWorkload(
        engine.dataset(), QueryWorkloadOptions{
                              .num_queries = static_cast<size_t>(num_queries)});
    for (const double eps : bench::ParseDoubleList(run.eps_list)) {
      const auto naive =
          bench::RunWorkload(engine, MethodKind::kNaiveScan, queries, eps);
      const auto lb =
          bench::RunWorkload(engine, MethodKind::kLbScan, queries, eps);
      const auto tw =
          bench::RunWorkload(engine, MethodKind::kTwSimSearch, queries, eps);
      const uint64_t cells =
          TotalDtwCells(engine, MethodKind::kNaiveScan, queries, eps);
      table.PrintRow({run.name, bench::FormatDouble(eps, 1),
                      bench::FormatDouble(naive.avg_elapsed_ms, 1),
                      bench::FormatDouble(lb.avg_elapsed_ms, 1),
                      bench::FormatDouble(tw.avg_elapsed_ms, 1),
                      std::to_string(cells),
                      bench::FormatDouble(tw.avg_candidates, 1)});
    }
  }
  std::printf(
      "\nexpected shape: L1 burns more DTW cells per scan (later early "
      "abandon) and the feature-index filter is looser (a max-of-features "
      "bound against a sum-accumulated distance), so every method gets "
      "slower -- the paper's footnote-3 observation.\n");
  return 0;
}

}  // namespace
}  // namespace warpindex

int main(int argc, char** argv) { return warpindex::Run(argc, argv); }
