// Microbenchmarks for the generalized suffix tree: construction rate and
// ST-Filter traversal across alphabet sizes.

#include <benchmark/benchmark.h>

#include "common/prng.h"
#include "sequence/random_walk_generator.h"
#include "suffixtree/st_filter.h"
#include "suffixtree/suffix_tree.h"

namespace warpindex {
namespace {

std::vector<std::vector<Symbol>> RandomStrings(size_t count, size_t length,
                                               Symbol alphabet,
                                               uint64_t seed) {
  Prng prng(seed);
  std::vector<std::vector<Symbol>> strings(count);
  for (auto& s : strings) {
    s.reserve(length);
    for (size_t i = 0; i < length; ++i) {
      s.push_back(static_cast<Symbol>(prng.UniformInt(0, alphabet - 1)));
    }
  }
  return strings;
}

void BM_SuffixTreeBuild(benchmark::State& state) {
  const size_t count = 100;
  const size_t length = static_cast<size_t>(state.range(0));
  const Symbol alphabet = static_cast<Symbol>(state.range(1));
  const auto strings = RandomStrings(count, length, alphabet, 11);
  for (auto _ : state) {
    SuffixTree tree;
    for (const auto& s : strings) {
      tree.AddString(s);
    }
    benchmark::DoNotOptimize(tree.num_nodes());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(count * length));
}
BENCHMARK(BM_SuffixTreeBuild)
    ->Args({100, 10})
    ->Args({100, 100})
    ->Args({500, 100});

void BM_SuffixTreeContains(benchmark::State& state) {
  const auto strings = RandomStrings(200, 200, 20, 13);
  SuffixTree tree;
  for (const auto& s : strings) {
    tree.AddString(s);
  }
  Prng prng(14);
  for (auto _ : state) {
    std::vector<Symbol> needle;
    for (int i = 0; i < 8; ++i) {
      needle.push_back(static_cast<Symbol>(prng.UniformInt(0, 19)));
    }
    benchmark::DoNotOptimize(tree.ContainsSubstring(needle));
  }
}
BENCHMARK(BM_SuffixTreeContains);

void BM_StFilterWholeMatch(benchmark::State& state) {
  RandomWalkOptions rw;
  rw.num_sequences = static_cast<size_t>(state.range(0));
  rw.min_length = 100;
  rw.max_length = 100;
  const Dataset dataset = GenerateRandomWalkDataset(rw);
  const StFilter filter(dataset, StFilterOptions{});
  const Sequence query = dataset[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.FindCandidates(query, 0.1).size());
  }
}
BENCHMARK(BM_StFilterWholeMatch)->Arg(200)->Arg(1000);

void BM_StFilterSubsequence(benchmark::State& state) {
  RandomWalkOptions rw;
  rw.num_sequences = 50;
  rw.min_length = 200;
  rw.max_length = 200;
  const Dataset dataset = GenerateRandomWalkDataset(rw);
  const StFilter filter(dataset, StFilterOptions{});
  const Sequence query = dataset[0].Slice(50, 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        filter.FindSubsequenceCandidates(query, 0.1, 18, 22).size());
  }
}
BENCHMARK(BM_StFilterSubsequence);

}  // namespace
}  // namespace warpindex
