// Seeded, reproducible query-workload shapes shared by the benchmark
// harnesses.
//
// A ZipfianSampler draws item indices with P(i) proportional to
// 1/(i+1)^s over a fixed support — the standard skewed-popularity model
// for cache studies (s=0 is uniform; s=1 is the classic web-trace
// shape where a handful of hot items dominate). Sampling is inverse-CDF
// over a precomputed table, so a draw is one RNG call plus a binary
// search, and the same (num_items, skew, seed) triple always yields the
// same stream on every platform (std::mt19937_64 is specified exactly).
//
// micro_throughput uses it to optionally replay a repeat-heavy stream
// over a small distinct-query pool; micro_cache sweeps `skew` to show
// how the semantic cache's hit rate tracks workload skew.

#ifndef WARPINDEX_BENCH_COMMON_WORKLOAD_H_
#define WARPINDEX_BENCH_COMMON_WORKLOAD_H_

#include <cstddef>
#include <cstdint>
#include <random>
#include <vector>

namespace warpindex {
namespace bench {

struct ZipfianOptions {
  // Support size: indices are drawn from [0, num_items). Must be >= 1.
  size_t num_items = 1;
  // Skew exponent s >= 0. 0 = uniform; 1 = classic Zipf; larger =
  // hotter head.
  double skew = 1.0;
  uint64_t seed = 42;
};

class ZipfianSampler {
 public:
  explicit ZipfianSampler(ZipfianOptions options);

  // One item index in [0, num_items).
  size_t Next();

  const ZipfianOptions& options() const { return options_; }

 private:
  ZipfianOptions options_;
  // cdf_[i] = P(index <= i), monotone, cdf_.back() == 1.
  std::vector<double> cdf_;
  std::mt19937_64 rng_;
  std::uniform_real_distribution<double> uniform_{0.0, 1.0};
};

// `count` draws from a fresh sampler — the whole access stream of a
// replay workload, reproducible from (options, count).
std::vector<size_t> GenerateZipfianIndices(const ZipfianOptions& options,
                                           size_t count);

}  // namespace bench
}  // namespace warpindex

#endif  // WARPINDEX_BENCH_COMMON_WORKLOAD_H_
